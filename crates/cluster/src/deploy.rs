//! Deployment builder: assemble a full CFS-style cluster on the simulator.
//!
//! Naming follows the paper: `MAMS-3A3S` = 3 replica groups (actives), each
//! with 1 standby... no — each active has `standbys` hot backups, so 3A3S
//! means `groups = 3`, `standbys = 1` *per group*? The paper's notation
//! "MAMS-3A3S means 3 actives and 3 standbys" counts totals: 3 groups with
//! one standby each. [`DeploySpec::mams`] takes totals and divides evenly.

use std::sync::Arc;

use mams_coord::{CoordConfig, CoordServer};
use mams_core::{InitialRole, MdsConfig, MdsServer, MdsTiming};
use mams_namespace::Partitioner;
use mams_sim::{DetRng, Duration, NodeId, Sim};
use mams_storage::pool::{new_shared_pool, SharedPool};
use mams_storage::{DiskModel, PoolNode};

use crate::client::{ClientConfig, FsClient};
use crate::datasrv::DataServer;
use crate::metrics::Metrics;
use crate::workload::Workload;

/// What to build.
#[derive(Debug, Clone)]
pub struct DeploySpec {
    /// Number of replica groups (= actives).
    pub groups: u32,
    /// Hot standbys per group.
    pub standbys_per_group: usize,
    /// Cold (junior) backups per group.
    pub juniors_per_group: usize,
    /// Shared-storage-pool nodes.
    pub pool_nodes: usize,
    /// Data servers (block reporters).
    pub data_servers: usize,
    pub timing: MdsTiming,
    pub coord: CoordConfig,
    /// Data-server block-report interval.
    pub report_interval: Duration,
    /// Override the pool nodes' journal/image disk models (ablations).
    pub pool_disks: Option<(DiskModel, DiskModel)>,
}

impl Default for DeploySpec {
    fn default() -> Self {
        DeploySpec {
            groups: 1,
            standbys_per_group: 3,
            juniors_per_group: 0,
            pool_nodes: 3,
            data_servers: 4,
            timing: MdsTiming::default(),
            coord: CoordConfig::default(),
            report_interval: Duration::from_secs(3),
            pool_disks: None,
        }
    }
}

impl DeploySpec {
    /// Paper notation: `mams(actives_total, standbys_total)` — e.g.
    /// `mams(3, 3)` is MAMS-3A3S (one standby per active). `standbys_total`
    /// must divide evenly.
    pub fn mams(actives: u32, standbys_total: u32) -> Self {
        assert!(actives >= 1);
        assert_eq!(standbys_total % actives, 0, "paper configurations distribute standbys evenly");
        DeploySpec {
            groups: actives,
            standbys_per_group: (standbys_total / actives) as usize,
            ..DeploySpec::default()
        }
    }
}

/// One replica group's node ids; `members[0]` is the boot-time designated
/// active.
#[derive(Debug, Clone)]
pub struct GroupHandle {
    pub members: Vec<NodeId>,
}

/// A built deployment.
pub struct Deployment {
    pub coord: NodeId,
    pub pool: Vec<NodeId>,
    pub groups: Vec<GroupHandle>,
    pub data_servers: Vec<NodeId>,
    pub partitioner: Partitioner,
    /// Direct handle to the pool contents (inspection, pre-population).
    pub shared_pool: SharedPool,
    spec: DeploySpec,
    client_count: u32,
}

/// Build the cluster: coordination server, pool nodes, `groups ×
/// (1 + standbys + juniors)` metadata servers (restartable), data servers.
pub fn build(sim: &mut Sim, spec: DeploySpec) -> Deployment {
    let shared_pool = new_shared_pool();
    let coord = sim.add_node("coord", Box::new(CoordServer::new(spec.coord)));
    let mut pool = Vec::new();
    for i in 0..spec.pool_nodes {
        let p = shared_pool.clone();
        let mut node = PoolNode::new(p);
        if let Some((journal, image)) = spec.pool_disks {
            node = node.with_disks(journal, image);
        }
        pool.push(sim.add_node(format!("pool-{i}"), Box::new(node)));
    }
    let partitioner = Partitioner::new(spec.groups);

    let mut groups = Vec::new();
    for g in 0..spec.groups {
        let n_members = 1 + spec.standbys_per_group + spec.juniors_per_group;
        let base = sim.num_nodes() as NodeId;
        let members: Vec<NodeId> = (0..n_members as NodeId).map(|i| base + i).collect();
        for (i, &id) in members.iter().enumerate() {
            let initial_role = if i == 0 {
                InitialRole::Active
            } else if i <= spec.standbys_per_group {
                InitialRole::Standby
            } else {
                InitialRole::Junior
            };
            let cfg = MdsConfig {
                group: g,
                members: members.clone(),
                coord,
                pool: pool.clone(),
                partitioner,
                initial_role,
                timing: spec.timing,
            };
            let got = sim.add_restartable(format!("mds-g{g}-{i}"), move || {
                Box::new(MdsServer::new(cfg.clone()))
            });
            assert_eq!(got, id, "node id plan must match registration order");
        }
        groups.push(GroupHandle { members });
    }

    let all_mds: Vec<NodeId> = groups.iter().flat_map(|g| g.members.iter().copied()).collect();
    let mut data_servers = Vec::new();
    for i in 0..spec.data_servers {
        let ds = DataServer::new(i as u32, all_mds.clone(), spec.report_interval)
            .with_blocks((i as u64 * 1000)..(i as u64 * 1000 + 16));
        data_servers.push(sim.add_node(format!("ds-{i}"), Box::new(ds)));
    }

    Deployment {
        coord,
        pool,
        groups,
        data_servers,
        partitioner,
        shared_pool,
        spec,
        client_count: 0,
    }
}

impl Deployment {
    /// All metadata-server node ids.
    pub fn mds_nodes(&self) -> Vec<NodeId> {
        self.groups.iter().flat_map(|g| g.members.iter().copied()).collect()
    }

    /// The boot-time designated active of a group.
    pub fn initial_active(&self, group: u32) -> NodeId {
        self.groups[group as usize].members[0]
    }

    /// Spec used to build this deployment.
    pub fn spec(&self) -> &DeploySpec {
        &self.spec
    }

    /// Add a closed-loop client running `workload`, reporting into
    /// `metrics`. Returns the client's node id.
    pub fn add_client(
        &mut self,
        sim: &mut Sim,
        workload: Workload,
        metrics: Arc<Metrics>,
    ) -> NodeId {
        self.add_client_with(sim, workload, metrics, |c| c)
    }

    /// Like [`Deployment::add_client`] with a config hook.
    pub fn add_client_with(
        &mut self,
        sim: &mut Sim,
        workload: Workload,
        metrics: Arc<Metrics>,
        tune: impl FnOnce(ClientConfig) -> ClientConfig,
    ) -> NodeId {
        let cfg = tune(ClientConfig::new(self.coord, self.partitioner));
        let rng = DetRng::seed_from_u64(0xC11E47 + self.client_count as u64);
        self.client_count += 1;
        let client = FsClient::new(cfg, workload, metrics, rng);
        sim.add_node(format!("client-{}", self.client_count - 1), Box::new(client))
    }

    /// A fresh per-client workload id (clients get private directories).
    pub fn next_client_id(&self) -> u32 {
        self.client_count
    }

    /// Like [`Deployment::add_client`], but every operation is logged into
    /// `history` for linearizability checking.
    pub fn add_client_recorded(
        &mut self,
        sim: &mut Sim,
        workload: Workload,
        metrics: Arc<Metrics>,
        history: Arc<crate::history::History>,
    ) -> NodeId {
        let client = self.next_client_id();
        self.add_client_with(sim, workload, metrics, move |mut cfg| {
            cfg.history = Some(crate::history::Recorder { client, log: history });
            cfg
        })
    }

    /// Dynamically add a backup node to a running replica group (the
    /// paper's "supports dynamically adding backup nodes at runtime"): the
    /// node boots as a junior, registers with the active, and is upgraded
    /// to a hot standby by the renewing protocol.
    pub fn add_backup(&mut self, sim: &mut Sim, group: u32) -> NodeId {
        let g = &mut self.groups[group as usize];
        let cfg = MdsConfig {
            group,
            members: g.members.clone(),
            coord: self.coord,
            pool: self.pool.clone(),
            partitioner: self.partitioner,
            initial_role: InitialRole::Junior,
            timing: self.spec.timing,
        };
        let idx = g.members.len();
        let id = sim.add_restartable(format!("mds-g{group}-{idx} (added)"), move || {
            Box::new(MdsServer::new(cfg.clone()))
        });
        g.members.push(id);
        id
    }
}
