//! Hash-based namespace partitioning across replica groups.
//!
//! CFS distributes the namespace over multiple actives by hashing
//! (Section III-A). Files are owned by exactly one replica group — the one
//! their full path hashes to — so `create` and `getfileinfo` scale with the
//! number of actives. Structural operations (`mkdir`, `delete`, `rename`)
//! must keep the directory skeleton consistent on *every* group, which is
//! why the paper classifies them as distributed transactions whose
//! throughput does not improve with more actives (Figure 5 discussion).

use serde::{Deserialize, Serialize};

/// Index of a replica group within a deployment.
pub type GroupId = u32;

/// FNV-1a, stable across runs and platforms (clients and servers must agree
/// on routing forever). Shared by group-level partitioning here and the
/// intra-namespace shard map in [`crate::shard`].
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Stable path → group mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioner {
    groups: u32,
}

impl Partitioner {
    pub fn new(groups: u32) -> Self {
        assert!(groups >= 1, "need at least one replica group");
        Partitioner { groups }
    }

    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Owner group of the file at `path`.
    pub fn owner(&self, path: &str) -> GroupId {
        (fnv1a64(path.as_bytes()) % self.groups as u64) as GroupId
    }

    /// Groups an operation must touch: file ops touch the owner only,
    /// structural ops touch every group (their directory skeletons must stay
    /// in lock-step).
    pub fn groups_for(&self, txn: &mams_journal::Txn) -> Vec<GroupId> {
        if txn.is_structural() {
            (0..self.groups).collect()
        } else {
            vec![self.owner(txn.primary_path())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_journal::Txn;

    #[test]
    fn routing_is_stable() {
        let p = Partitioner::new(3);
        for path in ["/a", "/a/b", "/data/file-17"] {
            assert_eq!(p.owner(path), p.owner(path));
        }
    }

    #[test]
    fn routing_is_spread() {
        let p = Partitioner::new(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[p.owner(&format!("/bench/dir{}/file{}", i % 100, i)) as usize] += 1;
        }
        for c in counts {
            assert!((1_500..4_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn single_group_owns_everything() {
        let p = Partitioner::new(1);
        assert_eq!(p.owner("/x"), 0);
        assert_eq!(p.owner("/y/z"), 0);
    }

    #[test]
    fn structural_ops_touch_all_groups() {
        let p = Partitioner::new(3);
        let mk = Txn::Mkdir { path: "/d".into() };
        assert_eq!(p.groups_for(&mk), vec![0, 1, 2]);
        let rn = Txn::Rename { src: "/a".into(), dst: "/b".into() };
        assert_eq!(p.groups_for(&rn), vec![0, 1, 2]);
        let cr = Txn::Create { path: "/d/f".into(), replication: 1 };
        assert_eq!(p.groups_for(&cr), vec![p.owner("/d/f")]);
        assert_eq!(p.groups_for(&cr).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_groups_rejected() {
        Partitioner::new(0);
    }
}
