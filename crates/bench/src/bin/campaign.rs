//! Seeded chaos campaign over the scenario corpus.
//!
//! ```text
//! cargo run --release --bin campaign -- --seeds 200
//! cargo run --release --bin campaign -- --scenario failover_crash --seeds 40
//! cargo run --release --bin campaign -- --inject --seeds 10   # teeth check
//! ```
//!
//! Splits the seed budget across the corpus, runs every (scenario, seed)
//! pair on a worker pool, shrinks any unexpected failure down to a minimal
//! fault program, and writes `results/CAMPAIGN.json`.
//!
//! Exit status: `0` when every run upheld the invariants (and, under
//! `--inject`, when the deliberately armed double-ack bug *was* caught);
//! `1` otherwise.

use std::collections::BTreeMap;
use std::sync::Mutex;

use mams_chaos::{corpus, quiet, run_scenario, CheckOutcome, RunConfig, RunReport, Scenario};

struct Args {
    seeds: u64,
    scenario: Option<String>,
    inject: bool,
    legacy_echoes: bool,
    jobs: usize,
    shrink_budget: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 60,
        scenario: None,
        inject: false,
        legacy_echoes: false,
        jobs: std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(4),
        shrink_budget: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => args.seeds = it.next().and_then(|v| v.parse().ok()).expect("--seeds N"),
            "--scenario" => args.scenario = Some(it.next().expect("--scenario NAME")),
            "--inject" => args.inject = true,
            // Check under the pre-replication "modulo retry duplication"
            // echo model instead of strict linearizability. Only for
            // builds without the replicated retry window.
            "--legacy-echoes" => args.legacy_echoes = true,
            "--jobs" => args.jobs = it.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--shrink-budget" => {
                args.shrink_budget =
                    it.next().and_then(|v| v.parse().ok()).expect("--shrink-budget N")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: campaign [--seeds N] [--scenario NAME] [--inject] [--legacy-echoes] \
                     [--jobs N] [--shrink-budget N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

#[derive(Default)]
struct ScenarioTally {
    runs: u64,
    clean: u64,
    violations: u64,
    invariant_failures: u64,
    inconclusive: u64,
    ops_ok: u64,
    ops_failed: u64,
    records: u64,
    max_states: u64,
}

fn main() {
    let args = parse_args();
    let scenarios: Vec<Scenario> = if args.inject {
        // Teeth mode: arm the double-ack defect on the fault-free scenario
        // and demand the checker convicts every seed.
        vec![quiet()]
    } else {
        match &args.scenario {
            Some(name) => vec![mams_chaos::by_name(name).unwrap_or_else(|| {
                eprintln!("unknown scenario {name}");
                std::process::exit(2);
            })],
            None => corpus(),
        }
    };

    let per_scenario = (args.seeds / scenarios.len() as u64).max(1);
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    for (si, _) in scenarios.iter().enumerate() {
        for seed in 0..per_scenario {
            jobs.push((si, seed + 1));
        }
    }
    println!(
        "campaign: {} scenario(s) x {} seed(s) = {} runs on {} worker(s){}",
        scenarios.len(),
        per_scenario,
        jobs.len(),
        args.jobs,
        if args.inject { " [double-ack INJECTED]" } else { "" }
    );

    let queue = Mutex::new(jobs);
    let reports: Mutex<Vec<RunReport>> = Mutex::new(Vec::new());
    let t_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.jobs {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                let Some((si, seed)) = job else { break };
                let cfg = RunConfig {
                    seed,
                    inject_double_ack: args.inject,
                    legacy_echoes: args.legacy_echoes,
                    ..Default::default()
                };
                let rep = run_scenario(&scenarios[si], &cfg);
                reports.lock().unwrap().push(rep);
            });
        }
    });
    let mut reports = reports.into_inner().unwrap();
    reports.sort_by_key(|r| (r.scenario, r.seed));

    // Shrink unexpected failures to minimal witnesses (bounded).
    let mut shrunk_witnesses = Vec::new();
    if !args.inject {
        for rep in reports.iter().filter(|r| r.failed()).take(3) {
            let sc = scenarios.iter().find(|s| s.name == rep.scenario).expect("scenario");
            let cfg = RunConfig {
                seed: rep.seed,
                legacy_echoes: args.legacy_echoes,
                ..Default::default()
            };
            println!(
                "shrinking {}/seed {} ({} actions)...",
                rep.scenario,
                rep.seed,
                rep.program.len()
            );
            let s = mams_chaos::shrink(sc, &cfg, rep, args.shrink_budget);
            println!(
                "  -> minimal witness: {} action(s) after {} rerun(s)",
                s.program.len(),
                s.runs
            );
            for a in &s.program {
                println!("     t+{}ms {:?}", a.at_ms, a.kind);
            }
            shrunk_witnesses.push((rep.scenario, rep.seed, s));
        }
    }

    // ---- tally + report ----
    let mut tally: BTreeMap<&'static str, ScenarioTally> = BTreeMap::new();
    for r in &reports {
        let t = tally.entry(r.scenario).or_default();
        t.runs += 1;
        t.ops_ok += r.ops_ok;
        t.ops_failed += r.ops_failed;
        t.records += r.records as u64;
        match &r.check {
            CheckOutcome::Ok { states } => t.max_states = t.max_states.max(*states),
            CheckOutcome::Violation { .. } => t.violations += 1,
            CheckOutcome::Inconclusive { states } => {
                t.inconclusive += 1;
                t.max_states = t.max_states.max(*states);
            }
        }
        if !r.invariants.is_empty() {
            t.invariant_failures += 1;
        }
        if !r.failed() {
            t.clean += 1;
        }
    }

    let rows: Vec<Vec<String>> = tally
        .iter()
        .map(|(name, t)| {
            vec![
                name.to_string(),
                t.runs.to_string(),
                t.clean.to_string(),
                t.violations.to_string(),
                t.invariant_failures.to_string(),
                t.inconclusive.to_string(),
                (t.ops_ok / t.runs.max(1)).to_string(),
                t.max_states.to_string(),
            ]
        })
        .collect();
    mams_bench::print_table(
        "Chaos campaign",
        &["scenario", "runs", "clean", "lin-viol", "inv-fail", "inconcl", "ops/run", "max-states"],
        &rows,
    );

    let mut doc = serde_json::Map::new();
    doc.insert("seeds_per_scenario".into(), serde_json::Value::from(per_scenario as f64));
    doc.insert("injected_double_ack".into(), serde_json::Value::from(args.inject));
    doc.insert("legacy_echoes".into(), serde_json::Value::from(args.legacy_echoes));
    doc.insert("strict_linearizability".into(), serde_json::Value::from(!args.legacy_echoes));
    doc.insert("wall_secs".into(), serde_json::Value::from(t_start.elapsed().as_secs_f64()));
    let mut sc_map = serde_json::Map::new();
    for (name, t) in &tally {
        let mut m = serde_json::Map::new();
        m.insert("runs".into(), serde_json::Value::from(t.runs as f64));
        m.insert("clean".into(), serde_json::Value::from(t.clean as f64));
        m.insert("linearizability_violations".into(), serde_json::Value::from(t.violations as f64));
        m.insert("invariant_failures".into(), serde_json::Value::from(t.invariant_failures as f64));
        m.insert("inconclusive".into(), serde_json::Value::from(t.inconclusive as f64));
        m.insert("mean_ops_ok".into(), serde_json::Value::from((t.ops_ok / t.runs.max(1)) as f64));
        m.insert("history_records".into(), serde_json::Value::from(t.records as f64));
        m.insert("max_checker_states".into(), serde_json::Value::from(t.max_states as f64));
        sc_map.insert(name.to_string(), serde_json::Value::Object(m));
    }
    doc.insert("scenarios".into(), serde_json::Value::Object(sc_map));
    let mut witness_arr = Vec::new();
    for (name, seed, s) in &shrunk_witnesses {
        let mut m = serde_json::Map::new();
        m.insert("scenario".into(), serde_json::Value::from(*name));
        m.insert("seed".into(), serde_json::Value::from(*seed as f64));
        m.insert(
            "minimal_program".into(),
            serde_json::Value::Array(
                s.program
                    .iter()
                    .map(|a| serde_json::Value::from(format!("t+{}ms {:?}", a.at_ms, a.kind)))
                    .collect(),
            ),
        );
        m.insert("reruns".into(), serde_json::Value::from(s.runs as f64));
        witness_arr.push(serde_json::Value::Object(m));
    }
    doc.insert("shrunk_witnesses".into(), serde_json::Value::Array(witness_arr));
    mams_bench::save_json("CAMPAIGN", &serde_json::Value::Object(doc));

    let failures = reports.iter().filter(|r| r.failed()).count();
    if args.inject {
        let caught = reports.iter().filter(|r| r.check.is_violation()).count();
        println!(
            "\ninjected double-ack: {caught}/{} run(s) convicted by the checker",
            reports.len()
        );
        if caught == reports.len() {
            println!("checker has teeth: PASS");
        } else {
            println!("checker MISSED the injected bug: FAIL");
            std::process::exit(1);
        }
    } else {
        println!(
            "\n{} run(s), {} failure(s), {:.1}s wall",
            reports.len(),
            failures,
            t_start.elapsed().as_secs_f64()
        );
        if failures > 0 {
            for r in reports.iter().filter(|r| r.failed()).take(5) {
                println!("-- {} seed {}:", r.scenario, r.seed);
                for inv in &r.invariants {
                    println!("   invariant: {inv}");
                }
                if let CheckOutcome::Violation { witness } = &r.check {
                    println!("   {witness}");
                }
            }
            std::process::exit(1);
        }
        println!("all scenarios clean: PASS");
    }
}
