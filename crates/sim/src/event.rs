//! The simulation event queue.
//!
//! A strict total order over events — `(time, sequence)` with sequence
//! numbers assigned at scheduling time — makes runs deterministic even when
//! many events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{Message, NodeId};
use crate::time::SimTime;

/// What happens when an event fires.
pub enum EventKind {
    /// Deliver `msg` from `from` to node `dst`.
    Deliver { from: NodeId, dst: NodeId, msg: Message },
    /// Fire timer `timer_id` (token `token`) on `node`, valid only while the
    /// node is still in incarnation `epoch`.
    Timer { node: NodeId, epoch: u64, timer_id: u64, token: u64 },
    /// Run an external control action against the whole simulation (fault
    /// injection, measurements). Boxed so the queue stays homogeneous.
    Control(Box<dyn FnOnce(&mut crate::world::Sim) + Send>),
}

impl std::fmt::Debug for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Deliver { from, dst, msg } => f
                .debug_struct("Deliver")
                .field("from", from)
                .field("dst", dst)
                .field("msg", msg)
                .finish(),
            EventKind::Timer { node, epoch, timer_id, token } => f
                .debug_struct("Timer")
                .field("node", node)
                .field("epoch", epoch)
                .field("timer_id", timer_id)
                .field("token", token)
                .finish(),
            EventKind::Control(_) => f.write_str("Control(..)"),
        }
    }
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Priority queue of pending events, earliest first.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: NodeId) -> EventKind {
        EventKind::Timer { node, epoch: 0, timer_id: 0, token: 0 }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(3));
        q.push(SimTime(10), timer(1));
        q.push(SimTime(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for node in 0..5 {
            q.push(SimTime(7), timer(node));
        }
        let nodes: Vec<NodeId> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { node, .. } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(5), timer(0));
        q.push(SimTime(2), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(5)));
    }
}
