//! # mams-chaos — chaos campaign engine for the MAMS cluster
//!
//! Three layers, designed to be driven by the `campaign` binary in
//! `mams-bench` (or directly from tests):
//!
//! * [`scenario`] — the declarative model: a [`Scenario`](scenario::Scenario)
//!   is a cluster shape, a contended workload, and a *fault program* — a
//!   seeded list of timed [`FaultAction`](scenario::FaultAction)s over
//!   symbolic node references (partitions during failover, gray-slow
//!   standbys, message loss/duplication, storage corruption mid-catch-up,
//!   clock skew, frozen zombies). Programs are data: shrinkable,
//!   printable, replayable.
//! * [`engine`] — compiles a program onto the simulator's control hooks,
//!   runs it against history-recorded clients, lifts every fault, grants a
//!   grace window, and sweeps the invariants (an active per group,
//!   post-heal progress, zero replica divergence, linearizable history).
//! * [`checker`] — the Wing–Gong-style linearizability checker over the
//!   per-client histories, specialized to the metadata op model. The
//!   retry window is replicated through the journal, so every history is
//!   held to *strict* linearizability — retries across failover included;
//!   the old "modulo retry duplication" echo model survives only as the
//!   opt-in legacy mode for builds without the window (see DESIGN.md §11).
//! * [`shrink`] — greedy delta-debugging of failing programs down to a
//!   minimal witness.

pub mod checker;
pub mod engine;
pub mod scenario;
pub mod shrink;

pub use checker::{check_history, check_history_with, CheckOutcome, CheckerOpts};
pub use engine::{active_of, run_scenario, RunConfig, RunReport};
pub use scenario::{by_name, corpus, quiet, FaultAction, FaultKind, NodeRef, Scenario};
pub use shrink::{shrink, Shrunk};
