//! Criterion benches for the two hot paths this repo optimises: the
//! encode-once shared journal batch (flush → standby fan-out → pool
//! append) and the namespace path-resolution fast path (interned names +
//! parent-directory cache vs a from-root component walk).
//!
//! `cargo bench --bench hotpath` (under the offline criterion stand-in the
//! closures still run, so the bench doubles as a smoke test).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mams_journal::{decode_batch, encode_batch, JournalBatch, JournalLog, SharedBatch, Txn};
use mams_namespace::NamespaceTree;

const BATCH_RECORDS: usize = 64;
const STANDBYS: usize = 3;

fn sample_batch(records: usize) -> JournalBatch {
    let txns = (0..records)
        .map(|i| Txn::Create { path: format!("/bench/dir{}/file{}", i % 8, i), replication: 3 })
        .collect();
    JournalBatch::new(1, 1, txns)
}

/// Wire round-trip: seal (encode once), then decode the shared bytes back.
fn bench_encode_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/wire");
    g.throughput(Throughput::Elements(BATCH_RECORDS as u64));
    g.bench_function("seal_64", |b| {
        b.iter_batched(|| sample_batch(BATCH_RECORDS), SharedBatch::sealed, BatchSize::SmallInput)
    });
    let sealed = SharedBatch::sealed(sample_batch(BATCH_RECORDS));
    g.bench_function("round_trip_64", |b| b.iter(|| decode_batch(sealed.wire().clone()).unwrap()));
    // The old cost model: encode the same batch once per fan-out leg.
    g.bench_function("encode_per_leg_64_x4", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..=STANDBYS {
                total += encode_batch(sealed.batch()).len();
            }
            total
        })
    });
    g.finish();
}

/// Fan one sealed batch out to the active's log, every standby log, and the
/// pool segment — the exact replication pattern of `flush_batch` — and
/// contrast the shared (rc-bump) form with per-leg deep clones.
fn bench_fan_out(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/fan_out");
    g.throughput(Throughput::Elements((STANDBYS + 2) as u64));
    g.bench_function("shared_5_legs", |b| {
        b.iter_batched(
            || {
                let logs: Vec<JournalLog> = (0..STANDBYS + 2).map(|_| JournalLog::new()).collect();
                (logs, SharedBatch::sealed(sample_batch(BATCH_RECORDS)))
            },
            |(mut logs, batch)| {
                let wire_len = batch.wire().len();
                for log in &mut logs {
                    log.append(batch.share()).unwrap();
                }
                wire_len
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("deep_clone_5_legs", |b| {
        b.iter_batched(
            || {
                let logs: Vec<JournalLog> = (0..STANDBYS + 2).map(|_| JournalLog::new()).collect();
                (logs, sample_batch(BATCH_RECORDS))
            },
            |(mut logs, batch)| {
                // One encode per leg plus one deep copy per leg: what the
                // flush path paid before batches were sealed and shared.
                let mut wire_len = 0usize;
                for log in &mut logs {
                    wire_len += encode_batch(&batch).len();
                    log.append(batch.clone()).unwrap();
                }
                wire_len
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Build the 10k-inode tree the resolution benches walk: 100 directories
/// of 100 files, three components deep.
fn deep_tree() -> (NamespaceTree, Vec<String>) {
    let mut tree = NamespaceTree::new();
    let mut paths = Vec::new();
    for d in 0..100 {
        let dir = format!("/bench/d{d}");
        tree.mkdir_p(&dir).unwrap();
        for f in 0..100 {
            let p = format!("{dir}/f{f}");
            tree.create(&p, 3).unwrap();
            paths.push(p);
        }
    }
    (tree, paths)
}

fn bench_resolution(c: &mut Criterion) {
    let (tree, paths) = deep_tree();
    let mut g = c.benchmark_group("hotpath/resolve");
    g.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    g.bench_function("cached_10k", |b| {
        b.iter(|| {
            i = (i + 1) % paths.len();
            tree.resolve_path(&paths[i]).unwrap()
        })
    });
    let mut j = 0usize;
    g.bench_function("from_root_10k", |b| {
        b.iter(|| {
            j = (j + 1) % paths.len();
            tree.resolve_path_uncached(&paths[j]).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode_decode, bench_fan_out, bench_resolution);
criterion_main!(benches);
