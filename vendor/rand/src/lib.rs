//! Offline stand-in for `rand`, API-compatible with the subset this
//! workspace uses: `SmallRng` (implemented as xoshiro256++ seeded via
//! SplitMix64, like rand 0.8 on 64-bit targets), `Rng::gen_range` over
//! integer and float ranges, `RngCore`, and `SeedableRng::seed_from_u64`.
//!
//! Everything is deterministic; there is no OS entropy source on purpose.

use std::ops::Range;

/// Core random-number generation interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Range sampling support for [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        (Range { start: self.start as f64, end: self.end as f64 }).sample(rng) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_range(0.0..1.0) < p
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seed expansion — the same algorithm
    /// `rand 0.8` uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut seed: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                // SplitMix64.
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(r.gen_range(0u64..7) < 7);
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(5usize..8);
            assert!((5..8).contains(&i));
        }
    }
}
