//! Duplicate-suppressing replay.
//!
//! "Each standby will decide whether to commit logs by comparing values of
//! `sn`. Only if `sn` from the active is larger than the current maximum
//! serial number, the standby applies journals and responds to it."
//! (failover protocol, step 4). [`ReplayCursor`] encodes exactly that rule.

use crate::txn::{JournalBatch, Sn, Txn, TxnId};

/// A sink that applies journalled transactions to some state (the namespace
/// tree, a metrics collector, …).
pub trait Apply {
    fn apply_txn(&mut self, txid: TxnId, txn: &Txn);
}

impl<F: FnMut(TxnId, &Txn)> Apply for F {
    fn apply_txn(&mut self, txid: TxnId, txn: &Txn) {
        self(txid, txn)
    }
}

/// What happened when a batch was offered to the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The batch was applied; the cursor advanced to its sn.
    Applied,
    /// `sn` was not larger than the cursor's maximum: skipped.
    Duplicate,
    /// The batch skips ahead of the expected `max_sn + 1`; the caller must
    /// fetch the missing range first (junior renewing does this).
    Gap { expected: Sn },
}

/// Tracks the highest applied `sn` and applies batches idempotently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCursor {
    max_sn: Sn,
}

impl ReplayCursor {
    /// Cursor that has applied nothing (sn 0, the paper's default for a
    /// freshly loaded image with no associated sn).
    pub fn new() -> Self {
        ReplayCursor { max_sn: 0 }
    }

    /// Cursor positioned after `sn` (e.g. an image checkpointed at `sn`).
    pub fn at(sn: Sn) -> Self {
        ReplayCursor { max_sn: sn }
    }

    /// Highest applied serial number.
    pub fn max_sn(&self) -> Sn {
        self.max_sn
    }

    /// Offer one batch.
    pub fn offer(&mut self, batch: &JournalBatch, sink: &mut impl Apply) -> ReplayOutcome {
        if batch.sn <= self.max_sn {
            return ReplayOutcome::Duplicate;
        }
        if batch.sn != self.max_sn + 1 {
            return ReplayOutcome::Gap { expected: self.max_sn + 1 };
        }
        for (txid, txn) in batch.entries() {
            sink.apply_txn(txid, txn);
        }
        self.max_sn = batch.sn;
        ReplayOutcome::Applied
    }

    /// Offer a contiguous run of batches; returns how many were applied.
    /// Accepts owned batches or shared handles (`&[JournalBatch]`,
    /// `&[SharedBatch]`) alike.
    pub fn offer_all<B: std::borrow::Borrow<JournalBatch>>(
        &mut self,
        batches: &[B],
        sink: &mut impl Apply,
    ) -> usize {
        let mut applied = 0;
        for b in batches {
            if self.offer(b.borrow(), sink) == ReplayOutcome::Applied {
                applied += 1;
            }
        }
        applied
    }

    /// Gap between this cursor and another sn (how far behind a junior is).
    pub fn lag_behind(&self, tip: Sn) -> u64 {
        tip.saturating_sub(self.max_sn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(sn: Sn, n: usize) -> JournalBatch {
        let records =
            (0..n).map(|i| Txn::Create { path: format!("/{sn}/{i}"), replication: 1 }).collect();
        JournalBatch::new(sn, sn * 100, records)
    }

    #[test]
    fn applies_in_order_and_counts_records() {
        let mut cur = ReplayCursor::new();
        let mut seen: Vec<TxnId> = Vec::new();
        let mut sink = |txid: TxnId, _t: &Txn| seen.push(txid);
        assert_eq!(cur.offer(&batch(1, 2), &mut sink), ReplayOutcome::Applied);
        assert_eq!(cur.offer(&batch(2, 1), &mut sink), ReplayOutcome::Applied);
        assert_eq!(seen, vec![100, 101, 200]);
        assert_eq!(cur.max_sn(), 2);
    }

    #[test]
    fn duplicates_never_reapplied() {
        let mut cur = ReplayCursor::new();
        let mut count = 0usize;
        let mut sink = |_: TxnId, _: &Txn| count += 1;
        cur.offer(&batch(1, 3), &mut sink);
        assert_eq!(cur.offer(&batch(1, 3), &mut sink), ReplayOutcome::Duplicate);
        assert_eq!(count, 3, "records applied exactly once");
    }

    #[test]
    fn gap_reported_not_applied() {
        let mut cur = ReplayCursor::at(5);
        let mut count = 0usize;
        let mut sink = |_: TxnId, _: &Txn| count += 1;
        assert_eq!(cur.offer(&batch(8, 1), &mut sink), ReplayOutcome::Gap { expected: 6 });
        assert_eq!(count, 0);
        assert_eq!(cur.max_sn(), 5);
    }

    #[test]
    fn offer_all_mixed() {
        let mut cur = ReplayCursor::new();
        let mut sink = |_: TxnId, _: &Txn| {};
        let batches = vec![batch(1, 1), batch(1, 1), batch(2, 1), batch(4, 1)];
        assert_eq!(cur.offer_all(&batches, &mut sink), 2);
        assert_eq!(cur.max_sn(), 2);
    }

    #[test]
    fn lag_measures_junior_gap() {
        let cur = ReplayCursor::at(10);
        assert_eq!(cur.lag_behind(25), 15);
        assert_eq!(cur.lag_behind(5), 0);
    }
}
