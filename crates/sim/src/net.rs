//! Network model: per-link latency, message loss, partitions, and gray
//! failures.
//!
//! The paper's Test B ("take out / plug back network wires", Table II and
//! Figure 8b) is reproduced through [`Network::cut`] / [`Network::heal`] and
//! [`Network::isolate`] / [`Network::rejoin`]. Beyond those binary faults,
//! the chaos engine drives *gray* failures: one-way cuts
//! ([`Network::cut_one_way`]), per-link and per-node [`LinkShape`]s
//! (slowdown, extra delay, probabilistic loss), and message duplication —
//! a duplicate is delivered later than the original, so duplication doubles
//! as reordering.

use std::collections::{HashMap, HashSet};

use crate::node::NodeId;
use crate::rng::DetRng;
use crate::time::Duration;

/// How long a message takes from one node to another.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed one-way base latency.
    pub base: Duration,
    /// Additional uniformly distributed jitter in `[0, jitter]`.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Gigabit-LAN profile used for the paper's 20-node testbed: ~100 µs
    /// one-way plus small jitter.
    pub fn lan() -> Self {
        LatencyModel { base: Duration::from_micros(100), jitter: Duration::from_micros(50) }
    }

    /// Same-host loopback (co-located processes).
    pub fn local() -> Self {
        LatencyModel { base: Duration::from_micros(10), jitter: Duration::from_micros(5) }
    }

    /// Sample a one-way latency.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        if self.jitter.micros() == 0 {
            self.base
        } else {
            self.base + Duration::from_micros(rng.below(self.jitter.micros() + 1))
        }
    }
}

/// Gray-failure shaping applied to messages on a link or node: the link is
/// *up* but degraded. Identity by default (no effect).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkShape {
    /// Multiplier on the sampled base latency (1.0 = unchanged).
    pub latency_factor: f64,
    /// Fixed extra delay added after scaling.
    pub extra: Duration,
    /// Independent per-message loss probability on this link.
    pub loss: f64,
    /// Probability a delivered message is also duplicated; the copy arrives
    /// later than the original (duplication implies reordering).
    pub dup: f64,
}

impl Default for LinkShape {
    fn default() -> Self {
        LinkShape { latency_factor: 1.0, extra: Duration::ZERO, loss: 0.0, dup: 0.0 }
    }
}

impl LinkShape {
    /// Slow link: latency multiplied by `factor`.
    pub fn slow(factor: f64) -> Self {
        LinkShape { latency_factor: factor, ..LinkShape::default() }
    }

    /// Lossy link: each message dropped with probability `p`.
    pub fn lossy(p: f64) -> Self {
        LinkShape { loss: p, ..LinkShape::default() }
    }

    /// Add a fixed extra delay.
    pub fn with_extra(mut self, extra: Duration) -> Self {
        self.extra = extra;
        self
    }

    /// Add a duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup = p;
        self
    }
}

/// The sampled fate of one message: deliver (after a latency), possibly
/// with a later duplicate, or drop (`deliver == None`).
#[derive(Debug, Clone, Copy)]
pub struct RouteFate {
    /// `Some(latency)` to deliver the original, `None` to drop it.
    pub deliver: Option<Duration>,
    /// `Some(latency)` to also deliver a duplicate copy (always later than
    /// the original).
    pub duplicate: Option<Duration>,
}

impl RouteFate {
    const DROPPED: RouteFate = RouteFate { deliver: None, duplicate: None };
}

/// The cluster interconnect.
#[derive(Debug)]
pub struct Network {
    default_latency: LatencyModel,
    /// Unordered pairs (stored as (min,max)) whose link is cut.
    cut_links: HashSet<(NodeId, NodeId)>,
    /// Ordered pairs (from, to) cut in one direction only (asymmetric
    /// partition: `from` can be heard by nobody on the other side, or vice
    /// versa, depending on which directions are cut).
    cut_one_way: HashSet<(NodeId, NodeId)>,
    /// Nodes whose NIC is unplugged entirely.
    isolated: HashSet<NodeId>,
    /// Independent per-message loss probability (0 by default: TCP-like
    /// links; protocols still tolerate loss, exercised in tests).
    loss_probability: f64,
    /// Independent per-message duplication probability.
    dup_probability: f64,
    /// Gray shaping per directed link (from, to).
    link_shapes: HashMap<(NodeId, NodeId), LinkShape>,
    /// Gray shaping per node, applied to all of its traffic both ways
    /// (a "gray-slow" or lossy-NIC node).
    node_shapes: HashMap<NodeId, LinkShape>,
}

impl Network {
    pub fn new(default_latency: LatencyModel) -> Self {
        Network {
            default_latency,
            cut_links: HashSet::new(),
            cut_one_way: HashSet::new(),
            isolated: HashSet::new(),
            loss_probability: 0.0,
            dup_probability: 0.0,
            link_shapes: HashMap::new(),
            node_shapes: HashMap::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Cut the bidirectional link between `a` and `b`.
    pub fn cut(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert(Self::key(a, b));
    }

    /// Restore the link between `a` and `b` (both directions).
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.remove(&Self::key(a, b));
        self.cut_one_way.remove(&(a, b));
        self.cut_one_way.remove(&(b, a));
    }

    /// Cut only the `from -> to` direction; `to -> from` keeps working
    /// (asymmetric partition — e.g. a node that can send heartbeats but not
    /// hear replies).
    pub fn cut_one_way(&mut self, from: NodeId, to: NodeId) {
        self.cut_one_way.insert((from, to));
    }

    /// Restore the `from -> to` direction.
    pub fn heal_one_way(&mut self, from: NodeId, to: NodeId) {
        self.cut_one_way.remove(&(from, to));
    }

    /// Unplug a node from the network entirely (Test B).
    pub fn isolate(&mut self, n: NodeId) {
        self.isolated.insert(n);
    }

    /// Plug the node's cable back in.
    pub fn rejoin(&mut self, n: NodeId) {
        self.isolated.remove(&n);
    }

    /// Remove all partitions (symmetric, one-way, and isolations).
    pub fn heal_all(&mut self) {
        self.cut_links.clear();
        self.cut_one_way.clear();
        self.isolated.clear();
    }

    /// Remove all gray shaping (per-link and per-node).
    pub fn clear_shapes(&mut self) {
        self.link_shapes.clear();
        self.node_shapes.clear();
    }

    /// Set independent message-loss probability.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_probability = p;
    }

    /// Set independent message-duplication probability.
    pub fn set_dup_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "dup probability out of range");
        self.dup_probability = p;
    }

    /// Shape the directed link `from -> to`.
    pub fn shape_link_directed(&mut self, from: NodeId, to: NodeId, shape: LinkShape) {
        self.link_shapes.insert((from, to), shape);
    }

    /// Shape the link between `a` and `b` in both directions.
    pub fn shape_link(&mut self, a: NodeId, b: NodeId, shape: LinkShape) {
        self.link_shapes.insert((a, b), shape);
        self.link_shapes.insert((b, a), shape);
    }

    /// Remove shaping from the link between `a` and `b` (both directions).
    pub fn clear_link_shape(&mut self, a: NodeId, b: NodeId) {
        self.link_shapes.remove(&(a, b));
        self.link_shapes.remove(&(b, a));
    }

    /// Shape all traffic to and from `n` (gray-degraded node).
    pub fn shape_node(&mut self, n: NodeId, shape: LinkShape) {
        self.node_shapes.insert(n, shape);
    }

    /// Remove node shaping.
    pub fn clear_node_shape(&mut self, n: NodeId) {
        self.node_shapes.remove(&n);
    }

    /// Whether a message from `a` can currently reach `b`.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.isolated.contains(&a)
            && !self.isolated.contains(&b)
            && !self.cut_links.contains(&Self::key(a, b))
            && !self.cut_one_way.contains(&(a, b))
    }

    /// Sample the fate of a message: `Some(latency)` to deliver, `None` to
    /// drop (partitioned or lost).
    pub fn route(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> Option<Duration> {
        self.route_fate(from, to, rng).deliver
    }

    /// Sample the full fate of a message including gray shaping and
    /// duplication. Allocation-free; the caller schedules the deliveries.
    pub fn route_fate(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> RouteFate {
        if !self.connected(from, to) {
            return RouteFate::DROPPED;
        }
        let mut lost = self.loss_probability > 0.0 && rng.chance(self.loss_probability);
        let mut latency = self.default_latency.sample(rng);
        let mut dup_p = self.dup_probability;
        if !self.link_shapes.is_empty() || !self.node_shapes.is_empty() {
            for shape in [
                self.node_shapes.get(&from),
                self.node_shapes.get(&to),
                self.link_shapes.get(&(from, to)),
            ]
            .into_iter()
            .flatten()
            {
                if shape.loss > 0.0 && rng.chance(shape.loss) {
                    lost = true;
                }
                latency = latency.mul_f64(shape.latency_factor) + shape.extra;
                dup_p = dup_p.max(shape.dup);
            }
        }
        if lost {
            return RouteFate::DROPPED;
        }
        // A duplicate arrives strictly later than the original: model the
        // copy taking another (scaled-up) trip through the network, which
        // also reorders it past messages sent in between.
        let duplicate = if dup_p > 0.0 && rng.chance(dup_p) {
            Some(latency + self.default_latency.sample(rng).mul_f64(4.0))
        } else {
            None
        };
        RouteFate { deliver: Some(latency), duplicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_within_bounds() {
        let m = LatencyModel::lan();
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= m.base && d <= m.base + m.jitter);
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let m = LatencyModel { base: Duration::from_micros(42), jitter: Duration::ZERO };
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng), Duration::from_micros(42));
    }

    #[test]
    fn cut_and_heal_are_symmetric() {
        let mut n = Network::new(LatencyModel::lan());
        assert!(n.connected(1, 2));
        n.cut(2, 1);
        assert!(!n.connected(1, 2));
        assert!(!n.connected(2, 1));
        n.heal(1, 2);
        assert!(n.connected(2, 1));
    }

    #[test]
    fn isolation_blocks_all_traffic() {
        let mut n = Network::new(LatencyModel::lan());
        n.isolate(3);
        assert!(!n.connected(3, 1));
        assert!(!n.connected(1, 3));
        assert!(n.connected(1, 2));
        n.rejoin(3);
        assert!(n.connected(3, 1));
    }

    #[test]
    fn one_way_cut_is_asymmetric() {
        let mut n = Network::new(LatencyModel::lan());
        n.cut_one_way(1, 2);
        assert!(!n.connected(1, 2));
        assert!(n.connected(2, 1));
        n.heal_one_way(1, 2);
        assert!(n.connected(1, 2));
        // heal() clears one-way cuts too.
        n.cut_one_way(1, 2);
        n.cut_one_way(2, 1);
        n.heal(1, 2);
        assert!(n.connected(1, 2) && n.connected(2, 1));
    }

    #[test]
    fn slow_link_scales_latency() {
        let mut n =
            Network::new(LatencyModel { base: Duration::from_micros(100), jitter: Duration::ZERO });
        let mut rng = DetRng::seed_from_u64(3);
        n.shape_link(1, 2, LinkShape::slow(10.0).with_extra(Duration::from_micros(7)));
        let d = n.route(1, 2, &mut rng).unwrap();
        assert_eq!(d, Duration::from_micros(1007));
        // The other direction is shaped too; an unrelated link is not.
        assert_eq!(n.route(2, 1, &mut rng).unwrap(), Duration::from_micros(1007));
        assert_eq!(n.route(1, 3, &mut rng).unwrap(), Duration::from_micros(100));
        n.clear_link_shape(1, 2);
        assert_eq!(n.route(1, 2, &mut rng).unwrap(), Duration::from_micros(100));
    }

    #[test]
    fn node_shape_applies_both_directions() {
        let mut n =
            Network::new(LatencyModel { base: Duration::from_micros(100), jitter: Duration::ZERO });
        let mut rng = DetRng::seed_from_u64(4);
        n.shape_node(5, LinkShape::slow(3.0));
        assert_eq!(n.route(1, 5, &mut rng).unwrap(), Duration::from_micros(300));
        assert_eq!(n.route(5, 1, &mut rng).unwrap(), Duration::from_micros(300));
        assert_eq!(n.route(1, 2, &mut rng).unwrap(), Duration::from_micros(100));
        n.clear_node_shape(5);
        assert_eq!(n.route(1, 5, &mut rng).unwrap(), Duration::from_micros(100));
    }

    #[test]
    fn lossy_shape_drops_and_dup_duplicates() {
        let mut n = Network::new(LatencyModel::lan());
        let mut rng = DetRng::seed_from_u64(5);
        n.shape_link(1, 2, LinkShape::lossy(1.0));
        assert!(n.route(1, 2, &mut rng).is_none());
        n.clear_shapes();
        n.shape_link(1, 2, LinkShape::default().with_dup(1.0));
        let fate = n.route_fate(1, 2, &mut rng);
        let (orig, dup) = (fate.deliver.unwrap(), fate.duplicate.unwrap());
        assert!(dup > orig, "duplicate must arrive after the original");
        // Global dup probability works without any shapes.
        n.clear_shapes();
        n.set_dup_probability(1.0);
        assert!(n.route_fate(1, 2, &mut rng).duplicate.is_some());
        n.set_dup_probability(0.0);
        assert!(n.route_fate(1, 2, &mut rng).duplicate.is_none());
    }

    #[test]
    fn route_drops_on_partition_and_loss() {
        let mut n = Network::new(LatencyModel::lan());
        let mut rng = DetRng::seed_from_u64(9);
        n.cut(1, 2);
        assert!(n.route(1, 2, &mut rng).is_none());
        n.heal_all();
        n.set_loss_probability(1.0);
        assert!(n.route(1, 2, &mut rng).is_none());
        n.set_loss_probability(0.0);
        assert!(n.route(1, 2, &mut rng).is_some());
    }
}
