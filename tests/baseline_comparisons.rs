//! Cross-system integration tests: the Table I / Figure 6 orderings must
//! hold structurally, not just in the tuned harness.

use mams::baselines::{avatar, backupnode, hadoop_ha, FsScale};
use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::metrics::Metrics;
use mams::cluster::mttr::mttr_from_completions;
use mams::cluster::workload::Workload;
use mams::cluster::{ClientConfig, FsClient};
use mams::coord::{CoordConfig, CoordServer};
use mams::namespace::Partitioner;
use mams::sim::{DetRng, Sim, SimConfig, SimTime};

const KILL_AT: SimTime = SimTime(12_000_000);

fn mttr_of(system: &str, image_mb: u64, seed: u64) -> f64 {
    let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
    let metrics = Metrics::new(true);
    if system == "mams" {
        let mut d = build(
            &mut sim,
            DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() },
        );
        d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
        let victim = d.initial_active(0);
        sim.at(KILL_AT, move |s| s.crash(victim));
    } else {
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let victim = match system {
            "backupnode" => {
                backupnode::build(
                    &mut sim,
                    coord,
                    backupnode::BackupNodeSpec {
                        scale: FsScale::from_image_mb(image_mb),
                        ..Default::default()
                    },
                )
                .0
            }
            "avatar" => avatar::build(&mut sim, coord, avatar::AvatarSpec::default()).0,
            "hadoop_ha" => hadoop_ha::build(&mut sim, coord, hadoop_ha::HadoopHaSpec::default()).0,
            other => panic!("unknown {other}"),
        };
        sim.add_node(
            "client",
            Box::new(FsClient::new(
                ClientConfig::new(coord, Partitioner::new(1)),
                Workload::create_only(0),
                metrics.clone(),
                DetRng::seed_from_u64(seed),
            )),
        );
        sim.at(KILL_AT, move |s| s.crash(victim));
    }
    sim.run_until(SimTime(220_000_000));
    let outages = mttr_from_completions(&metrics.completions(), &[KILL_AT.micros()]);
    outages.first().map(|o| o.mttr_secs()).unwrap_or(f64::INFINITY)
}

#[test]
fn table1_ordering_holds_at_moderate_scale() {
    // At 128 MB the paper's ordering is MAMS < HA < BackupNode ≈ Avatar;
    // structurally we require MAMS < HA < Avatar and MAMS < BackupNode.
    let mams = mttr_of("mams", 128, 41);
    let ha = mttr_of("hadoop_ha", 128, 42);
    let av = mttr_of("avatar", 128, 43);
    let bn = mttr_of("backupnode", 128, 44);
    assert!(mams < ha, "MAMS {mams:.1}s !< HA {ha:.1}s");
    assert!(ha < av, "HA {ha:.1}s !< Avatar {av:.1}s");
    assert!(mams < bn, "MAMS {mams:.1}s !< BackupNode {bn:.1}s");
    assert!(mams < 10.0, "MAMS MTTR should be session-timeout dominated, got {mams:.1}s");
}

#[test]
fn backupnode_mttr_scales_with_image_but_mams_does_not() {
    let bn_small = mttr_of("backupnode", 16, 51);
    let bn_large = mttr_of("backupnode", 512, 52);
    assert!(
        bn_large > bn_small * 3.0,
        "BackupNode must grow with scale: {bn_small:.1}s -> {bn_large:.1}s"
    );
    // MAMS is flat in image size (hot standbys + block reports to all).
    let m1 = mttr_of("mams", 16, 53);
    let m2 = mttr_of("mams", 512, 54);
    assert!((m1 - m2).abs() < 2.0, "MAMS must be flat in image size: {m1:.1}s vs {m2:.1}s");
}

#[test]
fn every_reliable_mechanism_costs_some_throughput() {
    use mams::baselines::hdfs;
    fn tput(build_sys: impl FnOnce(&mut Sim, u32)) -> f64 {
        let mut sim = Sim::new(SimConfig { seed: 61, trace: false, ..SimConfig::default() });
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        build_sys(&mut sim, coord);
        let metrics = Metrics::new(false);
        for c in 0..32 {
            sim.add_node(
                format!("client-{c}"),
                Box::new(FsClient::new(
                    ClientConfig::new(coord, Partitioner::new(1)),
                    Workload::create_only(c),
                    metrics.clone(),
                    DetRng::seed_from_u64(61 + c as u64),
                )),
            );
        }
        sim.run_for(mams::sim::Duration::from_secs(5));
        sim.run_for(mams::sim::Duration::from_secs(8));
        metrics.mean_throughput(5, 13)
    }
    let hdfs_t = tput(|sim, coord| {
        hdfs::build(sim, coord, hdfs::HdfsSpec::default());
    });
    let ha_t = tput(|sim, coord| {
        hadoop_ha::build(sim, coord, hadoop_ha::HadoopHaSpec::default());
    });
    let av_t = tput(|sim, coord| {
        avatar::build(sim, coord, avatar::AvatarSpec::default());
    });
    assert!(hdfs_t > av_t, "HDFS {hdfs_t:.0} !> Avatar {av_t:.0}");
    assert!(av_t > ha_t, "Avatar {av_t:.0} !> HA {ha_t:.0}");
}
