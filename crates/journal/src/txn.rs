//! Namespace transactions and journal batches.

use serde::{Deserialize, Serialize};

/// Journal serial number. Assigned by the active when it writes a batch;
/// strictly increasing by 1 within a replica group's log, starting at 1.
/// `sn = 0` means "nothing applied yet" (the paper gives juniors loading an
/// image a default sn of 0).
pub type Sn = u64;

/// Transaction id, unique per replica group, increasing.
pub type TxnId = u64;

/// A single logged namespace mutation.
///
/// These are exactly the metadata operations the paper benchmarks (`create`,
/// `mkdir`, `delete`, `rename`; `getfileinfo` is read-only and never logged)
/// plus the block-level records an HDFS-style namenode journals so that a
/// promoted standby can serve file reads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Txn {
    /// Create an (empty) file at `path`.
    Create { path: String, replication: u8 },
    /// Create a directory (parents must exist).
    Mkdir { path: String },
    /// Delete a file, or a directory (recursively when `recursive`).
    Delete { path: String, recursive: bool },
    /// Rename `src` to `dst`.
    Rename { src: String, dst: String },
    /// Append a new block of `len` bytes to the file at `path`.
    AddBlock { path: String, block_id: u64, len: u32 },
    /// Seal the file at `path` (no more blocks).
    CloseFile { path: String },
    /// Change permission bits (extension op, exercised by tests).
    SetPerm { path: String, perm: u16 },
}

impl Txn {
    /// Stable discriminant used by the binary encoding.
    pub fn tag(&self) -> u8 {
        match self {
            Txn::Create { .. } => 1,
            Txn::Mkdir { .. } => 2,
            Txn::Delete { .. } => 3,
            Txn::Rename { .. } => 4,
            Txn::AddBlock { .. } => 5,
            Txn::CloseFile { .. } => 6,
            Txn::SetPerm { .. } => 7,
        }
    }

    /// Whether this transaction mutates directory structure (the paper's
    /// "distributed transaction" class in CFS: delete, mkdir, rename).
    pub fn is_structural(&self) -> bool {
        matches!(self, Txn::Mkdir { .. } | Txn::Delete { .. } | Txn::Rename { .. })
    }

    /// Approximate encoded size in bytes.
    pub fn weight(&self) -> u64 {
        let paths = match self {
            Txn::Rename { src, dst } => src.len() + dst.len(),
            other => other.primary_path().len(),
        };
        8 + paths as u64
    }

    /// Primary path the transaction touches (for partition routing).
    pub fn primary_path(&self) -> &str {
        match self {
            Txn::Create { path, .. }
            | Txn::Mkdir { path }
            | Txn::Delete { path, .. }
            | Txn::AddBlock { path, .. }
            | Txn::CloseFile { path }
            | Txn::SetPerm { path, .. } => path,
            Txn::Rename { src, .. } => src,
        }
    }
}

/// Marks a journaled record as owed to a client: record `record` of the
/// batch answers request `(client, seq)`. Riding with the batch makes the
/// retry-outcome window replicated state — every replica that replays the
/// batch learns which requests it settles, so a freshly promoted active can
/// answer retries from cache instead of re-executing. The reply payload is
/// *not* stored: it is reconstructed deterministically at replay (the
/// namespace state at the record's apply point is exactly the state the
/// original reply observed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckRecord {
    /// Index into `records` of the mutation this ack settles.
    pub record: u32,
    /// Requesting client (node id).
    pub client: u32,
    /// The client's per-session request sequence number.
    pub seq: u64,
    /// Acked speculatively (`OpSpec`): the reply carried the record's own
    /// txid as ordering token, so a cache-seeded retry answer must too.
    pub spec: bool,
}

/// A batch of log records: the `⟨sn, transactionid⟩` unit of the paper.
///
/// `first_txid` is the txid of `records[0]`; record `i` has txid
/// `first_txid + i`. The active aggregates several client operations into a
/// batch before flushing ("multiple metadata modifications are aggregated
/// before being submitted and written back to journals in an asynchronous
/// way", Section IV).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalBatch {
    pub sn: Sn,
    pub first_txid: TxnId,
    pub records: Vec<Txn>,
    /// Which records answer which client requests (ascending by `record`).
    /// Only the v2 wire format carries these; legacy v1 bytes decode with
    /// an empty list.
    pub acks: Vec<AckRecord>,
}

impl JournalBatch {
    pub fn new(sn: Sn, first_txid: TxnId, records: Vec<Txn>) -> Self {
        Self::with_acks(sn, first_txid, records, Vec::new())
    }

    pub fn with_acks(sn: Sn, first_txid: TxnId, records: Vec<Txn>, acks: Vec<AckRecord>) -> Self {
        assert!(sn >= 1, "sn 0 is the 'nothing applied' sentinel");
        assert!(!records.is_empty(), "empty journal batch");
        debug_assert!(
            acks.iter().all(|a| (a.record as usize) < records.len()),
            "ack references a record outside the batch"
        );
        JournalBatch { sn, first_txid, records, acks }
    }

    /// Txid of the last record in the batch.
    pub fn last_txid(&self) -> TxnId {
        self.first_txid + self.records.len() as TxnId - 1
    }

    /// Iterate `(txid, txn)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (TxnId, &Txn)> {
        let first = self.first_txid;
        self.records.iter().enumerate().map(move |(i, t)| (first + i as TxnId, t))
    }

    /// Approximate encoded size in bytes (header + per-record payloads),
    /// used by disk/network latency models without paying for a real
    /// encode.
    pub fn weight(&self) -> u64 {
        34 + self.records.iter().map(Txn::weight).sum::<u64>() + 8 * self.acks.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Txn> {
        vec![
            Txn::Create { path: "/a/f1".into(), replication: 3 },
            Txn::Mkdir { path: "/a/d".into() },
            Txn::Rename { src: "/a/f1".into(), dst: "/a/d/f1".into() },
        ]
    }

    #[test]
    fn tags_are_distinct() {
        let txns = [
            Txn::Create { path: "p".into(), replication: 1 },
            Txn::Mkdir { path: "p".into() },
            Txn::Delete { path: "p".into(), recursive: false },
            Txn::Rename { src: "a".into(), dst: "b".into() },
            Txn::AddBlock { path: "p".into(), block_id: 1, len: 2 },
            Txn::CloseFile { path: "p".into() },
            Txn::SetPerm { path: "p".into(), perm: 0o755 },
        ];
        let mut tags: Vec<u8> = txns.iter().map(Txn::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 7);
    }

    #[test]
    fn structural_classification_matches_paper() {
        assert!(Txn::Mkdir { path: "p".into() }.is_structural());
        assert!(Txn::Delete { path: "p".into(), recursive: true }.is_structural());
        assert!(Txn::Rename { src: "a".into(), dst: "b".into() }.is_structural());
        assert!(!Txn::Create { path: "p".into(), replication: 1 }.is_structural());
        assert!(!Txn::CloseFile { path: "p".into() }.is_structural());
    }

    #[test]
    fn batch_txid_accounting() {
        let b = JournalBatch::new(5, 100, sample());
        assert_eq!(b.last_txid(), 102);
        let ids: Vec<TxnId> = b.entries().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![100, 101, 102]);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sn_zero_rejected() {
        JournalBatch::new(0, 0, sample());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_batch_rejected() {
        JournalBatch::new(1, 0, vec![]);
    }

    #[test]
    fn primary_path_routes_rename_by_source() {
        let t = Txn::Rename { src: "/x".into(), dst: "/y".into() };
        assert_eq!(t.primary_path(), "/x");
    }
}
