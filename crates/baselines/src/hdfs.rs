//! Vanilla single-namenode HDFS: the throughput reference with no
//! reliability mechanism (and no recovery — if the namenode dies, the file
//! system is down, which is exactly the paper's motivation).

use mams_coord::{CoordClient, Incoming};
use mams_core::{CpuModel, Ingress, MdsReq};
use mams_namespace::NamespaceTree;
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim};

use crate::common::{exec_op, reply, RetryCache};

const T_FLUSH: u64 = 1;
/// Flush-completion timers are `T_DISK_BASE + token`.
const T_DISK_BASE: u64 = 1_000;

/// Tuning for the vanilla namenode.
#[derive(Debug, Clone, Copy)]
pub struct HdfsSpec {
    /// Journal batch aggregation interval (same as MAMS for fairness).
    pub flush_interval: Duration,
    /// Local edit-log fsync latency.
    pub disk_latency: Duration,
    /// Primary-side journaling CPU per mutation (local edit log append is amortized by group commit).
    pub journal_cpu: Duration,
}

impl Default for HdfsSpec {
    fn default() -> Self {
        HdfsSpec {
            flush_interval: Duration::from_millis(2),
            disk_latency: Duration::from_micros(1_500),
            journal_cpu: Duration::from_micros(0),
        }
    }
}

/// The single namenode.
pub struct HdfsNameNode {
    spec: HdfsSpec,
    coord: CoordClient,
    ns: NamespaceTree,
    next_block: u64,
    retry: RetryCache,
    /// Mutation replies awaiting the next flush.
    pending: Vec<crate::common::PendingReply>,
    /// Flushes whose disk write is in progress, by timer token.
    flushing: std::collections::HashMap<u64, Vec<crate::common::PendingReply>>,
    next_disk_token: u64,
    ingress: Ingress,
    cpu: CpuModel,
}

impl HdfsNameNode {
    pub fn new(coord: NodeId, spec: HdfsSpec) -> Self {
        HdfsNameNode {
            spec,
            coord: CoordClient::new(coord, Duration::from_secs(2)),
            ns: NamespaceTree::new(),
            next_block: 1,
            retry: RetryCache::new(),
            pending: Vec::new(),
            flushing: std::collections::HashMap::new(),
            next_disk_token: T_DISK_BASE,
            ingress: Ingress::default(),
            cpu: CpuModel::default(),
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>, from: NodeId, op: mams_core::FsOp, seq: u64) {
        if let Some(cached) = self.retry.check(from, seq) {
            ctx.send(from, cached);
            return;
        }
        match exec_op(&mut self.ns, &mut self.next_block, &op) {
            Ok((txn, out)) => {
                if txn.is_some() {
                    self.pending.push((from, seq, Ok(out)));
                } else {
                    reply(&mut self.retry, ctx, from, seq, Ok(out));
                }
            }
            Err(e) => reply(&mut self.retry, ctx, from, seq, Err(e)),
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        let token = self.next_disk_token;
        self.next_disk_token += 1;
        self.flushing.insert(token, batch);
        ctx.set_timer(self.spec.disk_latency, token);
    }
}

impl Node for HdfsNameNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.coord.start(ctx);
        ctx.set_timer(self.spec.flush_interval, T_FLUSH);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.coord.on_timer(ctx, token) {
            return;
        }
        if token == T_FLUSH {
            let budget = self.spec.flush_interval;
            let mut cpu = self.cpu;
            cpu.mutation += self.spec.journal_cpu;
            for item in self.ingress.drain(budget, cpu) {
                if let mams_core::IngressItem::Client { from, op, seq, .. } = item {
                    self.serve(ctx, from, op, seq);
                }
            }
            self.flush(ctx);
            ctx.set_timer(self.spec.flush_interval, T_FLUSH);
        } else if let Some(replies) = self.flushing.remove(&token) {
            for (to, seq, result) in replies {
                reply(&mut self.retry, ctx, to, seq, result);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match CoordClient::classify(msg) {
            Ok(Incoming::Resp(mams_coord::CoordResp::Registered)) => {
                // Publish ourselves as the (only) active for group 0.
                let me = ctx.id();
                self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        if let Ok(req) = msg.downcast::<MdsReq>() {
            match req {
                MdsReq::Op { op, seq, .. } => {
                    self.ingress.push(from, op, seq, None);
                }
                // Baselines are never driven in speculative mode.
                MdsReq::OpSpec { .. } | MdsReq::BlockReport { .. } | MdsReq::Checkpoint => {}
            }
        }
    }
}

/// Add a vanilla HDFS namenode to the simulation (publishing itself as
/// group 0's active in the global view so `FsClient` routes to it).
pub fn build(sim: &mut Sim, coord: NodeId, spec: HdfsSpec) -> NodeId {
    sim.add_node("hdfs-nn", Box::new(HdfsNameNode::new(coord, spec)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::metrics::Metrics;
    use mams_cluster::workload::Workload;
    use mams_cluster::{ClientConfig, FsClient};
    use mams_coord::{CoordConfig, CoordServer};
    use mams_namespace::Partitioner;
    use mams_sim::{DetRng, Sim, SimConfig};

    #[test]
    fn serves_clients_through_the_standard_client_library() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        build(&mut sim, coord, HdfsSpec::default());
        let m = Metrics::new(false);
        let cfg = ClientConfig::new(coord, Partitioner::new(1));
        sim.add_node(
            "client",
            Box::new(FsClient::new(cfg, Workload::mixed(0), m.clone(), DetRng::seed_from_u64(1))),
        );
        sim.run_for(Duration::from_secs(10));
        assert!(m.ok_count() > 500, "got {}", m.ok_count());
        assert_eq!(m.failed_count(), 0);
    }
}
