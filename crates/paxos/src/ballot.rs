//! Ballot numbers: totally ordered, proposer-unique.

use serde::{Deserialize, Serialize};

/// A Paxos ballot: lexicographic `(round, proposer)` so two proposers can
/// never issue the same ballot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ballot {
    pub round: u64,
    pub proposer: u32,
}

impl Ballot {
    /// The ballot below every real ballot.
    pub const ZERO: Ballot = Ballot { round: 0, proposer: 0 };

    pub fn new(round: u64, proposer: u32) -> Self {
        Ballot { round, proposer }
    }

    /// Smallest ballot of `proposer` strictly greater than `self`.
    pub fn next_for(self, proposer: u32) -> Ballot {
        if proposer > self.proposer {
            Ballot { round: self.round, proposer }
        } else {
            Ballot { round: self.round + 1, proposer }
        }
    }
}

impl std::fmt::Display for Ballot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_round_major() {
        assert!(Ballot::new(2, 0) > Ballot::new(1, 9));
        assert!(Ballot::new(1, 2) > Ballot::new(1, 1));
        assert!(Ballot::ZERO < Ballot::new(0, 1));
    }

    #[test]
    fn next_for_is_strictly_greater_and_minimal() {
        let b = Ballot::new(3, 5);
        let hi = b.next_for(7);
        assert!(hi > b);
        assert_eq!(hi, Ballot::new(3, 7));
        let lo = b.next_for(2);
        assert!(lo > b);
        assert_eq!(lo, Ballot::new(4, 2));
        let same = b.next_for(5);
        assert_eq!(same, Ballot::new(4, 5));
    }

    #[test]
    fn distinct_proposers_never_collide() {
        let a = Ballot::new(1, 1);
        let b = Ballot::new(1, 2);
        assert_ne!(a, b);
    }
}
