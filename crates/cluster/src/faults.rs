//! Fault injection: the paper's three error classes, plus the gray-failure
//! vocabulary the chaos campaigns compose from.
//!
//! * **Test A** — "modifying the global view to make the active lose the
//!   lock": [`schedule_lock_loss`] force-expires the victim's coordination
//!   session.
//! * **Test B** — "unplugging and reconnecting network wires":
//!   [`schedule_unplug`] isolates a node's NIC for a while, then plugs it
//!   back; [`schedule_partition`] cuts between two named sides, and
//!   [`schedule_one_way_partition`] cuts only one direction (asymmetric
//!   gray failure).
//! * **Test C** — "shutting down and restarting processes":
//!   [`schedule_crash`] / [`schedule_restart`] (fresh in-memory state on
//!   restart, like a real process).
//! * **Gray failures** — [`schedule_slow_link`] / [`schedule_slow_node`]
//!   stretch latency without severing connectivity; [`schedule_loss`]
//!   drops a fraction of messages on a link.

use mams_coord::CoordReq;
use mams_sim::{Duration, LinkShape, NodeId, Sim, SimTime};

/// Kill a process at `at`.
pub fn schedule_crash(sim: &mut Sim, node: NodeId, at: SimTime) {
    sim.at(at, move |s| s.crash(node));
}

/// Restart a crashed process at `at` (requires `add_restartable`).
pub fn schedule_restart(sim: &mut Sim, node: NodeId, at: SimTime) {
    sim.at(at, move |s| s.restart(node));
}

/// Crash at `at` and restart after `down_for`.
pub fn schedule_crash_restart(sim: &mut Sim, node: NodeId, at: SimTime, down_for: Duration) {
    schedule_crash(sim, node, at);
    schedule_restart(sim, node, at + down_for);
}

/// Unplug `node`'s network cable at `at`, plug it back after `down_for`.
pub fn schedule_unplug(sim: &mut Sim, node: NodeId, at: SimTime, down_for: Duration) {
    sim.at(at, move |s| s.net_mut().isolate(node));
    sim.at(at + down_for, move |s| s.net_mut().rejoin(node));
}

/// Force the victim's coordination session to expire at `at` (Test A).
pub fn schedule_lock_loss(sim: &mut Sim, coord: NodeId, victim: NodeId, at: SimTime) {
    sim.at(at, move |s| {
        s.send_external(coord, CoordReq::ForceExpire { victim });
    });
}

/// Cut every link between `side_a` and `side_b` at `at` (both directions);
/// heal the same links after `heal_after`, when given. Nodes outside both
/// sides keep full connectivity — this is a *named-sides* partition, unlike
/// [`schedule_unplug`]'s node-vs-world isolation.
pub fn schedule_partition(
    sim: &mut Sim,
    side_a: Vec<NodeId>,
    side_b: Vec<NodeId>,
    at: SimTime,
    heal_after: Option<Duration>,
) {
    let (a2, b2) = (side_a.clone(), side_b.clone());
    sim.at(at, move |s| {
        for &a in &side_a {
            for &b in &side_b {
                s.net_mut().cut(a, b);
            }
        }
    });
    if let Some(d) = heal_after {
        sim.at(at + d, move |s| {
            for &a in &a2 {
                for &b in &b2 {
                    s.net_mut().heal(a, b);
                }
            }
        });
    }
}

/// Asymmetric partition: messages from any node in `from` to any node in
/// `to` are dropped at `at`, while the reverse direction keeps flowing —
/// the classic half-open gray failure. Heals after `heal_after` if given.
pub fn schedule_one_way_partition(
    sim: &mut Sim,
    from: Vec<NodeId>,
    to: Vec<NodeId>,
    at: SimTime,
    heal_after: Option<Duration>,
) {
    let (f2, t2) = (from.clone(), to.clone());
    sim.at(at, move |s| {
        for &f in &from {
            for &t in &to {
                s.net_mut().cut_one_way(f, t);
            }
        }
    });
    if let Some(d) = heal_after {
        sim.at(at + d, move |s| {
            for &f in &f2 {
                for &t in &t2 {
                    s.net_mut().heal_one_way(f, t);
                }
            }
        });
    }
}

/// Stretch the `a`↔`b` link's latency by `factor` at `at` (both directions,
/// connectivity intact); restore after `for_dur` if given.
pub fn schedule_slow_link(
    sim: &mut Sim,
    a: NodeId,
    b: NodeId,
    factor: f64,
    at: SimTime,
    for_dur: Option<Duration>,
) {
    sim.at(at, move |s| s.net_mut().shape_link(a, b, LinkShape::slow(factor)));
    if let Some(d) = for_dur {
        sim.at(at + d, move |s| {
            s.net_mut().clear_link_shape(a, b);
        });
    }
}

/// Stretch every link touching `node` by `factor` at `at` (a gray-slow
/// process: alive, heartbeating, but crawling); restore after `for_dur`.
pub fn schedule_slow_node(
    sim: &mut Sim,
    node: NodeId,
    factor: f64,
    at: SimTime,
    for_dur: Option<Duration>,
) {
    sim.at(at, move |s| s.net_mut().shape_node(node, LinkShape::slow(factor)));
    if let Some(d) = for_dur {
        sim.at(at + d, move |s| {
            s.net_mut().clear_node_shape(node);
        });
    }
}

/// Drop each message on the `a`↔`b` link with probability `p` at `at`
/// (both directions); restore after `for_dur` if given.
pub fn schedule_loss(
    sim: &mut Sim,
    a: NodeId,
    b: NodeId,
    p: f64,
    at: SimTime,
    for_dur: Option<Duration>,
) {
    sim.at(at, move |s| s.net_mut().shape_link(a, b, LinkShape::lossy(p)));
    if let Some(d) = for_dur {
        sim.at(at + d, move |s| {
            s.net_mut().clear_link_shape(a, b);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_sim::{NodeStatus, SimConfig};

    use mams_sim::{Ctx, Message, Node};

    struct Idle;
    impl Node for Idle {
        fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
    }

    #[test]
    fn crash_restart_cycle() {
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_restartable("n", || Box::new(Idle));
        schedule_crash_restart(&mut sim, n, SimTime(1_000_000), Duration::from_secs(2));
        sim.run_until(SimTime(1_500_000));
        assert_eq!(sim.node_status(n), NodeStatus::Down);
        sim.run_until(SimTime(3_500_000));
        assert_eq!(sim.node_status(n), NodeStatus::Up);
    }

    #[test]
    fn unplug_cycle() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", Box::new(Idle));
        let b = sim.add_node("b", Box::new(Idle));
        schedule_unplug(&mut sim, a, SimTime(1_000_000), Duration::from_secs(1));
        sim.run_until(SimTime(1_100_000));
        assert!(!sim.net_mut().connected(a, b));
        sim.run_until(SimTime(2_100_000));
        assert!(sim.net_mut().connected(a, b));
    }

    #[test]
    fn partition_cuts_only_between_named_sides() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", Box::new(Idle));
        let b = sim.add_node("b", Box::new(Idle));
        let c = sim.add_node("c", Box::new(Idle));
        schedule_partition(
            &mut sim,
            vec![a],
            vec![b],
            SimTime(1_000_000),
            Some(Duration::from_secs(1)),
        );
        sim.run_until(SimTime(1_100_000));
        assert!(!sim.net_mut().connected(a, b));
        assert!(sim.net_mut().connected(a, c), "third parties unaffected");
        assert!(sim.net_mut().connected(b, c));
        sim.run_until(SimTime(2_100_000));
        assert!(sim.net_mut().connected(a, b), "healed");
    }

    #[test]
    fn one_way_partition_is_asymmetric() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", Box::new(Idle));
        let b = sim.add_node("b", Box::new(Idle));
        schedule_one_way_partition(
            &mut sim,
            vec![a],
            vec![b],
            SimTime(1_000_000),
            Some(Duration::from_secs(1)),
        );
        sim.run_until(SimTime(1_100_000));
        assert!(!sim.net_mut().connected(a, b), "a→b cut");
        assert!(sim.net_mut().connected(b, a), "b→a flows");
        sim.run_until(SimTime(2_100_000));
        assert!(sim.net_mut().connected(a, b), "healed");
    }
}
