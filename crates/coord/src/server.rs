//! The coordination server node.

use std::collections::{BTreeMap, HashMap};

use mams_sim::{Ctx, Duration, Message, Node, NodeId, SimTime};

use crate::proto::{CoordEvent, CoordReq, CoordResp, KeyOp};

const T_EXPIRY_SCAN: u64 = 1;

/// Server tuning. Defaults follow the paper's experimental setup: 2 s
/// heartbeats (client side), 5 s session timeout.
#[derive(Debug, Clone, Copy)]
pub struct CoordConfig {
    pub session_timeout: Duration,
    /// How often to sweep for dead sessions (bounds detection latency on
    /// top of the timeout).
    pub expiry_scan: Duration,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            session_timeout: Duration::from_secs(5),
            expiry_scan: Duration::from_millis(250),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: String,
    ephemeral: Option<NodeId>,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<NodeId>,
    epoch: u64,
}

/// The global-view / lock / watch service.
pub struct CoordServer {
    cfg: CoordConfig,
    sessions: HashMap<NodeId, SimTime>,
    keys: BTreeMap<String, Entry>,
    locks: HashMap<String, LockState>,
    /// (watcher, prefix) pairs; persistent.
    watches: Vec<(NodeId, String)>,
}

impl CoordServer {
    pub fn new(cfg: CoordConfig) -> Self {
        CoordServer {
            cfg,
            sessions: HashMap::new(),
            keys: BTreeMap::new(),
            locks: HashMap::new(),
            watches: Vec::new(),
        }
    }

    fn watchers_of(&self, key: &str) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .watches
            .iter()
            .filter(|(_, p)| key.starts_with(p.as_str()))
            .map(|(w, _)| *w)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn fire_key_event(&self, ctx: &mut Ctx<'_>, key: &str, value: Option<&str>, by_expiry: bool) {
        for w in self.watchers_of(key) {
            ctx.send(
                w,
                CoordEvent::KeyChanged {
                    key: key.to_string(),
                    value: value.map(str::to_string),
                    by_expiry,
                },
            );
        }
    }

    fn apply_key_op(&mut self, ctx: &mut Ctx<'_>, from: NodeId, op: KeyOp, by_expiry: bool) {
        match op {
            KeyOp::Set { key, value, ephemeral } => {
                ctx.trace("view.set", || format!("{key}={value}"));
                self.keys.insert(
                    key.clone(),
                    Entry { value: value.clone(), ephemeral: ephemeral.then_some(from) },
                );
                self.fire_key_event(ctx, &key, Some(&value), by_expiry);
            }
            KeyOp::Delete { key } => {
                if self.keys.remove(&key).is_some() {
                    ctx.trace("view.del", || key.clone());
                    self.fire_key_event(ctx, &key, None, by_expiry);
                }
            }
            KeyOp::DeleteIfValue { key, value } => {
                if self.keys.get(&key).is_some_and(|e| e.value == value) {
                    self.keys.remove(&key);
                    ctx.trace("view.del", || key.clone());
                    self.fire_key_event(ctx, &key, None, by_expiry);
                }
            }
        }
    }

    fn release_lock(&mut self, ctx: &mut Ctx<'_>, path: &str, by_expiry: bool) {
        if let Some(lock) = self.locks.get_mut(path) {
            if lock.holder.take().is_some() {
                ctx.trace("lock.freed", || format!("{path} (expiry={by_expiry})"));
                for w in self.watchers_of(path) {
                    ctx.send(w, CoordEvent::LockFreed { path: path.to_string(), by_expiry });
                }
            }
        }
    }

    fn expire_session(&mut self, ctx: &mut Ctx<'_>, who: NodeId) {
        if self.sessions.remove(&who).is_none() {
            return;
        }
        ctx.trace("session.expired", || format!("n{who}"));
        // Drop ephemerals.
        let dead: Vec<String> = self
            .keys
            .iter()
            .filter(|(_, e)| e.ephemeral == Some(who))
            .map(|(k, _)| k.clone())
            .collect();
        for key in dead {
            self.apply_key_op(ctx, who, KeyOp::Delete { key }, true);
        }
        // Release locks.
        let held: Vec<String> = self
            .locks
            .iter()
            .filter(|(_, l)| l.holder == Some(who))
            .map(|(p, _)| p.clone())
            .collect();
        for path in held {
            self.release_lock(ctx, &path, true);
        }
        ctx.send(who, CoordEvent::SessionExpired);
    }

    fn has_session(&self, who: NodeId) -> bool {
        self.sessions.contains_key(&who)
    }
}

impl Node for CoordServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.expiry_scan, T_EXPIRY_SCAN);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != T_EXPIRY_SCAN {
            return;
        }
        let now = ctx.now();
        let dead: Vec<NodeId> = self
            .sessions
            .iter()
            .filter(|(_, &last)| now.since(last) > self.cfg.session_timeout)
            .map(|(&n, _)| n)
            .collect();
        for n in dead {
            self.expire_session(ctx, n);
        }
        ctx.set_timer(self.cfg.expiry_scan, T_EXPIRY_SCAN);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let req = match msg.downcast::<CoordReq>() {
            Ok(r) => r,
            Err(_) => return,
        };
        // Any request from a session holder renews the session (ZooKeeper
        // semantics). This keeps the expiry clock aligned with the client's
        // own last-contact clock: the client hears our response a few
        // milliseconds after we hear its request, so a self-fencing lease
        // below `session_timeout` can never fire after our expiry.
        if let Some(last) = self.sessions.get_mut(&from) {
            *last = ctx.now();
        }
        match req {
            CoordReq::Register => {
                self.sessions.insert(from, ctx.now());
                ctx.trace("session.open", || format!("n{from}"));
                ctx.send(from, CoordResp::Registered);
            }
            CoordReq::Heartbeat => {
                if let Some(last) = self.sessions.get_mut(&from) {
                    *last = ctx.now();
                } else {
                    ctx.send(from, CoordResp::NoSession);
                }
            }
            CoordReq::Multi { ops, req } => {
                if !self.has_session(from) {
                    ctx.send(from, CoordResp::NoSession);
                    return;
                }
                for op in ops {
                    self.apply_key_op(ctx, from, op, false);
                }
                ctx.send(from, CoordResp::MultiOk { req });
            }
            CoordReq::Get { key, req } => {
                let value = self.keys.get(&key).map(|e| e.value.clone());
                ctx.send(from, CoordResp::Value { key, value, req });
            }
            CoordReq::List { prefix, req } => {
                let entries: Vec<(String, String)> = self
                    .keys
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .map(|(k, e)| (k.clone(), e.value.clone()))
                    .collect();
                ctx.send(from, CoordResp::Listing { prefix, entries, req });
            }
            CoordReq::Watch { prefix, req } => {
                if !self.watches.iter().any(|(w, p)| *w == from && *p == prefix) {
                    self.watches.push((from, prefix.clone()));
                }
                ctx.send(from, CoordResp::Watching { prefix, req });
            }
            CoordReq::AcquireLock { path, req } => {
                if !self.has_session(from) {
                    ctx.send(from, CoordResp::NoSession);
                    return;
                }
                let lock = self.locks.entry(path.clone()).or_default();
                match lock.holder {
                    None => {
                        lock.holder = Some(from);
                        lock.epoch += 1;
                        let epoch = lock.epoch;
                        ctx.trace("lock.grant", || format!("{path} -> n{from} (epoch {epoch})"));
                        for w in self.watchers_of(&path) {
                            ctx.send(
                                w,
                                CoordEvent::LockTaken { path: path.clone(), holder: from, epoch },
                            );
                        }
                        ctx.send(from, CoordResp::LockGranted { path, epoch, req });
                    }
                    Some(holder) if holder == from => {
                        let epoch = lock.epoch;
                        ctx.send(from, CoordResp::LockGranted { path, epoch, req });
                    }
                    Some(holder) => {
                        ctx.send(from, CoordResp::LockBusy { path, holder, req });
                    }
                }
            }
            CoordReq::ReleaseLock { path, epoch, req } => {
                // Epoch-fenced: a duplicated or delayed release from an
                // earlier grant must not free a re-acquired lock.
                let is_holder = self
                    .locks
                    .get(&path)
                    .is_some_and(|l| l.holder == Some(from) && l.epoch == epoch);
                if is_holder {
                    self.release_lock(ctx, &path, false);
                }
                ctx.send(from, CoordResp::LockReleased { path, req });
            }
            CoordReq::Expire => {
                self.expire_session(ctx, from);
            }
            CoordReq::ForceExpire { victim } => {
                self.expire_session(ctx, victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_sim::{Sim, SimConfig};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Scriptable test client: sends a list of (delay, request) and records
    /// everything it hears back.
    struct Scripted {
        coord: NodeId,
        script: Vec<(Duration, CoordReq)>,
        heartbeats: bool,
        log: Arc<Mutex<Vec<String>>>,
    }

    const T_STEP: u64 = 10;
    const T_HB: u64 = 11;

    impl Node for Scripted {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.coord, CoordReq::Register);
            if let Some((d, _)) = self.script.first() {
                ctx.set_timer(*d, T_STEP);
            }
            if self.heartbeats {
                ctx.set_timer(Duration::from_secs(2), T_HB);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            match token {
                T_STEP if !self.script.is_empty() => {
                    let (_, req) = self.script.remove(0);
                    ctx.send(self.coord, req);
                    if let Some((d, _)) = self.script.first() {
                        ctx.set_timer(*d, T_STEP);
                    }
                }
                T_HB => {
                    ctx.send(self.coord, CoordReq::Heartbeat);
                    ctx.set_timer(Duration::from_secs(2), T_HB);
                }
                _ => {}
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            let msg = match msg.downcast::<CoordResp>() {
                Ok(r) => {
                    self.log.lock().push(format!("{r:?}"));
                    return;
                }
                Err(m) => m,
            };
            if let Ok(ev) = msg.downcast::<CoordEvent>() {
                self.log.lock().push(format!("EV {ev:?}"));
            }
        }
    }

    fn contains(log: &Arc<Mutex<Vec<String>>>, needle: &str) -> bool {
        log.lock().iter().any(|l| l.contains(needle))
    }

    #[test]
    fn lock_is_exclusive_and_epochs_increase() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log_a = Arc::new(Mutex::new(Vec::new()));
        let log_b = Arc::new(Mutex::new(Vec::new()));
        sim.add_node(
            "a",
            Box::new(Scripted {
                coord,
                script: vec![
                    (Duration::from_millis(10), CoordReq::AcquireLock { path: "L".into(), req: 1 }),
                    (
                        Duration::from_millis(500),
                        CoordReq::ReleaseLock { path: "L".into(), epoch: 1, req: 2 },
                    ),
                ],
                heartbeats: true,
                log: log_a.clone(),
            }),
        );
        sim.add_node(
            "b",
            Box::new(Scripted {
                coord,
                script: vec![
                    (
                        Duration::from_millis(100),
                        CoordReq::AcquireLock { path: "L".into(), req: 1 },
                    ),
                    (
                        Duration::from_millis(900),
                        CoordReq::AcquireLock { path: "L".into(), req: 2 },
                    ),
                ],
                heartbeats: true,
                log: log_b.clone(),
            }),
        );
        sim.run_for(Duration::from_secs(3));
        assert!(contains(&log_a, "LockGranted { path: \"L\", epoch: 1"));
        assert!(contains(&log_b, "LockBusy"), "b's early attempt must be refused");
        assert!(
            contains(&log_b, "LockGranted { path: \"L\", epoch: 2"),
            "b gets it after release, with a higher epoch"
        );
    }

    #[test]
    fn session_expiry_releases_locks_and_ephemerals_and_fires_watches() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log_dead = Arc::new(Mutex::new(Vec::new()));
        let log_watcher = Arc::new(Mutex::new(Vec::new()));
        // This client takes the lock and an ephemeral key, then goes silent
        // (no heartbeats) — like a crashed active.
        sim.add_node(
            "dying",
            Box::new(Scripted {
                coord,
                script: vec![
                    (
                        Duration::from_millis(10),
                        CoordReq::AcquireLock { path: "g/0/lock".into(), req: 1 },
                    ),
                    (
                        Duration::from_millis(10),
                        CoordReq::Multi {
                            ops: vec![KeyOp::Set {
                                key: "g/0/active".into(),
                                value: "n1".into(),
                                ephemeral: true,
                            }],
                            req: 2,
                        },
                    ),
                ],
                heartbeats: false,
                log: log_dead.clone(),
            }),
        );
        sim.add_node(
            "watcher",
            Box::new(Scripted {
                coord,
                script: vec![(
                    Duration::from_millis(5),
                    CoordReq::Watch { prefix: "g/0/".into(), req: 1 },
                )],
                heartbeats: true,
                log: log_watcher.clone(),
            }),
        );
        sim.run_for(Duration::from_secs(8));
        // Expiry happens after ~5s: watcher sees lock freed + key deleted.
        assert!(contains(&log_watcher, "LockFreed"), "{:?}", log_watcher.lock());
        assert!(contains(
            &log_watcher,
            "KeyChanged { key: \"g/0/active\", value: None, by_expiry: true"
        ));
        assert!(contains(&log_dead, "SessionExpired"));
    }

    #[test]
    fn heartbeats_keep_session_alive() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log = Arc::new(Mutex::new(Vec::new()));
        sim.add_node(
            "steady",
            Box::new(Scripted {
                coord,
                script: vec![(
                    Duration::from_millis(10),
                    CoordReq::AcquireLock { path: "L".into(), req: 1 },
                )],
                heartbeats: true,
                log: log.clone(),
            }),
        );
        sim.run_for(Duration::from_secs(20));
        assert!(contains(&log, "LockGranted"));
        assert!(!contains(&log, "SessionExpired"), "heartbeating session must survive");
    }

    #[test]
    fn multi_and_list_round_trip() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log = Arc::new(Mutex::new(Vec::new()));
        sim.add_node(
            "c",
            Box::new(Scripted {
                coord,
                script: vec![
                    (
                        Duration::from_millis(10),
                        CoordReq::Multi {
                            ops: vec![
                                KeyOp::Set {
                                    key: "g/0/state/1".into(),
                                    value: "A".into(),
                                    ephemeral: false,
                                },
                                KeyOp::Set {
                                    key: "g/0/state/2".into(),
                                    value: "S".into(),
                                    ephemeral: false,
                                },
                                KeyOp::Set {
                                    key: "g/1/state/9".into(),
                                    value: "J".into(),
                                    ephemeral: false,
                                },
                            ],
                            req: 1,
                        },
                    ),
                    (Duration::from_millis(10), CoordReq::List { prefix: "g/0/".into(), req: 2 }),
                    (
                        Duration::from_millis(10),
                        CoordReq::Get { key: "g/1/state/9".into(), req: 3 },
                    ),
                    (
                        Duration::from_millis(10),
                        CoordReq::Multi {
                            ops: vec![KeyOp::Delete { key: "g/1/state/9".into() }],
                            req: 4,
                        },
                    ),
                    (
                        Duration::from_millis(10),
                        CoordReq::Get { key: "g/1/state/9".into(), req: 5 },
                    ),
                ],
                heartbeats: true,
                log: log.clone(),
            }),
        );
        sim.run_for(Duration::from_secs(2));
        let l = log.lock();
        let listing = l.iter().find(|s| s.contains("Listing")).unwrap();
        assert!(listing.contains("g/0/state/1") && listing.contains("g/0/state/2"));
        assert!(!listing.contains("g/1"), "prefix listing must not leak other groups");
        assert!(l.iter().any(|s| s.contains("value: Some(\"J\")") && s.contains("req: 3")));
        assert!(l.iter().any(|s| s.contains("value: None") && s.contains("req: 5")));
    }

    #[test]
    fn operations_without_session_are_refused() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        // Inject a lock attempt without registering first.
        sim.send_external(coord, CoordReq::Heartbeat);
        sim.run_for(Duration::from_secs(1));
        // No panic and no grant recorded.
        assert!(!sim.trace().events().iter().any(|e| e.tag == "lock.grant"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::proto::{CoordEvent, CoordReq, CoordResp};
    use mams_sim::{Ctx, Message, Node, NodeId, Sim, SimConfig};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Records everything; sends whatever the controller injects.
    struct Probe {
        log: Arc<Mutex<Vec<String>>>,
    }

    impl Node for Probe {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if let Some(r) = msg.downcast_ref::<CoordResp>() {
                self.log.lock().push(format!("{r:?}"));
            } else if let Some(e) = msg.downcast_ref::<CoordEvent>() {
                self.log.lock().push(format!("EV {e:?}"));
            }
        }
    }

    fn world() -> (Sim, NodeId, NodeId, Arc<Mutex<Vec<String>>>) {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log = Arc::new(Mutex::new(Vec::new()));
        let probe = sim.add_node("probe", Box::new(Probe { log: log.clone() }));
        (sim, coord, probe, log)
    }

    /// Forwarding variant of the probe used by tests that need `from` to be
    /// a live session holder.
    struct Forwarder {
        coord: NodeId,
        script: Vec<CoordReq>,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl Node for Forwarder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Stagger the script so requests arrive in order (independent
            // per-message jitter can otherwise reorder them).
            for i in 0..self.script.len() {
                ctx.set_timer(mams_sim::Duration::from_millis(20 * (i as u64 + 1)), i as u64);
            }
            ctx.set_timer(mams_sim::Duration::from_secs(2), 99);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
            if t == 99 {
                ctx.send(self.coord, CoordReq::Heartbeat);
                ctx.set_timer(mams_sim::Duration::from_secs(2), 99);
            } else if let Some(req) = self.script.get(t as usize).cloned() {
                ctx.send(self.coord, req);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if let Some(r) = msg.downcast_ref::<CoordResp>() {
                self.log.lock().push(format!("{r:?}"));
            } else if let Some(e) = msg.downcast_ref::<CoordEvent>() {
                self.log.lock().push(format!("EV {e:?}"));
            }
        }
    }

    #[test]
    fn force_expire_of_unknown_session_is_a_noop() {
        let (mut sim, coord, _probe, _log) = world();
        sim.send_external(coord, CoordReq::ForceExpire { victim: 999 });
        sim.run_for(mams_sim::Duration::from_secs(1));
        assert!(!sim.trace().events().iter().any(|e| e.tag == "session.expired"));
    }

    #[test]
    fn reacquiring_a_held_lock_returns_the_same_epoch() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log = Arc::new(Mutex::new(Vec::new()));
        sim.add_node(
            "f",
            Box::new(Forwarder {
                coord,
                script: vec![
                    CoordReq::Register,
                    CoordReq::AcquireLock { path: "L".into(), req: 1 },
                    CoordReq::AcquireLock { path: "L".into(), req: 2 },
                ],
                log: log.clone(),
            }),
        );
        sim.run_for(mams_sim::Duration::from_secs(1));
        let grants: Vec<String> =
            log.lock().iter().filter(|l| l.contains("LockGranted")).cloned().collect();
        assert_eq!(grants.len(), 2, "{grants:?}");
        assert!(
            grants.iter().all(|g| g.contains("epoch: 1")),
            "re-grant must not bump the epoch: {grants:?}"
        );
    }

    #[test]
    fn watches_survive_session_expiry_and_reregistration() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let log = Arc::new(Mutex::new(Vec::new()));
        sim.add_node(
            "w",
            Box::new(Forwarder {
                coord,
                script: vec![
                    CoordReq::Register,
                    CoordReq::Watch { prefix: "k/".into(), req: 1 },
                    // Kill our own session, then come back.
                    CoordReq::Expire,
                    CoordReq::Register,
                    CoordReq::Multi {
                        ops: vec![KeyOp::Set {
                            key: "k/x".into(),
                            value: "1".into(),
                            ephemeral: false,
                        }],
                        req: 2,
                    },
                ],
                log: log.clone(),
            }),
        );
        sim.run_for(mams_sim::Duration::from_secs(2));
        let l = log.lock();
        assert!(
            l.iter().any(|s| s.contains("KeyChanged") && s.contains("k/x")),
            "watch must still fire after re-registration: {l:?}"
        );
    }
}
