//! The in-memory journal log: an sn-contiguous sequence of batches.
//!
//! Both the active's own log and the shared files in the SSP use this
//! structure. Appends are idempotent: re-offering a batch with `sn` at or
//! below the current tail is reported as a duplicate and ignored — this is
//! the mechanism step 4 of the failover protocol relies on when the new
//! active re-flushes the last cached journals and the deposed active (now a
//! standby) sees them again.

use crate::shared::SharedBatch;
use crate::txn::Sn;

/// Result of offering a batch to the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The batch extended the log.
    Appended,
    /// `sn` was at or below the tail and the batch was ignored.
    Duplicate,
}

/// Append failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The batch would leave a hole (`sn` is more than tail + 1).
    Gap { tail: Sn, offered: Sn },
    /// A duplicate sn arrived with *different* contents — a protocol bug or
    /// a split-brain writer; never silently ignored.
    Divergent { sn: Sn },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Gap { tail, offered } => {
                write!(f, "journal gap: tail sn {tail}, offered sn {offered}")
            }
            JournalError::Divergent { sn } => {
                write!(f, "divergent journal content at sn {sn}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// An sn-contiguous journal segment.
///
/// `base_sn` is the sn *before* the first retained batch (0 for a log that
/// holds everything since the beginning); compaction after a checkpoint
/// advances it.
#[derive(Debug, Clone, Default)]
pub struct JournalLog {
    base_sn: Sn,
    batches: Vec<SharedBatch>,
}

impl JournalLog {
    /// Empty log starting from sn 1.
    pub fn new() -> Self {
        JournalLog::default()
    }

    /// Empty log whose next expected sn is `base_sn + 1` (e.g. after loading
    /// an image checkpointed at `base_sn`).
    pub fn with_base(base_sn: Sn) -> Self {
        JournalLog { base_sn, batches: Vec::new() }
    }

    /// Highest sn present (or the base if empty).
    pub fn tail_sn(&self) -> Sn {
        self.base_sn + self.batches.len() as Sn
    }

    /// Sn before the first retained batch.
    pub fn base_sn(&self) -> Sn {
        self.base_sn
    }

    /// Number of retained batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Offer a batch. Contiguous appends extend the log; stale sn values are
    /// ignored (after verifying they match what we already hold); gaps are
    /// errors.
    ///
    /// Accepts anything convertible into a [`SharedBatch`], so call sites
    /// may pass a plain [`crate::JournalBatch`] or an already-shared handle;
    /// the log retains the handle (no deep copy in either case beyond the
    /// one-time wrap).
    pub fn append(&mut self, batch: impl Into<SharedBatch>) -> Result<AppendOutcome, JournalError> {
        let batch = batch.into();
        let tail = self.tail_sn();
        if batch.sn == tail + 1 {
            self.batches.push(batch);
            Ok(AppendOutcome::Appended)
        } else if batch.sn <= tail {
            if batch.sn > self.base_sn {
                let existing = &self.batches[(batch.sn - self.base_sn - 1) as usize];
                if *existing != batch {
                    return Err(JournalError::Divergent { sn: batch.sn });
                }
            }
            Ok(AppendOutcome::Duplicate)
        } else {
            Err(JournalError::Gap { tail, offered: batch.sn })
        }
    }

    /// Batches with sn strictly greater than `after_sn`, in order. Returns
    /// `None` when `after_sn` is older than the compaction base (the caller
    /// must fall back to an image). The returned handles are shared — a
    /// caller fanning them out bumps reference counts, it does not copy
    /// records.
    pub fn read_after(&self, after_sn: Sn) -> Option<&[SharedBatch]> {
        if after_sn < self.base_sn {
            return None;
        }
        let from = (after_sn - self.base_sn) as usize;
        if from > self.batches.len() {
            return Some(&[]);
        }
        Some(&self.batches[from..])
    }

    /// The batch with exactly this sn, if retained.
    pub fn get(&self, sn: Sn) -> Option<&SharedBatch> {
        if sn <= self.base_sn || sn > self.tail_sn() {
            return None;
        }
        Some(&self.batches[(sn - self.base_sn - 1) as usize])
    }

    /// Drop batches with sn ≤ `through_sn` (after an image checkpoint).
    pub fn compact_through(&mut self, through_sn: Sn) {
        if through_sn <= self.base_sn {
            return;
        }
        let new_base = through_sn.min(self.tail_sn());
        let cut = (new_base - self.base_sn) as usize;
        self.batches.drain(..cut);
        self.base_sn = new_base;
    }

    /// Iterate retained batches in sn order.
    pub fn iter(&self) -> impl Iterator<Item = &SharedBatch> {
        self.batches.iter()
    }

    /// Total number of records across retained batches.
    pub fn record_count(&self) -> usize {
        self.batches.iter().map(|b| b.records.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{JournalBatch, Txn};

    fn batch(sn: Sn) -> JournalBatch {
        JournalBatch::new(
            sn,
            sn * 10,
            vec![Txn::Create { path: format!("/f{sn}"), replication: 1 }],
        )
    }

    #[test]
    fn contiguous_appends() {
        let mut log = JournalLog::new();
        for sn in 1..=5 {
            assert_eq!(log.append(batch(sn)).unwrap(), AppendOutcome::Appended);
        }
        assert_eq!(log.tail_sn(), 5);
        assert_eq!(log.len(), 5);
        assert_eq!(log.record_count(), 5);
    }

    #[test]
    fn duplicates_ignored_but_verified() {
        let mut log = JournalLog::new();
        log.append(batch(1)).unwrap();
        log.append(batch(2)).unwrap();
        assert_eq!(log.append(batch(2)).unwrap(), AppendOutcome::Duplicate);
        assert_eq!(log.tail_sn(), 2);
        // Same sn, different payload: loud failure.
        let divergent = JournalBatch::new(2, 999, vec![Txn::Mkdir { path: "/x".into() }]);
        assert_eq!(log.append(divergent).unwrap_err(), JournalError::Divergent { sn: 2 });
    }

    #[test]
    fn gaps_rejected() {
        let mut log = JournalLog::new();
        log.append(batch(1)).unwrap();
        assert_eq!(log.append(batch(3)).unwrap_err(), JournalError::Gap { tail: 1, offered: 3 });
    }

    #[test]
    fn read_after_returns_suffix() {
        let mut log = JournalLog::new();
        for sn in 1..=4 {
            log.append(batch(sn)).unwrap();
        }
        let tail = log.read_after(2).unwrap();
        assert_eq!(tail.iter().map(|b| b.sn).collect::<Vec<_>>(), vec![3, 4]);
        assert!(log.read_after(4).unwrap().is_empty());
        assert!(log.read_after(99).unwrap().is_empty());
    }

    #[test]
    fn compaction_moves_base_and_read_after_falls_back() {
        let mut log = JournalLog::new();
        for sn in 1..=6 {
            log.append(batch(sn)).unwrap();
        }
        log.compact_through(4);
        assert_eq!(log.base_sn(), 4);
        assert_eq!(log.tail_sn(), 6);
        assert_eq!(log.len(), 2);
        // Reads from before the base require an image.
        assert!(log.read_after(2).is_none());
        assert_eq!(log.read_after(4).unwrap().len(), 2);
        // Appends continue contiguously.
        log.append(batch(7)).unwrap();
        assert_eq!(log.tail_sn(), 7);
        assert_eq!(log.get(5).unwrap().sn, 5);
        assert!(log.get(4).is_none());
    }

    #[test]
    fn with_base_starts_after_checkpoint() {
        let mut log = JournalLog::with_base(10);
        assert_eq!(log.tail_sn(), 10);
        assert_eq!(
            log.append(batch(10)).unwrap(),
            AppendOutcome::Duplicate,
            "pre-base sn treated as duplicate"
        );
        log.append(batch(11)).unwrap();
        assert_eq!(log.tail_sn(), 11);
    }

    #[test]
    fn compact_past_tail_clamps() {
        let mut log = JournalLog::new();
        for sn in 1..=3 {
            log.append(batch(sn)).unwrap();
        }
        log.compact_through(10);
        assert_eq!(log.len(), 0);
        assert_eq!(log.tail_sn(), log.base_sn());
    }
}
