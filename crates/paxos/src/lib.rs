//! # mams-paxos — consensus for election and replicated state
//!
//! The paper leans on Paxos twice:
//!
//! 1. Active election — "With the Paxos algorithm for consensus, MAMS
//!    ensures that only one active is elected each time" (Section III-B).
//!    The uniqueness guarantee behind the distributed lock is exactly
//!    single-decree Paxos safety: at most one value (lock holder) chosen per
//!    instance (per lock generation).
//! 2. The Boom-FS baseline (Section II, Figure 9) replicates its metadata
//!    through a Paxos-backed, globally-consistent distributed log; its extra
//!    normal-case latency and centralized-repair failover cost come from
//!    that structure.
//!
//! This crate provides the pure single-decree state machines
//! ([`Acceptor`], [`Proposer`]) with machine-checkable safety, plus
//! [`rsm::RsmNode`] — a multi-decree replicated log (multi-Paxos with a
//! stable leader, Raft-flavored commit rule) that runs on the simulator and
//! backs the Boom-FS baseline.

pub mod acceptor;
pub mod ballot;
pub mod messages;
pub mod proposer;
pub mod rsm;

pub use acceptor::{AcceptReply, Acceptor, PrepareReply};
pub use ballot::Ballot;
pub use messages::Value;
pub use proposer::{Proposer, ProposerEvent};
