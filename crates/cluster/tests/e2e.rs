//! End-to-end tests: full deployments under load and failures.

use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::faults;
use mams_cluster::metrics::Metrics;
use mams_cluster::mttr::{mean_mttr_secs, mttr_from_completions};
use mams_cluster::workload::Workload;
use mams_sim::{Duration, Sim, SimConfig, SimTime};

fn sim(seed: u64) -> Sim {
    Sim::new(SimConfig { seed, ..SimConfig::default() })
}

#[test]
fn single_group_serves_creates() {
    let mut s = sim(1);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
    let m = Metrics::new(false);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    s.run_for(Duration::from_secs(30));
    assert!(m.ok_count() > 500, "only {} ops completed", m.ok_count());
    assert_eq!(m.failed_count(), 0, "no op should fail in a healthy cluster");
}

#[test]
fn multi_group_serves_mixed_ops() {
    let mut s = sim(2);
    let spec = DeploySpec::mams(3, 3);
    let mut d = build(&mut s, spec);
    let m = Metrics::new(false);
    for c in 0..4 {
        d.add_client(&mut s, Workload::mixed(c), m.clone());
    }
    s.run_for(Duration::from_secs(30));
    assert!(m.ok_count() > 1_000, "only {} ops completed", m.ok_count());
    assert_eq!(m.failed_count(), 0);
}

#[test]
fn active_crash_fails_over_and_service_resumes() {
    let mut s = sim(3);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
    let m = Metrics::new(true);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    let active = d.initial_active(0);
    let kill_at = SimTime(20_000_000);
    faults::schedule_crash(&mut s, active, kill_at);
    s.run_for(Duration::from_secs(60));

    let before = m.completions().iter().filter(|c| c.ok && c.at_us < kill_at.micros()).count();
    let after =
        m.completions().iter().filter(|c| c.ok && c.at_us > kill_at.micros() + 15_000_000).count();
    assert!(before > 100, "pre-failure traffic too thin: {before}");
    assert!(after > 100, "service did not resume: {after} ops after failover");

    // MTTR should be dominated by the 5 s session timeout: expect ~5-9 s.
    let outages = mttr_from_completions(&m.completions(), &[kill_at.micros()]);
    assert_eq!(outages.len(), 1, "exactly one outage");
    let mttr = mean_mttr_secs(&outages).unwrap();
    assert!(
        (4.0..12.0).contains(&mttr),
        "MTTR {mttr:.2}s out of the expected session-timeout-dominated band"
    );

    // A new active exists and the election stages were traced.
    let trace = s.trace();
    assert!(trace.first_at_or_after("failover.lock_acquired", kill_at).is_some());
    assert!(trace.first_at_or_after("failover.switch_done", kill_at).is_some());
}

#[test]
fn no_acknowledged_operation_is_lost_across_failover() {
    let mut s = sim(4);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 2, ..DeploySpec::default() });
    let m = Metrics::new(true);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    let active = d.initial_active(0);
    faults::schedule_crash(&mut s, active, SimTime(15_000_000));
    s.run_for(Duration::from_secs(40));
    let acked_creates = m.ok_count();
    assert!(acked_creates > 100);

    // Every acknowledged create (f0..fN-1 in order, issued by one
    // sequential client, minus the setup mkdir) must exist in the shared
    // pool's journal — i.e., be durable and recoverable.
    let pool = d.shared_pool.lock();
    let group = pool.group(0).expect("group 0 journal exists");
    let mut journaled_creates = 0u64;
    if let Some(batches) = group.read_journal(0, usize::MAX) {
        for b in batches {
            for r in &b.records {
                if matches!(r, mams_journal::Txn::Create { .. }) {
                    journaled_creates += 1;
                }
            }
        }
    }
    // acked ops = 1 setup mkdir + creates; every acked create journaled.
    assert!(
        journaled_creates + 1 >= acked_creates,
        "acked {acked_creates} (incl. setup), journaled creates {journaled_creates}"
    );
}

#[test]
fn crashed_member_rejoins_as_junior_then_standby() {
    let mut s = sim(5);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
    let m = Metrics::new(false);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    let active = d.initial_active(0);
    faults::schedule_crash_restart(&mut s, active, SimTime(15_000_000), Duration::from_secs(10));
    s.run_for(Duration::from_secs(80));

    let trace = s.trace();
    // The restarted node must have been renewed back to standby.
    assert!(
        trace.first_at_or_after("renew.promoted", SimTime(25_000_000)).is_some(),
        "restarted member was never promoted back to standby"
    );
    assert!(m.ok_count() > 1_000);
}

#[test]
fn test_a_lock_loss_returns_old_active_as_standby() {
    // Test A: the active loses the lock but its process and state are
    // intact, so after the switch it re-registers with a matching sn and
    // becomes a standby directly (paper Table II, Test A state 4).
    let mut s = sim(6);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
    let m = Metrics::new(true);
    d.add_client(&mut s, Workload::create_mkdir(0), m.clone());
    let active = d.initial_active(0);
    faults::schedule_lock_loss(&mut s, d.coord, active, SimTime(20_000_000));
    s.run_for(Duration::from_secs(50));

    let trace = s.trace();
    let degraded = trace
        .first_at_or_after("failover.degraded", SimTime(20_000_000))
        .expect("old active degrades");
    assert_eq!(degraded.node, active);
    // The deposed active must come back as a hot member: either directly
    // standby at registration or via a (short) renewal.
    let back = trace.events().iter().any(|e| {
        e.node == active
            && e.time >= SimTime(20_000_000)
            && (e.tag == "member.registered_standby" || e.tag == "member.registered_junior")
    });
    assert!(back, "deposed active never re-registered");
    // Service resumed.
    let outages = mttr_from_completions(&m.completions(), &[20_000_000]);
    assert_eq!(outages.len(), 1);
    assert!(outages[0].mttr_secs() < 12.0);
}

#[test]
fn test_b_unplug_expires_members_and_they_rejoin() {
    let mut s = sim(7);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
    let m = Metrics::new(false);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    let standby = d.groups[0].members[2];
    faults::schedule_unplug(&mut s, standby, SimTime(15_000_000), Duration::from_secs(8));
    s.run_for(Duration::from_secs(60));

    // The unplugged standby's session must have expired...
    let trace = s.trace();
    let expired = trace
        .events()
        .iter()
        .any(|e| e.tag == "session.expired" && e.detail == format!("n{standby}"));
    assert!(expired, "unplugged standby's session should expire");
    // ...and service continues throughout (it was only a standby).
    assert!(m.ok_count() > 1_500, "got {}", m.ok_count());
    // After replug it must become hot again.
    let rejoined = trace.events().iter().any(|e| {
        e.node == standby
            && e.time > SimTime(23_000_000)
            && (e.tag == "member.registered_standby"
                || e.tag == "renew.promoted"
                || e.tag == "member.registered_junior")
    });
    assert!(rejoined, "unplugged standby never rejoined");
}

#[test]
fn replicas_converge_after_quiet_period() {
    // After traffic stops, every standby must hold the same namespace as
    // the active (same fingerprint via sn convergence in the pool journal).
    let mut s = sim(8);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 2, ..DeploySpec::default() });
    let m = Metrics::new(false);
    d.add_client_with(&mut s, Workload::create_only(0), m.clone(), |mut c| {
        c.max_ops = Some(200);
        c
    });
    s.run_for(Duration::from_secs(30));
    assert!(m.ok_count() >= 200);
    // All member acks settled: check via trace that syncs completed by
    // verifying the pool journal tail equals the number of flushed batches
    // and no divergence was ever traced.
    assert!(!s.trace().events().iter().any(|e| e.tag.contains("diverg")));
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    assert!(g.tail_sn() > 0);
}

#[test]
fn backup_nodes_can_be_added_at_runtime() {
    // "By renewing, more new backup nodes can also be added in the replica
    // group at runtime." (Section III-D.)
    let mut s = sim(9);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 1, ..DeploySpec::default() });
    let m = Metrics::new(true);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    s.run_for(Duration::from_secs(10));

    // Add two fresh backups while the cluster is serving.
    let b1 = d.add_backup(&mut s, 0);
    s.run_for(Duration::from_secs(8));
    let b2 = d.add_backup(&mut s, 0);
    s.run_for(Duration::from_secs(15));

    // Both must have been renewed to standby.
    for b in [b1, b2] {
        let promoted = s
            .trace()
            .events()
            .iter()
            .any(|e| e.tag == "renew.promoted" && e.detail == format!("n{b}"));
        assert!(promoted, "added backup n{b} never became a standby");
    }

    // And they are real standbys: kill the original active AND the original
    // standby; one of the added nodes must take over.
    let orig = d.groups[0].members[0];
    let orig_standby = d.groups[0].members[1];
    s.after(Duration::ZERO, move |sim| {
        sim.crash(orig);
        sim.crash(orig_standby);
    });
    s.run_for(Duration::from_secs(20));
    let late =
        m.completions().iter().filter(|c| c.ok && c.at_us > s.now().micros() - 5_000_000).count();
    assert!(late > 100, "added backups failed to take over ({late})");
    let winner = s
        .trace()
        .events()
        .iter()
        .rev()
        .find(|e| e.tag == "failover.switch_done")
        .map(|e| e.node)
        .expect("switch completed");
    assert!([b1, b2].contains(&winner), "winner {winner} was not an added backup");
}

#[test]
fn cluster_tolerates_message_loss() {
    // With 2% independent message loss, lost SyncJournal batches are
    // repaired from the pool, lost acks are refreshed, and lost client
    // replies are retried — service keeps flowing and nothing acked is
    // lost.
    let mut s = sim(10);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 2, ..DeploySpec::default() });
    s.net_mut().set_loss_probability(0.02);
    let m = Metrics::new(true);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    s.run_for(Duration::from_secs(60));
    assert!(m.ok_count() > 1_000, "too few ops under loss: {}", m.ok_count());

    // Stop losses, let everything settle, then check durability.
    s.net_mut().set_loss_probability(0.0);
    s.run_for(Duration::from_secs(5));
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    let mut journaled_creates = 0u64;
    if let Some(batches) = g.read_journal(0, usize::MAX) {
        for b in batches {
            journaled_creates +=
                b.records.iter().filter(|r| matches!(r, mams_journal::Txn::Create { .. })).count()
                    as u64;
        }
    }
    assert!(journaled_creates + 1 >= m.ok_count());
}

#[test]
fn failover_works_even_under_message_loss() {
    let mut s = sim(12);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
    s.net_mut().set_loss_probability(0.01);
    let m = Metrics::new(true);
    d.add_client(&mut s, Workload::create_only(0), m.clone());
    let active = d.initial_active(0);
    faults::schedule_crash(&mut s, active, SimTime(20_000_000));
    s.run_for(Duration::from_secs(70));
    let late = m.completions().iter().filter(|c| c.ok && c.at_us > 50_000_000).count();
    assert!(late > 500, "no recovery under loss ({late})");
}

#[test]
fn block_write_path_survives_failover() {
    // The HDFS-style write path: create, allocate blocks, seal — with a
    // failover in the middle. Block metadata must survive on the new
    // active, and data-server reports must have populated its locations.
    use mams_core::{FsOp, OpOutput};
    let mut s = sim(13);
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 2, ..DeploySpec::default() });
    let m = Metrics::new(true);
    let ops = vec![
        FsOp::Mkdir { path: "/w".into() },
        FsOp::Create { path: "/w/f".into(), replication: 3 },
        FsOp::AddBlock { path: "/w/f".into(), len: 4096 },
        FsOp::AddBlock { path: "/w/f".into(), len: 4096 },
        FsOp::CloseFile { path: "/w/f".into() },
        FsOp::SetPerm { path: "/w/f".into(), perm: 0o640 },
        FsOp::GetFileInfo { path: "/w/f".into() },
        FsOp::List { path: "/w".into() },
    ];
    d.add_client(&mut s, Workload::script(ops.clone()), m.clone());
    s.run_for(Duration::from_secs(5));
    assert_eq!(m.ok_count(), ops.len() as u64, "write path ops all succeed");

    // Failover, then read the file back through a second client.
    let active = d.initial_active(0);
    faults::schedule_crash(&mut s, active, SimTime(6_000_000));
    s.run_for(Duration::from_secs(10));
    let m2 = Metrics::new(true);
    d.add_client(
        &mut s,
        Workload::script(vec![FsOp::GetFileInfo { path: "/w/f".into() }]),
        m2.clone(),
    );
    s.run_for(Duration::from_secs(10));
    assert_eq!(m2.ok_count(), 1, "file metadata must survive the failover");
    // Blocks and the seal are part of the journaled state.
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    let mut add_blocks = 0;
    let mut closes = 0;
    if let Some(batches) = g.read_journal(0, usize::MAX) {
        for b in batches {
            for r in &b.records {
                match r {
                    mams_journal::Txn::AddBlock { .. } => add_blocks += 1,
                    mams_journal::Txn::CloseFile { .. } => closes += 1,
                    _ => {}
                }
            }
        }
    }
    assert_eq!(add_blocks, 2);
    assert_eq!(closes, 1);
    let _ = OpOutput::Done;
}

#[test]
fn automatic_checkpoints_bound_the_shared_journal() {
    let mut s = sim(14);
    let mut spec = DeploySpec { standbys_per_group: 2, ..DeploySpec::default() };
    spec.timing.checkpoint_interval = Some(Duration::from_secs(10));
    let mut d = build(&mut s, spec);
    let m = Metrics::new(false);
    for c in 0..4 {
        d.add_client(&mut s, Workload::create_only(c), m.clone());
    }
    s.run_for(Duration::from_secs(45));

    // Several checkpoints happened and the journal stayed compacted.
    let checkpoints = s.trace().events().iter().filter(|e| e.tag == "checkpoint.done").count();
    assert!(checkpoints >= 3, "only {checkpoints} checkpoints");
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    let img = g.image().expect("image present");
    assert!(img.checkpoint_sn > 0);
    // The retained journal tail is short relative to total history.
    let tail_len = g.read_journal(img.checkpoint_sn, usize::MAX).unwrap().len();
    let total_sn = g.tail_sn();
    assert!(
        (tail_len as u64) < total_sn / 2,
        "journal not compacted: tail {tail_len} of {total_sn}"
    );
    // A failover after checkpointing still works (the new active reads the
    // tail, never the compacted range).
    let active = d.initial_active(0);
    drop(pool);
    faults::schedule_crash(&mut s, active, SimTime(46_000_000));
    let m2 = Metrics::new(true);
    d.add_client(&mut s, Workload::create_only(9), m2.clone());
    s.run_for(Duration::from_secs(20));
    assert!(
        m2.completions().iter().filter(|c| c.ok && c.at_us > 55_000_000).count() > 100,
        "no recovery after checkpointed failover"
    );
}
