//! Figure 5: metadata-operation throughput of single-namenode HDFS vs CFS
//! with the MAMS policy at 3 actives × 1–4 standbys, for the five paper
//! operations (create, getfileinfo, delete, mkdir, rename).
//!
//! Expected shape (paper): CFS beats HDFS on the partitionable operations
//! (create, getfileinfo); the structural operations (delete, mkdir,
//! rename) are distributed transactions and do not scale with actives;
//! adding standbys costs only a few percent per standby.

use mams_bench::{measure_throughput, populate, print_table, save_json};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::workload::Workload;
use mams_coord::CoordConfig;
use mams_sim::{Duration, Sim, SimConfig};

const CLIENTS: u32 = 96;
const PRECREATED: u64 = 4_000;
const WARMUP: Duration = Duration::from_secs(3);
const MEASURE: Duration = Duration::from_secs(10);

#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    Create,
    GetInfo,
    Delete,
    Mkdir,
    Rename,
}

impl OpKind {
    fn name(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::GetInfo => "getfileinfo",
            OpKind::Delete => "delete",
            OpKind::Mkdir => "mkdir",
            OpKind::Rename => "rename",
        }
    }

    fn needs_population(self) -> bool {
        matches!(self, OpKind::GetInfo | OpKind::Delete | OpKind::Rename)
    }

    fn workload(self, client: u32) -> Workload {
        match self {
            OpKind::Create => Workload::create_only(client),
            OpKind::GetInfo => Workload::get_info(client, PRECREATED),
            OpKind::Delete => Workload::delete_only(client, PRECREATED),
            OpKind::Mkdir => Workload::mkdir_only(client),
            OpKind::Rename => Workload::rename_only(client, PRECREATED),
        }
    }
}

fn spec_for(system: &str) -> DeploySpec {
    let mut spec = match system {
        "HDFS" => DeploySpec { groups: 1, standbys_per_group: 0, ..DeploySpec::default() },
        "MAMS-3A3S" => DeploySpec::mams(3, 3),
        "MAMS-3A6S" => DeploySpec::mams(3, 6),
        "MAMS-3A9S" => DeploySpec::mams(3, 9),
        "MAMS-3A12S" => DeploySpec::mams(3, 12),
        other => panic!("unknown system {other}"),
    };
    spec.coord = CoordConfig::default();
    spec
}

fn run_cell(system: &str, op: OpKind, seed: u64) -> f64 {
    let mut sim = Sim::new(SimConfig { seed, trace: false, ..SimConfig::default() });
    let mut d = build(&mut sim, spec_for(system));
    if op.needs_population() {
        // Phase 1: create the files the measured phase consumes/reads.
        populate(&mut sim, &mut d, CLIENTS, PRECREATED, Duration::from_secs(300));
    }
    measure_throughput(&mut sim, &mut d, |c| op.workload(c), CLIENTS, WARMUP, MEASURE)
}

fn main() {
    let systems = ["HDFS", "MAMS-3A3S", "MAMS-3A6S", "MAMS-3A9S", "MAMS-3A12S"];
    let ops = [OpKind::Create, OpKind::GetInfo, OpKind::Delete, OpKind::Mkdir, OpKind::Rename];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for op in ops {
        let mut row = vec![op.name().to_string()];
        let mut jrow = serde_json::Map::new();
        for (i, sys) in systems.iter().enumerate() {
            let tput = run_cell(sys, op, 0x5EED + i as u64);
            row.push(format!("{tput:.0}"));
            jrow.insert(sys.to_string(), serde_json::json!(tput));
        }
        jrow.insert("op".into(), serde_json::json!(op.name()));
        json_rows.push(serde_json::Value::Object(jrow));
        rows.push(row);
    }
    let mut headers = vec!["op"];
    headers.extend(systems.iter().copied());
    print_table("Figure 5: ops/sec by system (3 actives, 1-4 standbys each)", &headers, &rows);

    println!("\nShape checks (paper):");
    println!("  * create/getfileinfo: CFS (3 actives) > HDFS (1 namenode)");
    println!("  * delete/mkdir/rename: distributed transactions, no active scaling");
    println!("  * throughput declines only slightly as standbys are added");
    save_json("fig5_standby_scaling", &serde_json::json!({ "rows": json_rows }));
}
