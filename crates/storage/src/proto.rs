//! Pool protocol: the messages metadata servers exchange with pool nodes.

use bytes::Bytes;
use mams_journal::{SharedBatch, Sn};
use mams_namespace::{DeltaImage, NamespaceImage};

use crate::pool::{ArtifactId, Epoch, GroupId, Manifest, PoolError};

/// Correlates a response with its request (caller-chosen).
pub type ReqId = u64;

/// Requests served by a [`crate::PoolNode`].
#[derive(Debug, Clone)]
pub enum PoolReq {
    /// Append a journal batch under the writer's fencing epoch. The batch
    /// is a shared handle to the allocation the active sealed — carrying it
    /// here costs a reference-count bump, not a copy.
    AppendJournal { group: GroupId, epoch: Epoch, batch: SharedBatch, req: ReqId },
    /// Read up to `max` batches with sn > `after_sn`.
    ReadJournal { group: GroupId, after_sn: Sn, max: usize, req: ReqId },
    /// Checkpoint an image (starts a fresh manifest chain and compacts the
    /// shared journal through its sn).
    WriteImage { group: GroupId, epoch: Epoch, image: NamespaceImage, req: ReqId },
    /// Append a delta to the manifest chain (must chain onto its end).
    WriteDelta { group: GroupId, epoch: Epoch, delta: DeltaImage, req: ReqId },
    /// The checkpoint manifest chain (base + deltas).
    ReadManifest { group: GroupId, req: ReqId },
    /// A chunk of one manifest artifact (resumable transfer; base or delta).
    ReadArtifactChunk { group: GroupId, artifact: ArtifactId, offset: u64, len: u64, req: ReqId },
    /// Latest image metadata (checkpoint sn + size).
    ReadImageMeta { group: GroupId, req: ReqId },
    /// A chunk of the latest image (resumable transfer).
    ReadImageChunk { group: GroupId, offset: u64, len: u64, req: ReqId },
    /// Fence all writers with epoch < `to` (issued on lock grant).
    AdvanceEpoch { group: GroupId, to: Epoch, req: ReqId },
    /// The shared journal's tail sn.
    TailSn { group: GroupId, req: ReqId },
}

/// Responses from a [`crate::PoolNode`].
#[derive(Debug, Clone)]
pub enum PoolResp {
    AppendOk {
        group: GroupId,
        sn: Sn,
        duplicate: bool,
        req: ReqId,
    },
    /// `compacted` means the requested range predates the image checkpoint
    /// and the reader must load the image first.
    Journal {
        group: GroupId,
        batches: Vec<SharedBatch>,
        tail_sn: Sn,
        compacted: bool,
        req: ReqId,
    },
    ImageWritten {
        group: GroupId,
        checkpoint_sn: Sn,
        req: ReqId,
    },
    DeltaWritten {
        group: GroupId,
        end_sn: Sn,
        req: ReqId,
    },
    /// The manifest chain (empty when nothing has been checkpointed).
    ManifestInfo {
        group: GroupId,
        manifest: Manifest,
        req: ReqId,
    },
    ArtifactChunk {
        group: GroupId,
        artifact: ArtifactId,
        offset: u64,
        data: Bytes,
        total: u64,
        req: ReqId,
    },
    /// `meta` is `(checkpoint_sn, size_bytes)` or `None` when no image
    /// exists yet.
    ImageMeta {
        group: GroupId,
        meta: Option<(Sn, u64)>,
        req: ReqId,
    },
    ImageChunk {
        group: GroupId,
        offset: u64,
        data: Bytes,
        total: u64,
        req: ReqId,
    },
    EpochAdvanced {
        group: GroupId,
        epoch: Epoch,
        req: ReqId,
    },
    Tail {
        group: GroupId,
        sn: Sn,
        req: ReqId,
    },
    Failed {
        group: GroupId,
        error: PoolError,
        req: ReqId,
    },
}

impl PoolResp {
    /// The request this response answers.
    pub fn req_id(&self) -> ReqId {
        match self {
            PoolResp::AppendOk { req, .. }
            | PoolResp::Journal { req, .. }
            | PoolResp::ImageWritten { req, .. }
            | PoolResp::DeltaWritten { req, .. }
            | PoolResp::ManifestInfo { req, .. }
            | PoolResp::ArtifactChunk { req, .. }
            | PoolResp::ImageMeta { req, .. }
            | PoolResp::ImageChunk { req, .. }
            | PoolResp::EpochAdvanced { req, .. }
            | PoolResp::Tail { req, .. }
            | PoolResp::Failed { req, .. } => *req,
        }
    }
}
