//! Offline stand-in for `bytes`: cheaply cloneable `Bytes` (shared
//! `Arc<[u8]>` windows), append-only `BytesMut`, and the `Buf`/`BufMut`
//! cursor traits in the big-endian flavor the real crate uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A reference-counted, immutable byte buffer. Clones and `slice` share the
/// underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds: {lo}..{hi} of {}", self.len());
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(b)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "…(+{})", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source; integer reads are big-endian, matching
/// the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    /// Shares the allocation instead of copying.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(..len);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append cursor; integer writes are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_and_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[3, 4]);
        assert_eq!(b.len(), 6, "parent unaffected");
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(b.as_ref(), &[8, 7]);
        assert_eq!(b.chunk(), &[8, 7]);
    }
}
