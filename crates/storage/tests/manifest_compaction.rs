//! Manifest-chain compaction seen from a consumer's side of the pool.
//!
//! The unit tests in `pool.rs` pin the producer-side invariants (chaining,
//! fencing, crash-safe swap). These tests drive the same API the way a
//! renewing junior does — resolve the manifest, stream artifacts, re-plan
//! on `NoSuchArtifact` — and pin the stale-manifest window: a consumer that
//! cached a manifest *before* a compaction GC'd the chain must recover by
//! re-resolving, never by erroring out or adopting a wrong state.

use mams_journal::{Sn, Txn};
use mams_namespace::{
    apply_delta, decode_delta, decode_image, encode_image, fold_delta, NamespaceTree,
};
use mams_storage::{GroupStore, Manifest, PoolError};

/// A group with a base image at `base_sn` and `n_deltas` single-txn deltas
/// chained on top. Returns the store and the live (end-of-chain) tree.
fn chained_group(base_sn: Sn, n_deltas: usize) -> (GroupStore, NamespaceTree) {
    let mut g = GroupStore::default();
    let mut t = NamespaceTree::new();
    t.mkdir("/d").unwrap();
    g.write_image(1, encode_image(&t, base_sn)).unwrap();
    for (i, sn) in (base_sn..base_sn + n_deltas as u64).enumerate() {
        let txn = Txn::Create { path: format!("/d/f{i}"), replication: 3 };
        // Fold reads the *final* state of touched paths, so apply first.
        t.apply(&txn).unwrap();
        let delta = fold_delta(&t, sn, sn + 1, [&txn]);
        g.append_delta(1, delta).unwrap();
    }
    (g, t)
}

/// A minimal renewing-junior model: holds a (possibly stale) manifest,
/// streams artifacts whole, and re-resolves the manifest when the pool
/// answers `NoSuchArtifact`. Mirrors the chain-planning the real consumer
/// in `mams-core` does, at the pool API level.
struct SimConsumer {
    manifest: Manifest,
    applied: Sn,
    tree: NamespaceTree,
    /// Manifest re-resolutions forced by `NoSuchArtifact`.
    replans: usize,
}

impl SimConsumer {
    fn new(g: &GroupStore) -> Self {
        SimConsumer {
            manifest: g.manifest().clone(),
            applied: 0,
            tree: NamespaceTree::new(),
            replans: 0,
        }
    }

    /// Stream the planned chain to completion, re-resolving the manifest on
    /// `NoSuchArtifact` (bounded, so a bug fails the test instead of
    /// looping). Returns the number of artifact bytes fetched.
    fn catch_up(&mut self, g: &GroupStore) -> u64 {
        let mut fetched = 0u64;
        'replan: for _attempt in 0..8 {
            let plan: Vec<_> =
                self.manifest.chain.iter().filter(|e| e.end_sn > self.applied).cloned().collect();
            for entry in plan {
                let (data, total) = match g.artifact_chunk(entry.id, 0, u64::MAX) {
                    Ok(ok) => ok,
                    Err(PoolError::NoSuchArtifact { .. }) => {
                        // The stale-manifest window: the chain we planned
                        // was GC'd underneath us. Re-resolve and re-plan.
                        self.manifest = g.manifest().clone();
                        self.replans += 1;
                        continue 'replan;
                    }
                    Err(e) => panic!("unexpected pool error: {e:?}"),
                };
                assert_eq!(data.len() as u64, total, "whole-artifact fetch");
                fetched += total;
                if entry.base_sn == entry.end_sn {
                    let (t, sn) = decode_image(data).expect("base decodes");
                    self.tree = t;
                    self.applied = sn;
                } else {
                    let d = decode_delta(&data).expect("delta decodes");
                    apply_delta(&mut self.tree, &d).expect("delta applies");
                    self.applied = d.end_sn;
                }
            }
            return fetched;
        }
        panic!("consumer did not converge after 8 manifest re-resolutions");
    }
}

/// The satellite regression: a consumer that cached the manifest, streamed
/// part of the chain, and then lost the rest to a compaction GC must finish
/// by re-resolving — and land on the exact end-of-chain state.
#[test]
fn stale_manifest_consumer_re_resolves_after_compaction() {
    let (mut g, live) = chained_group(10, 4);
    let mut c = SimConsumer::new(&g);

    // Stream only the base from the cached manifest, then stall.
    let base = c.manifest.base().unwrap().clone();
    let (data, _) = g.artifact_chunk(base.id, 0, u64::MAX).unwrap();
    let (t, sn) = decode_image(data).unwrap();
    c.tree = t;
    c.applied = sn;

    // Compaction merges the chain and GCs every artifact the consumer's
    // cached manifest still points at.
    let merged_sn = g.compact().unwrap().expect("chain to merge");
    assert_eq!(merged_sn, 14);
    for e in c.manifest.deltas() {
        assert_eq!(
            g.artifact_chunk(e.id, 0, u64::MAX).unwrap_err(),
            PoolError::NoSuchArtifact { id: e.id },
            "old chain must be gone"
        );
    }

    // The consumer resumes: first fetch hits NoSuchArtifact, re-resolves,
    // and streams the merged base.
    c.catch_up(&g);
    assert_eq!(c.replans, 1, "exactly one forced re-resolution");
    assert_eq!(c.applied, 14);
    assert_eq!(c.tree.fingerprint(), live.fingerprint(), "state after retry");
}

/// Between `compact_commit` and `compact_gc` the old artifacts are garbage
/// but still present: a consumer mid-stream on the pre-swap manifest keeps
/// going and still lands on a correct (if older) state.
#[test]
fn pre_swap_manifest_streams_until_gc() {
    let (mut g, live) = chained_group(10, 3);
    let stale = g.manifest().clone();

    let staged = g.compact_begin().unwrap().expect("staged base");
    g.compact_commit(staged).unwrap();
    // No GC yet: the whole old chain must still stream.
    let mut c = SimConsumer::new(&g);
    c.manifest = stale.clone();
    c.catch_up(&g);
    assert_eq!(c.replans, 0, "no re-resolution needed before GC");
    assert_eq!(c.tree.fingerprint(), live.fingerprint());

    // After GC the same stale manifest forces the retry path instead.
    g.compact_gc();
    let mut c2 = SimConsumer::new(&g);
    c2.manifest = stale;
    c2.catch_up(&g);
    assert!(c2.replans >= 1, "GC'd chain must force a re-resolution");
    assert_eq!(c2.tree.fingerprint(), live.fingerprint());
}

/// Compaction is idempotent: a second merge over an already-merged chain is
/// a no-op, and re-running the GC step never removes live artifacts.
#[test]
fn double_compaction_is_a_noop() {
    let (mut g, live) = chained_group(5, 6);
    let first = g.compact().unwrap();
    assert_eq!(first, Some(11));
    let after_first = g.manifest().clone();

    assert_eq!(g.compact().unwrap(), None, "nothing left to merge");
    g.compact_gc();
    g.compact_gc();
    assert_eq!(g.manifest(), &after_first, "manifest unchanged by the no-ops");

    let mut c = SimConsumer::new(&g);
    c.catch_up(&g);
    assert_eq!(c.tree.fingerprint(), live.fingerprint());
}

/// Crash between `compact_begin` and `compact_commit`, then a fresh
/// compaction run from scratch (what the sweep does on restart): the
/// leaked staged artifact is garbage, the retry merges the same chain, and
/// consumers only ever see the old chain or the final merged base.
#[test]
fn compaction_retry_after_crash_before_commit() {
    let (mut g, live) = chained_group(20, 5);
    let leaked = g.compact_begin().unwrap().expect("first staging");
    // "Crash": the sweep restarts and runs the whole merge again.
    let sn = g.compact().unwrap().expect("retry merges");
    assert_eq!(sn, 25);
    // The first staging is unreferenced garbage and must be collected.
    assert_eq!(
        g.artifact_chunk(leaked, 0, u64::MAX).unwrap_err(),
        PoolError::NoSuchArtifact { id: leaked }
    );
    let mut c = SimConsumer::new(&g);
    c.catch_up(&g);
    assert_eq!(c.tree.fingerprint(), live.fingerprint());
}

/// Crash between `compact_commit` and `compact_gc`: the merged chain is
/// already the manifest (resolvable), and the deferred GC on restart
/// collects the old chain without touching the live base.
#[test]
fn deferred_gc_after_crash_between_commit_and_gc() {
    let (mut g, live) = chained_group(7, 4);
    let old = g.manifest().clone();
    let staged = g.compact_begin().unwrap().unwrap();
    g.compact_commit(staged).unwrap();
    // "Crash" before GC; restart resolves fine and then sweeps.
    let mut c = SimConsumer::new(&g);
    c.catch_up(&g);
    assert_eq!(c.tree.fingerprint(), live.fingerprint());

    g.compact_gc();
    for e in &old.chain {
        assert_eq!(
            g.artifact_chunk(e.id, 0, u64::MAX).unwrap_err(),
            PoolError::NoSuchArtifact { id: e.id }
        );
    }
    let base = g.manifest().base().unwrap().clone();
    assert!(g.artifact_chunk(base.id, 0, u64::MAX).is_ok(), "live base survives GC");
}

/// Compaction advances the journal floor to the merged base sn: catch-up
/// from at/past the new base keeps working, older cursors are told to go
/// fetch the image — and a producer can chain fresh deltas onto the merged
/// base immediately.
#[test]
fn journal_floor_and_chain_resume_after_compaction() {
    // Build the group the way a live producer does: journal first, then the
    // checkpoint at sn 3, then folded deltas covering (3, 7].
    let mut g = GroupStore::default();
    let mut live = NamespaceTree::new();
    live.mkdir("/d").unwrap();
    for sn in 1..=7u64 {
        let txn = Txn::Mkdir { path: format!("/d/j{sn}") };
        g.append_journal(1, mams_journal::JournalBatch::new(sn, sn, vec![txn.clone()])).unwrap();
        live.apply(&txn).unwrap();
        if sn == 3 {
            g.write_image(1, encode_image(&live, 3)).unwrap();
        } else if sn > 3 {
            g.append_delta(1, fold_delta(&live, sn - 1, sn, [&txn])).unwrap();
        }
    }
    let merged = g.compact().unwrap().unwrap();
    assert_eq!(merged, 7);
    assert!(g.read_journal(2, 16).is_none(), "pre-merge range is compacted away");
    assert!(g.read_journal(7, 16).is_some(), "tail from the merged base works");

    // New deltas chain onto the merged base, not the old chain end.
    let txn = Txn::Mkdir { path: "/post".into() };
    live.apply(&txn).unwrap();
    let delta = fold_delta(&live, merged, merged + 1, [&txn]);
    assert_eq!(g.append_delta(1, delta).unwrap(), merged + 1);

    let mut c = SimConsumer::new(&g);
    c.catch_up(&g);
    assert_eq!(c.applied, merged + 1);
    assert_eq!(c.tree.fingerprint(), live.fingerprint());
}
