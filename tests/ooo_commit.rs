//! Out-of-order ack equivalence, end to end.
//!
//! The active releases client replies out of order across batches (subject
//! to per-shard FIFO, see `release_walk` in mams-core) whenever an earlier
//! batch is stuck on a distributed-transaction leg or a straggling standby.
//! These tests drive randomized workloads that make that genuinely happen —
//! cross-group structural ops plus a gray-slow standby — and then check the
//! client-visible and durable outcomes are exactly what in-order release
//! would have produced:
//!
//! - the recorded history is strictly linearizable (Wing–Gong checker);
//! - the SSP journal replays to the same fingerprint via the fast
//!   `ReplaySession` and a naive per-record apply — and no replica ever
//!   reported divergence, so the live (serve-order) image agrees;
//! - replies for ops journaled under the *same parent directory* by the
//!   same group completed in journal order (per-shard FIFO held);
//! - the `commit.ooo_release` trace fired, so the suite exercised the
//!   out-of-order path rather than vacuously passing.
//!
//! Seeded `SmallRng` drives the randomization (the vendored proptest is an
//! empty shim; see tests/proptest_invariants.rs for the pattern). Override
//! the case count with `PARITY_CASES=n`.

use std::collections::HashMap;

use mams_chaos::{check_history, CheckOutcome};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::{faults, History, Metrics, Recorder, Workload};
use mams_core::FsOp;
use mams_journal::{ReplayCursor, Txn};
use mams_namespace::{path, NamespaceTree, ReplaySession};
use mams_sim::{Duration, Sim, SimConfig, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cases(default: u64) -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reply deliveries to different clients ride independent links with up to
/// 50µs of jitter each way; completions this close together cannot witness
/// the server's send order.
const JITTER_SLACK_US: u64 = 200;

struct CaseOutcome {
    ooo_events: usize,
    records: usize,
}

fn run_case(case: u64) -> CaseOutcome {
    let mut rng = SmallRng::seed_from_u64(0x00c0_de01 ^ (case << 8));

    let shared_dirs: u64 = rng.gen_range(2u64..5);
    let script_clients: u32 = rng.gen_range(3u32..6);
    let mkdir_clients: u32 = rng.gen_range(2u32..5);
    let ops_per_script: u64 = rng.gen_range(40u64..90);
    let slow_factor = rng.gen_range(6u64..18) as f64;
    let slow_secs: u64 = rng.gen_range(4u64..8);

    let mut sim = Sim::new(SimConfig { seed: 0xD15C ^ case, ..SimConfig::default() });
    let mut d =
        build(&mut sim, DeploySpec { groups: 2, standbys_per_group: 2, ..DeploySpec::default() });
    let history = History::new();
    let metrics = Metrics::new(false);

    // Setup client: materialize the shared directories, then stop.
    let setup: Vec<FsOp> =
        (0..shared_dirs).map(|dir| FsOp::Mkdir { path: format!("/s{dir}") }).collect();
    {
        let client = d.next_client_id();
        let log = history.clone();
        d.add_client_with(&mut sim, Workload::script(setup), metrics.clone(), move |mut c| {
            c.history = Some(Recorder { client, log });
            c
        });
    }

    // Script clients write uniquely named files into the *shared*
    // directories — the cross-client same-directory traffic the per-shard
    // FIFO contract is about.
    for worker in 0..script_clients {
        let ops: Vec<FsOp> = (0..ops_per_script)
            .map(|i| {
                let dir = rng.gen_range(0..shared_dirs);
                FsOp::Create { path: format!("/s{dir}/w{worker}_f{i}"), replication: 3 }
            })
            .collect();
        let think = Duration::from_millis(rng.gen_range(1u64..4));
        let client = d.next_client_id();
        let log = history.clone();
        d.add_client_with(&mut sim, Workload::script(ops), metrics.clone(), move |mut c| {
            c.history = Some(Recorder { client, log });
            c.think = think;
            c.start_delay = Duration::from_millis(2_500);
            c
        });
    }

    // Mkdir-heavy clients generate cross-group structural transactions —
    // their legs are what stall batches and force later creates to release
    // out of order past them.
    for m in 0..mkdir_clients {
        let think = Duration::from_millis(rng.gen_range(1u64..3));
        let client = d.next_client_id();
        let log = history.clone();
        d.add_client_with(
            &mut sim,
            Workload::create_mkdir(1000 + m),
            metrics.clone(),
            move |mut c| {
                c.history = Some(Recorder { client, log });
                c.think = think;
                c.max_ops = Some(400);
                c
            },
        );
    }

    // Gray-slow one standby of group 0 mid-run: its sync acks straggle,
    // stretching group 0's durability legs without killing progress.
    let straggler = d.groups[0].members[1];
    faults::schedule_slow_node(
        &mut sim,
        straggler,
        slow_factor,
        SimTime(2_000_000),
        Some(Duration::from_secs(slow_secs)),
    );

    sim.run_for(Duration::from_secs(12));

    // ---- client-visible equivalence: strict linearizability ----
    let records = history.records();
    assert!(
        records.iter().filter(|r| r.ok == Some(true)).count() > 100,
        "case {case}: workload barely ran ({} records)",
        records.len()
    );
    match check_history(&records) {
        CheckOutcome::Ok { .. } => {}
        CheckOutcome::Inconclusive { states } => {
            panic!("case {case}: checker ran out of budget after {states} states")
        }
        CheckOutcome::Violation { witness } => {
            panic!("case {case}: OOO release broke linearizability: {witness}")
        }
    }

    // ---- durable equivalence: no replica divergence, replay parity ----
    assert!(
        !sim.trace().events().iter().any(|e| e.tag == "replica.diverged"),
        "case {case}: a replica diverged from the journal"
    );
    let mut completed_ok: HashMap<String, u64> = HashMap::new();
    for r in &records {
        if r.ok == Some(true) {
            if let (FsOp::Create { path, .. }, Some(done)) = (&r.op, r.completed_us) {
                completed_ok.insert(path.clone(), done);
            }
        }
    }
    for group in 0..2 {
        let batches = d
            .shared_pool
            .lock()
            .group(group)
            .and_then(|g| g.read_journal(0, usize::MAX))
            .unwrap_or_default();
        let mut order: Vec<Txn> = Vec::new();
        let mut cursor = ReplayCursor::new();
        for b in &batches {
            cursor.offer(b, &mut |_txid, t: &Txn| order.push(t.clone()));
        }
        assert!(!order.is_empty(), "case {case}: group {group} journaled nothing");

        let mut naive = NamespaceTree::new();
        let mut fast = NamespaceTree::new();
        let mut session = ReplaySession::new();
        for t in &order {
            naive.apply(t).expect("journaled txns always replay");
            session.apply(&mut fast, t).expect("journaled txns replay via the session");
        }
        assert_eq!(
            fast.fingerprint(),
            naive.fingerprint(),
            "case {case}: group {group} replay paths disagree"
        );

        // Per-shard FIFO: creates this group journaled under one parent
        // directory must have completed in journal order (modulo reply
        // delivery jitter).
        let mut last_done: HashMap<String, (u64, String)> = HashMap::new();
        for t in &order {
            if let Txn::Create { path: p, .. } = t {
                if let Some(&done) = completed_ok.get(p) {
                    let dir = path::parent(p).unwrap_or("/").to_string();
                    if let Some((prev, prev_path)) = last_done.get(&dir) {
                        assert!(
                            done + JITTER_SLACK_US >= *prev,
                            "case {case}: group {group} dir {dir}: {p} (done {done}us) \
                             journaled after {prev_path} (done {prev}us) but completed first"
                        );
                    }
                    last_done.insert(dir, (done, p.clone()));
                }
            }
        }
    }

    let ooo_events = sim.trace().events().iter().filter(|e| e.tag == "commit.ooo_release").count();
    CaseOutcome { ooo_events, records: records.len() }
}

/// Randomized sweep: histories produced under genuine out-of-order release
/// are indistinguishable from in-order release — linearizable, durable
/// state replays identically, and same-directory replies kept their order.
#[test]
fn ooo_released_histories_are_equivalent_to_in_order() {
    let mut total_ooo = 0usize;
    let mut total_records = 0usize;
    for case in 0..cases(6) {
        let out = run_case(case);
        total_ooo += out.ooo_events;
        total_records += out.records;
    }
    assert!(total_records > 1000, "sweep too small to mean anything ({total_records} records)");
    assert!(
        total_ooo > 0,
        "no commit.ooo_release across the sweep — the OOO path was never exercised"
    );
}
