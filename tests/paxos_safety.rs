//! Property test for Paxos safety: with competing proposers and arbitrary
//! message interleavings, at most one value is ever chosen per instance —
//! the guarantee MAMS leans on for "only one active is elected each time".

use bytes::Bytes;
use proptest::prelude::*;

use mams::paxos::{Acceptor, Ballot, Proposer, ProposerEvent};

#[derive(Debug, Clone)]
struct Round {
    proposer: u32,
    ballot_round: u64,
    /// Which acceptors the prepare reaches, in order (others are "lost").
    prepare_order: Vec<usize>,
    /// Which acceptors the accept reaches, in order.
    accept_order: Vec<usize>,
}

fn arb_round(n_acceptors: usize) -> impl Strategy<Value = Round> {
    (
        0u32..3,
        1u64..6,
        proptest::sample::subsequence((0..n_acceptors).collect::<Vec<_>>(), 0..=n_acceptors),
        proptest::sample::subsequence((0..n_acceptors).collect::<Vec<_>>(), 0..=n_acceptors),
    )
        .prop_map(|(proposer, ballot_round, prepare_order, accept_order)| Round {
            proposer,
            ballot_round,
            prepare_order,
            accept_order,
        })
}

/// Drive one proposer round against shared acceptors with the given
/// delivery pattern; returns the value it believes was chosen, if any.
fn drive(acceptors: &mut [Acceptor], round: &Round) -> Option<Bytes> {
    let ballot = Ballot::new(round.ballot_round, round.proposer);
    let my_value = Bytes::from(format!("v{}@{}", round.proposer, round.ballot_round));
    let mut p = Proposer::new(round.proposer, acceptors.len(), ballot, my_value);
    let mut accept_payload = None;
    for &i in &round.prepare_order {
        let reply = acceptors[i].on_prepare(ballot);
        match p.on_prepare_reply(i as u32, reply) {
            ProposerEvent::SendAccepts { ballot, value } => {
                accept_payload = Some((ballot, value));
                break;
            }
            ProposerEvent::Preempted { .. } => return None,
            _ => {}
        }
    }
    let (ballot, value) = accept_payload?;
    for &i in &round.accept_order {
        let reply = acceptors[i].on_accept(ballot, value.clone());
        match p.on_accept_reply(i as u32, reply) {
            ProposerEvent::Chosen { value, .. } => return Some(value),
            ProposerEvent::Preempted { .. } => return None,
            _ => {}
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn at_most_one_value_is_ever_chosen(
        rounds in prop::collection::vec(arb_round(5), 1..12),
    ) {
        let mut acceptors = vec![Acceptor::new(); 5];
        let mut chosen: Option<Bytes> = None;
        for round in &rounds {
            if let Some(v) = drive(&mut acceptors, round) {
                match &chosen {
                    None => chosen = Some(v),
                    Some(prev) => prop_assert_eq!(
                        prev,
                        &v,
                        "two different values chosen: {:?} then {:?}",
                        prev,
                        v
                    ),
                }
            }
        }
    }

    /// Once a quorum has accepted a value, every later successful round
    /// must choose that same value (the adoption rule works).
    #[test]
    fn chosen_values_are_stable_under_later_rounds(
        later in prop::collection::vec(arb_round(3), 1..8),
    ) {
        let mut acceptors = vec![Acceptor::new(); 3];
        // Choose "first" with a full round.
        let first = drive(
            &mut acceptors,
            &Round {
                proposer: 0,
                ballot_round: 1,
                prepare_order: vec![0, 1, 2],
                accept_order: vec![0, 1, 2],
            },
        )
        .expect("uncontended round chooses");
        for round in &later {
            if let Some(v) = drive(&mut acceptors, round) {
                prop_assert_eq!(&first, &v, "a later round overwrote the chosen value");
            }
        }
    }
}
