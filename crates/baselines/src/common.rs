//! Shared machinery for baseline namenodes: operation execution, batching,
//! reply caching, and the scale model.

use mams_core::{FsOp, MdsResp, OpOutput};
use mams_journal::{JournalBatch, ReplayCursor, Sn, Txn};
use mams_namespace::{ImageError, NamespaceImage, NamespaceTree, ReplaySession};
use mams_sim::{Ctx, NodeId};

/// File-system scale for experiments that cannot materialize millions of
/// inodes. Derived from the paper's calibration point: a ~1 GB image holds
/// "more than 7 million files" (Section IV-B), i.e. ~150 B of image per
/// file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsScale {
    pub nominal_files: u64,
}

impl FsScale {
    pub const BYTES_PER_FILE: u64 = 150;

    pub fn from_image_bytes(image_bytes: u64) -> Self {
        FsScale { nominal_files: image_bytes / Self::BYTES_PER_FILE }
    }

    pub fn from_image_mb(image_mb: u64) -> Self {
        Self::from_image_bytes(image_mb * 1024 * 1024)
    }

    pub fn image_bytes(&self) -> u64 {
        self.nominal_files * Self::BYTES_PER_FILE
    }
}

/// A namenode checkpoint: the fsimage a restarting or taking-over node
/// reloads (HDFS `-importCheckpoint` style), plus the block-id cursor that
/// rides alongside it. Saved in the current wire format; images saved
/// before the v2 cutover restore through the same call (the decoder
/// dispatches on the version byte).
#[derive(Debug, Clone)]
pub struct SavedCheckpoint {
    pub image: NamespaceImage,
    pub next_block: u64,
}

impl SavedCheckpoint {
    /// Snapshot the namespace as a current-format image.
    pub fn save(ns: &NamespaceTree, next_block: u64, sn: Sn) -> SavedCheckpoint {
        SavedCheckpoint { image: mams_namespace::encode_image(ns, sn), next_block }
    }

    /// Reload the image (either wire version) into a fresh namespace.
    pub fn restore(&self) -> Result<(NamespaceTree, Sn), ImageError> {
        mams_namespace::decode_image(self.image.data.clone())
    }
}

/// Execute one client operation against a namespace, producing the journal
/// record for mutations. Identical semantics to the MAMS active's execution
/// path, so all systems agree on op outcomes.
pub fn exec_op(
    ns: &mut NamespaceTree,
    next_block: &mut u64,
    op: &FsOp,
) -> Result<(Option<Txn>, OpOutput), String> {
    match op {
        FsOp::GetFileInfo { path } => {
            ns.getfileinfo(path).map(|i| (None, OpOutput::Info(i))).map_err(|e| e.to_string())
        }
        FsOp::List { path } => {
            ns.list(path).map(|l| (None, OpOutput::Listing(l))).map_err(|e| e.to_string())
        }
        FsOp::Create { path, replication } => ns
            .create(path, *replication)
            .map(|i| {
                (
                    Some(Txn::Create { path: path.clone(), replication: *replication }),
                    OpOutput::Info(i),
                )
            })
            .map_err(|e| e.to_string()),
        FsOp::Mkdir { path } => ns
            .mkdir(path)
            .map(|()| (Some(Txn::Mkdir { path: path.clone() }), OpOutput::Done))
            .map_err(|e| e.to_string()),
        FsOp::Delete { path, recursive } => ns
            .delete(path, *recursive)
            .map(|_| {
                (Some(Txn::Delete { path: path.clone(), recursive: *recursive }), OpOutput::Done)
            })
            .map_err(|e| e.to_string()),
        FsOp::Rename { src, dst } => ns
            .rename(src, dst)
            .map(|()| (Some(Txn::Rename { src: src.clone(), dst: dst.clone() }), OpOutput::Done))
            .map_err(|e| e.to_string()),
        FsOp::AddBlock { path, len } => {
            let id = *next_block;
            ns.add_block(path, id)
                .map(|()| {
                    *next_block += 1;
                    (
                        Some(Txn::AddBlock { path: path.clone(), block_id: id, len: *len }),
                        OpOutput::Block(id),
                    )
                })
                .map_err(|e| e.to_string())
        }
        FsOp::CloseFile { path } => ns
            .close_file(path)
            .map(|()| (Some(Txn::CloseFile { path: path.clone() }), OpOutput::Done))
            .map_err(|e| e.to_string()),
        FsOp::SetPerm { path, perm } => ns
            .set_perm(path, *perm)
            .map(|()| (Some(Txn::SetPerm { path: path.clone(), perm: *perm }), OpOutput::Done))
            .map_err(|e| e.to_string()),
    }
}

/// Journal replay for a baseline standby: the same validate-skip
/// [`ReplaySession`] fast path the MAMS standby uses, plus the block-id
/// high-water mark every namenode keeps alongside its namespace — so
/// replay-throughput comparisons across systems measure protocol
/// differences, not apply-loop differences.
#[derive(Debug, Default)]
pub struct StandbyReplayer {
    session: ReplaySession,
}

impl StandbyReplayer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the cached handles. Call after the namespace is replaced or
    /// mutated outside replay (checkpoint reload, a stint as primary).
    pub fn reset(&mut self) {
        self.session.reset();
    }

    /// Offer one batch to `cursor`, applying the in-order records through
    /// the fast path and advancing the block-id high-water mark.
    pub fn offer(
        &mut self,
        cursor: &mut ReplayCursor,
        ns: &mut NamespaceTree,
        next_block: &mut u64,
        batch: &JournalBatch,
    ) {
        let session = &mut self.session;
        cursor.offer(batch, &mut |_, t: &Txn| {
            let _ = session.apply(ns, t);
            if let Txn::AddBlock { block_id, .. } = t {
                *next_block = (*next_block).max(*block_id + 1);
            }
        });
    }
}

/// Re-exported duplicate-suppression cache (same type MAMS uses, so every
/// system handles retried requests identically).
pub use mams_core::retry::RetryCache;

/// A client reply waiting on durability: `(client, seq, result)`.
pub type PendingReply = (NodeId, u64, Result<OpOutput, String>);

/// Reply to a client, updating the retry cache. The response is built
/// behind `Arc` once; the cache entry and the wire message share it.
pub fn reply(
    cache: &mut RetryCache,
    ctx: &mut Ctx<'_>,
    to: NodeId,
    seq: u64,
    result: Result<OpOutput, String>,
) {
    let resp = std::sync::Arc::new(MdsResp::Reply { seq, result });
    cache.store(to, seq, resp.clone());
    ctx.send(to, resp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_calibration_matches_paper() {
        let s = FsScale::from_image_mb(1024);
        assert!(
            (6_500_000..8_000_000).contains(&s.nominal_files),
            "1 GB ↔ ~7M files, got {}",
            s.nominal_files
        );
        assert_eq!(FsScale { nominal_files: 10 }.image_bytes(), 1_500);
    }

    #[test]
    fn checkpoint_saves_v2_and_restores_identically() {
        let mut ns = NamespaceTree::new();
        ns.mkdir_p("/srv/data").unwrap();
        for i in 0..10 {
            ns.create(&format!("/srv/data/f{i}"), 3).unwrap();
            ns.add_block(&format!("/srv/data/f{i}"), 100 + i).unwrap();
        }
        let cp = SavedCheckpoint::save(&ns, 111, 42);
        assert_eq!(cp.image.version(), Some(mams_namespace::VERSION_V2));
        let (restored, sn) = cp.restore().unwrap();
        assert_eq!(sn, 42);
        assert_eq!(cp.next_block, 111);
        assert_eq!(restored.fingerprint(), ns.fingerprint());
    }

    #[test]
    fn checkpoint_restores_legacy_v1_images() {
        let mut ns = NamespaceTree::new();
        ns.mkdir_p("/old/world").unwrap();
        ns.create("/old/world/f", 2).unwrap();
        // A checkpoint saved by a pre-v2 binary.
        let cp = SavedCheckpoint { image: mams_namespace::encode_image_v1(&ns, 7), next_block: 9 };
        assert_eq!(cp.image.version(), Some(mams_namespace::VERSION_V1));
        let (restored, sn) = cp.restore().unwrap();
        assert_eq!(sn, 7);
        assert_eq!(restored.fingerprint(), ns.fingerprint());
    }

    #[test]
    fn exec_op_matches_tree_semantics() {
        let mut ns = NamespaceTree::new();
        let mut nb = 1u64;
        let (txn, _) = exec_op(&mut ns, &mut nb, &FsOp::Mkdir { path: "/a".into() }).unwrap();
        assert!(matches!(txn, Some(Txn::Mkdir { .. })));
        let (txn, out) =
            exec_op(&mut ns, &mut nb, &FsOp::Create { path: "/a/f".into(), replication: 2 })
                .unwrap();
        assert!(matches!(txn, Some(Txn::Create { .. })));
        assert!(matches!(out, OpOutput::Info(_)));
        let (txn, _) =
            exec_op(&mut ns, &mut nb, &FsOp::GetFileInfo { path: "/a/f".into() }).unwrap();
        assert!(txn.is_none(), "reads are not journaled");
        let err = exec_op(&mut ns, &mut nb, &FsOp::Mkdir { path: "/a".into() }).unwrap_err();
        assert!(err.contains("already exists"));
        // Block allocation advances the counter.
        exec_op(&mut ns, &mut nb, &FsOp::AddBlock { path: "/a/f".into(), len: 42 }).unwrap();
        assert_eq!(nb, 2);
    }
}
