//! Integration tests for the renewing protocol: image-based recovery,
//! checkpoint compaction, interruption-and-resume, and junior takeover when
//! no standby is left.

use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::metrics::Metrics;
use mams::cluster::workload::Workload;
use mams::core::MdsReq;
use mams::sim::{Sim, SimConfig, SimTime};

fn checkpointing_cluster(
    seed: u64,
    standbys: usize,
) -> (Sim, mams::cluster::deploy::Deployment, std::sync::Arc<Metrics>) {
    let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
    let mut d = build(
        &mut sim,
        DeploySpec { groups: 1, standbys_per_group: standbys, ..DeploySpec::default() },
    );
    let metrics = Metrics::new(true);
    d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
    let active = d.initial_active(0);
    sim.at(SimTime(10_000_000), move |s| s.send_external(active, MdsReq::Checkpoint));
    (sim, d, metrics)
}

#[test]
fn restarted_member_recovers_through_the_image() {
    let (mut sim, d, metrics) = checkpointing_cluster(1, 2);
    let standby = d.groups[0].members[1];
    sim.at(SimTime(15_000_000), move |s| s.crash(standby));
    sim.at(SimTime(20_000_000), move |s| s.restart(standby));
    sim.run_until(SimTime(60_000_000));

    let trace = sim.trace();
    assert!(
        trace.first_at_or_after("checkpoint.done", SimTime::ZERO).is_some(),
        "checkpoint must land in the pool"
    );
    // The journal before the checkpoint is compacted, so the junior MUST
    // have gone through the image path.
    let image_loaded =
        trace.events().iter().any(|e| e.tag == "renew.image_loaded" && e.node == standby);
    assert!(image_loaded, "junior recovered without loading the image");
    assert!(
        trace.first_at_or_after("renew.promoted", SimTime(20_000_000)).is_some(),
        "junior never promoted"
    );
    assert_eq!(metrics.failed_count(), 0);
}

#[test]
fn renewal_survives_active_failure_midway() {
    // The active dies while the junior is catching up; a new active takes
    // over and the renewal completes against it.
    let (mut sim, d, metrics) = checkpointing_cluster(2, 3);
    let active = d.initial_active(0);
    let standby = d.groups[0].members[1];
    sim.at(SimTime(15_000_000), move |s| s.crash(standby));
    sim.at(SimTime(20_000_000), move |s| s.restart(standby));
    // Kill the active shortly after the renew session starts.
    sim.at(SimTime(21_500_000), move |s| s.crash(active));
    sim.run_until(SimTime(90_000_000));

    let trace = sim.trace();
    let promoted = trace
        .events()
        .iter()
        .any(|e| e.tag == "renew.promoted" && e.detail == format!("n{standby}"));
    assert!(promoted, "junior must eventually be renewed by the new active");
    // Service recovered from the active failure too.
    let late_ok = metrics.completions().iter().filter(|c| c.ok && c.at_us > 80_000_000).count();
    assert!(late_ok > 100, "no late traffic ({late_ok})");
}

#[test]
fn junior_with_max_sn_takes_over_when_no_standby_left() {
    // Algorithm 1's second branch: kill ALL standbys, then the active.
    // The only survivors are juniors (restarted empties); the one with the
    // maximum journal sn must win the lock and serve after catching up
    // from the pool.
    let mut sim = Sim::new(SimConfig { seed: 3, ..SimConfig::default() });
    let mut d =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() });
    let metrics = Metrics::new(true);
    d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
    let m = d.groups[0].members.clone();
    // Kill both standbys and bring them back (they rejoin as juniors and
    // begin renewing)...
    sim.at(SimTime(15_000_000), {
        let m = m.clone();
        move |s| {
            s.crash(m[1]);
            s.crash(m[2]);
        }
    });
    sim.at(SimTime(17_000_000), {
        let m = m.clone();
        move |s| {
            s.restart(m[1]);
            s.restart(m[2]);
        }
    });
    // ...then kill the active while they are still juniors (renew_scan only
    // starts a session at most once a second, and a junior needs the gap
    // replay; 1.5s in they are typically still J).
    sim.at(SimTime(18_500_000), {
        let m = m.clone();
        move |s| s.crash(m[0])
    });
    sim.run_until(SimTime(90_000_000));

    // Someone took over and service resumed.
    let late_ok = metrics.completions().iter().filter(|c| c.ok && c.at_us > 70_000_000).count();
    assert!(late_ok > 100, "no takeover by surviving members ({late_ok})");
    // And the winner was one of the two juniors.
    let winner = sim
        .trace()
        .events()
        .iter()
        .rev()
        .find(|e| e.tag == "failover.switch_done")
        .map(|e| e.node)
        .expect("a switch completed");
    assert!(m[1..].contains(&winner), "winner {winner} was not a junior");
    // No acked op was lost (the journal check).
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    assert!(g.tail_sn() > 0);
}

#[test]
fn checkpoint_compacts_the_shared_journal() {
    let (mut sim, d, _metrics) = checkpointing_cluster(4, 2);
    sim.run_until(SimTime(20_000_000));
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("journal");
    let img = g.image().expect("image stored");
    assert!(img.checkpoint_sn > 0);
    // Reads from before the checkpoint fall back to the image.
    assert!(g.read_journal(0, 10).is_none(), "pre-checkpoint journal must be compacted");
    assert!(g.read_journal(img.checkpoint_sn, 10).is_some());
}

#[test]
fn interrupted_image_transfer_resumes_from_its_checkpoint() {
    // "the junior records the checkpoint that has been committed. It can
    // continue to recover from other replicas in the last position and
    // avoid retransmitting the whole files if there are any interrupts"
    // (Section III-D). Force a many-chunk transfer (tiny chunks + slow
    // image disk), kill the active mid-transfer, and verify the junior
    // resumes from its offset under the next active instead of starting
    // over.
    use mams::cluster::deploy::{build, DeploySpec};
    use mams::cluster::metrics::Metrics;
    use mams::cluster::workload::Workload;
    use mams::sim::Duration;
    use mams::storage::DiskModel;

    let mut sim = Sim::new(SimConfig { seed: 21, ..SimConfig::default() });
    let mut spec = DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() };
    spec.timing.image_chunk = 2 * 1024; // many chunks
    spec.pool_disks = Some((
        DiskModel::journal_disk(),
        DiskModel { op_overhead: Duration::from_millis(150), bytes_per_sec: 10 * 1024 * 1024 },
    ));
    let mut d = build(&mut sim, spec);
    let m = Metrics::new(false);
    for c in 0..4 {
        d.add_client(&mut sim, Workload::create_only(c), m.clone());
    }
    let active = d.initial_active(0);
    sim.at(SimTime(10_000_000), move |s| s.send_external(active, mams::core::MdsReq::Checkpoint));
    // Crash + restart a standby so it must renew through the (slow) image.
    let standby = d.groups[0].members[1];
    sim.at(SimTime(12_000_000), move |s| s.crash(standby));
    sim.at(SimTime(14_000_000), move |s| s.restart(standby));
    // Kill the active while the junior is mid-transfer (renew sessions
    // start within ~1.25s of registration; the transfer takes ~20s at
    // 150ms per 2KB chunk, so the new active's renewing session opens
    // while the image is still streaming and must resume, not restart).
    sim.at(SimTime(17_000_000), move |s| s.crash(active));
    sim.run_until(SimTime(90_000_000));

    let trace = sim.trace();
    let resumed = trace.events().iter().any(|e| e.tag == "renew.resume" && e.node == standby);
    assert!(resumed, "junior must resume the image transfer, not restart it");
    let resumed_offset_nonzero = trace
        .events()
        .iter()
        .filter(|e| e.tag == "renew.resume")
        .any(|e| !e.detail.contains("offset 0"));
    assert!(resumed_offset_nonzero, "resume offset should be past zero");
    let promoted = trace
        .events()
        .iter()
        .any(|e| e.tag == "renew.promoted" && e.detail == format!("n{standby}"));
    assert!(promoted, "junior must finish renewing after the interruption");
}
