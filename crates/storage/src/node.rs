//! A pool node: serves the pool protocol over the simulated network with a
//! disk latency model.
//!
//! State mutations are applied at request arrival (so fencing decisions
//! follow arrival order, like a real single-writer shared file) and the
//! response is delayed by the modeled disk time, which is what the
//! requester's clock observes.

use std::collections::HashMap;

use mams_sim::{Ctx, Duration, Message, Node, NodeId};

use crate::disk::DiskModel;
use crate::pool::{PoolError, SharedPool};
use crate::proto::{PoolReq, PoolResp};

/// When and how aggressively a pool node folds delta chains back into a
/// fresh base image.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// How often the background sweep looks for over-long chains.
    pub sweep_every: Duration,
    /// Compact once a chain carries more than this many deltas (or once the
    /// deltas outweigh the base, whichever trips first — see
    /// [`crate::GroupStore::compaction_due`]).
    pub max_chain: usize,
    /// Disable the sweep entirely (ablation benches and crash-point tests
    /// that drive compaction by hand).
    pub enabled: bool,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { sweep_every: Duration::from_secs(5), max_chain: 8, enabled: true }
    }
}

/// Timer token reserved for the compaction sweep; `next_token` counts up
/// from zero so reply timers can never collide with it.
const T_COMPACT_SWEEP: u64 = u64::MAX;

/// A member of the shared storage pool.
pub struct PoolNode {
    pool: SharedPool,
    journal_disk: DiskModel,
    image_disk: DiskModel,
    compaction: CompactionPolicy,
    pending: HashMap<u64, (NodeId, PoolResp)>,
    next_token: u64,
}

impl PoolNode {
    pub fn new(pool: SharedPool) -> Self {
        PoolNode {
            pool,
            journal_disk: DiskModel::journal_disk(),
            image_disk: DiskModel::image_disk(),
            compaction: CompactionPolicy::default(),
            pending: HashMap::new(),
            next_token: 0,
        }
    }

    /// Override the disk profiles (ablation benches).
    pub fn with_disks(mut self, journal: DiskModel, image: DiskModel) -> Self {
        self.journal_disk = journal;
        self.image_disk = image;
        self
    }

    /// Override the background compaction policy.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// Sweep every group and fold any over-long delta chain into a fresh
    /// base. Failures (e.g. a corrupt delta injected by chaos) leave the
    /// chain as-is — consumers fall back to journal catch-up, and the next
    /// successful base checkpoint resets the chain.
    fn compaction_sweep(&mut self) {
        let mut pool = self.pool.lock();
        for group in pool.group_ids() {
            let g = pool.group_mut(group);
            if g.compaction_due(self.compaction.max_chain) {
                let _ = g.compact();
            }
        }
    }

    fn reply_after(&mut self, ctx: &mut Ctx<'_>, to: NodeId, resp: PoolResp, delay: Duration) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (to, resp));
        ctx.set_timer(delay, token);
    }

    fn serve(&mut self, req: PoolReq) -> (PoolResp, Duration) {
        let mut pool = self.pool.lock();
        match req {
            PoolReq::AppendJournal { group, epoch, batch, req } => {
                let bytes = batch.weight();
                let delay = self.journal_disk.io_time(bytes);
                let resp = match pool.group_mut(group).append_journal(epoch, batch) {
                    Ok(outcome) => PoolResp::AppendOk {
                        group,
                        sn: pool.group(group).expect("touched").tail_sn(),
                        duplicate: outcome == mams_journal::AppendOutcome::Duplicate,
                        req,
                    },
                    Err(error) => PoolResp::Failed { group, error, req },
                };
                (resp, delay)
            }
            PoolReq::ReadJournal { group, after_sn, max, req } => {
                let g = pool.group_mut(group);
                let tail_sn = g.tail_sn();
                let (batches, compacted) = match g.read_journal(after_sn, max) {
                    Some(b) => (b, false),
                    None => (Vec::new(), true),
                };
                let bytes: u64 = batches.iter().map(|b| b.weight()).sum();
                let delay = self.journal_disk.io_time(bytes);
                (PoolResp::Journal { group, batches, tail_sn, compacted, req }, delay)
            }
            PoolReq::WriteImage { group, epoch, image, req } => {
                let bytes = image.size_bytes();
                let sn = image.checkpoint_sn;
                let delay = self.image_disk.io_time(bytes);
                let resp = match pool.group_mut(group).write_image(epoch, image) {
                    Ok(()) => PoolResp::ImageWritten { group, checkpoint_sn: sn, req },
                    Err(error) => PoolResp::Failed { group, error, req },
                };
                (resp, delay)
            }
            PoolReq::WriteDelta { group, epoch, delta, req } => {
                let bytes = delta.size_bytes();
                let delay = self.image_disk.io_time(bytes);
                let resp = match pool.group_mut(group).append_delta(epoch, delta) {
                    Ok(end_sn) => PoolResp::DeltaWritten { group, end_sn, req },
                    Err(error) => PoolResp::Failed { group, error, req },
                };
                (resp, delay)
            }
            PoolReq::ReadManifest { group, req } => {
                let manifest = pool.group(group).map(|g| g.manifest().clone()).unwrap_or_default();
                (PoolResp::ManifestInfo { group, manifest, req }, self.image_disk.op_overhead)
            }
            PoolReq::ReadArtifactChunk { group, artifact, offset, len, req } => {
                let served = pool
                    .group(group)
                    .ok_or(PoolError::NoSuchArtifact { id: artifact })
                    .and_then(|g| g.artifact_chunk(artifact, offset, len));
                match served {
                    Ok((data, total)) => {
                        let delay = self.image_disk.io_time(data.len() as u64);
                        (
                            PoolResp::ArtifactChunk { group, artifact, offset, data, total, req },
                            delay,
                        )
                    }
                    Err(error) => {
                        (PoolResp::Failed { group, error, req }, self.image_disk.op_overhead)
                    }
                }
            }
            PoolReq::ReadImageMeta { group, req } => {
                let meta = pool
                    .group(group)
                    .and_then(|g| g.image())
                    .map(|img| (img.checkpoint_sn, img.size_bytes()));
                (PoolResp::ImageMeta { group, meta, req }, self.image_disk.op_overhead)
            }
            PoolReq::ReadImageChunk { group, offset, len, req } => {
                match pool.group(group).and_then(|g| g.image()) {
                    Some(img) => {
                        let data = img.chunk(offset, len);
                        let delay = self.image_disk.io_time(data.len() as u64);
                        let total = img.size_bytes();
                        (PoolResp::ImageChunk { group, offset, data, total, req }, delay)
                    }
                    None => (
                        PoolResp::Failed { group, error: PoolError::NoSuchImage, req },
                        self.image_disk.op_overhead,
                    ),
                }
            }
            PoolReq::AdvanceEpoch { group, to, req } => {
                let g = pool.group_mut(group);
                g.advance_epoch(to);
                let epoch = g.epoch();
                (PoolResp::EpochAdvanced { group, epoch, req }, self.journal_disk.op_overhead)
            }
            PoolReq::TailSn { group, req } => {
                let sn = pool.group_mut(group).tail_sn();
                (PoolResp::Tail { group, sn, req }, self.journal_disk.op_overhead)
            }
        }
    }
}

impl Node for PoolNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.compaction.enabled {
            ctx.set_timer(self.compaction.sweep_every, T_COMPACT_SWEEP);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        match msg.downcast::<PoolReq>() {
            Ok(req) => {
                let (resp, delay) = self.serve(req);
                self.reply_after(ctx, from, resp, delay);
            }
            Err(other) => {
                debug_assert!(false, "pool node received unexpected message {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_COMPACT_SWEEP {
            self.compaction_sweep();
            ctx.set_timer(self.compaction.sweep_every, T_COMPACT_SWEEP);
            return;
        }
        if let Some((to, resp)) = self.pending.remove(&token) {
            ctx.send(to, resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::new_shared_pool;
    use mams_journal::{JournalBatch, Txn};
    use mams_sim::{Sim, SimConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Test client that fires a fixed request at start and records replies.
    struct OneShot {
        target: NodeId,
        req: Option<PoolReq>,
        got_sn: Arc<AtomicU64>,
        got_at_us: Arc<AtomicU64>,
    }

    impl Node for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(req) = self.req.take() {
                ctx.send(self.target, req);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if let Ok(PoolResp::AppendOk { sn, .. }) = msg.downcast::<PoolResp>() {
                self.got_sn.store(sn, Ordering::Relaxed);
                self.got_at_us.store(ctx.now().micros(), Ordering::Relaxed);
            }
        }
    }

    fn batch(sn: u64) -> JournalBatch {
        JournalBatch::new(sn, sn, vec![Txn::Mkdir { path: format!("/g{sn}") }])
    }

    #[test]
    fn append_over_the_wire_with_disk_latency() {
        let pool = new_shared_pool();
        let mut sim = Sim::new(SimConfig::default());
        let pn = sim.add_node("pool-0", Box::new(PoolNode::new(pool.clone())));
        let sn = Arc::new(AtomicU64::new(0));
        let at = Arc::new(AtomicU64::new(0));
        sim.add_node(
            "client",
            Box::new(OneShot {
                target: pn,
                req: Some(PoolReq::AppendJournal {
                    group: 0,
                    epoch: 1,
                    batch: batch(1).into(),
                    req: 7,
                }),
                got_sn: sn.clone(),
                got_at_us: at.clone(),
            }),
        );
        sim.run_for(mams_sim::Duration::from_secs(1));
        assert_eq!(sn.load(Ordering::Relaxed), 1);
        // Round trip must include ~1.5ms disk overhead plus two network hops.
        let us = at.load(Ordering::Relaxed);
        assert!(us >= 1_500, "reply too fast: {us}us");
        assert!(us < 50_000, "reply too slow: {us}us");
        assert_eq!(pool.lock().group(0).unwrap().tail_sn(), 1);
    }

    #[test]
    fn all_pool_nodes_see_shared_state() {
        let pool = new_shared_pool();
        let a = PoolNode::new(pool.clone());
        let mut b = PoolNode::new(pool.clone());
        drop(a);
        // Write through the state directly, read through a node's serve().
        pool.lock().group_mut(3).append_journal(1, batch(1)).unwrap();
        let (resp, _) = b.serve(PoolReq::TailSn { group: 3, req: 1 });
        match resp {
            PoolResp::Tail { sn, .. } => assert_eq!(sn, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fenced_append_reports_failure() {
        let pool = new_shared_pool();
        pool.lock().group_mut(0).advance_epoch(9);
        let mut n = PoolNode::new(pool);
        let (resp, _) =
            n.serve(PoolReq::AppendJournal { group: 0, epoch: 3, batch: batch(1).into(), req: 1 });
        match resp {
            PoolResp::Failed { error: PoolError::Fenced { current: 9, presented: 3 }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn image_chunk_flow() {
        let pool = new_shared_pool();
        let mut t = mams_namespace::NamespaceTree::new();
        t.mkdir_p("/a/b").unwrap();
        let img = mams_namespace::encode_image(&t, 5);
        let total = img.size_bytes();
        pool.lock().group_mut(0).write_image(1, img).unwrap();
        let mut n = PoolNode::new(pool);
        let (meta, _) = n.serve(PoolReq::ReadImageMeta { group: 0, req: 1 });
        match meta {
            PoolResp::ImageMeta { meta: Some((5, sz)), .. } => assert_eq!(sz, total),
            other => panic!("unexpected {other:?}"),
        }
        let (chunk, _) = n.serve(PoolReq::ReadImageChunk { group: 0, offset: 0, len: 10, req: 2 });
        match chunk {
            PoolResp::ImageChunk { data, total: t2, .. } => {
                assert_eq!(data.len(), 10);
                assert_eq!(t2, total);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Pull a pool-stored image through `ReadImageChunk` exactly as a
    /// renewing junior does, feeding each chunk to the streaming decoder.
    fn stream_image_from_pool(
        n: &mut PoolNode,
        chunk_len: u64,
    ) -> (mams_namespace::NamespaceTree, u64) {
        let mut d = mams_namespace::StreamingImageDecoder::new();
        let mut offset = 0u64;
        loop {
            let (resp, _) =
                n.serve(PoolReq::ReadImageChunk { group: 0, offset, len: chunk_len, req: 7 });
            let (data, total) = match resp {
                PoolResp::ImageChunk { data, total, .. } => (data, total),
                other => panic!("unexpected {other:?}"),
            };
            d.push(&data).unwrap();
            offset += data.len() as u64;
            assert_eq!(d.checkpoint().0, offset);
            if offset >= total || data.is_empty() {
                break;
            }
        }
        d.finish().unwrap()
    }

    #[test]
    fn pool_images_are_v2_and_stream_decode() {
        let pool = new_shared_pool();
        let mut t = mams_namespace::NamespaceTree::new();
        t.mkdir_p("/a/b").unwrap();
        for i in 0..50 {
            t.create(&format!("/a/b/f{i}"), 3).unwrap();
        }
        let img = mams_namespace::encode_image(&t, 5);
        assert_eq!(img.version(), Some(mams_namespace::VERSION_V2));
        pool.lock().group_mut(0).write_image(1, img).unwrap();
        let mut n = PoolNode::new(pool);
        let (t2, sn) = stream_image_from_pool(&mut n, 64);
        assert_eq!(sn, 5);
        assert_eq!(t2.fingerprint(), t.fingerprint());
    }

    #[test]
    fn legacy_v1_pool_images_still_stream_decode() {
        // An image written before the v2 cutover sits in the pool across
        // the upgrade; a new junior must still restore from it.
        let pool = new_shared_pool();
        let mut t = mams_namespace::NamespaceTree::new();
        t.mkdir_p("/legacy/dir").unwrap();
        t.create("/legacy/dir/f", 2).unwrap();
        let img = mams_namespace::encode_image_v1(&t, 9);
        assert_eq!(img.version(), Some(mams_namespace::VERSION_V1));
        pool.lock().group_mut(0).write_image(1, img).unwrap();
        let mut n = PoolNode::new(pool);
        let (t2, sn) = stream_image_from_pool(&mut n, 16);
        assert_eq!(sn, 9);
        assert_eq!(t2.fingerprint(), t.fingerprint());
    }

    #[test]
    fn missing_image_is_an_error_not_a_panic() {
        let pool = new_shared_pool();
        let mut n = PoolNode::new(pool);
        let (resp, _) = n.serve(PoolReq::ReadImageChunk { group: 0, offset: 0, len: 10, req: 1 });
        assert!(matches!(resp, PoolResp::Failed { error: PoolError::NoSuchImage, .. }));
        let (meta, _) = n.serve(PoolReq::ReadImageMeta { group: 0, req: 2 });
        assert!(matches!(meta, PoolResp::ImageMeta { meta: None, .. }));
    }
}
