//! Analytic reliability model behind the paper's Figure 1.
//!
//! Figure 1 plots system reliability as a function of node count for
//! per-node MTBFs of 10^5 and 10^6 hours. With independent exponential
//! failures, a system of `n` nodes that requires all nodes to be up has
//! failure rate `n / MTBF_node`, so over a mission time `t`:
//!
//! ```text
//! R(n, t) = exp(-n * t / MTBF_node)          system MTBF = MTBF_node / n
//! ```

/// Reliability (probability of no failure) of an `n`-node system over
/// `mission_hours`, with per-node `mtbf_hours`.
pub fn system_reliability(n: u64, mtbf_hours: f64, mission_hours: f64) -> f64 {
    assert!(mtbf_hours > 0.0, "MTBF must be positive");
    assert!(mission_hours >= 0.0, "mission time must be non-negative");
    (-(n as f64) * mission_hours / mtbf_hours).exp()
}

/// System-level MTBF of an `n`-node system (hours).
pub fn system_mtbf_hours(n: u64, mtbf_hours: f64) -> f64 {
    assert!(n > 0, "need at least one node");
    mtbf_hours / n as f64
}

/// A `(nodes, reliability)` series for the Figure 1 harness.
pub fn reliability_series(
    node_counts: &[u64],
    mtbf_hours: f64,
    mission_hours: f64,
) -> Vec<(u64, f64)> {
    node_counts.iter().map(|&n| (n, system_reliability(n, mtbf_hours, mission_hours))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_short_mission_is_nearly_reliable() {
        let r = system_reliability(1, 1e6, 24.0);
        assert!(r > 0.99997, "r = {r}");
    }

    #[test]
    fn reliability_decreases_with_scale() {
        let mut prev = 1.0;
        for n in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            let r = system_reliability(n, 1e5, 24.0);
            assert!(r < prev, "monotone decrease violated at n={n}");
            prev = r;
        }
    }

    #[test]
    fn higher_mtbf_is_more_reliable() {
        let lo = system_reliability(131_000, 1e5, 7.0);
        let hi = system_reliability(131_000, 1e6, 7.0);
        assert!(hi > lo);
    }

    #[test]
    fn blue_gene_scale_mtbf_below_seven_hours() {
        // The paper cites Blue Gene/L (131k processors) with MTBF below 7h
        // when per-node MTBF is ~1e6 hours. 1e6 / 131_000 ≈ 7.6 h; with
        // realistic per-node MTBF slightly below 1e6 the system MTBF dips
        // under 7 h, matching the figure's message.
        let mtbf = system_mtbf_hours(131_000, 9e5);
        assert!(mtbf < 7.0, "mtbf = {mtbf}");
    }

    #[test]
    fn series_matches_pointwise_eval() {
        let s = reliability_series(&[1, 2, 4], 1e5, 10.0);
        assert_eq!(s.len(), 3);
        for (n, r) in s {
            assert_eq!(r, system_reliability(n, 1e5, 10.0));
        }
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn zero_mtbf_rejected() {
        system_reliability(1, 0.0, 1.0);
    }
}
