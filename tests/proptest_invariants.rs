//! Randomized tests for the core data structures and invariants
//! (DESIGN.md §4): encode/decode round trips, replay determinism, duplicate
//! suppression, partition stability.
//!
//! These are seeded randomized tests, not `proptest` suites: the vendored
//! `proptest` crate is an intentionally empty stand-in (see
//! `vendor/proptest`), so property coverage comes from the vendored `rand`
//! with fixed seeds — deterministic, shrink-free, CI-friendly.
//! `PARITY_CASES` overrides the per-test case count (nightly runs more).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mams::journal::{
    decode_batch, encode_batch, AppendOutcome, JournalBatch, JournalLog, ReplayCursor, Txn,
};
use mams::namespace::{decode_image, encode_image, NamespaceTree, Partitioner};

/// Cases for a test defaulting to `default`; `PARITY_CASES` overrides.
fn cases(default: u64) -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

// ---------------------------------------------------------- generators

/// `[a-z][a-z0-9]{0,2}` — a small alphabet so paths collide often.
fn path_component(rng: &mut SmallRng) -> String {
    const HEAD: &[u8] = b"abcdefgh";
    const TAIL: &[u8] = b"ab012";
    let mut s = String::new();
    s.push(HEAD[rng.gen_range(0..HEAD.len())] as char);
    for _ in 0..rng.gen_range(0..3u32) {
        s.push(TAIL[rng.gen_range(0..TAIL.len())] as char);
    }
    s
}

fn abs_path(rng: &mut SmallRng, max_depth: usize) -> String {
    let depth = rng.gen_range(1..max_depth as u64 + 1) as usize;
    let comps: Vec<String> = (0..depth).map(|_| path_component(rng)).collect();
    format!("/{}", comps.join("/"))
}

fn rand_txn(rng: &mut SmallRng) -> Txn {
    match rng.gen_range(0..7u32) {
        0 => Txn::Create { path: abs_path(rng, 4), replication: rng.gen_range(1..6u32) as u8 },
        1 => Txn::Mkdir { path: abs_path(rng, 4) },
        2 => Txn::Delete { path: abs_path(rng, 4), recursive: rng.gen_bool(0.5) },
        3 => Txn::Rename { src: abs_path(rng, 4), dst: abs_path(rng, 4) },
        4 => Txn::AddBlock {
            path: abs_path(rng, 4),
            block_id: rng.gen_range(1..1000u64),
            len: rng.gen_range(1..1u32 << 20),
        },
        5 => Txn::CloseFile { path: abs_path(rng, 4) },
        _ => Txn::SetPerm { path: abs_path(rng, 4), perm: rng.gen_range(0..0o777u32) as u16 },
    }
}

fn rand_txns(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<Txn> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| rand_txn(rng)).collect()
}

fn rand_batch(rng: &mut SmallRng, sn: u64) -> JournalBatch {
    let records = rand_txns(rng, 1, 24);
    let txid = rng.gen_range(1..1u64 << 40);
    JournalBatch::new(sn, txid, records)
}

/// A random sequence of *valid* operations: ops are generated blind but
/// only the ones the tree accepts are journaled, exactly like the active.
fn apply_random_ops(tree: &mut NamespaceTree, ops: &[Txn]) -> Vec<Txn> {
    let mut journaled = Vec::new();
    for op in ops {
        if tree.apply(op).is_ok() {
            journaled.push(op.clone());
        }
    }
    journaled
}

// -------------------------------------------------------------- journal

#[test]
fn journal_batch_round_trips() {
    for case in 0..cases(128) {
        let mut rng = SmallRng::seed_from_u64(0x10_0001 ^ (case << 8));
        let batch = rand_batch(&mut rng, 7);
        let encoded = encode_batch(&batch);
        let decoded = decode_batch(encoded).expect("round trip");
        assert_eq!(decoded, batch, "case {case}");
    }
}

#[test]
fn journal_corruption_never_passes_silently() {
    for case in 0..cases(128) {
        let mut rng = SmallRng::seed_from_u64(0x10_0002 ^ (case << 8));
        let batch = rand_batch(&mut rng, 3);
        let encoded = encode_batch(&batch);
        let mut bytes = encoded.to_vec();
        let i = rng.gen_range(0..bytes.len());
        bytes[i] ^= 0x5a;
        // Either an error, or (never) a silently different batch.
        if let Ok(decoded) = decode_batch(bytes::Bytes::from(bytes)) {
            assert_eq!(decoded, batch, "case {case}: corruption yielded a different batch");
        }
    }
}

#[test]
fn log_append_is_idempotent_and_contiguous() {
    for case in 0..cases(128) {
        let mut rng = SmallRng::seed_from_u64(0x10_0003 ^ (case << 8));
        let n = rng.gen_range(1..8usize);
        let batches: Vec<JournalBatch> =
            (0..n).map(|i| rand_batch(&mut rng, i as u64 + 1)).collect();
        let mut log = JournalLog::new();
        for b in &batches {
            assert_eq!(log.append(b.clone()).unwrap(), AppendOutcome::Appended, "case {case}");
        }
        // Every duplicate is ignored.
        for b in &batches {
            assert_eq!(log.append(b.clone()).unwrap(), AppendOutcome::Duplicate, "case {case}");
        }
        assert_eq!(log.tail_sn(), batches.len() as u64);
        // Suffix reads see exactly the right batches.
        for after in 0..=batches.len() {
            let tail = log.read_after(after as u64).unwrap();
            assert_eq!(tail.len(), batches.len() - after, "case {case}");
        }
    }
}

// ------------------------------------------- journal wire format v1/v2

/// The legacy length-prefixed v1 wire form and the varint +
/// prefix-compressed v2 form of the same batch decode to identical records
/// through the one version-dispatching entry point.
#[test]
fn journal_v1_and_v2_wire_decode_agree() {
    for case in 0..cases(128) {
        let mut rng = SmallRng::seed_from_u64(0x10_0004 ^ (case << 8));
        let batch = rand_batch(&mut rng, 5);
        let v1 = mams::journal::encode_batch_v1(&batch);
        let v2 = encode_batch(&batch);
        let from_v1 = decode_batch(v1).expect("v1 decodes");
        let from_v2 = decode_batch(v2).expect("v2 decodes");
        assert_eq!(from_v1, batch, "case {case}");
        assert_eq!(from_v2, batch, "case {case}");
    }
}

// ---------------------------------------------------- replay determinism

/// Invariant 4: namespace(journal replay) == namespace(live execution).
#[test]
fn replay_reproduces_live_execution() {
    for case in 0..cases(64) {
        let mut rng = SmallRng::seed_from_u64(0x10_0005 ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 120);
        let mut live = NamespaceTree::new();
        let journaled = apply_random_ops(&mut live, &ops);

        let mut replayed = NamespaceTree::new();
        for txn in &journaled {
            replayed.apply(txn).expect("journaled txns always replay");
        }
        assert_eq!(live.fingerprint(), replayed.fingerprint(), "case {case}");
        assert_eq!(live.num_files(), replayed.num_files(), "case {case}");
        assert_eq!(live.num_dirs(), replayed.num_dirs(), "case {case}");
    }
}

/// Invariant 3: offering batches with duplications and stale repeats
/// through the cursor yields the same state as a clean sequential replay
/// (sn-based duplicate suppression).
#[test]
fn cursor_suppresses_duplicates() {
    for case in 0..cases(64) {
        let mut rng = SmallRng::seed_from_u64(0x10_0006 ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 80);
        let dup_pattern: Vec<usize> = {
            let n = rng.gen_range(1..40usize);
            (0..n).map(|_| rng.gen_range(0..4usize)).collect()
        };
        let mut source = NamespaceTree::new();
        let journaled = apply_random_ops(&mut source, &ops);
        if journaled.is_empty() {
            continue;
        }
        // Pack into batches of 3.
        let batches: Vec<JournalBatch> = journaled
            .chunks(3)
            .enumerate()
            .map(|(i, chunk)| JournalBatch::new(i as u64 + 1, i as u64 * 3 + 1, chunk.to_vec()))
            .collect();

        // Clean replay.
        let mut clean = NamespaceTree::new();
        let mut cur = ReplayCursor::new();
        for b in &batches {
            let mut sink = |_: u64, t: &Txn| {
                let _ = clean.apply(t);
            };
            cur.offer(b, &mut sink);
        }

        // Messy replay: after each batch, re-offer some earlier batches.
        let mut messy = NamespaceTree::new();
        let mut cur2 = ReplayCursor::new();
        for (i, b) in batches.iter().enumerate() {
            let mut sink = |_: u64, t: &Txn| {
                let _ = messy.apply(t);
            };
            cur2.offer(b, &mut sink);
            for &d in &dup_pattern {
                if d <= i {
                    let mut sink = |_: u64, t: &Txn| {
                        let _ = messy.apply(t);
                    };
                    cur2.offer(&batches[d], &mut sink);
                }
            }
        }
        assert_eq!(clean.fingerprint(), messy.fingerprint(), "case {case}");
        assert_eq!(cur.max_sn(), cur2.max_sn(), "case {case}");
    }
}

// ------------------------------------------------------------- images

/// Invariant: image encode/decode preserves the whole tree, and chunked
/// reassembly (the renewing transfer) is lossless at any chunk size.
#[test]
fn image_round_trips_and_chunks() {
    for case in 0..cases(48) {
        let mut rng = SmallRng::seed_from_u64(0x10_0007 ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 100);
        let chunk = rng.gen_range(1..512u64);
        let mut tree = NamespaceTree::new();
        apply_random_ops(&mut tree, &ops);
        let img = encode_image(&tree, 42);

        let (decoded, sn) = decode_image(img.data.clone()).expect("round trip");
        assert_eq!(sn, 42);
        assert_eq!(decoded.fingerprint(), tree.fingerprint(), "case {case}");

        // Chunked reassembly.
        let mut buf = Vec::new();
        let mut off = 0;
        loop {
            let c = img.chunk(off, chunk);
            if c.is_empty() {
                break;
            }
            off += c.len() as u64;
            buf.extend_from_slice(&c);
        }
        let (rebuilt, _) = decode_image(bytes::Bytes::from(buf)).expect("chunked round trip");
        assert_eq!(rebuilt.fingerprint(), tree.fingerprint(), "case {case}");
    }
}

/// The legacy full-path v1 encoding and the parent-id delta v2 encoding of
/// the same tree decode to identical namespaces, and v2 never comes out
/// larger than v1.
#[test]
fn v1_and_v2_images_decode_to_the_same_tree() {
    for case in 0..cases(48) {
        let mut rng = SmallRng::seed_from_u64(0x10_0008 ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 100);
        let mut tree = NamespaceTree::new();
        apply_random_ops(&mut tree, &ops);

        let v1 = mams::namespace::encode_image_v1(&tree, 7);
        let v2 = encode_image(&tree, 7);
        assert_eq!(v1.version(), Some(mams::namespace::VERSION_V1));
        assert_eq!(v2.version(), Some(mams::namespace::VERSION_V2));
        assert!(v2.size_bytes() <= v1.size_bytes(), "case {case}");

        let (from_v1, sn1) = decode_image(v1.data.clone()).expect("v1 decodes");
        let (from_v2, sn2) = decode_image(v2.data.clone()).expect("v2 decodes");
        assert_eq!(sn1, 7);
        assert_eq!(sn2, 7);
        assert_eq!(from_v1.fingerprint(), tree.fingerprint(), "case {case}");
        assert_eq!(from_v2.fingerprint(), tree.fingerprint(), "case {case}");
    }
}

/// Pushing an image through the streaming decoder in arbitrary-sized chunks
/// yields exactly the buffered decode, for both wire versions.
#[test]
fn streaming_decode_matches_buffered_at_any_chunk_size() {
    for case in 0..cases(48) {
        use mams::namespace::StreamingImageDecoder;

        let mut rng = SmallRng::seed_from_u64(0x10_0009 ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 100);
        let chunk = rng.gen_range(1..300usize);
        let legacy = rng.gen_bool(0.5);
        let mut tree = NamespaceTree::new();
        apply_random_ops(&mut tree, &ops);
        let img = if legacy {
            mams::namespace::encode_image_v1(&tree, 9)
        } else {
            encode_image(&tree, 9)
        };

        let mut dec = StreamingImageDecoder::new();
        let mut pushed = 0u64;
        for piece in img.data.chunks(chunk) {
            dec.push(piece).expect("valid image streams cleanly");
            pushed += piece.len() as u64;
            let (off, _) = dec.checkpoint();
            assert_eq!(off, pushed, "case {case}");
        }
        let (streamed, sn) = dec.finish().expect("stream finish");
        assert_eq!(sn, 9);

        let (buffered, _) = decode_image(img.data.clone()).expect("buffered decode");
        assert_eq!(streamed.fingerprint(), buffered.fingerprint(), "case {case}");
        assert_eq!(streamed.fingerprint(), tree.fingerprint(), "case {case}");
        // Re-encoding both yields the same bytes: the decoded trees are
        // structurally identical, not merely fingerprint-equal.
        assert_eq!(encode_image(&streamed, 9).data, encode_image(&buffered, 9).data);
    }
}

// ------------------------------------------------- resolution fast path

/// Every path a transaction names (probe targets for the resolution test).
fn txn_paths(op: &Txn) -> Vec<&str> {
    match op {
        Txn::Create { path, .. }
        | Txn::Mkdir { path }
        | Txn::Delete { path, .. }
        | Txn::AddBlock { path, .. }
        | Txn::CloseFile { path }
        | Txn::SetPerm { path, .. } => vec![path],
        Txn::Rename { src, dst } => vec![src, dst],
    }
}

/// The interned-name + parent-directory-cache fast path may never disagree
/// with a naive from-root component walk, at any point of a random
/// create/mkdir/rename/delete history. Probes cover hits, misses,
/// renamed-away sources, deleted subtrees, and every ancestor prefix of
/// each.
#[test]
fn cached_resolution_matches_from_root_walk() {
    for case in 0..cases(96) {
        let mut rng = SmallRng::seed_from_u64(0x10_000a ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 150);
        let mut tree = NamespaceTree::new();
        for op in &ops {
            let _ = tree.apply(op);
            // Probe immediately after each mutation: a stale cache entry
            // shows up the moment the invalidation rule is wrong, not just
            // in the final state.
            for p in txn_paths(op) {
                for prefix in mams::namespace::path::prefixes(p) {
                    assert_eq!(
                        tree.resolve_path(prefix),
                        tree.resolve_path_uncached(prefix),
                        "case {case}: fast path diverged on {prefix:?} after {op:?}"
                    );
                }
            }
        }
    }
}

// ------------------------------------------------- replay session parity

/// The validate-skip `ReplaySession` fast path must land on exactly the
/// state a naive per-record `apply` produces, across histories whose
/// renames and deletes relocate or remove the cached directories.
#[test]
fn replay_session_matches_naive_apply() {
    for case in 0..cases(64) {
        let mut rng = SmallRng::seed_from_u64(0x10_000b ^ (case << 8));
        let ops = rand_txns(&mut rng, 1, 150);
        let mut live = NamespaceTree::new();
        let journaled = apply_random_ops(&mut live, &ops);

        let mut naive = NamespaceTree::new();
        for t in &journaled {
            naive.apply(t).expect("journaled txns always replay");
        }

        let mut fast = NamespaceTree::new();
        let mut session = mams::namespace::ReplaySession::new();
        for t in &journaled {
            session.apply(&mut fast, t).expect("journaled txns replay via the session");
        }
        assert_eq!(fast.fingerprint(), naive.fingerprint(), "case {case}");
        assert_eq!(fast.num_files(), naive.num_files(), "case {case}");
        assert_eq!(fast.num_dirs(), naive.num_dirs(), "case {case}");
    }
}

// ------------------------------------------- shared-batch replay parity

/// One sealed batch, two consumption paths: a standby ingesting the very
/// `SyncJournal` handle the active fanned out, and a reader pulling the
/// pool's `read_after` tail. Both must reconstruct byte-identical
/// namespaces — sharing the allocation must not change replay semantics.
#[test]
fn shared_batch_replays_identically_via_sync_and_pool_paths() {
    use mams::journal::SharedBatch;
    use mams::storage::pool::GroupStore;

    let txns = vec![
        Txn::Mkdir { path: "/a".into() },
        Txn::Create { path: "/a/f".into(), replication: 3 },
        Txn::Mkdir { path: "/a/b".into() },
        Txn::Create { path: "/a/b/g".into(), replication: 2 },
        Txn::Rename { src: "/a/f".into(), dst: "/a/b/h".into() },
        Txn::AddBlock { path: "/a/b/h".into(), block_id: 9, len: 4096 },
    ];
    let sealed = SharedBatch::sealed(JournalBatch::new(1, 1, txns));

    // Path 1: the standby's SyncJournal ingest — it replays the shared
    // handle itself.
    let standby_copy = sealed.share();
    let mut via_sync = NamespaceTree::new();
    let mut cur = ReplayCursor::new();
    let mut sink = |_: u64, t: &Txn| {
        via_sync.apply(t).expect("valid txn");
    };
    cur.offer(&standby_copy, &mut sink);

    // Path 2: the pool append + read_after tail a recovering node replays.
    let mut store = GroupStore::default();
    store.append_journal(1, sealed.share()).expect("append");
    let tail = store.read_journal(0, 16).expect("not compacted");
    assert_eq!(tail.len(), 1);
    assert!(
        SharedBatch::ptr_eq(&tail[0], &sealed),
        "pool must return the shared allocation, not a copy"
    );
    let mut via_pool = NamespaceTree::new();
    let mut cur2 = ReplayCursor::new();
    for b in &tail {
        let mut sink = |_: u64, t: &Txn| {
            via_pool.apply(t).expect("valid txn");
        };
        cur2.offer(b, &mut sink);
    }

    assert_eq!(via_sync.fingerprint(), via_pool.fingerprint());
    let img_sync = mams::namespace::encode_image(&via_sync, 1);
    let img_pool = mams::namespace::encode_image(&via_pool, 1);
    assert_eq!(img_sync.data, img_pool.data, "replayed namespaces must be byte-identical");
    // And the wire form both paths would transmit is the single sealed
    // encoding.
    assert_eq!(sealed.wire().as_ptr(), standby_copy.wire().as_ptr());
}

// ----------------------------------------------------------- partition

/// Invariant 8: every path maps to exactly one group, stably, and
/// structural transactions touch every group.
#[test]
fn partitioning_is_stable_and_total() {
    for case in 0..cases(128) {
        let mut rng = SmallRng::seed_from_u64(0x10_000c ^ (case << 8));
        let path = abs_path(&mut rng, 6);
        let groups = rng.gen_range(1..8u32);
        let p = Partitioner::new(groups);
        let owner = p.owner(&path);
        assert!(owner < groups, "case {case}");
        assert_eq!(owner, p.owner(&path), "case {case}");
        let structural = Txn::Mkdir { path: path.clone() };
        assert_eq!(p.groups_for(&structural).len(), groups as usize, "case {case}");
        let file = Txn::Create { path, replication: 1 };
        assert_eq!(p.groups_for(&file), vec![owner], "case {case}");
    }
}
