//! Pool contents: per-replica-group journal segments, images, and fencing.

use std::collections::HashMap;
use std::sync::Arc;

use mams_journal::{AppendOutcome, JournalLog, SharedBatch, Sn};
use mams_namespace::NamespaceImage;
use parking_lot::Mutex;

/// Replica-group index (matches `mams_namespace::partition::GroupId`).
pub type GroupId = u32;

/// Fencing epoch: monotonically increasing per group; granted alongside the
/// distributed lock at election time.
pub type Epoch = u64;

/// Pool operation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Writer presented an epoch older than one the pool has seen: it has
    /// been deposed and must stop (IO fencing).
    Fenced { current: Epoch, presented: Epoch },
    /// Journal gap or divergence.
    Journal(String),
    /// Requested image/chunk does not exist.
    NoSuchImage,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Fenced { current, presented } => {
                write!(f, "fenced: pool epoch {current}, writer presented {presented}")
            }
            PoolError::Journal(s) => write!(f, "journal: {s}"),
            PoolError::NoSuchImage => write!(f, "no such image"),
        }
    }
}

impl std::error::Error for PoolError {}

/// One replica group's shared files.
#[derive(Debug, Default)]
pub struct GroupStore {
    /// Highest writer epoch observed.
    epoch: Epoch,
    /// The shared journal segment.
    journal: JournalLog,
    /// Latest namespace image, if checkpointed.
    image: Option<NamespaceImage>,
}

impl GroupStore {
    fn check_epoch(&mut self, presented: Epoch) -> Result<(), PoolError> {
        if presented < self.epoch {
            return Err(PoolError::Fenced { current: self.epoch, presented });
        }
        self.epoch = presented;
        Ok(())
    }

    /// Append a batch under the writer's epoch. The pool retains the shared
    /// handle the writer sealed — no re-copy of records on the way in.
    pub fn append_journal(
        &mut self,
        epoch: Epoch,
        batch: impl Into<SharedBatch>,
    ) -> Result<AppendOutcome, PoolError> {
        self.check_epoch(epoch)?;
        self.journal.append(batch).map_err(|e| PoolError::Journal(e.to_string()))
    }

    /// Journal tail after `after_sn` (up to `max` batches). `None` means the
    /// range was compacted away and the reader needs the image. Returned
    /// batches share the stored allocations (reference-count bumps only).
    pub fn read_journal(&self, after_sn: Sn, max: usize) -> Option<Vec<SharedBatch>> {
        self.journal
            .read_after(after_sn)
            .map(|s| s.iter().take(max).map(SharedBatch::share).collect())
    }

    /// Tail sn of the shared journal.
    pub fn tail_sn(&self) -> Sn {
        self.journal.tail_sn()
    }

    /// Store a checkpoint image and compact the journal through its sn.
    pub fn write_image(&mut self, epoch: Epoch, image: NamespaceImage) -> Result<(), PoolError> {
        self.check_epoch(epoch)?;
        let sn = image.checkpoint_sn;
        self.image = Some(image);
        self.journal.compact_through(sn);
        Ok(())
    }

    /// Latest image metadata.
    pub fn image(&self) -> Option<&NamespaceImage> {
        self.image.as_ref()
    }

    /// Chaos hook: flip one byte in the middle of the stored checkpoint
    /// image, simulating silent on-disk corruption. Returns whether an
    /// image was present to corrupt. Readers must detect the damage (the
    /// image decoder validates) rather than build a divergent namespace.
    pub fn corrupt_image(&mut self) -> bool {
        let Some(img) = self.image.as_mut() else { return false };
        if img.data.is_empty() {
            return false;
        }
        let mut raw = img.data.to_vec();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        img.data = bytes::Bytes::from(raw);
        true
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Observe a new epoch without writing (called on lock grant so the old
    /// active is fenced even before the new one writes).
    pub fn advance_epoch(&mut self, to: Epoch) {
        self.epoch = self.epoch.max(to);
    }
}

/// All groups' shared files.
#[derive(Debug, Default)]
pub struct PoolState {
    groups: HashMap<GroupId, GroupStore>,
}

impl PoolState {
    pub fn new() -> Self {
        PoolState::default()
    }

    /// The store for `group`, created on first touch.
    pub fn group_mut(&mut self, group: GroupId) -> &mut GroupStore {
        self.groups.entry(group).or_default()
    }

    pub fn group(&self, group: GroupId) -> Option<&GroupStore> {
        self.groups.get(&group)
    }
}

/// Handle shared by every pool node (the pool's contents are replicated
/// across nodes and survive any single crash).
pub type SharedPool = Arc<Mutex<PoolState>>;

/// Create an empty shared pool.
pub fn new_shared_pool() -> SharedPool {
    Arc::new(Mutex::new(PoolState::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_journal::{JournalBatch, Txn};
    use mams_namespace::{encode_image, NamespaceTree};

    fn batch(sn: Sn) -> JournalBatch {
        JournalBatch::new(sn, sn, vec![Txn::Mkdir { path: format!("/d{sn}") }])
    }

    #[test]
    fn append_and_read_tail() {
        let mut g = GroupStore::default();
        for sn in 1..=5 {
            assert_eq!(g.append_journal(1, batch(sn)).unwrap(), AppendOutcome::Appended);
        }
        assert_eq!(g.tail_sn(), 5);
        let tail = g.read_journal(3, 10).unwrap();
        assert_eq!(tail.iter().map(|b| b.sn).collect::<Vec<_>>(), vec![4, 5]);
        let capped = g.read_journal(0, 2).unwrap();
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn stale_epoch_is_fenced() {
        let mut g = GroupStore::default();
        g.append_journal(5, batch(1)).unwrap();
        let err = g.append_journal(4, batch(2)).unwrap_err();
        assert_eq!(err, PoolError::Fenced { current: 5, presented: 4 });
        // Same epoch continues to work; higher epoch takes over.
        g.append_journal(5, batch(2)).unwrap();
        g.append_journal(6, batch(3)).unwrap();
        assert_eq!(g.epoch(), 6);
    }

    #[test]
    fn advance_epoch_fences_before_first_write() {
        let mut g = GroupStore::default();
        g.append_journal(1, batch(1)).unwrap();
        g.advance_epoch(2);
        let err = g.append_journal(1, batch(2)).unwrap_err();
        assert!(matches!(err, PoolError::Fenced { current: 2, presented: 1 }));
    }

    #[test]
    fn image_checkpoint_compacts_journal() {
        let mut g = GroupStore::default();
        for sn in 1..=10 {
            g.append_journal(1, batch(sn)).unwrap();
        }
        let mut t = NamespaceTree::new();
        for sn in 1..=7 {
            t.mkdir(&format!("/d{sn}")).unwrap();
        }
        g.write_image(1, encode_image(&t, 7)).unwrap();
        assert_eq!(g.image().unwrap().checkpoint_sn, 7);
        // Journal before sn 7 is gone; readers fall back to the image.
        assert!(g.read_journal(3, 10).is_none());
        let tail = g.read_journal(7, 10).unwrap();
        assert_eq!(tail.iter().map(|b| b.sn).collect::<Vec<_>>(), vec![8, 9, 10]);
    }

    #[test]
    fn duplicate_appends_are_idempotent() {
        let mut g = GroupStore::default();
        g.append_journal(1, batch(1)).unwrap();
        assert_eq!(g.append_journal(1, batch(1)).unwrap(), AppendOutcome::Duplicate);
    }

    #[test]
    fn pool_state_isolates_groups() {
        let mut p = PoolState::new();
        p.group_mut(0).append_journal(1, batch(1)).unwrap();
        assert_eq!(p.group(0).unwrap().tail_sn(), 1);
        assert!(p.group(1).is_none());
        p.group_mut(1);
        assert_eq!(p.group(1).unwrap().tail_sn(), 0);
    }
}
