//! Figure 8: metadata-operation throughput over time under the three fault
//! schedules (a: lock loss, b: network unplug, c: process restart), with a
//! MAMS-1A3S group serving continuous create + regular mkdir operations.
//!
//! Expected shape (paper): throughput dips to zero for the failover window
//! at each injection (60 s, 120 s, 180 s), shows a slight bump right after
//! recovery (retried requests draining), and returns to the pre-fault
//! level.

use mams_bench::{
    crash_current_active_at, expire_current_active_at, print_table, save_json,
    unplug_current_active_at,
};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_sim::{Duration, Sim, SimConfig, SimTime};

const CLIENTS: u32 = 8;
const RUN_SECS: u64 = 240;
const INJECT_SECS: [u64; 3] = [60, 120, 180];

fn run(
    label: &str,
    schedule: impl FnOnce(&mut Sim, &mams_cluster::deploy::Deployment),
) -> Vec<u64> {
    let mut sim = Sim::new(SimConfig { seed: 0xF168, trace: true, ..SimConfig::default() });
    let mut d =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() });
    let metrics = Metrics::new(false);
    for c in 0..CLIENTS {
        d.add_client(&mut sim, Workload::create_mkdir(c), metrics.clone());
    }
    schedule(&mut sim, &d);
    sim.run_until(SimTime(RUN_SECS * 1_000_000));
    let mut ps = metrics.per_second();
    ps.resize(RUN_SECS as usize, 0);
    println!("\n--- {label}: requests/second (5s buckets) ---");
    let rows: Vec<Vec<String>> = (0..RUN_SECS as usize / 5)
        .map(|b| {
            let t = b * 5;
            let avg: u64 = ps[t..t + 5].iter().sum::<u64>() / 5;
            vec![format!("{t}-{}s", t + 5), format!("{avg}")]
        })
        .collect();
    print_table(label, &["window", "req/s"], &rows);
    // Shape checks: a dip at each injection, recovery afterwards.
    let steady: u64 = ps[30..55].iter().sum::<u64>() / 25;
    for &inj in &INJECT_SECS {
        let i = inj as usize;
        let dip = *ps[i..i + 8].iter().min().expect("window");
        let recovered: u64 = ps[i + 15..(i + 35).min(ps.len())].iter().sum::<u64>()
            / (35 - 15).min(ps.len() - i - 15) as u64;
        assert!(dip < steady / 4, "{label}: no visible dip at {inj}s (dip {dip}, steady {steady})");
        assert!(
            recovered > steady * 7 / 10,
            "{label}: no recovery after {inj}s (rec {recovered}, steady {steady})"
        );
    }
    println!("steady ~{steady} req/s; dips and recoveries verified at 60/120/180s");
    ps
}

fn main() {
    let a = run("(a) Test A: active loses the lock", |sim, d| {
        let coord = d.coord;
        for &t in &INJECT_SECS {
            expire_current_active_at(sim, coord, SimTime(t * 1_000_000));
        }
    });
    let b = run("(b) Test B: network wires pulled", |sim, _d| {
        for &t in &INJECT_SECS {
            unplug_current_active_at(sim, SimTime(t * 1_000_000), Duration::from_secs(12));
        }
    });
    let c = run("(c) Test C: process shutdown/restart", |sim, _d| {
        for &t in &INJECT_SECS {
            crash_current_active_at(sim, SimTime(t * 1_000_000), Duration::from_secs(12));
        }
    });
    // The offline `json!` stand-in discards its arguments; keep the series
    // visibly used in every build.
    let _ = (&a, &b, &c);
    save_json(
        "fig8_failover_throughput",
        &serde_json::json!({ "test_a": a, "test_b": b, "test_c": c }),
    );
}
