//! Namespace images: checkpoints of the whole tree.
//!
//! The renewing protocol ships an image to a junior whose journal gap is too
//! large to replay record-by-record. Two wire formats exist behind the
//! version byte:
//!
//! * **v1** (legacy): a preorder DFS of *full-path* entries, rebuilt by the
//!   decoder through the public namespace operations. Still decoded for
//!   images written before the v2 cutover; no longer written.
//! * **v2** (current): a preorder DFS of **parent-id delta** entries —
//!   `(parent entry index, name, attrs)` with varint lengths. The encoder
//!   emits borrowed name slices (zero per-entry `String`s) and the decoder
//!   attaches each inode directly under its already-materialized parent in
//!   a single pass: no from-root path resolution, no second lookup to set
//!   permissions, and names shrink the image (a path appears once, not once
//!   per descendant).
//!
//! Images are read back in *chunks* so the junior can checkpoint its
//! progress and resume after an interruption (Section III-D: "the junior
//! records the checkpoint that has been committed ... and avoid
//! retransmitting the whole files"). [`StreamingImageDecoder`] consumes
//! those chunks at arbitrary boundaries as they arrive, so the junior never
//! buffers a whole image before starting to rebuild the tree.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use mams_journal::hash::{peek_varint, Fnv1a64, HashingBuf, Varint};
use mams_journal::Sn;

use crate::inode::{Inode, InodeId, ROOT_ID};
use crate::path as nspath;
use crate::retry::RetryWindow;
use crate::tree::NamespaceTree;

/// Image format magic ("MIMG").
pub const MAGIC: u32 = 0x4d49_4d47;
/// Legacy full-path image format.
pub const VERSION_V1: u16 = 1;
/// Parent-id delta image format.
pub const VERSION_V2: u16 = 2;
/// Current image format version (what encoders write).
pub const VERSION: u16 = VERSION_V2;

/// Fixed header: magic (4) + version (2) + checkpoint sn (8) + root perm (2).
const HEADER_LEN: usize = 16;
/// Trailing checksum length.
const TRAILER_LEN: usize = 8;

/// Image decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    BadMagic(u32),
    BadVersion(u16),
    Truncated,
    BadChecksum,
    Corrupt(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadMagic(m) => write!(f, "bad image magic {m:#x}"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::Truncated => write!(f, "truncated image"),
            ImageError::BadChecksum => write!(f, "image checksum mismatch"),
            ImageError::Corrupt(s) => write!(f, "corrupt image: {s}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A serialized namespace checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceImage {
    /// The journal sn this image reflects (replay continues from
    /// `checkpoint_sn + 1`).
    pub checkpoint_sn: Sn,
    /// Encoded bytes.
    pub data: Bytes,
    /// File count at checkpoint time.
    pub files: u64,
    /// Directory count at checkpoint time (excluding root).
    pub dirs: u64,
}

impl NamespaceImage {
    /// Size of the encoded image in bytes — the paper's "Image (MB)" column.
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Wire format version of the encoded bytes (`None` if the header is
    /// shorter than the version field).
    pub fn version(&self) -> Option<u16> {
        self.data.get(4..6).map(|b| u16::from_be_bytes([b[0], b[1]]))
    }

    /// A chunk `[offset, offset + len)` of the encoded bytes, clamped to the
    /// image end. Used by the resumable transfer in the renewing protocol.
    pub fn chunk(&self, offset: u64, len: u64) -> Bytes {
        let size = self.data.len() as u64;
        let start = offset.min(size) as usize;
        let end = offset.saturating_add(len).min(size) as usize;
        self.data.slice(start..end)
    }
}

// ------------------------------------------------------------------ encode
//
// The checksum machinery ([`Fnv1a64`], [`HashingBuf`], varints) is shared
// with the journal wire format and lives in `mams_journal::hash`; the
// digests here are byte-identical to the private copy this module carried
// before the hoist, so old images still verify.

fn put_header(out: &mut HashingBuf, version: u16, checkpoint_sn: Sn, root_perm: u16) {
    out.put_u32(MAGIC);
    out.put_u16(version);
    out.put_u64(checkpoint_sn);
    out.put_u16(root_perm);
}

/// Encode the tree into a current-format (v2) image checkpointed at
/// `checkpoint_sn`.
pub fn encode_image(tree: &NamespaceTree, checkpoint_sn: Sn) -> NamespaceImage {
    encode_image_with_window(tree, checkpoint_sn, &RetryWindow::new())
}

/// Encode a v2 image carrying the retry-outcome window as of
/// `checkpoint_sn`. The window rides as one `W`-tagged, length-prefixed
/// section after the tree entries (elided when empty, so window-free
/// images stay byte-identical to the pre-extension format and old images
/// decode with an empty window).
pub fn encode_image_with_window(
    tree: &NamespaceTree,
    checkpoint_sn: Sn,
    window: &RetryWindow,
) -> NamespaceImage {
    let mut out = HashingBuf::with_capacity(4096);
    put_header(&mut out, VERSION_V2, checkpoint_sn, tree.inodes[&ROOT_ID].perm());

    // Preorder DFS. Every emitted entry gets the next index (the root is
    // index 0 and is never emitted); children reference their parent by
    // that index, which the decoder has always already materialized.
    // Names ride as `Arc<str>` handles — reference-count bumps, no copies.
    let mut next_index: u64 = 1;
    let mut stack: Vec<(InodeId, Arc<str>, u64)> = Vec::new();
    if let Inode::Directory { children, .. } = &tree.inodes[&ROOT_ID] {
        for (name, child) in children.iter().rev() {
            stack.push((*child, name.clone(), 0));
        }
    }
    while let Some((id, name, parent)) = stack.pop() {
        let my_index = next_index;
        next_index += 1;
        match &tree.inodes[&id] {
            Inode::Directory { children, perm } => {
                out.put_u8(b'D');
                out.put_varint(parent);
                out.put_varint(name.len() as u64);
                out.put_slice(name.as_bytes());
                out.put_u16(*perm);
                for (n, child) in children.iter().rev() {
                    stack.push((*child, n.clone(), my_index));
                }
            }
            Inode::File { blocks, replication, sealed, perm } => {
                out.put_u8(b'F');
                out.put_varint(parent);
                out.put_varint(name.len() as u64);
                out.put_slice(name.as_bytes());
                out.put_u16(*perm);
                out.put_u8(*replication);
                out.put_u8(*sealed as u8);
                out.put_varint(blocks.len() as u64);
                for b in blocks {
                    out.put_varint(*b);
                }
            }
        }
    }
    if !window.is_empty() {
        let wb = window.encode_bytes();
        out.put_u8(b'W');
        out.put_varint(wb.len() as u64);
        out.put_slice(&wb);
    }
    NamespaceImage {
        checkpoint_sn,
        data: out.seal(),
        files: tree.num_files(),
        dirs: tree.num_dirs(),
    }
}

/// Encode the tree in the legacy full-path v1 format. Kept for
/// compatibility tests and as the benchmark baseline; production writers
/// use [`encode_image`].
pub fn encode_image_v1(tree: &NamespaceTree, checkpoint_sn: Sn) -> NamespaceImage {
    let mut out = HashingBuf::with_capacity(4096);
    put_header(&mut out, VERSION_V1, checkpoint_sn, tree.inodes[&ROOT_ID].perm());

    // Preorder DFS with explicit paths; children of a directory are visited
    // in sorted order, so parents always precede children.
    let mut stack: Vec<(InodeId, String)> = vec![(ROOT_ID, "/".to_string())];
    while let Some((id, p)) = stack.pop() {
        match &tree.inodes[&id] {
            Inode::Directory { children, perm } => {
                if id != ROOT_ID {
                    out.put_u8(b'D');
                    out.put_u32(p.len() as u32);
                    out.put_slice(p.as_bytes());
                    out.put_u16(*perm);
                }
                for (name, child) in children.iter().rev() {
                    stack.push((*child, nspath::join(&p, name)));
                }
            }
            Inode::File { blocks, replication, sealed, perm } => {
                out.put_u8(b'F');
                out.put_u32(p.len() as u32);
                out.put_slice(p.as_bytes());
                out.put_u16(*perm);
                out.put_u8(*replication);
                out.put_u8(*sealed as u8);
                out.put_u32(blocks.len() as u32);
                for b in blocks {
                    out.put_u64(*b);
                }
            }
        }
    }
    NamespaceImage {
        checkpoint_sn,
        data: out.seal(),
        files: tree.num_files(),
        dirs: tree.num_dirs(),
    }
}

// ------------------------------------------------------------------ decode

/// Chunk-incremental image decoder.
///
/// A push-based state machine: feed encoded bytes in chunks of any size
/// with [`push`](Self::push), then call [`finish`](Self::finish) once the
/// whole image has been delivered. Entries are applied to the tree as soon
/// as they are complete, so decoding overlaps the transfer and no whole-
/// image buffer ever exists. The decoder handles both wire formats behind
/// the version byte.
///
/// **Checkpoint rule:** after any `push`, [`checkpoint`](Self::checkpoint)
/// reports `(offset, last_inode)` — the total bytes accepted and the most
/// recently materialized inode. A transfer interrupted and resumed from
/// `offset` (with the same decoder, as the renewing junior does) yields a
/// result identical to an uninterrupted decode: the decoder internally
/// holds back the final [`TRAILER_LEN`] bytes it has seen plus any
/// incomplete entry, so chunk boundaries never split its view of the body.
///
/// Errors are sticky: after a `push` fails the decoder refuses further
/// input, and the caller restarts the transfer from scratch.
#[derive(Debug)]
pub struct StreamingImageDecoder {
    tree: NamespaceTree,
    /// Entry index → inode id (index 0 is the root). v2 only.
    ids: Vec<InodeId>,
    sn: Sn,
    version: u16,
    header_done: bool,
    hash: Fnv1a64,
    /// Total bytes accepted (the junior's resume offset).
    offset: u64,
    /// Undecoded tail: the held-back checksum candidate plus any
    /// incomplete entry straddling the last chunk boundary.
    pending: Vec<u8>,
    /// Most recently attached inode (checkpoint telemetry).
    last_id: InodeId,
    /// Retry-outcome window section (`W`), when the image carries one.
    window: RetryWindow,
    window_seen: bool,
    err: Option<ImageError>,
}

impl Default for StreamingImageDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingImageDecoder {
    pub fn new() -> Self {
        StreamingImageDecoder {
            tree: NamespaceTree::new(),
            ids: vec![ROOT_ID],
            sn: 0,
            version: 0,
            header_done: false,
            hash: Fnv1a64::new(),
            offset: 0,
            pending: Vec::new(),
            last_id: ROOT_ID,
            window: RetryWindow::new(),
            window_seen: false,
            err: None,
        }
    }

    /// Consume the next chunk of encoded bytes (any size, including empty).
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), ImageError> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        self.offset += chunk.len() as u64;
        let mut owned = std::mem::take(&mut self.pending);
        let res = if owned.is_empty() {
            self.process(chunk)
        } else {
            owned.extend_from_slice(chunk);
            self.process(&owned)
        };
        match res {
            Ok(consumed) => {
                if owned.is_empty() {
                    self.pending = chunk[consumed..].to_vec();
                } else {
                    owned.drain(..consumed);
                    self.pending = owned;
                }
                Ok(())
            }
            Err(e) => {
                self.err = Some(e.clone());
                Err(e)
            }
        }
    }

    /// `(offset, last inode id)`: the resume checkpoint after the bytes
    /// pushed so far.
    pub fn checkpoint(&self) -> (u64, InodeId) {
        (self.offset, self.last_id)
    }

    /// Pre-size internal tables for an image of `image_bytes` encoded
    /// bytes (e.g. the total announced by the image transfer's metadata).
    /// Purely an optimization — avoids rehash churn while millions of
    /// entries stream in.
    pub fn reserve_hint(&mut self, image_bytes: u64) {
        // A v2 entry averages ~30 encoded bytes.
        let entries = (image_bytes / 30) as usize;
        self.ids.reserve(entries);
        self.tree.reserve_inodes(entries);
    }

    /// Wire format version, once the header has been seen.
    pub fn version(&self) -> Option<u16> {
        self.header_done.then_some(self.version)
    }

    /// The checkpoint sn from the header, once seen.
    pub fn checkpoint_sn(&self) -> Option<Sn> {
        self.header_done.then_some(self.sn)
    }

    /// Verify the checksum and return the decoded tree and checkpoint sn.
    pub fn finish(self) -> Result<(NamespaceTree, Sn), ImageError> {
        self.finish_with_window().map(|(tree, sn, _)| (tree, sn))
    }

    /// Verify the checksum and return the decoded tree, checkpoint sn, and
    /// the retry-outcome window (empty when the image carries none).
    pub fn finish_with_window(self) -> Result<(NamespaceTree, Sn, RetryWindow), ImageError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        if !self.header_done || self.pending.len() > TRAILER_LEN {
            // Never saw a full header, or ended mid-entry.
            return Err(ImageError::Truncated);
        }
        if self.pending.len() < TRAILER_LEN {
            return Err(ImageError::Truncated);
        }
        let stored = u64::from_be_bytes(self.pending[..8].try_into().expect("8 bytes"));
        if stored != self.hash.digest() {
            return Err(ImageError::BadChecksum);
        }
        Ok((self.tree, self.sn, self.window))
    }

    /// Decode as much of `s` as possible; returns the consumed prefix
    /// length. The final [`TRAILER_LEN`] bytes currently visible are never
    /// consumed — they are the checksum candidate until more data proves
    /// otherwise.
    fn process(&mut self, s: &[u8]) -> Result<usize, ImageError> {
        let mut pos = 0;
        if !self.header_done {
            if s.len() < HEADER_LEN + TRAILER_LEN {
                return Ok(0);
            }
            let magic = u32::from_be_bytes(s[0..4].try_into().expect("4 bytes"));
            if magic != MAGIC {
                return Err(ImageError::BadMagic(magic));
            }
            let version = u16::from_be_bytes(s[4..6].try_into().expect("2 bytes"));
            if version != VERSION_V1 && version != VERSION_V2 {
                return Err(ImageError::BadVersion(version));
            }
            self.sn = u64::from_be_bytes(s[6..14].try_into().expect("8 bytes"));
            let root_perm = u16::from_be_bytes(s[14..16].try_into().expect("2 bytes"));
            self.tree.inodes.get_mut(&ROOT_ID).expect("root exists").set_perm(root_perm);
            self.hash.write(&s[..HEADER_LEN]);
            self.version = version;
            self.header_done = true;
            pos = HEADER_LEN;
        }
        while s.len() - pos > TRAILER_LEN {
            let window = &s[pos..s.len() - TRAILER_LEN];
            let step = if self.version == VERSION_V2 {
                self.entry_v2(window)?
            } else {
                self.entry_v1(window)?
            };
            match step {
                Some(n) => {
                    self.hash.write(&window[..n]);
                    pos += n;
                }
                None => break,
            }
        }
        Ok(pos)
    }

    /// Try to decode one v2 entry from the front of `w`. `Ok(None)` means
    /// the entry is not complete yet.
    fn entry_v2(&mut self, w: &[u8]) -> Result<Option<usize>, ImageError> {
        let Some(&kind) = w.first() else { return Ok(None) };
        if self.window_seen {
            return Err(ImageError::Corrupt("entry after retry-window section".into()));
        }
        if kind == b'W' {
            // Retry-outcome window: one length-prefixed blob, decoded whole
            // once fully visible (incomplete prefixes stay pending like any
            // other straddling entry).
            let mut pos = 1;
            let wlen = match peek_varint(&w[pos..]) {
                Varint::Need => return Ok(None),
                Varint::Bad => return Err(ImageError::Corrupt("malformed window length".into())),
                Varint::Val(v, n) => {
                    pos += n;
                    v as usize
                }
            };
            if w.len() < pos + wlen {
                return Ok(None);
            }
            self.window = RetryWindow::decode_bytes(&w[pos..pos + wlen])?;
            self.window_seen = true;
            return Ok(Some(pos + wlen));
        }
        let mut pos = 1;
        let parent = match peek_varint(&w[pos..]) {
            Varint::Need => return Ok(None),
            Varint::Bad => return Err(ImageError::Corrupt("malformed parent varint".into())),
            Varint::Val(v, n) => {
                pos += n;
                v
            }
        };
        let nlen = match peek_varint(&w[pos..]) {
            Varint::Need => return Ok(None),
            Varint::Bad => return Err(ImageError::Corrupt("malformed name length".into())),
            Varint::Val(v, n) => {
                pos += n;
                v as usize
            }
        };
        if w.len() < pos + nlen {
            return Ok(None);
        }
        let name = std::str::from_utf8(&w[pos..pos + nlen])
            .map_err(|_| ImageError::Corrupt("non-UTF-8 name".into()))?;
        pos += nlen;
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(ImageError::Corrupt(format!("invalid component name {name:?}")));
        }
        let parent_id = *self
            .ids
            .get(parent as usize)
            .ok_or_else(|| ImageError::Corrupt(format!("parent index {parent} not yet seen")))?;
        let inode = match kind {
            b'D' => {
                if w.len() < pos + 2 {
                    return Ok(None);
                }
                let perm = u16::from_be_bytes(w[pos..pos + 2].try_into().expect("2 bytes"));
                pos += 2;
                Inode::Directory { children: BTreeMap::new(), perm }
            }
            b'F' => {
                if w.len() < pos + 4 {
                    return Ok(None);
                }
                let perm = u16::from_be_bytes(w[pos..pos + 2].try_into().expect("2 bytes"));
                let replication = w[pos + 2];
                let sealed = w[pos + 3] != 0;
                pos += 4;
                let nblocks = match peek_varint(&w[pos..]) {
                    Varint::Need => return Ok(None),
                    Varint::Bad => return Err(ImageError::Corrupt("malformed block count".into())),
                    Varint::Val(v, n) => {
                        pos += n;
                        v as usize
                    }
                };
                let mut blocks = Vec::with_capacity(nblocks.min(1024));
                for _ in 0..nblocks {
                    match peek_varint(&w[pos..]) {
                        Varint::Need => return Ok(None),
                        Varint::Bad => {
                            return Err(ImageError::Corrupt("malformed block id".into()))
                        }
                        Varint::Val(v, n) => {
                            pos += n;
                            blocks.push(v);
                        }
                    }
                }
                Inode::File { blocks, replication, sealed, perm }
            }
            k => return Err(ImageError::Corrupt(format!("unknown entry kind {k}"))),
        };
        let id = self
            .tree
            .attach_child(parent_id, name, inode)
            .map_err(|e| ImageError::Corrupt(e.to_string()))?;
        self.ids.push(id);
        self.last_id = id;
        Ok(Some(pos))
    }

    /// Try to decode one legacy v1 full-path entry from the front of `w`.
    /// Paths are decoded as borrowed slices — one interned-name allocation
    /// inside the tree, no intermediate copies.
    fn entry_v1(&mut self, w: &[u8]) -> Result<Option<usize>, ImageError> {
        if w.len() < 5 {
            return Ok(None);
        }
        let kind = w[0];
        let plen = u32::from_be_bytes(w[1..5].try_into().expect("4 bytes")) as usize;
        if w.len() < 5 + plen {
            return Ok(None);
        }
        let p = std::str::from_utf8(&w[5..5 + plen])
            .map_err(|_| ImageError::Corrupt("non-UTF-8 path".into()))?;
        let mut pos = 5 + plen;
        let corrupt = |e: crate::tree::NsError| ImageError::Corrupt(e.to_string());
        match kind {
            b'D' => {
                if w.len() < pos + 2 {
                    return Ok(None);
                }
                let perm = u16::from_be_bytes(w[pos..pos + 2].try_into().expect("2 bytes"));
                pos += 2;
                self.tree.mkdir(p).map_err(corrupt)?;
                self.tree.set_perm(p, perm).map_err(corrupt)?;
            }
            b'F' => {
                if w.len() < pos + 2 + 1 + 1 + 4 {
                    return Ok(None);
                }
                let perm = u16::from_be_bytes(w[pos..pos + 2].try_into().expect("2 bytes"));
                let replication = w[pos + 2];
                let sealed = w[pos + 3] != 0;
                let nblocks =
                    u32::from_be_bytes(w[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
                pos += 8;
                if w.len() < pos + nblocks * 8 {
                    return Ok(None);
                }
                self.tree.create(p, replication).map_err(corrupt)?;
                for _ in 0..nblocks {
                    let b = u64::from_be_bytes(w[pos..pos + 8].try_into().expect("8 bytes"));
                    pos += 8;
                    self.tree.add_block(p, b).map_err(corrupt)?;
                }
                if sealed {
                    self.tree.close_file(p).map_err(corrupt)?;
                }
                self.tree.set_perm(p, perm).map_err(corrupt)?;
            }
            k => return Err(ImageError::Corrupt(format!("unknown entry kind {k}"))),
        }
        if let Some(id) = self.tree.resolve_path(p) {
            self.last_id = id;
        }
        Ok(Some(pos))
    }
}

/// Decode a whole in-memory image (either version) back into a tree,
/// verifying the checksum. Returns the tree and the checkpoint sn stored in
/// the image. One pass over the bytes — this is the streaming decoder fed a
/// single chunk.
pub fn decode_image(data: Bytes) -> Result<(NamespaceTree, Sn), ImageError> {
    let mut d = StreamingImageDecoder::new();
    d.reserve_hint(data.len() as u64);
    d.push(&data)?;
    d.finish()
}

/// [`decode_image`] variant that also returns the retry-outcome window
/// (empty for images written without one).
pub fn decode_image_with_window(
    data: Bytes,
) -> Result<(NamespaceTree, Sn, RetryWindow), ImageError> {
    let mut d = StreamingImageDecoder::new();
    d.reserve_hint(data.len() as u64);
    d.push(&data)?;
    d.finish_with_window()
}

/// Estimated encoded v2 image size (bytes) for a namespace with the given
/// shape, used to size experiments without materializing millions of
/// inodes. Derived from the v2 encoding: ~`name + 6` bytes per entry (kind,
/// parent varint, name length, perm) plus ~11 bytes of file attributes and
/// a short block list. Note the paper's calibration point — "more than 7
/// million files when the image size is about 1 GB", i.e. ~150 B/file — is
/// a property of HDFS's full-path-style records (our v1); the delta format
/// stores the same namespace in roughly a third of that.
pub fn estimated_image_bytes(files: u64, dirs: u64, avg_name_len: u64) -> u64 {
    (HEADER_LEN + TRAILER_LEN) as u64 + (files + dirs) * (avg_name_len + 6) + files * 11
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> NamespaceTree {
        let mut t = NamespaceTree::new();
        t.mkdir_p("/data/logs").unwrap();
        t.mkdir_p("/tmp").unwrap();
        for i in 0..20 {
            let p = format!("/data/logs/f{i}");
            t.create(&p, 3).unwrap();
            t.add_block(&p, 1000 + i).unwrap();
            if i % 2 == 0 {
                t.close_file(&p).unwrap();
            }
        }
        t.set_perm("/tmp", 0o777).unwrap();
        t.set_perm("/", 0o711).unwrap();
        t
    }

    #[test]
    fn image_round_trip_preserves_tree() {
        let t = sample_tree();
        let img = encode_image(&t, 42);
        assert_eq!(img.checkpoint_sn, 42);
        assert_eq!(img.files, 20);
        assert_eq!(img.dirs, 3);
        assert_eq!(img.version(), Some(VERSION_V2));
        let (t2, sn) = decode_image(img.data.clone()).unwrap();
        assert_eq!(sn, 42);
        assert_eq!(t.fingerprint(), t2.fingerprint());
        assert_eq!(t2.num_files(), 20);
        assert_eq!(t2.num_dirs(), 3);
        assert_eq!(t2.getfileinfo("/tmp").unwrap().perm, 0o777);
        assert_eq!(t2.getfileinfo("/data/logs/f3").unwrap().blocks, vec![1003]);
    }

    #[test]
    fn window_section_round_trips_at_every_chunk_boundary() {
        use crate::retry::{RetryEntry, RetryOutcome, RetryWindow};
        let t = sample_tree();
        let mut win = RetryWindow::new();
        win.record(4, 9, RetryEntry { outcome: RetryOutcome::Done, token: None });
        win.record(4, 10, RetryEntry { outcome: RetryOutcome::Block(1007), token: Some(55) });
        let img = encode_image_with_window(&t, 42, &win);
        // Buffered decode.
        let (t2, sn, w2) = decode_image_with_window(img.data.clone()).unwrap();
        assert_eq!(sn, 42);
        assert_eq!(t2.fingerprint(), t.fingerprint());
        assert_eq!(w2, win);
        // Plain decode ignores the window but still verifies.
        let (t3, _) = decode_image(img.data.clone()).unwrap();
        assert_eq!(t3.fingerprint(), t.fingerprint());
        // Streaming decode at every split point.
        for cut in 0..=img.data.len() {
            let mut d = StreamingImageDecoder::new();
            d.push(&img.data[..cut]).unwrap();
            d.push(&img.data[cut..]).unwrap();
            let (_, _, w) = d.finish_with_window().unwrap();
            assert_eq!(w, win, "split at {cut}");
        }
    }

    #[test]
    fn windowless_images_stay_byte_identical_and_decode_empty() {
        use crate::retry::RetryWindow;
        let t = sample_tree();
        let plain = encode_image(&t, 7);
        let explicit = encode_image_with_window(&t, 7, &RetryWindow::new());
        assert_eq!(plain.data, explicit.data, "empty window must be elided");
        let (_, _, w) = decode_image_with_window(plain.data.clone()).unwrap();
        assert!(w.is_empty(), "pre-extension images decode to an empty window");
    }

    #[test]
    fn windowed_image_corruption_detected_at_every_byte() {
        use crate::retry::{RetryEntry, RetryOutcome, RetryWindow};
        let mut win = RetryWindow::new();
        win.record(1, 1, RetryEntry { outcome: RetryOutcome::Done, token: None });
        let img = encode_image_with_window(&sample_tree(), 1, &win);
        for i in 0..img.data.len() {
            let mut bad = img.data.to_vec();
            bad[i] ^= 0x55;
            assert!(decode_image(Bytes::from(bad)).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn v1_round_trip_still_decodes() {
        let t = sample_tree();
        let img = encode_image_v1(&t, 9);
        assert_eq!(img.version(), Some(VERSION_V1));
        let (t2, sn) = decode_image(img.data.clone()).unwrap();
        assert_eq!(sn, 9);
        assert_eq!(t.fingerprint(), t2.fingerprint());
        assert!(t2.getfileinfo("/data/logs/f4").unwrap().sealed);
    }

    #[test]
    fn v1_and_v2_decodes_agree() {
        let t = sample_tree();
        let (a, _) = decode_image(encode_image_v1(&t, 5).data).unwrap();
        let (b, _) = decode_image(encode_image(&t, 5).data).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.num_files(), b.num_files());
        assert_eq!(a.num_dirs(), b.num_dirs());
    }

    #[test]
    fn v2_is_smaller_than_v1() {
        let t = sample_tree();
        let v1 = encode_image_v1(&t, 1).size_bytes();
        let v2 = encode_image(&t, 1).size_bytes();
        assert!(v2 < v1, "v2 {v2} B must be smaller than v1 {v1} B");
    }

    #[test]
    fn corruption_detected_at_every_byte() {
        for img in [encode_image(&sample_tree(), 1), encode_image_v1(&sample_tree(), 1)] {
            for i in 0..img.data.len() {
                let mut bad = img.data.to_vec();
                bad[i] ^= 0x55;
                assert!(
                    decode_image(Bytes::from(bad)).is_err(),
                    "flip at byte {i}/{} must not decode",
                    img.data.len()
                );
            }
        }
    }

    #[test]
    fn truncation_detected_at_every_cut_point() {
        for img in [encode_image(&sample_tree(), 1), encode_image_v1(&sample_tree(), 1)] {
            for cut in 0..img.data.len() {
                let prefix = img.data.slice(..cut);
                assert!(decode_image(prefix.clone()).is_err(), "cut at {cut} must not decode");
                // Streaming path: same prefix, any boundary, then finish.
                let mut d = StreamingImageDecoder::new();
                let ok = d.push(&prefix).is_ok();
                assert!(!ok || d.finish().is_err(), "streaming cut at {cut} must not finish");
            }
        }
    }

    #[test]
    fn streaming_matches_buffered_at_every_boundary() {
        let t = sample_tree();
        let img = encode_image(&t, 77);
        let (buffered, sn) = decode_image(img.data.clone()).unwrap();
        let reencoded = encode_image(&buffered, sn).data;
        for cut in 0..=img.data.len() {
            let mut d = StreamingImageDecoder::new();
            d.push(&img.data[..cut]).unwrap();
            let (off, _) = d.checkpoint();
            assert_eq!(off, cut as u64);
            d.push(&img.data[cut..]).unwrap();
            let (t2, sn2) = d.finish().unwrap();
            assert_eq!(sn2, 77);
            assert_eq!(t2.fingerprint(), buffered.fingerprint(), "split at {cut}");
            // Byte-identical result: re-encoding the resumed decode equals
            // re-encoding the buffered decode.
            assert_eq!(encode_image(&t2, sn).data, reencoded, "split at {cut}");
        }
    }

    #[test]
    fn streaming_decodes_v1_in_small_chunks() {
        let t = sample_tree();
        let img = encode_image_v1(&t, 3);
        for chunk in [1usize, 3, 7, 64] {
            let mut d = StreamingImageDecoder::new();
            for c in img.data.chunks(chunk) {
                d.push(c).unwrap();
            }
            assert_eq!(d.version(), Some(VERSION_V1));
            let (t2, sn) = d.finish().unwrap();
            assert_eq!(sn, 3);
            assert_eq!(t2.fingerprint(), t.fingerprint(), "chunk size {chunk}");
        }
    }

    #[test]
    fn decoder_error_is_sticky() {
        let img = encode_image(&sample_tree(), 1);
        let mut bad = img.data.to_vec();
        bad[HEADER_LEN] = b'Z'; // first entry kind
        let mut d = StreamingImageDecoder::new();
        let err = d.push(&bad).unwrap_err();
        assert!(matches!(err, ImageError::Corrupt(_)));
        assert_eq!(d.push(b"more").unwrap_err(), err);
        assert_eq!(d.finish().unwrap_err(), err);
    }

    #[test]
    fn chunks_cover_exactly_the_image() {
        let img = encode_image(&sample_tree(), 1);
        let mut reassembled = Vec::new();
        let chunk = 37u64;
        let mut off = 0u64;
        loop {
            let c = img.chunk(off, chunk);
            if c.is_empty() {
                break;
            }
            reassembled.extend_from_slice(&c);
            off += c.len() as u64;
        }
        assert_eq!(Bytes::from(reassembled), img.data);
        // Past-the-end chunks are empty, not panics.
        assert!(img.chunk(img.size_bytes() + 100, 10).is_empty());
    }

    #[test]
    fn chunk_survives_u64_overflow_offsets() {
        let img = encode_image(&sample_tree(), 1);
        // Regression: `offset + len` used to overflow u64 and panic.
        assert!(img.chunk(u64::MAX, 10).is_empty());
        assert!(img.chunk(u64::MAX, u64::MAX).is_empty());
        let tail = img.chunk(1, u64::MAX);
        assert_eq!(tail.len(), img.data.len() - 1);
    }

    #[test]
    fn empty_tree_round_trips() {
        let t = NamespaceTree::new();
        let img = encode_image(&t, 0);
        let (t2, sn) = decode_image(img.data).unwrap();
        assert_eq!(sn, 0);
        assert_eq!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn image_trailer_is_shared_fnv_of_body() {
        // The image checksum is the repo-wide shared FNV-1a-64 (hoisted to
        // `mams_journal::hash`), so images written by the pre-hoist private
        // copy still verify byte-for-byte.
        let img = encode_image(&sample_tree(), 1);
        let (body, trailer) = img.data.split_at(img.data.len() - TRAILER_LEN);
        assert_eq!(
            u64::from_be_bytes(trailer.try_into().unwrap()),
            mams_journal::hash::fnv1a64(body)
        );
    }

    #[test]
    fn estimator_reflects_v2_compaction() {
        // The paper's 7M-file namespace needs ~1 GB as full-path records;
        // the v2 delta format holds it in a few hundred MB.
        let est = estimated_image_bytes(7_000_000, 700_000, 16);
        let mb = est as f64 / (1024.0 * 1024.0);
        assert!((150.0..500.0).contains(&mb), "estimated {mb:.0} MB");
    }

    #[test]
    fn encoded_size_tracks_estimate_roughly() {
        let t = sample_tree();
        let img = encode_image(&t, 1);
        let est = estimated_image_bytes(t.num_files(), t.num_dirs(), 3);
        let ratio = img.size_bytes() as f64 / est as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }
}
