//! Block-location map.
//!
//! Data servers split file contents into blocks and "periodically report
//! block locations to both the active and standby nodes" (Section III-A), so
//! a promoted standby already knows where every block lives — the key
//! structural difference from HDFS BackupNode, whose replacement must
//! recollect all block locations before serving (and whose MTTR therefore
//! grows with file-system scale in Table I).

use std::collections::{BTreeSet, HashMap};

/// Identifies a data server.
pub type DataServerId = u32;

/// Metadata for one block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockInfo {
    pub len: u32,
    /// Data servers currently holding a replica (sorted for determinism).
    pub locations: BTreeSet<DataServerId>,
}

/// block id → replica locations, fed by data-server block reports.
#[derive(Debug, Clone, Default)]
pub struct BlockMap {
    blocks: HashMap<u64, BlockInfo>,
}

impl BlockMap {
    pub fn new() -> Self {
        BlockMap::default()
    }

    /// Register a block's existence with its length (journal `AddBlock`).
    pub fn register(&mut self, block_id: u64, len: u32) {
        self.blocks.entry(block_id).or_default().len = len;
    }

    /// Absorb a full block report from one data server: `held` is the
    /// complete set of blocks the server stores, so blocks it no longer
    /// reports are dropped from its location set.
    pub fn report(&mut self, server: DataServerId, held: &[u64]) {
        for info in self.blocks.values_mut() {
            info.locations.remove(&server);
        }
        for &b in held {
            self.blocks.entry(b).or_default().locations.insert(server);
        }
    }

    /// Look up a block.
    pub fn get(&self, block_id: u64) -> Option<&BlockInfo> {
        self.blocks.get(&block_id)
    }

    /// Replica count for a block (0 if unknown).
    pub fn replication_of(&self, block_id: u64) -> usize {
        self.blocks.get(&block_id).map_or(0, |i| i.locations.len())
    }

    /// Forget a block (file deletion).
    pub fn remove(&mut self, block_id: u64) {
        self.blocks.remove(&block_id);
    }

    /// Number of known blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks with fewer than `target` replicas (re-replication candidates).
    pub fn under_replicated(&self, target: usize) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .blocks
            .iter()
            .filter(|(_, i)| i.locations.len() < target)
            .map(|(&b, _)| b)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drop every location entry (what a BackupNode knows right after
    /// takeover, before recollection).
    pub fn clear_locations(&mut self) {
        for info in self.blocks.values_mut() {
            info.locations.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_replace_per_server_state() {
        let mut m = BlockMap::new();
        m.register(1, 100);
        m.register(2, 200);
        m.report(7, &[1, 2]);
        assert_eq!(m.replication_of(1), 1);
        // Server 7 now reports only block 2: it must lose block 1.
        m.report(7, &[2]);
        assert_eq!(m.replication_of(1), 0);
        assert_eq!(m.replication_of(2), 1);
    }

    #[test]
    fn multiple_servers_accumulate() {
        let mut m = BlockMap::new();
        m.register(5, 10);
        m.report(1, &[5]);
        m.report(2, &[5]);
        m.report(3, &[5]);
        assert_eq!(m.replication_of(5), 3);
        let info = m.get(5).unwrap();
        assert_eq!(info.len, 10);
        assert_eq!(info.locations.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn under_replication_detection() {
        let mut m = BlockMap::new();
        for b in 1..=3 {
            m.register(b, 1);
        }
        m.report(1, &[1, 2]);
        m.report(2, &[1]);
        assert_eq!(m.under_replicated(2), vec![2, 3]);
        assert_eq!(m.under_replicated(1), vec![3]);
    }

    #[test]
    fn reports_can_precede_registration() {
        // A data server may report a block before the journal record
        // arrives (races are normal); the location must not be lost.
        let mut m = BlockMap::new();
        m.report(4, &[9]);
        assert_eq!(m.replication_of(9), 1);
        m.register(9, 77);
        assert_eq!(m.get(9).unwrap().len, 77);
        assert_eq!(m.replication_of(9), 1);
    }

    #[test]
    fn clear_locations_models_backupnode_takeover() {
        let mut m = BlockMap::new();
        m.register(1, 1);
        m.report(1, &[1]);
        m.clear_locations();
        assert_eq!(m.replication_of(1), 0);
        assert_eq!(m.len(), 1, "block metadata survives; only locations are lost");
    }

    #[test]
    fn removal() {
        let mut m = BlockMap::new();
        m.register(1, 1);
        m.remove(1);
        assert!(m.get(1).is_none());
        assert!(m.is_empty());
    }
}
