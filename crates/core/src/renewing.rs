//! The renewing protocol: upgrading juniors back to hot standbys.
//!
//! "During the runtime, the active scans the global view periodically and
//! tries to launch the renewing process when there are juniors. It selects
//! one server with the least gap in namespace state and creates a session
//! for recovery at each time." (Section III-D.)
//!
//! The junior drives its own catch-up against the SSP — image first when
//! the `sn` gap is large (resumable, chunked), then journal pages — and
//! reports progress. When the gap is small the active launches the final
//! synchronization stage: it adds the junior to the live sync set and ships
//! the remaining batches directly; once the junior acknowledges the tail
//! `sn`, the active promotes it and the junior announces itself a standby.

use mams_journal::{JournalLog, ReplayCursor, SharedBatch, Sn};
use mams_namespace::StreamingImageDecoder;
use mams_sim::{Ctx, NodeId};
use mams_storage::proto::{PoolReq, PoolResp};

use crate::proto::GroupMsg;
use crate::server::{Catchup, CatchupStage, MdsServer, PoolCtx, RenewDriver, Role};

impl MdsServer {
    // ---------------------------------------------------- active side

    /// Periodic scan for juniors needing renewal (one session at a time).
    /// A session that makes no progress for several scans (lost messages,
    /// silently dead junior) is abandoned so another can start.
    pub(crate) fn renew_scan(&mut self, ctx: &mut Ctx<'_>) {
        if self.role != Role::Active {
            return;
        }
        if let Some(d) = self.renew_driver.as_mut() {
            d.stale_scans += 1;
            if d.stale_scans > 5 {
                ctx.trace("renew.session_stalled", || format!("junior n{}", d.junior));
                self.renew_driver = None;
            } else {
                return;
            }
        }
        // Registered members currently in junior state, by least gap
        // (highest sn) first.
        let juniors = self.members_in_state("J");
        let candidate =
            juniors.iter().filter_map(|&n| self.member_sns.get(&n).map(|&sn| (sn, n))).max();
        if let Some((sn, junior)) = candidate {
            let tip = self.log.tail_sn();
            ctx.trace("renew.session_start", || format!("junior n{junior} sn {sn} tip {tip}"));
            self.renew_driver = Some(RenewDriver { junior, last_progress_sn: sn, stale_scans: 0 });
            ctx.send(junior, GroupMsg::RenewStart { tip_sn: tip });
        }
    }

    /// Junior progress report. When the gap is small, enter the final
    /// synchronization stage.
    pub(crate) fn on_renew_progress(&mut self, ctx: &mut Ctx<'_>, from: NodeId, sn: Sn) {
        if self.role != Role::Active {
            return;
        }
        let driver = match self.renew_driver.as_mut() {
            Some(d) if d.junior == from => d,
            _ => return,
        };
        driver.last_progress_sn = sn;
        driver.stale_scans = 0;
        self.member_sns.insert(from, sn);
        let tail = self.log.tail_sn();
        if tail.saturating_sub(sn) <= self.cfg.timing.renew_final_gap {
            // Final stage: live-sync from now on + ship the missing range.
            self.standbys.insert(from);
            match self.log.read_after(sn) {
                Some(batches) if !batches.is_empty() => {
                    // Shared handles into our log — shipping the range is
                    // reference-count bumps, not a copy of the records.
                    let batches: Vec<SharedBatch> =
                        batches.iter().map(SharedBatch::share).collect();
                    ctx.trace("renew.final_sync", || {
                        format!("n{from}: {} batches to tail {tail}", batches.len())
                    });
                    ctx.send(from, GroupMsg::RenewJournal { epoch: self.epoch, batches });
                }
                Some(_) => {
                    // Already at the tail; promote on its next ack (or now).
                    if sn == tail {
                        self.promote_junior(ctx, from);
                    }
                }
                None => {
                    // The range was compacted from our local log (rare:
                    // checkpoint raced the session). Let the junior keep
                    // pulling from the pool.
                    self.standbys.remove(&from);
                }
            }
        }
    }

    /// Called from the SyncAck path: a renewing junior that acknowledges
    /// our tail is fully synchronized — flip it to standby in the view.
    pub(crate) fn renew_check_promotion(&mut self, ctx: &mut Ctx<'_>, from: NodeId, sn: Sn) {
        if self.role != Role::Active {
            return;
        }
        let is_session_junior = self.renew_driver.as_ref().is_some_and(|d| d.junior == from);
        if is_session_junior && sn == self.log.tail_sn() {
            self.promote_junior(ctx, from);
        }
    }

    fn promote_junior(&mut self, ctx: &mut Ctx<'_>, junior: NodeId) {
        ctx.trace("renew.promoted", || format!("n{junior}"));
        self.renew_driver = None;
        self.standbys.insert(junior);
        ctx.send(
            junior,
            GroupMsg::RegisterAck {
                as_standby: true,
                epoch: self.epoch,
                tail_sn: self.log.tail_sn(),
            },
        );
    }

    // ---------------------------------------------------- junior side

    /// The active opened a renewing session with us.
    pub(crate) fn on_renew_start(&mut self, ctx: &mut Ctx<'_>, from: NodeId, tip_sn: Sn) {
        if self.role != Role::Junior {
            return;
        }
        self.active_hint = Some(from);
        let gap = tip_sn.saturating_sub(self.cursor.max_sn());
        ctx.trace("renew.begin", || format!("gap {gap}"));
        if let Some(c) = &self.catchup {
            // Resume an interrupted session from its checkpoint instead of
            // retransmitting everything.
            if let CatchupStage::Image { offset, .. } = &c.stage {
                ctx.trace("renew.resume", || format!("image offset {offset}"));
                self.request_image_meta(ctx, false);
                return;
            }
        }
        if gap > self.cfg.timing.renew_image_gap {
            self.start_image_fetch(ctx, false);
        } else {
            // The session start tells us the active's tip, so the request
            // window can open fully on the first pump.
            self.enter_journal_stage(ctx, false, tip_sn);
        }
    }

    /// Begin (or resume) fetching the namespace image from the pool.
    pub(crate) fn start_image_fetch(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let keep = matches!(&self.catchup, Some(Catchup { stage: CatchupStage::Image { .. }, .. }));
        if !keep {
            self.catchup = Some(Catchup { stage: CatchupStage::Meta });
        }
        self.request_image_meta(ctx, for_upgrade);
    }

    fn request_image_meta(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let group = self.cfg.group;
        self.pool_send(
            ctx,
            move |req| PoolReq::ReadImageMeta { group, req },
            PoolCtx::ImageMeta { for_upgrade },
        );
    }

    fn request_image_chunk(&mut self, ctx: &mut Ctx<'_>, offset: u64, for_upgrade: bool) {
        let group = self.cfg.group;
        let len = self.cfg.timing.image_chunk;
        self.pool_send(
            ctx,
            move |req| PoolReq::ReadImageChunk { group, offset, len, req },
            PoolCtx::ImageChunk { for_upgrade },
        );
    }

    /// Switch the catch-up session into the journal stage and start the
    /// request window. `tail_hint` is the highest journal sn we know the
    /// pool holds (0 when unknown — the first response teaches us).
    fn enter_journal_stage(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool, tail_hint: Sn) {
        self.catchup = Some(Catchup {
            stage: CatchupStage::Journal {
                inflight: 0,
                next_after: self.cursor.max_sn(),
                tail_hint,
            },
        });
        self.pump_journal_pages(ctx, for_upgrade);
    }

    /// Top up the journal-page request window: keep up to `catchup_window`
    /// page reads in flight, each asking for the page after the previous
    /// request's range, so the pool RTT overlaps local replay. Responses
    /// may arrive out of order; the stash/cursor machinery in
    /// `ingest_batch` reassembles them contiguously.
    fn pump_journal_pages(&mut self, ctx: &mut Ctx<'_>, for_upgrade: bool) {
        let page = self.cfg.timing.catchup_page as u64;
        let window = self.cfg.timing.catchup_window.max(1);
        loop {
            let applied = self.cursor.max_sn();
            let after = {
                let Some(Catchup {
                    stage: CatchupStage::Journal { inflight, next_after, tail_hint },
                }) = self.catchup.as_mut()
                else {
                    return;
                };
                if *inflight >= window {
                    return;
                }
                if *inflight == 0 {
                    // The window drained: anchor speculation back to the
                    // contiguously applied position. This re-requests any
                    // range whose response was lost instead of stalling on
                    // the hole forever.
                    *next_after = applied;
                } else if *next_after >= *tail_hint {
                    // Nothing known beyond this point; the in-flight
                    // responses will refresh the tail hint.
                    return;
                }
                let after = *next_after;
                *next_after = after.saturating_add(page);
                *inflight += 1;
                after
            };
            let group = self.cfg.group;
            let max = self.cfg.timing.catchup_page;
            self.pool_send(
                ctx,
                move |req| PoolReq::ReadJournal { group, after_sn: after, max, req },
                PoolCtx::CatchupPage { for_upgrade },
            );
        }
    }

    pub(crate) fn on_image_meta(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp, for_upgrade: bool) {
        if self.catchup.is_none() {
            return;
        }
        match resp {
            PoolResp::ImageMeta { meta: Some((image_sn, size)), .. } => {
                if image_sn <= self.cursor.max_sn() {
                    // We are already past the checkpoint: journal only.
                    self.enter_journal_stage(ctx, for_upgrade, 0);
                    return;
                }
                // Start or resume the chunked transfer.
                let offset = match &self.catchup.as_ref().expect("checked").stage {
                    CatchupStage::Image { offset, .. } => *offset,
                    _ => {
                        if let Some(c) = self.catchup.as_mut() {
                            let mut decoder = Box::new(StreamingImageDecoder::new());
                            decoder.reserve_hint(size);
                            c.stage = CatchupStage::Image { offset: 0, decoder };
                        }
                        0
                    }
                };
                self.request_image_chunk(ctx, offset, for_upgrade);
            }
            _ => {
                // No image in the pool: fall back to pure journal replay.
                self.enter_journal_stage(ctx, for_upgrade, 0);
            }
        }
    }

    pub(crate) fn on_image_chunk(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp, for_upgrade: bool) {
        let (chunk_offset, data, total) = match resp {
            PoolResp::ImageChunk { offset, data, total, .. } => (offset, data, total),
            other => {
                ctx.trace("renew.chunk_error", || format!("{other:?}"));
                return;
            }
        };
        // Feed the chunk straight into the streaming decoder: the tree is
        // rebuilt as bytes arrive, so the junior never holds a whole-image
        // buffer and the decode cost overlaps the transfer.
        let step = {
            let c = match self.catchup.as_mut() {
                Some(c) => c,
                None => return,
            };
            match &mut c.stage {
                CatchupStage::Image { offset, decoder } => {
                    if chunk_offset != *offset {
                        // A duplicate/stale stream (e.g. a resumed session
                        // racing the original): exactly one stream may
                        // advance the cursor; drop the other.
                        return;
                    }
                    match decoder.push(&data) {
                        Ok(()) => {
                            *offset += data.len() as u64;
                            if *offset >= total || data.is_empty() {
                                Ok(true)
                            } else {
                                Ok(false)
                            }
                        }
                        Err(e) => Err(e),
                    }
                }
                _ => return, // stale chunk after a stage change
            }
        };
        let done = match step {
            Ok(done) => done,
            Err(e) => {
                ctx.trace("renew.image_corrupt", || e.to_string());
                // Retransmit from scratch.
                self.catchup = Some(Catchup { stage: CatchupStage::Meta });
                self.request_image_meta(ctx, for_upgrade);
                return;
            }
        };
        if !done {
            let offset = match &self.catchup.as_ref().expect("checked").stage {
                CatchupStage::Image { offset, .. } => *offset,
                _ => unreachable!(),
            };
            self.request_image_chunk(ctx, offset, for_upgrade);
            return;
        }
        // Every byte delivered: verify the checksum and adopt the tree.
        let placeholder = CatchupStage::Journal { inflight: 0, next_after: 0, tail_hint: 0 };
        let decoder = match self.catchup.as_mut() {
            Some(c) => match std::mem::replace(&mut c.stage, placeholder) {
                CatchupStage::Image { decoder, .. } => decoder,
                other => {
                    c.stage = other;
                    return;
                }
            },
            None => return,
        };
        match decoder.finish() {
            Ok((tree, image_sn)) => {
                ctx.trace("renew.image_loaded", || format!("checkpoint sn {image_sn}"));
                self.ns = mams_namespace::ShardedNamespace::from_tree(tree);
                self.replay.reset();
                self.log = JournalLog::with_base(image_sn);
                self.cursor = ReplayCursor::at(image_sn);
                self.stash.clear();
                self.enter_journal_stage(ctx, for_upgrade, 0);
            }
            Err(e) => {
                ctx.trace("renew.image_corrupt", || e.to_string());
                // Retransmit from scratch.
                self.catchup = Some(Catchup { stage: CatchupStage::Meta });
                self.request_image_meta(ctx, for_upgrade);
            }
        }
    }

    pub(crate) fn on_catchup_page(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp, for_upgrade: bool) {
        if for_upgrade && self.role != Role::Upgrading {
            // A straggler from a finished (or abandoned) upgrade; acting on
            // it could re-run `finish_upgrade`.
            return;
        }
        // Account the response against the request window. A page arriving
        // after the stage changed (image restart, session reset) is stale:
        // drop it rather than corrupt another stage's bookkeeping.
        {
            let Some(Catchup { stage: CatchupStage::Journal { inflight, .. } }) =
                self.catchup.as_mut()
            else {
                return;
            };
            *inflight = inflight.saturating_sub(1);
        }
        let (batches, tail_sn, compacted) = match resp {
            PoolResp::Journal { batches, tail_sn, compacted, .. } => (batches, tail_sn, compacted),
            other => {
                ctx.trace("renew.page_error", || format!("{other:?}"));
                // Keep the pipeline moving despite the failed read.
                self.pump_journal_pages(ctx, for_upgrade);
                return;
            }
        };
        if compacted {
            // Checkpoint raced us; restart from the image.
            self.start_image_fetch(ctx, for_upgrade);
            return;
        }
        for b in batches {
            self.ingest_batch(b);
        }
        self.note_divergence(ctx);
        if let Some(Catchup { stage: CatchupStage::Journal { tail_hint, .. } }) =
            self.catchup.as_mut()
        {
            *tail_hint = (*tail_hint).max(tail_sn);
        }
        let caught_up = self.cursor.max_sn() >= tail_sn;
        if for_upgrade {
            if caught_up {
                self.finish_upgrade(ctx);
            } else {
                self.pump_journal_pages(ctx, true);
            }
            return;
        }
        // Renewing: report progress; keep paging until we reach the
        // shared journal's tail, then wait for the final stage.
        let sn = self.cursor.max_sn();
        if let Some(active) = self.active_hint {
            if active != ctx.id() {
                ctx.send(active, GroupMsg::RenewProgress { sn });
            }
        }
        if caught_up {
            if let Some(c) = self.catchup.as_mut() {
                c.stage = CatchupStage::Final;
            }
        } else {
            self.pump_journal_pages(ctx, false);
        }
    }

    /// The active shipped the final-synchronization range directly.
    pub(crate) fn on_renew_journal(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        epoch: u64,
        batches: Vec<SharedBatch>,
    ) {
        if epoch < self.group_epoch || matches!(self.role, Role::Active | Role::Upgrading) {
            return;
        }
        self.group_epoch = epoch;
        self.active_hint = Some(from);
        for b in batches {
            self.ingest_batch(b);
        }
        self.note_divergence(ctx);
        ctx.send(from, GroupMsg::SyncAck { sn: self.cursor.max_sn() });
    }
}
