//! Scenario execution: compile a fault program onto the simulator, run it
//! against a recorded workload, then sweep the invariants.
//!
//! A run has three phases:
//!
//! 1. **Load + faults** (`run_secs`): clients hammer the shared key set
//!    while the program's actions fire at their scheduled times.
//! 2. **Cleanup**: every injected condition is lifted — cuts healed,
//!    shapes cleared, paused nodes resumed, clocks trued, crashed MDS
//!    nodes restarted.
//! 3. **Grace**: the cluster gets a recovery window, after which the
//!    invariants must hold: an active per group, post-heal progress, no
//!    replica divergence, and a linearizable client history.

use mams_cluster::deploy::{self, DeploySpec};
use mams_cluster::{History, Metrics, Recorder};
use mams_core::MdsTiming;
use mams_sim::{DetRng, Duration, NodeId, NodeStatus, Sim, SimConfig, SimTime};

use crate::checker::{check_history_with, CheckOutcome, CheckerOpts};
use crate::scenario::{FaultAction, FaultKind, NodeRef, Scenario, Topology};

/// Post-fault recovery window before invariants are checked.
const GRACE: Duration = Duration::from_secs(25);

/// How one run of a scenario should be driven.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    pub seed: u64,
    /// Arm the deliberate double-ack defect (teeth test for the checker).
    pub inject_double_ack: bool,
    /// Check under the legacy "modulo retry duplication" echo model
    /// instead of strict linearizability (for builds without the
    /// replicated retry window; campaign `--legacy-echoes`).
    pub legacy_echoes: bool,
    /// Replace the scenario's generated fault program (shrinking).
    pub program: Option<Vec<FaultAction>>,
    /// Checker override (None = defaults).
    pub checker: Option<CheckerOpts>,
}

/// Everything observed in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub scenario: &'static str,
    pub seed: u64,
    /// The program that actually ran (witness for shrinking).
    pub program: Vec<FaultAction>,
    pub ops_ok: u64,
    pub ops_failed: u64,
    pub records: usize,
    /// How many records were speculative-acked (0 unless the scenario
    /// drives `OpSpec` clients).
    pub spec_acked: usize,
    pub check: CheckOutcome,
    /// Violated run invariants, human-readable.
    pub invariants: Vec<String>,
}

impl RunReport {
    /// An unexpected failure (what campaigns shrink and report).
    pub fn failed(&self) -> bool {
        self.check.is_violation() || !self.invariants.is_empty()
    }
}

/// Resolve a symbolic node reference against the live cluster.
fn resolve(sim: &Sim, topo: &Topology, r: NodeRef) -> Option<NodeId> {
    match r {
        NodeRef::Coord => Some(topo.coord),
        NodeRef::Pool(i) => topo.pool.get(i).copied(),
        NodeRef::Member { group, idx } => {
            topo.groups.get(group as usize).and_then(|g| g.get(idx)).copied()
        }
        NodeRef::Active { group } => active_of(sim, group),
        NodeRef::BackupOf { group } => {
            let act = active_of(sim, group);
            topo.groups.get(group as usize).and_then(|g| {
                g.iter()
                    .find(|&&n| {
                        Some(n) != act && sim.node_status(n) == NodeStatus::Up && !sim.is_paused(n)
                    })
                    .copied()
            })
        }
        // A set, not a node: only the set-valued positions (resolve_all)
        // expand it.
        NodeRef::Clients => None,
    }
}

/// The group's current active according to the recorded view trace.
pub fn active_of(sim: &Sim, group: u32) -> Option<NodeId> {
    let set_prefix = format!("g/{group}/active=");
    let del_key = format!("g/{group}/active");
    for e in sim.trace().events().iter().rev() {
        if e.tag == "view.set" {
            if let Some(rest) = e.detail.strip_prefix(set_prefix.as_str()) {
                return rest.parse().ok();
            }
        }
        if e.tag == "view.del" && e.detail == del_key {
            return None;
        }
    }
    None
}

fn resolve_all(sim: &Sim, topo: &Topology, refs: &[NodeRef]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    for &r in refs {
        match r {
            NodeRef::Clients => out.extend(topo.clients.iter().copied()),
            _ => out.extend(resolve(sim, topo, r)),
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Apply one fault action right now. Status guards make actions no-ops
/// when their target is already in the desired state, so shrunk programs
/// (with crash/restart pairs broken up) stay well-formed.
fn apply(sim: &mut Sim, topo: &Topology, kind: &FaultKind) {
    match kind {
        FaultKind::Crash(r) => {
            if let Some(n) = resolve(sim, topo, *r) {
                if sim.node_status(n) == NodeStatus::Up {
                    sim.crash(n);
                }
            }
        }
        FaultKind::Restart(r) => {
            if let Some(n) = resolve(sim, topo, *r) {
                if sim.node_status(n) == NodeStatus::Down {
                    sim.restart(n);
                }
            }
        }
        FaultKind::Pause(r) => {
            if let Some(n) = resolve(sim, topo, *r) {
                if sim.node_status(n) == NodeStatus::Up && !sim.is_paused(n) {
                    sim.pause(n);
                }
            }
        }
        FaultKind::Resume(r) => {
            if let Some(n) = resolve(sim, topo, *r) {
                if sim.is_paused(n) {
                    sim.resume(n);
                }
            }
        }
        FaultKind::Partition { a, b, heal_ms } => {
            let (sa, sb) = (resolve_all(sim, topo, a), resolve_all(sim, topo, b));
            let now = sim.now();
            mams_cluster::faults::schedule_partition(
                sim,
                sa,
                sb,
                now,
                heal_ms.map(Duration::from_millis),
            );
        }
        FaultKind::OneWay { from, to, heal_ms } => {
            let (sf, st) = (resolve_all(sim, topo, from), resolve_all(sim, topo, to));
            for &f in &sf {
                for &t in &st {
                    if f != t {
                        sim.net_mut().cut_one_way(f, t);
                    }
                }
            }
            if let Some(ms) = heal_ms {
                sim.after(Duration::from_millis(*ms), move |s| {
                    for &f in &sf {
                        for &t in &st {
                            if f != t {
                                s.net_mut().heal_one_way(f, t);
                            }
                        }
                    }
                });
            }
        }
        FaultKind::SlowNode { node, factor, clear_ms } => {
            if let Some(n) = resolve(sim, topo, *node) {
                let now = sim.now();
                mams_cluster::faults::schedule_slow_node(
                    sim,
                    n,
                    *factor,
                    now,
                    clear_ms.map(Duration::from_millis),
                );
            }
        }
        FaultKind::ShapeLink { a, b, factor, loss, clear_ms } => {
            let (na, nb) = (resolve(sim, topo, *a), resolve(sim, topo, *b));
            if let (Some(na), Some(nb)) = (na, nb) {
                let shape = mams_sim::LinkShape {
                    latency_factor: *factor,
                    loss: *loss,
                    ..Default::default()
                };
                sim.net_mut().shape_link(na, nb, shape);
                if let Some(ms) = clear_ms {
                    sim.after(Duration::from_millis(*ms), move |s| {
                        s.net_mut().clear_link_shape(na, nb);
                    });
                }
            }
        }
        FaultKind::GlobalLoss(p) => sim.net_mut().set_loss_probability(*p),
        FaultKind::GlobalDup(p) => sim.net_mut().set_dup_probability(*p),
        FaultKind::ClockSkew { node, factor } => {
            if let Some(n) = resolve(sim, topo, *node) {
                sim.set_clock_skew(n, *factor);
            }
        }
        FaultKind::CorruptImage { group } => {
            // Reach into the shared pool directly: this models bit rot on
            // the stored image, not a protocol message.
            let g = *group;
            let sp = TOPO_POOL.with(|p| p.borrow().clone());
            if let Some(sp) = sp {
                let hit = sp.lock().group_mut(g).corrupt_image();
                let now = sim.now();
                sim.trace_mut()
                    .record(now, u32::MAX, "chaos.corrupt_image", || format!("g{g} hit={hit}"));
            }
        }
        FaultKind::CorruptDelta { group } => {
            let g = *group;
            let sp = TOPO_POOL.with(|p| p.borrow().clone());
            if let Some(sp) = sp {
                let hit = sp.lock().group_mut(g).corrupt_delta();
                let now = sim.now();
                sim.trace_mut()
                    .record(now, u32::MAX, "chaos.corrupt_delta", || format!("g{g} hit={hit}"));
            }
        }
        FaultKind::CompactPool { group } => {
            let g = *group;
            let sp = TOPO_POOL.with(|p| p.borrow().clone());
            if let Some(sp) = sp {
                let outcome = sp.lock().group_mut(g).compact();
                let now = sim.now();
                sim.trace_mut()
                    .record(now, u32::MAX, "chaos.compact_pool", || format!("g{g} {outcome:?}"));
            }
        }
        FaultKind::ClearNetwork => {
            let net = sim.net_mut();
            net.heal_all();
            net.clear_shapes();
            net.set_loss_probability(0.0);
            net.set_dup_probability(0.0);
        }
    }
}

thread_local! {
    /// The running scenario's shared pool, visible to `CorruptImage`
    /// actions (fault closures only get `&mut Sim`).
    static TOPO_POOL: std::cell::RefCell<Option<mams_storage::pool::SharedPool>> =
        const { std::cell::RefCell::new(None) };
}

/// Run one scenario once. Deterministic in `(scenario, cfg)`.
pub fn run_scenario(sc: &Scenario, cfg: &RunConfig) -> RunReport {
    let mut sim = Sim::new(SimConfig { seed: cfg.seed, ..SimConfig::default() });

    let mut timing = (sc.tune)(MdsTiming::default());
    timing.fault_double_ack = cfg.inject_double_ack;
    let spec = DeploySpec {
        groups: sc.groups,
        standbys_per_group: sc.standbys,
        juniors_per_group: sc.juniors,
        data_servers: 1,
        timing,
        ..DeploySpec::default()
    };
    let mut deployment = deploy::build(&mut sim, spec);
    let mut topo = Topology {
        coord: deployment.coord,
        pool: deployment.pool.clone(),
        groups: deployment.groups.iter().map(|g| g.members.clone()).collect(),
        clients: Vec::new(),
    };
    TOPO_POOL.with(|p| *p.borrow_mut() = Some(deployment.shared_pool.clone()));

    let history = History::new();
    let metrics = Metrics::new(false);
    let speculative = sc.speculative;
    for i in 0..sc.clients {
        let client = deployment.next_client_id();
        let log = history.clone();
        let think = Duration::from_millis(sc.think_ms);
        let node = deployment.add_client_with(
            &mut sim,
            (sc.workload)(i, sc.keys),
            metrics.clone(),
            move |mut c| {
                c.history = Some(Recorder { client, log });
                c.think = think;
                c.speculative = speculative;
                c
            },
        );
        topo.clients.push(node);
    }

    // Compile the program: every action becomes a scheduled callback.
    let program = cfg
        .program
        .clone()
        .unwrap_or_else(|| (sc.faults)(&mut DetRng::seed_from_u64(cfg.seed ^ 0x5EED_CAFE)));
    let t0 = sim.now();
    for action in &program {
        let kind = action.kind.clone();
        let topo_c = topo.clone();
        sim.at(t0 + Duration::from_millis(action.at_ms), move |s| {
            apply(s, &topo_c, &kind);
        });
    }

    sim.run_for(Duration::from_secs(sc.run_secs));

    // Cleanup: lift everything the program may have left standing.
    apply(&mut sim, &topo, &FaultKind::ClearNetwork);
    for g in &topo.groups {
        for &n in g {
            sim.set_clock_skew(n, 1.0);
            if sim.is_paused(n) {
                sim.resume(n);
            }
            if sim.node_status(n) == NodeStatus::Down {
                sim.restart(n);
            }
        }
    }

    let heal_time = sim.now();
    sim.run_for(GRACE);
    // Diagnostic hook: CHAOS_TRACE=1 dumps the full event trace of every
    // run to stderr. Combine with `--scenario X --seeds N` to replay a
    // failing seed and see exactly what the cluster did.
    if std::env::var("CHAOS_TRACE").is_ok() {
        for e in sim.trace().events() {
            eprintln!("[trc] {:>9}us n{} {} {}", e.time.micros(), e.node, e.tag, e.detail);
        }
    }
    TOPO_POOL.with(|p| *p.borrow_mut() = None);

    // ---- invariants ----
    let mut invariants = Vec::new();
    for e in sim.trace().events() {
        // Exact tag: `member.reset_divergent` is the *legitimate* discard of
        // a never-acknowledged journal suffix on re-registration, not
        // divergence. Only a failed replay of an acknowledged record counts.
        if e.tag == "replica.diverged" {
            invariants.push(format!("replica divergence: {} ({})", e.tag, e.detail));
            break;
        }
    }
    for g in 0..sc.groups {
        if active_of(&sim, g).is_none() {
            invariants.push(format!("no active for group {g} after grace"));
        }
    }
    let records = history.records();
    if !post_heal_progress(&records, heal_time) {
        invariants.push("no successful operation after faults were lifted".into());
    }

    // Speculative runs relax the checker (spec acks may be lost to
    // failover) but add the token contract: ordering tokens may only
    // regress once a fault could have fired.
    let checker = cfg.checker.unwrap_or(CheckerOpts {
        spec_maybe_lost: sc.speculative,
        echoes: cfg.legacy_echoes,
        ..CheckerOpts::default()
    });
    if sc.speculative {
        let first_fault_us =
            program.iter().map(|a| t0.micros() + a.at_ms * 1_000).min().unwrap_or(u64::MAX);
        if let Some(msg) = crate::checker::check_token_contract(&records, first_fault_us) {
            invariants.push(format!("token contract: {msg}"));
        }
    }
    let check = check_history_with(&records, &checker);

    RunReport {
        scenario: sc.name,
        seed: cfg.seed,
        program,
        ops_ok: metrics.ok_count(),
        ops_failed: metrics.failed_count(),
        records: records.len(),
        spec_acked: records.iter().filter(|r| r.spec).count(),
        check,
        invariants,
    }
}

fn post_heal_progress(records: &[mams_cluster::OpRecord], heal: SimTime) -> bool {
    records.iter().any(|r| r.ok == Some(true) && r.completed_us.is_some_and(|t| t > heal.micros()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn quiet_scenario_is_clean() {
        let rep = run_scenario(&scenario::quiet(), &RunConfig { seed: 11, ..Default::default() });
        assert!(!rep.failed(), "invariants: {:?} check: {:?}", rep.invariants, rep.check);
        assert!(rep.ops_ok > 50, "got {}", rep.ops_ok);
        assert!(matches!(rep.check, CheckOutcome::Ok { .. }));
    }

    #[test]
    fn checker_has_teeth_against_injected_double_ack() {
        // The deliberate bug: the active acks deletes without applying
        // them. Fault-free runs have no retries, hence no echo slack — the
        // checker must convict.
        let rep = run_scenario(
            &scenario::quiet(),
            &RunConfig { seed: 11, inject_double_ack: true, ..Default::default() },
        );
        assert!(
            rep.check.is_violation(),
            "double-ack must be caught, got {:?} (inv {:?})",
            rep.check,
            rep.invariants
        );
    }

    #[test]
    fn failover_crash_scenario_survives() {
        let sc = scenario::by_name("failover_crash").unwrap();
        let rep = run_scenario(&sc, &RunConfig { seed: 3, ..Default::default() });
        assert!(!rep.failed(), "invariants: {:?} check: {:?}", rep.invariants, rep.check);
        // The program really fired: the active changed hands at least once.
        assert!(rep.ops_ok > 0);
    }

    #[test]
    fn spec_ack_loss_scenario_survives() {
        let sc = scenario::by_name("spec_ack_loss").unwrap();
        let rep = run_scenario(&sc, &RunConfig { seed: 5, ..Default::default() });
        assert!(!rep.failed(), "invariants: {:?} check: {:?}", rep.invariants, rep.check);
        assert!(rep.ops_ok > 0);
        // The speculative path really engaged.
        assert!(rep.spec_acked > 0, "no spec-acked records in a speculative scenario");
    }

    #[test]
    fn retry_across_failover_scenario_is_strictly_linearizable() {
        // Reply cuts force same-seq retries onto a freshly promoted
        // active; the window seeded from journal replay must answer them
        // exactly-once. Checked strictly (echoes off by default).
        let sc = scenario::by_name("retry_across_failover").unwrap();
        let rep = run_scenario(&sc, &RunConfig { seed: 9, ..Default::default() });
        assert!(!rep.failed(), "invariants: {:?} check: {:?}", rep.invariants, rep.check);
        assert!(rep.ops_ok > 0);
    }

    #[test]
    fn retry_after_delta_restart_scenario_is_strictly_linearizable() {
        let sc = scenario::by_name("retry_after_delta_restart").unwrap();
        let rep = run_scenario(&sc, &RunConfig { seed: 13, ..Default::default() });
        assert!(!rep.failed(), "invariants: {:?} check: {:?}", rep.invariants, rep.check);
        assert!(rep.ops_ok > 0);
    }

    #[test]
    fn adaptive_gray_standby_scenario_survives() {
        let sc = scenario::by_name("adaptive_gray_standby").unwrap();
        let rep = run_scenario(&sc, &RunConfig { seed: 7, ..Default::default() });
        assert!(!rep.failed(), "invariants: {:?} check: {:?}", rep.invariants, rep.check);
        assert!(rep.ops_ok > 0);
    }
}
