//! Offline stand-in for `serde_derive`: the derives emit empty impls of the
//! stand-in marker traits. Generic types are not supported (nothing in this
//! workspace derives serde on a generic type).

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following `struct`, `enum`, or
/// `union`, skipping attributes and visibility.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    panic!("serde stand-in derive: could not find type name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
