//! Duplicate-delivery safety: a client resend of an already-applied (or
//! still in-flight) mutation must never double-apply.
//!
//! The cluster client retries an op with the *same* seq after a timeout; if
//! the first delivery was applied but the reply lost, the server must answer
//! the retry from its per-client retry cache — the very same `Arc<MdsResp>`
//! — and must not journal or execute the mutation a second time.

use std::sync::{Arc, Mutex};

use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_core::{FsOp, MdsReq, MdsResp};
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim, SimConfig};

const T_FIRST: u64 = 1;
const T_RESEND: u64 = 2;

/// Sends the same `MdsReq::Op` seq three times: twice back-to-back (an
/// in-flight duplicate, e.g. a delayed network copy) and once again after
/// the op has long completed (a client resend after a reply timeout).
struct Resender {
    active: NodeId,
    replies: Arc<Mutex<Vec<Arc<MdsResp>>>>,
}

impl Resender {
    fn op(&self) -> MdsReq {
        MdsReq::Op {
            op: FsOp::Create { path: "/dup-target".into(), replication: 3 },
            seq: 7,
            acked: 0,
        }
    }
}

impl Node for Resender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Let the group elect its active first.
        ctx.set_timer(Duration::from_secs(2), T_FIRST);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_FIRST => {
                // Original + immediate duplicate while the first is still
                // in flight (ack waits for SSP durability, so the second
                // delivery arrives well before completion).
                ctx.send(self.active, self.op());
                ctx.send(self.active, self.op());
                ctx.set_timer(Duration::from_millis(500), T_RESEND);
            }
            T_RESEND => ctx.send(self.active, self.op()),
            _ => {}
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        if let Ok(resp) = msg.downcast::<Arc<MdsResp>>() {
            self.replies.lock().unwrap().push(resp);
        }
    }
}

#[test]
fn duplicate_delivery_is_answered_from_cache_without_reapply() {
    let mut s = Sim::new(SimConfig { seed: 42, ..SimConfig::default() });
    let mut d = build(&mut s, DeploySpec { standbys_per_group: 2, ..DeploySpec::default() });
    // Background traffic so the duplicate arrives into a working, busy
    // active rather than an idle one.
    let m = Metrics::new(false);
    d.add_client(&mut s, Workload::create_only(0), m.clone());

    let replies: Arc<Mutex<Vec<Arc<MdsResp>>>> = Arc::new(Mutex::new(Vec::new()));
    let active = d.initial_active(0);
    s.add_node("resender", Box::new(Resender { active, replies: replies.clone() }));
    s.run_for(Duration::from_secs(10));

    // The in-flight duplicate is suppressed outright (no second execution,
    // no second reply); the post-completion resend is answered from the
    // retry cache. So: exactly two replies, both successful, and both the
    // *same allocation* — the cached `Arc` re-shipped, not a re-execution.
    let replies = replies.lock().unwrap();
    assert_eq!(replies.len(), 2, "one reply per distinct outcome, got {}", replies.len());
    for r in replies.iter() {
        match &**r {
            MdsResp::Reply { seq: 7, result } => {
                assert!(result.is_ok(), "duplicate create must not observe itself: {result:?}")
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(
        Arc::ptr_eq(&replies[0], &replies[1]),
        "retry must be served from the cache (identical Arc), not re-executed"
    );

    // No double-apply: the shared journal holds exactly one Create for the
    // target path across all three deliveries.
    let pool = d.shared_pool.lock();
    let g = pool.group(0).expect("group 0 journal");
    let mut creates = 0;
    if let Some(batches) = g.read_journal(0, usize::MAX) {
        for b in batches {
            for r in &b.records {
                if let mams_journal::Txn::Create { path, .. } = r {
                    if path == "/dup-target" {
                        creates += 1;
                    }
                }
            }
        }
    }
    assert_eq!(creates, 1, "the duplicated create was journaled {creates} times");
}
