//! Workload generators for the paper's benchmarks.
//!
//! Each client owns a private directory `/cN` so creates never conflict;
//! structural workloads (`mkdir`, `delete`, `rename`) still cross replica
//! groups because ownership is decided by hashing the full path.

use mams_core::FsOp;
use mams_sim::DetRng;

/// An infinite operation stream (plus a finite setup prefix).
#[derive(Debug, Clone)]
pub enum Workload {
    /// Continuous `create` of fresh files (Table I / Figure 8 workload).
    CreateOnly { dir: String, next: u64 },
    /// `getfileinfo` over files created earlier by the same generator.
    GetInfo { dir: String, created: u64, cursor: u64 },
    /// `mkdir` of fresh directories.
    MkdirOnly { dir: String, next: u64 },
    /// `delete` of previously created files.
    DeleteOnly { dir: String, created: u64, cursor: u64 },
    /// `rename` of previously created files.
    RenameOnly { dir: String, created: u64, cursor: u64 },
    /// The Figure 6 mix: create / getfileinfo / mkdir, equally weighted.
    Mixed { dir: String, files: u64, dirs: u64 },
    /// Figure 8's continuous create + regular mkdir blend.
    CreateMkdir { dir: String, next: u64 },
    /// Contended chaos workload: every client hammers the *same* small key
    /// set under `/hot` with conflicting creates, mkdirs, deletes, renames,
    /// and reads — maximal cross-client interleavings for the
    /// linearizability checker.
    SharedHot { dir: String, keys: u64 },
    /// Read-heavy sibling of [`Workload::SharedHot`]: mostly `getfileinfo`
    /// against the contended key set, with just enough mutations that the
    /// reads observe changing state. Paired with mutation-heavy clients it
    /// checks that reads served during failover and promotion only ever see
    /// durable (journaled and acknowledged) mutations.
    SharedHotReads { dir: String, keys: u64 },
    /// A fixed script (tests).
    Script { ops: Vec<FsOp>, cursor: usize },
}

impl Workload {
    pub fn create_only(client: u32) -> Self {
        Workload::CreateOnly { dir: format!("/c{client}"), next: 0 }
    }

    pub fn get_info(client: u32, created: u64) -> Self {
        Workload::GetInfo { dir: format!("/c{client}"), created, cursor: 0 }
    }

    pub fn mkdir_only(client: u32) -> Self {
        Workload::MkdirOnly { dir: format!("/c{client}"), next: 0 }
    }

    pub fn delete_only(client: u32, created: u64) -> Self {
        Workload::DeleteOnly { dir: format!("/c{client}"), created, cursor: 0 }
    }

    pub fn rename_only(client: u32, created: u64) -> Self {
        Workload::RenameOnly { dir: format!("/c{client}"), created, cursor: 0 }
    }

    pub fn mixed(client: u32) -> Self {
        Workload::Mixed { dir: format!("/c{client}"), files: 0, dirs: 0 }
    }

    pub fn create_mkdir(client: u32) -> Self {
        Workload::CreateMkdir { dir: format!("/c{client}"), next: 0 }
    }

    pub fn script(ops: Vec<FsOp>) -> Self {
        Workload::Script { ops, cursor: 0 }
    }

    /// All clients share `/hot` and its `keys` contended names.
    pub fn shared_hot(keys: u64) -> Self {
        assert!(keys >= 1);
        Workload::SharedHot { dir: "/hot".into(), keys }
    }

    /// Read-heavy stream over the same `/hot` key set as [`shared_hot`].
    ///
    /// [`shared_hot`]: Workload::shared_hot
    pub fn shared_hot_reads(keys: u64) -> Self {
        assert!(keys >= 1);
        Workload::SharedHotReads { dir: "/hot".into(), keys }
    }

    /// The client's private root that must exist before the stream starts.
    pub fn setup_dir(&self) -> Option<String> {
        match self {
            Workload::CreateOnly { dir, .. }
            | Workload::GetInfo { dir, .. }
            | Workload::MkdirOnly { dir, .. }
            | Workload::DeleteOnly { dir, .. }
            | Workload::RenameOnly { dir, .. }
            | Workload::Mixed { dir, .. }
            | Workload::CreateMkdir { dir, .. }
            | Workload::SharedHot { dir, .. }
            | Workload::SharedHotReads { dir, .. } => Some(dir.clone()),
            Workload::Script { .. } => None,
        }
    }

    /// Produce the next operation, or `None` when the stream is exhausted
    /// (only `Script` and the consuming workloads end).
    pub fn next_op(&mut self, rng: &mut DetRng) -> Option<FsOp> {
        match self {
            Workload::CreateOnly { dir, next } => {
                let p = format!("{dir}/f{next}");
                *next += 1;
                Some(FsOp::Create { path: p, replication: 3 })
            }
            Workload::GetInfo { dir, created, cursor } => {
                if *created == 0 {
                    return Some(FsOp::GetFileInfo { path: dir.clone() });
                }
                let i = *cursor % *created;
                *cursor += 1;
                Some(FsOp::GetFileInfo { path: format!("{dir}/f{i}") })
            }
            Workload::MkdirOnly { dir, next } => {
                let p = format!("{dir}/d{next}");
                *next += 1;
                Some(FsOp::Mkdir { path: p })
            }
            Workload::DeleteOnly { dir, created, cursor } => {
                if *cursor >= *created {
                    return None;
                }
                let p = format!("{dir}/f{}", *cursor);
                *cursor += 1;
                Some(FsOp::Delete { path: p, recursive: false })
            }
            Workload::RenameOnly { dir, created, cursor } => {
                if *cursor >= *created {
                    return None;
                }
                let i = *cursor;
                *cursor += 1;
                Some(FsOp::Rename { src: format!("{dir}/f{i}"), dst: format!("{dir}/r{i}") })
            }
            Workload::Mixed { dir, files, dirs } => match rng.below(3) {
                0 => {
                    let p = format!("{dir}/f{files}");
                    *files += 1;
                    Some(FsOp::Create { path: p, replication: 3 })
                }
                1 => {
                    if *files == 0 {
                        Some(FsOp::GetFileInfo { path: dir.clone() })
                    } else {
                        let i = rng.below(*files);
                        Some(FsOp::GetFileInfo { path: format!("{dir}/f{i}") })
                    }
                }
                _ => {
                    let p = format!("{dir}/d{dirs}");
                    *dirs += 1;
                    Some(FsOp::Mkdir { path: p })
                }
            },
            Workload::CreateMkdir { dir, next } => {
                let i = *next;
                *next += 1;
                // "continuous create and regular mkdir operations": one
                // mkdir every 16 ops spreads files over directories.
                if i % 16 == 0 {
                    Some(FsOp::Mkdir { path: format!("{dir}/d{}", i / 16) })
                } else {
                    Some(FsOp::Create { path: format!("{dir}/d{}/f{i}", i / 16), replication: 3 })
                }
            }
            Workload::SharedHot { dir, keys } => {
                let k = rng.below(*keys);
                let f = format!("{dir}/f{k}");
                let g = format!("{dir}/g{k}");
                // Mutation-heavy on purpose: conflicts ("already exists",
                // "no such file") are legitimate outcomes the checker
                // models, not workload errors.
                Some(match rng.below(8) {
                    0 | 1 => FsOp::Create { path: f, replication: 1 },
                    2 => FsOp::Mkdir { path: f },
                    3 => FsOp::Delete { path: f, recursive: false },
                    4 => FsOp::Delete { path: g, recursive: false },
                    5 => FsOp::Rename { src: f, dst: g },
                    6 => FsOp::GetFileInfo { path: f },
                    _ => FsOp::GetFileInfo { path: g },
                })
            }
            Workload::SharedHotReads { dir, keys } => {
                let k = rng.below(*keys);
                let f = format!("{dir}/f{k}");
                let g = format!("{dir}/g{k}");
                // Three reads for every mutation: enough writes that the
                // reads watch state change across a promotion, but the
                // stream stays read-dominated.
                Some(match rng.below(8) {
                    0..=2 => FsOp::GetFileInfo { path: f },
                    3..=5 => FsOp::GetFileInfo { path: g },
                    6 => FsOp::Create { path: f, replication: 1 },
                    _ => FsOp::Rename { src: f, dst: g },
                })
            }
            Workload::Script { ops, cursor } => {
                if *cursor >= ops.len() {
                    None
                } else {
                    let op = ops[*cursor].clone();
                    *cursor += 1;
                    Some(op)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(1)
    }

    #[test]
    fn create_only_is_fresh_paths() {
        let mut w = Workload::create_only(3);
        let mut r = rng();
        let a = w.next_op(&mut r).unwrap();
        let b = w.next_op(&mut r).unwrap();
        assert_ne!(a, b);
        assert!(matches!(a, FsOp::Create { ref path, .. } if path == "/c3/f0"));
        assert_eq!(w.setup_dir().as_deref(), Some("/c3"));
    }

    #[test]
    fn delete_consumes_created_set() {
        let mut w = Workload::delete_only(0, 2);
        let mut r = rng();
        assert!(w.next_op(&mut r).is_some());
        assert!(w.next_op(&mut r).is_some());
        assert!(w.next_op(&mut r).is_none());
    }

    #[test]
    fn mixed_emits_all_three_kinds() {
        let mut w = Workload::mixed(0);
        let mut r = rng();
        let mut kinds = [false; 3];
        for _ in 0..100 {
            match w.next_op(&mut r).unwrap() {
                FsOp::Create { .. } => kinds[0] = true,
                FsOp::GetFileInfo { .. } => kinds[1] = true,
                FsOp::Mkdir { .. } => kinds[2] = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(kinds, [true; 3]);
    }

    #[test]
    fn create_mkdir_makes_dirs_before_files() {
        let mut w = Workload::create_mkdir(0);
        let mut r = rng();
        let first = w.next_op(&mut r).unwrap();
        assert!(matches!(first, FsOp::Mkdir { .. }), "dir must precede its files");
        for _ in 0..15 {
            assert!(matches!(w.next_op(&mut r).unwrap(), FsOp::Create { .. }));
        }
        assert!(matches!(w.next_op(&mut r).unwrap(), FsOp::Mkdir { .. }));
    }

    #[test]
    fn shared_hot_targets_the_contended_keyset() {
        let mut w = Workload::shared_hot(4);
        assert_eq!(w.setup_dir().as_deref(), Some("/hot"));
        let mut r = rng();
        let mut mutations = 0;
        for _ in 0..200 {
            let op = w.next_op(&mut r).unwrap();
            let p = op.primary_path();
            assert!(p.starts_with("/hot/f") || p.starts_with("/hot/g"), "{p}");
            let key: u64 = p[6..].parse().unwrap();
            assert!(key < 4);
            if op.is_mutation() {
                mutations += 1;
            }
        }
        assert!(mutations > 100, "mutation-heavy mix, got {mutations}");
    }

    #[test]
    fn shared_hot_reads_is_read_dominated_on_the_keyset() {
        let mut w = Workload::shared_hot_reads(4);
        assert_eq!(w.setup_dir().as_deref(), Some("/hot"));
        let mut r = rng();
        let mut reads = 0;
        let mut mutations = 0;
        for _ in 0..200 {
            let op = w.next_op(&mut r).unwrap();
            let p = op.primary_path();
            assert!(p.starts_with("/hot/f") || p.starts_with("/hot/g"), "{p}");
            assert!(p[6..].parse::<u64>().unwrap() < 4);
            if op.is_mutation() {
                mutations += 1;
            } else {
                reads += 1;
            }
        }
        assert!(reads > 2 * mutations, "read-heavy mix, got {reads}r/{mutations}m");
        assert!(mutations > 0, "needs some writes for the reads to observe");
    }

    #[test]
    fn script_ends() {
        let mut w = Workload::script(vec![FsOp::Mkdir { path: "/x".into() }]);
        let mut r = rng();
        assert!(w.next_op(&mut r).is_some());
        assert!(w.next_op(&mut r).is_none());
    }
}
