//! Wall-clock image-pipeline benchmark: encode/decode of namespace images
//! in the legacy full-path v1 format vs the parent-id delta v2 format, plus
//! chunked streaming decode — the work that dominates junior catch-up and
//! the Table I MTTR sweep.
//!
//! A fixed-seed generator builds realistic trees sized so their *v1* image
//! lands in the 16/64/256 MB classes the paper sweeps, then each stage is
//! timed best-of-5 (identical deterministic work per rep). Results go to
//! `BENCH_image.json` at the repo root so successive PRs can track the
//! perf trajectory.
//!
//! Run from the repo root: `cargo run --release --bin bench_image`
//! (`--quick` runs only the smallest class with fewer reps — the CI smoke).

use std::time::Instant;

use bytes::Bytes;
use mams_journal::Txn;
use mams_namespace::{
    apply_delta, decode_delta, decode_image, encode_image, encode_image_v1, fold_delta,
    NamespaceTree, StreamingImageDecoder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x4d41_4d53; // "MAMS"
/// Approximate v1 bytes per file for the generated shape (path ~43 chars,
/// fixed attrs, ~2 blocks) — used only to size the tree per class.
const V1_BYTES_PER_FILE: u64 = 72;
/// Files per leaf directory.
const FILES_PER_DIR: u64 = 256;
/// Streaming-decode chunk size (the renewing default is the same order).
const CHUNK: usize = 64 * 1024;

/// Deterministic tree with paper-like shape: two directory levels with
/// realistic component names, `FILES_PER_DIR` files per leaf, 0–3 blocks
/// per file.
fn build_tree(target_files: u64, rng: &mut SmallRng) -> (NamespaceTree, Vec<String>) {
    let mut t = NamespaceTree::new();
    let mut paths = Vec::with_capacity(target_files as usize);
    let leaf_dirs = (target_files / FILES_PER_DIR).max(1);
    let tops = ((leaf_dirs as f64).sqrt().ceil() as u64).max(1);
    let subs = leaf_dirs.div_ceil(tops);
    let mut made = 0u64;
    let mut block = 1u64;
    'outer: for d in 0..tops {
        let top = format!("/project{d:04}");
        t.mkdir(&top).unwrap();
        for s in 0..subs {
            let dir = format!("{top}/dataset{s:04}");
            t.mkdir(&dir).unwrap();
            for f in 0..FILES_PER_DIR {
                let p = format!("{dir}/part-{f:05}.data");
                t.create(&p, 3).unwrap();
                for _ in 0..rng.gen_range(0u32..4) {
                    t.add_block(&p, block).unwrap();
                    block += 1;
                }
                if rng.gen_range(0u32..100) < 80 {
                    t.close_file(&p).unwrap();
                }
                paths.push(p);
                made += 1;
                if made >= target_files {
                    break 'outer;
                }
            }
        }
    }
    (t, paths)
}

/// A deterministic churn window: touch ~1% of existing files (perm flips
/// and appended blocks) plus a fresh ingest directory, the shape a few
/// seconds of mutations between delta cuts takes. Returns the journaled
/// txns; `tree` ends at the post state the fold reads from.
fn churn(tree: &mut NamespaceTree, paths: &[String], rng: &mut SmallRng) -> Vec<Txn> {
    let k = (paths.len() / 100).max(64);
    let mut txns = Vec::with_capacity(k + 1);
    let mk = Txn::Mkdir { path: "/ingest".into() };
    tree.apply(&mk).unwrap();
    txns.push(mk);
    let mut block = 1u64 << 40;
    for i in 0..k {
        let txn = match i % 4 {
            0 => Txn::Create { path: format!("/ingest/part-{:06}.data", i / 4), replication: 3 },
            1 => Txn::SetPerm {
                path: paths[(i * 7919) % paths.len()].clone(),
                perm: rng.gen_range(0..0o1000u32) as u16,
            },
            _ => {
                block += 1;
                Txn::AddBlock {
                    path: paths[(i * 104_729) % paths.len()].clone(),
                    block_id: block,
                    len: 1 << 20,
                }
            }
        };
        // AddBlock on a sealed file fails; skip it like the active would.
        if tree.apply(&txn).is_ok() {
            txns.push(txn);
        }
    }
    txns
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct ClassResult {
    class_mb: u64,
    files: u64,
    dirs: u64,
    v1_bytes: u64,
    v2_bytes: u64,
    encode_v1_s: f64,
    encode_v2_s: f64,
    decode_v1_s: f64,
    decode_v2_s: f64,
    decode_v2_streaming_s: f64,
    churn_txns: u64,
    delta_entries: u64,
    delta_bytes: u64,
    fold_s: f64,
    delta_apply_s: f64,
}

fn run_class(class_mb: u64, reps: usize) -> ClassResult {
    let mut rng = SmallRng::seed_from_u64(SEED ^ class_mb);
    let target_files = (class_mb * 1024 * 1024) / V1_BYTES_PER_FILE;
    let (tree, paths) = build_tree(target_files, &mut rng);

    let encode_v1_s = best_of(reps, || encode_image_v1(&tree, 1));
    let encode_v2_s = best_of(reps, || encode_image(&tree, 1));
    let v1 = encode_image_v1(&tree, 1);
    let v2 = encode_image(&tree, 1);

    let decode_v1_s = best_of(reps, || decode_image(v1.data.clone()).unwrap());
    let decode_v2_s = best_of(reps, || decode_image(v2.data.clone()).unwrap());
    let decode_v2_streaming_s = best_of(reps, || {
        let mut d = StreamingImageDecoder::new();
        for c in v2.data.chunks(CHUNK) {
            d.push(c).unwrap();
        }
        d.finish().unwrap()
    });

    // Every decode path must reconstruct the same namespace.
    let fp = tree.fingerprint();
    for img in [&v1, &v2] {
        let (t, _) = decode_image(Bytes::clone(&img.data)).unwrap();
        assert_eq!(t.fingerprint(), fp, "decode mismatch at {class_mb} MB class");
    }

    // Delta mode: fold a ~1% churn window into a delta image — the
    // incremental checkpoint the active cuts between full images. Fold cost
    // and delta size are what make the cadence cheap; apply cost is the
    // junior's fast path.
    let mut post = tree.clone();
    let churn_txns = churn(&mut post, &paths, &mut rng);
    let fold_s = best_of(reps, || fold_delta(&post, 1, 1 + churn_txns.len() as u64, &churn_txns));
    let delta = fold_delta(&post, 1, 1 + churn_txns.len() as u64, &churn_txns);
    let decoded = decode_delta(&delta.data).unwrap();
    let delta_apply_s = {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut t = tree.clone();
            let start = Instant::now();
            apply_delta(&mut t, &decoded).unwrap();
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(t.fingerprint(), post.fingerprint(), "delta apply mismatch");
        }
        best
    };

    println!(
        "class {class_mb:>4} MB: {} files | v1 {:>4} MB, v2 {:>4} MB ({:.2}x smaller) | \
         decode v1 {:.3}s, v2 {:.3}s ({:.2}x), streaming {:.3}s | \
         encode v1 {:.3}s, v2 {:.3}s ({:.2}x)",
        tree.num_files(),
        v1.size_bytes() >> 20,
        v2.size_bytes() >> 20,
        v1.size_bytes() as f64 / v2.size_bytes() as f64,
        decode_v1_s,
        decode_v2_s,
        decode_v1_s / decode_v2_s,
        decode_v2_streaming_s,
        encode_v1_s,
        encode_v2_s,
        encode_v1_s / encode_v2_s,
    );
    println!(
        "  delta: {} txns fold to {} entries, {} KB ({:.0}x smaller than v2 image) | \
         fold {:.4}s, apply {:.4}s",
        churn_txns.len(),
        delta.entries,
        delta.size_bytes() >> 10,
        v2.size_bytes() as f64 / delta.size_bytes() as f64,
        fold_s,
        delta_apply_s,
    );

    ClassResult {
        class_mb,
        files: tree.num_files(),
        dirs: tree.num_dirs(),
        v1_bytes: v1.size_bytes(),
        v2_bytes: v2.size_bytes(),
        encode_v1_s,
        encode_v2_s,
        decode_v1_s,
        decode_v2_s,
        decode_v2_streaming_s,
        churn_txns: churn_txns.len() as u64,
        delta_entries: delta.entries,
        delta_bytes: delta.size_bytes(),
        fold_s,
        delta_apply_s,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (classes, reps): (&[u64], usize) = if quick { (&[16], 2) } else { (&[16, 64, 256], 5) };

    let results: Vec<ClassResult> = classes.iter().map(|&mb| run_class(mb, reps)).collect();

    // Hand-rolled JSON: the offline serde_json stand-in cannot serialize,
    // and this document is the repo's perf trajectory — it must hold real
    // numbers in every environment.
    let mut doc = String::new();
    doc.push_str(&format!(
        "{{\n  \"bench\": \"image\",\n  \"seed\": {SEED},\n  \"reps\": {reps},\n  \
         \"chunk_bytes\": {CHUNK},\n  \"classes\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\n      \"class_mb\": {},\n      \"files\": {},\n      \"dirs\": {},\n      \
             \"v1_bytes\": {},\n      \"v2_bytes\": {},\n      \
             \"size_ratio_v1_over_v2\": {:.3},\n      \
             \"encode_v1_s\": {:.6},\n      \"encode_v2_s\": {:.6},\n      \
             \"encode_speedup_v2\": {:.3},\n      \
             \"decode_v1_s\": {:.6},\n      \"decode_v2_s\": {:.6},\n      \
             \"decode_v2_streaming_s\": {:.6},\n      \"decode_speedup_v2\": {:.3},\n      \
             \"churn_txns\": {},\n      \"delta_entries\": {},\n      \
             \"delta_bytes\": {},\n      \"delta_vs_v2_size_ratio\": {:.1},\n      \
             \"fold_s\": {:.6},\n      \"delta_apply_s\": {:.6}\n    }}{}\n",
            r.class_mb,
            r.files,
            r.dirs,
            r.v1_bytes,
            r.v2_bytes,
            r.v1_bytes as f64 / r.v2_bytes as f64,
            r.encode_v1_s,
            r.encode_v2_s,
            r.encode_v1_s / r.encode_v2_s,
            r.decode_v1_s,
            r.decode_v2_s,
            r.decode_v2_streaming_s,
            r.decode_v1_s / r.decode_v2_s,
            r.churn_txns,
            r.delta_entries,
            r.delta_bytes,
            r.v2_bytes as f64 / r.delta_bytes as f64,
            r.fold_s,
            r.delta_apply_s,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    doc.push_str("  ]\n}\n");
    let out = "BENCH_image.json";
    std::fs::write(out, doc).expect("write BENCH_image.json");
    println!("saved {out}");
}
