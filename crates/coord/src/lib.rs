//! # mams-coord — the global view and distributed coordination service
//!
//! The paper uses ZooKeeper "to monitor nodes, trigger events and maintain
//! the consistent global view" (Section IV), with a 2 s heartbeat and 5 s
//! session timeout. This crate is that service, built from scratch:
//!
//! * **Sessions** — clients register and heartbeat; a silent client's
//!   session expires after the timeout, deleting its ephemeral keys and
//!   releasing its locks (this is how active failures are *detected*).
//! * **Global view** — a small hierarchical key space (`g/0/state/5 = "S"`)
//!   with plain and ephemeral entries and atomic multi-key updates (step 2
//!   of the failover protocol flips several states at once).
//! * **Watches** — prefix subscriptions; every change pushes an event to the
//!   watcher. MAMS servers keep three watchers: on their own state, on the
//!   active, and on the distributed lock (Section III-C). Unlike ZooKeeper's
//!   one-shot watches ours are persistent, which only removes re-arm
//!   boilerplate — the event-driven structure is the same.
//! * **Distributed lock** — at most one holder per lock path; each grant
//!   carries a monotonically increasing **epoch** used as the fencing token
//!   for SSP writes, so a deposed active can never scribble on shared files
//!   ("it ensures that no processes can obtain the distributed lock before
//!   the active loses it").
//!
//! The service runs as a single [`CoordServer`] node — the paper treats the
//! ZooKeeper ensemble as one reliable endpoint, and so do we (the ensemble's
//! internal replication is exercised separately in `mams-paxos`).

pub mod client;
pub mod proto;
pub mod server;

pub use client::{CoordClient, Incoming, COORD_HB_TOKEN};
pub use proto::{CoordEvent, CoordReq, CoordResp, KeyOp, ReqId};
pub use server::{CoordConfig, CoordServer};
