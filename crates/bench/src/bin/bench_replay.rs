//! Wall-clock journal-replay benchmark: the apply loop that bounds both a
//! standby's steady-state lag and a junior's catch-up time (Section III-D;
//! MTTR in Table I is dominated by how fast the journal can be replayed).
//!
//! A fixed-seed generator produces a directory-local mutation stream —
//! creates, block allocations and closes walking leaf directories in order,
//! with occasional renames and deletes — executed once against a scratch
//! tree so every journaled record is valid, exactly like the active's
//! execution path. The stream is then sealed into 64-record batches and
//! replayed two ways:
//!
//! - **live**: batches already decoded (the standby's `SyncJournal` path);
//!   naive per-record `NamespaceTree::apply` vs the `ReplaySession` fast
//!   path (validate-skip + cached parent handle).
//! - **cold**: wire bytes → decode + apply (the junior's catch-up path);
//!   v1 wire + naive apply vs v2 wire + `ReplaySession`.
//!
//! Results go to `BENCH_replay.json` at the repo root so successive PRs can
//! track the perf trajectory.
//!
//! Run from the repo root: `cargo run --release --bin bench_replay`
//! (`--quick` shrinks the stream and reps — the CI smoke).

use std::time::Instant;

use bytes::Bytes;
use mams_journal::{decode_batch, encode_batch, encode_batch_v1, JournalBatch, Txn};
use mams_namespace::{NamespaceTree, ReplaySession};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x4d41_4d53; // "MAMS"
const BATCH_OPS: usize = 64;
const FILES_PER_DIR: u64 = 128;

/// The directory skeleton both the generator and every replay rep start
/// from (a junior begins at the same checkpoint the stream was cut from).
fn base_tree(leaf_dirs: u64) -> (NamespaceTree, Vec<String>) {
    let mut t = NamespaceTree::new();
    let mut dirs = Vec::new();
    let tops = ((leaf_dirs as f64).sqrt().ceil() as u64).max(1);
    let subs = leaf_dirs.div_ceil(tops);
    for d in 0..tops {
        let top = format!("/project{d:04}");
        t.mkdir(&top).unwrap();
        for s in 0..subs {
            let dir = format!("{top}/dataset{s:04}");
            t.mkdir(&dir).unwrap();
            dirs.push(dir);
            if dirs.len() as u64 >= leaf_dirs {
                return (t, dirs);
            }
        }
    }
    (t, dirs)
}

/// Execute a directory-local mutation stream against `tree`, returning the
/// journaled records: per leaf dir, create/add-block/close a run of files,
/// with a rename and a delete sprinkled in to exercise cache invalidation.
fn generate_stream(tree: &mut NamespaceTree, dirs: &[String], rng: &mut SmallRng) -> Vec<Txn> {
    let mut txns = Vec::new();
    let mut block = 1u64;
    let journal = |tree: &mut NamespaceTree, txns: &mut Vec<Txn>, txn: Txn| {
        tree.apply(&txn).unwrap();
        txns.push(txn);
    };
    for dir in dirs {
        for f in 0..FILES_PER_DIR {
            let path = format!("{dir}/part-{f:05}.data");
            journal(tree, &mut txns, Txn::Create { path: path.clone(), replication: 3 });
            for _ in 0..rng.gen_range(0u32..3) {
                journal(
                    tree,
                    &mut txns,
                    Txn::AddBlock { path: path.clone(), block_id: block, len: 1 << 20 },
                );
                block += 1;
            }
            journal(tree, &mut txns, Txn::CloseFile { path: path.clone() });
            if f % 50 == 17 {
                let dst = format!("{dir}/renamed-{f:05}.data");
                journal(tree, &mut txns, Txn::Rename { src: path, dst });
            } else if f % 70 == 23 {
                journal(tree, &mut txns, Txn::Delete { path, recursive: false });
            }
        }
    }
    txns
}

/// Seal the stream into `⟨sn, txid⟩` batches of `BATCH_OPS` records.
fn seal_batches(txns: &[Txn]) -> Vec<JournalBatch> {
    let mut batches = Vec::new();
    let mut txid = 1u64;
    for (i, chunk) in txns.chunks(BATCH_OPS).enumerate() {
        batches.push(JournalBatch::new(i as u64 + 1, txid, chunk.to_vec()));
        txid += chunk.len() as u64;
    }
    batches
}

/// Best-of-`reps` wall time in seconds; `setup` runs outside the clock.
fn best_of<S, T>(reps: usize, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let s = setup();
        let start = Instant::now();
        std::hint::black_box(f(s));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (leaf_dirs, reps) = if quick { (64u64, 2usize) } else { (1024, 5) };

    let mut rng = SmallRng::seed_from_u64(SEED);
    let (mut scratch, dirs) = base_tree(leaf_dirs);
    let txns = generate_stream(&mut scratch, &dirs, &mut rng);
    let expected_fp = scratch.fingerprint();
    let batches = seal_batches(&txns);
    let records = txns.len() as u64;

    let v1_wire: Vec<Bytes> = batches.iter().map(encode_batch_v1).collect();
    let v2_wire: Vec<Bytes> = batches.iter().map(encode_batch).collect();
    let v1_bytes: u64 = v1_wire.iter().map(|b| b.len() as u64).sum();
    let v2_bytes: u64 = v2_wire.iter().map(|b| b.len() as u64).sum();

    // Every replay path must land on the generator's namespace.
    let check = |tree: &NamespaceTree, what: &str| {
        assert_eq!(tree.fingerprint(), expected_fp, "replay divergence in {what}");
    };

    // Live standby: batches are already decoded, only the apply loop runs.
    let live_naive_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            for b in &batches {
                for (_, t) in b.entries() {
                    tree.apply(t).unwrap();
                }
            }
            check(&tree, "live naive");
            tree
        },
    );
    let live_session_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            let mut session = ReplaySession::new();
            for b in &batches {
                for (_, t) in b.entries() {
                    session.apply(&mut tree, t).unwrap();
                }
            }
            check(&tree, "live session");
            tree
        },
    );

    // Cold junior catch-up: wire bytes → decode + apply.
    let cold_v1_naive_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            for w in &v1_wire {
                let b = decode_batch(w.clone()).unwrap();
                for (_, t) in b.entries() {
                    tree.apply(t).unwrap();
                }
            }
            check(&tree, "cold v1 naive");
            tree
        },
    );
    let cold_v2_session_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            let mut session = ReplaySession::new();
            for w in &v2_wire {
                let b = decode_batch(w.clone()).unwrap();
                for (_, t) in b.entries() {
                    session.apply(&mut tree, t).unwrap();
                }
            }
            check(&tree, "cold v2 session");
            tree
        },
    );

    let rate = |s: f64| records as f64 / s;
    println!(
        "{records} records in {} batches | wire v1 {} KB, v2 {} KB ({:.2}x smaller)",
        batches.len(),
        v1_bytes >> 10,
        v2_bytes >> 10,
        v1_bytes as f64 / v2_bytes as f64,
    );
    println!(
        "live:  naive {:.0} rec/s, session {:.0} rec/s ({:.2}x)",
        rate(live_naive_s),
        rate(live_session_s),
        live_naive_s / live_session_s,
    );
    println!(
        "cold:  v1+naive {:.0} rec/s, v2+session {:.0} rec/s ({:.2}x)",
        rate(cold_v1_naive_s),
        rate(cold_v2_session_s),
        cold_v1_naive_s / cold_v2_session_s,
    );

    // Hand-rolled JSON: the offline serde_json stand-in cannot serialize,
    // and this document is the repo's perf trajectory — it must hold real
    // numbers in every environment.
    let doc = format!(
        "{{\n  \"bench\": \"replay\",\n  \"seed\": {SEED},\n  \"reps\": {reps},\n  \
         \"records\": {records},\n  \"batches\": {},\n  \"batch_ops\": {BATCH_OPS},\n  \
         \"wire_v1_bytes\": {v1_bytes},\n  \"wire_v2_bytes\": {v2_bytes},\n  \
         \"wire_ratio_v1_over_v2\": {:.3},\n  \
         \"live_naive_s\": {live_naive_s:.6},\n  \"live_session_s\": {live_session_s:.6},\n  \
         \"live_naive_records_per_s\": {:.0},\n  \"live_session_records_per_s\": {:.0},\n  \
         \"live_speedup_session\": {:.3},\n  \
         \"cold_v1_naive_s\": {cold_v1_naive_s:.6},\n  \
         \"cold_v2_session_s\": {cold_v2_session_s:.6},\n  \
         \"cold_v1_naive_records_per_s\": {:.0},\n  \
         \"cold_v2_session_records_per_s\": {:.0},\n  \
         \"cold_speedup_v2_session\": {:.3}\n}}\n",
        batches.len(),
        v1_bytes as f64 / v2_bytes as f64,
        rate(live_naive_s),
        rate(live_session_s),
        live_naive_s / live_session_s,
        rate(cold_v1_naive_s),
        rate(cold_v2_session_s),
        cold_v1_naive_s / cold_v2_session_s,
    );
    let out = "BENCH_replay.json";
    std::fs::write(out, doc).expect("write BENCH_replay.json");
    println!("saved {out}");
}
