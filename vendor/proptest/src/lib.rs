//! Offline stand-in for `proptest`. Intentionally empty: the root `mams`
//! package's proptest suites are known not to compile against this stand-in
//! and are excluded from the tier-1 test run (`--exclude mams`).
