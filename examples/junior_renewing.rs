//! The renewing protocol in action: a crashed member restarts with empty
//! state, registers as a junior, loads the namespace image from the shared
//! storage pool, replays the journal tail, and is promoted back to a hot
//! standby.
//!
//! ```sh
//! cargo run --release --example junior_renewing
//! ```

use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::metrics::Metrics;
use mams::cluster::workload::Workload;
use mams::core::MdsReq;
use mams::sim::{Duration, Sim, SimConfig, SimTime};

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let mut cluster =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() });
    let metrics = Metrics::new(false);
    cluster.add_client(&mut sim, Workload::create_only(0), metrics.clone());

    // Let the namespace grow, then checkpoint an image into the SSP (the
    // active compacts the shared journal through the checkpoint).
    let active = cluster.initial_active(0);
    sim.at(SimTime(10_000_000), move |s| {
        println!("[t=10s] requesting a namespace image checkpoint");
        s.send_external(active, MdsReq::Checkpoint);
    });

    // Crash a standby; restart it 5 s later with empty state. Because the
    // journal before the checkpoint is compacted, the junior must load the
    // image and then replay only the tail — resumably, in chunks.
    let standby = cluster.groups[0].members[1];
    sim.at(SimTime(15_000_000), move |s| {
        println!("[t=15s] >>> crashing standby node {standby}");
        s.crash(standby);
    });
    sim.at(SimTime(20_000_000), move |s| {
        println!("[t=20s] >>> restarting node {standby} (fresh, empty state)");
        s.restart(standby);
    });

    sim.run_for(Duration::from_secs(45));

    println!("\nrenewing timeline:");
    for e in sim.trace().events() {
        match e.tag {
            "checkpoint.start"
            | "checkpoint.done"
            | "sim.crash"
            | "sim.restart"
            | "member.registered_junior"
            | "renew.session_start"
            | "renew.begin"
            | "renew.image_loaded"
            | "renew.final_sync"
            | "renew.promoted"
            | "member.registered_standby" => println!("  {e}"),
            _ => {}
        }
    }
    println!(
        "\nclient saw {} successful operations and {} failures — the renewal ran",
        metrics.ok_count(),
        metrics.failed_count()
    );
    println!("entirely in the background, exactly as Section III-D describes.");
}
