//! The simulation world: node registry, lifecycle, and the event loop.

use std::collections::{HashMap, HashSet};

use crate::event::{EventKind, EventQueue};
use crate::net::{LatencyModel, Network};
use crate::node::{Ctx, Message, Node, NodeId, TimerId, EXTERNAL};
use crate::rng::DetRng;
use crate::time::{Duration, SimTime};
use crate::trace::Trace;

/// Whether a node's process is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    Up,
    /// Process killed: in-memory state lost, timers invalidated, messages
    /// dropped. Can be brought back with [`Sim::restart`] if a factory was
    /// registered.
    Down,
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the single deterministic random stream.
    pub seed: u64,
    /// Whether to record trace events.
    pub trace: bool,
    /// Default link-latency model.
    pub latency: LatencyModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0x0C10_75F5, trace: true, latency: LatencyModel::lan() }
    }
}

struct NodeMeta {
    name: String,
    epoch: u64,
    status: NodeStatus,
    started: bool,
}

/// The part of the world visible to nodes through [`Ctx`]: clock, queue,
/// network, randomness, traces, and node liveness metadata.
pub struct Kernel {
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue,
    pub(crate) net: Network,
    pub(crate) rng: DetRng,
    pub(crate) trace: Trace,
    meta: Vec<NodeMeta>,
    cancelled_timers: HashSet<u64>,
    next_timer_id: u64,
    /// Nodes that are alive but not being scheduled (long GC pause / stop
    /// signal). Their events accumulate in `backlog` and replay on resume.
    paused: HashSet<NodeId>,
    backlog: HashMap<NodeId, Vec<EventKind>>,
    /// Per-node multiplier on timer delays (clock skew: >1 = slow clock,
    /// timers fire late; <1 = fast clock).
    timer_scale: HashMap<NodeId, f64>,
}

impl Kernel {
    pub(crate) fn send_message(&mut self, from: NodeId, dst: NodeId, msg: Message) {
        if dst == EXTERNAL {
            // Replies to environment-injected messages go nowhere.
            return;
        }
        assert!((dst as usize) < self.meta.len(), "send to unknown node {dst}");
        if from == EXTERNAL {
            let latency = self.net_latency_external();
            self.queue.push(self.now + latency, EventKind::Deliver { from, dst, msg });
            return;
        }
        let fate = self.net.route_fate(from, dst, &mut self.rng);
        if let Some(dup_latency) = fate.duplicate {
            self.queue.push(
                self.now + dup_latency,
                EventKind::Deliver { from, dst, msg: msg.duplicate() },
            );
        }
        if let Some(latency) = fate.deliver {
            self.queue.push(self.now + latency, EventKind::Deliver { from, dst, msg });
        }
    }

    fn net_latency_external(&mut self) -> Duration {
        LatencyModel::local().sample(&mut self.rng)
    }

    pub(crate) fn set_timer(&mut self, node: NodeId, delay: Duration, token: u64) -> TimerId {
        let timer_id = self.next_timer_id;
        self.next_timer_id += 1;
        let delay = match self.timer_scale.get(&node) {
            Some(&k) => delay.mul_f64(k),
            None => delay,
        };
        let epoch = self.meta[node as usize].epoch;
        self.queue.push(self.now + delay, EventKind::Timer { node, epoch, timer_id, token });
        TimerId(timer_id)
    }

    pub(crate) fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled_timers.insert(id.0);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

type Factory = Box<dyn FnMut() -> Box<dyn Node> + Send>;

/// A deterministic discrete-event simulation of a cluster.
///
/// ```
/// use mams_sim::{Sim, SimConfig, Node, Ctx, Message, NodeId, Duration};
///
/// #[derive(Debug)]
/// struct Echo;
/// impl Node for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
///         if from != mams_sim::node::EXTERNAL {
///             ctx.send(from, "pong".to_string());
///         }
///     }
/// }
///
/// let mut sim = Sim::new(SimConfig::default());
/// let a = sim.add_node("a", Box::new(Echo));
/// let b = sim.add_node("b", Box::new(Echo));
/// sim.send_external(a, "kick".to_string());
/// sim.run_for(Duration::from_secs(1));
/// assert!(sim.now() >= mams_sim::SimTime::ZERO);
/// # let _ = (a, b);
/// ```
pub struct Sim {
    kernel: Kernel,
    nodes: Vec<Option<Box<dyn Node>>>,
    factories: Vec<Option<Factory>>,
}

impl Sim {
    pub fn new(cfg: SimConfig) -> Self {
        Sim {
            kernel: Kernel {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                net: Network::new(cfg.latency),
                rng: DetRng::seed_from_u64(cfg.seed),
                trace: Trace::new(cfg.trace),
                meta: Vec::new(),
                cancelled_timers: HashSet::new(),
                next_timer_id: 0,
                paused: HashSet::new(),
                backlog: HashMap::new(),
                timer_scale: HashMap::new(),
            },
            nodes: Vec::new(),
            factories: Vec::new(),
        }
    }

    /// Register a node. It starts (receives `on_start`) when the simulation
    /// next advances.
    pub fn add_node(&mut self, name: impl Into<String>, node: Box<dyn Node>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Some(node));
        self.factories.push(None);
        self.kernel.meta.push(NodeMeta {
            name: name.into(),
            epoch: 0,
            status: NodeStatus::Up,
            started: false,
        });
        id
    }

    /// Register a node with a factory so it can be restarted after a crash
    /// (fresh in-memory state, as a real process restart would produce).
    pub fn add_restartable(
        &mut self,
        name: impl Into<String>,
        mut factory: impl FnMut() -> Box<dyn Node> + Send + 'static,
    ) -> NodeId {
        let node = factory();
        let id = self.add_node(name, node);
        self.factories[id as usize] = Some(Box::new(factory));
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Network model handle (for partitions / loss injection).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.kernel.net
    }

    /// Recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.kernel.trace
    }

    /// Mutable trace handle (clearing between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.kernel.trace
    }

    /// Deterministic random stream (shared with the nodes).
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.kernel.rng
    }

    pub fn node_status(&self, id: NodeId) -> NodeStatus {
        self.kernel.meta[id as usize].status
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.kernel.meta[id as usize].name
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Inject a message from outside the cluster.
    pub fn send_external<T: crate::node::AnyMessage>(&mut self, dst: NodeId, payload: T) {
        self.kernel.send_message(EXTERNAL, dst, Message::new(payload));
    }

    /// Schedule a control action (fault injection, measurement probe) at an
    /// absolute virtual time.
    pub fn at(&mut self, when: SimTime, f: impl FnOnce(&mut Sim) + Send + 'static) {
        assert!(when >= self.kernel.now, "control action scheduled in the past");
        self.kernel.queue.push(when, EventKind::Control(Box::new(f)));
    }

    /// Schedule a control action `delay` from now.
    pub fn after(&mut self, delay: Duration, f: impl FnOnce(&mut Sim) + Send + 'static) {
        let when = self.kernel.now + delay;
        self.kernel.queue.push(when, EventKind::Control(Box::new(f)));
    }

    /// Kill a node's process: state and timers are lost, queued deliveries
    /// will be dropped.
    pub fn crash(&mut self, id: NodeId) {
        let m = &mut self.kernel.meta[id as usize];
        if m.status == NodeStatus::Down {
            return;
        }
        m.status = NodeStatus::Down;
        m.epoch += 1;
        self.nodes[id as usize] = None;
        // A crash also ends any pause and discards buffered events: the
        // process is gone, nothing will drain its socket buffers.
        self.kernel.paused.remove(&id);
        self.kernel.backlog.remove(&id);
        let now = self.kernel.now;
        self.kernel.trace.record(now, id, "sim.crash", String::new);
    }

    /// Freeze a node without killing it (long GC pause, SIGSTOP): its state
    /// survives, but no callbacks run until [`Sim::resume`]. Messages and
    /// timers that come due meanwhile are buffered and replayed — all at
    /// once, in arrival order — when the node wakes. No-op if down.
    pub fn pause(&mut self, id: NodeId) {
        if self.node_status(id) != NodeStatus::Up {
            return;
        }
        if self.kernel.paused.insert(id) {
            let now = self.kernel.now;
            self.kernel.trace.record(now, id, "sim.pause", String::new);
        }
    }

    /// Wake a paused node and replay its buffered events at the current
    /// virtual time. No-op if the node was not paused.
    pub fn resume(&mut self, id: NodeId) {
        if !self.kernel.paused.remove(&id) {
            return;
        }
        let now = self.kernel.now;
        self.kernel.trace.record(now, id, "sim.resume", String::new);
        if let Some(events) = self.kernel.backlog.remove(&id) {
            // Pushed at `now` in buffered order; the queue keeps same-time
            // events FIFO by insertion sequence, so the backlog drains in
            // original arrival order.
            for ev in events {
                self.kernel.queue.push(now, ev);
            }
        }
    }

    /// Whether the node is currently paused.
    pub fn is_paused(&self, id: NodeId) -> bool {
        self.kernel.paused.contains(&id)
    }

    /// Skew a node's clock: every timer it arms from now on has its delay
    /// multiplied by `factor` (>1 = slow clock, heartbeats and timeouts fire
    /// late). `1.0` removes the skew.
    pub fn set_clock_skew(&mut self, id: NodeId, factor: f64) {
        assert!(factor > 0.0, "clock skew factor must be positive");
        if factor == 1.0 {
            self.kernel.timer_scale.remove(&id);
        } else {
            self.kernel.timer_scale.insert(id, factor);
        }
    }

    /// Restart a crashed node from its factory (fresh state). Panics if the
    /// node is up or was registered without a factory.
    pub fn restart(&mut self, id: NodeId) {
        assert_eq!(self.node_status(id), NodeStatus::Down, "restart of a live node");
        let factory =
            self.factories[id as usize].as_mut().expect("restart requires add_restartable");
        let node = factory();
        self.nodes[id as usize] = Some(node);
        let m = &mut self.kernel.meta[id as usize];
        m.status = NodeStatus::Up;
        m.epoch += 1;
        m.started = false;
        let now = self.kernel.now;
        self.kernel.trace.record(now, id, "sim.restart", String::new);
        self.start_pending();
    }

    fn start_pending(&mut self) {
        for id in 0..self.nodes.len() {
            let meta = &self.kernel.meta[id];
            if meta.status == NodeStatus::Up && !meta.started {
                self.kernel.meta[id].started = true;
                self.with_node(id as NodeId, |node, ctx| node.on_start(ctx));
            }
        }
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        let mut node = match self.nodes[id as usize].take() {
            Some(n) => n,
            None => return,
        };
        {
            let mut ctx = Ctx { kernel: &mut self.kernel, id };
            f(node.as_mut(), &mut ctx);
        }
        // The node may have been crashed by a control action only outside
        // this callback, so the slot is still ours to restore.
        self.nodes[id as usize] = Some(node);
    }

    /// Virtual time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.kernel.queue.peek_time()
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_pending();
        let ev = match self.kernel.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(ev.at >= self.kernel.now, "time went backwards");
        self.kernel.now = ev.at;
        match ev.kind {
            EventKind::Deliver { from, dst, msg } => {
                let meta = &self.kernel.meta[dst as usize];
                if meta.status != NodeStatus::Up {
                    return true;
                }
                // Messages in flight are lost if the cable is pulled before
                // delivery.
                if from != EXTERNAL && !self.kernel.net.connected(from, dst) {
                    return true;
                }
                // A paused destination buffers the message (socket buffer of
                // a frozen process); it replays on resume.
                if self.kernel.paused.contains(&dst) {
                    self.kernel.backlog.entry(dst).or_default().push(EventKind::Deliver {
                        from,
                        dst,
                        msg,
                    });
                    return true;
                }
                self.with_node(dst, |node, ctx| node.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, epoch, timer_id, token } => {
                // Buffer first: a timer that comes due during a pause fires
                // (late) at resume, with cancellation and epoch re-checked
                // then.
                if self.kernel.paused.contains(&node) {
                    self.kernel.backlog.entry(node).or_default().push(EventKind::Timer {
                        node,
                        epoch,
                        timer_id,
                        token,
                    });
                    return true;
                }
                if self.kernel.cancelled_timers.remove(&timer_id) {
                    return true;
                }
                let meta = &self.kernel.meta[node as usize];
                if meta.status != NodeStatus::Up || meta.epoch != epoch {
                    return true;
                }
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::Control(f) => f(self),
        }
        true
    }

    /// Run until the queue drains or virtual time reaches `deadline`
    /// (whichever is first); the clock is then advanced to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_pending();
        while let Some(t) = self.kernel.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.kernel.now < deadline {
            self.kernel.now = deadline;
        }
    }

    /// Run for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.kernel.now + d;
        self.run_until(deadline);
    }

    /// Drain every pending event (panics after `limit` events as a runaway
    /// guard — heartbeat protocols never drain naturally).
    pub fn run_to_quiescence(&mut self, limit: u64) {
        let mut n = 0;
        while self.step() {
            n += 1;
            assert!(n <= limit, "no quiescence after {limit} events");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::EXTERNAL;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Debug)]
    struct Counter {
        hits: Arc<AtomicU64>,
        peer: Option<NodeId>,
    }

    impl Node for Counter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, _msg: Message) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if from != EXTERNAL {
                if let Some(p) = self.peer {
                    if p == from {
                        // no echo storm
                        return;
                    }
                }
            }
            if let Some(p) = self.peer {
                ctx.send(p, 1u32);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            assert_eq!(token, 1);
            self.hits.fetch_add(100, Ordering::Relaxed);
        }
    }

    fn mk(hits: Arc<AtomicU64>, peer: Option<NodeId>) -> Box<dyn Node> {
        Box::new(Counter { hits, peer })
    }

    #[test]
    fn timers_fire_once_at_the_right_time() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("n", mk(hits.clone(), None));
        sim.run_for(Duration::from_millis(5));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        sim.run_for(Duration::from_millis(10));
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn messages_are_delivered_with_latency() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", mk(hits.clone(), None));
        sim.send_external(a, 0u32);
        sim.run_for(Duration::from_millis(1));
        assert_eq!(hits.load(Ordering::Relaxed) % 100, 1);
    }

    #[test]
    fn crash_drops_state_timers_and_messages() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let h = hits.clone();
        let a = sim.add_restartable("a", move || mk(h.clone(), None));
        sim.run_for(Duration::from_millis(1));
        sim.crash(a);
        sim.send_external(a, 0u32);
        sim.run_for(Duration::from_secs(1));
        // Neither the pending start timer nor the message should land.
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(sim.node_status(a), NodeStatus::Down);
    }

    #[test]
    fn restart_re_runs_on_start_with_fresh_state() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let h = hits.clone();
        let a = sim.add_restartable("a", move || mk(h.clone(), None));
        sim.run_for(Duration::from_millis(20));
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        sim.crash(a);
        sim.run_for(Duration::from_millis(5));
        sim.restart(a);
        sim.run_for(Duration::from_millis(20));
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        assert_eq!(sim.node_status(a), NodeStatus::Up);
    }

    #[test]
    fn partition_blocks_messages_in_flight() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", mk(hits.clone(), None));
        let b = sim.add_node("b", mk(Arc::new(AtomicU64::new(0)), Some(a)));
        // b forwards external pokes to a; cut the link first.
        sim.net_mut().cut(a, b);
        sim.send_external(b, 0u32);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(hits.load(Ordering::Relaxed), 100, "only a's own timer");
    }

    #[test]
    fn control_actions_run_at_their_time() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", mk(Arc::new(AtomicU64::new(0)), None));
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        sim.at(SimTime(5_000_000), move |sim| {
            s.store(sim.now().micros(), Ordering::Relaxed);
            sim.crash(a);
        });
        sim.run_for(Duration::from_secs(10));
        assert_eq!(seen.load(Ordering::Relaxed), 5_000_000);
        assert_eq!(sim.node_status(a), NodeStatus::Down);
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn run(seed: u64) -> Vec<(u64, &'static str)> {
            let hits = Arc::new(AtomicU64::new(0));
            let mut sim = Sim::new(SimConfig { seed, ..SimConfig::default() });
            let a = sim.add_node("a", mk(hits.clone(), None));
            let h2 = Arc::new(AtomicU64::new(0));
            let b = sim.add_node("b", mk(h2, Some(a)));
            sim.send_external(b, 0u32);
            sim.at(SimTime(2_000), move |s| s.crash(a));
            sim.run_for(Duration::from_secs(1));
            sim.trace().events().iter().map(|e| (e.time.micros(), e.tag)).collect()
        }
        assert_eq!(run(7), run(7));
        // And the run is not trivially empty.
        assert!(!run(7).is_empty());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Sim::new(SimConfig::default());
        sim.run_until(SimTime(123));
        assert_eq!(sim.now(), SimTime(123));
    }

    #[test]
    fn paused_node_buffers_and_replays_on_resume() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", mk(hits.clone(), None));
        sim.run_for(Duration::from_millis(20)); // start timer fired: 100
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        sim.pause(a);
        assert!(sim.is_paused(a));
        for _ in 0..3 {
            sim.send_external(a, 0u32);
        }
        sim.run_for(Duration::from_secs(1));
        // Frozen: nothing processed, nothing lost.
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        sim.resume(a);
        sim.run_for(Duration::from_millis(1));
        assert_eq!(hits.load(Ordering::Relaxed), 103, "backlog replays on resume");
    }

    #[test]
    fn crash_while_paused_discards_backlog() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let h = hits.clone();
        let a = sim.add_restartable("a", move || mk(h.clone(), None));
        sim.run_for(Duration::from_millis(20));
        sim.pause(a);
        sim.send_external(a, 0u32);
        sim.run_for(Duration::from_millis(10));
        sim.crash(a);
        assert!(!sim.is_paused(a));
        sim.restart(a);
        sim.run_for(Duration::from_secs(1));
        // Two start-timer firings, but the buffered message died with the
        // process.
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn clock_skew_delays_timers() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", mk(hits.clone(), None));
        sim.set_clock_skew(a, 10.0);
        // The 10ms start timer now takes 100ms of real (virtual) time.
        sim.run_for(Duration::from_millis(50));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        sim.run_for(Duration::from_millis(60));
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        sim.set_clock_skew(a, 1.0); // removes the skew without panicking
    }

    #[test]
    fn network_duplication_delivers_twice() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", mk(hits.clone(), None));
        let b = sim.add_node("b", mk(Arc::new(AtomicU64::new(0)), Some(a)));
        sim.net_mut().set_dup_probability(1.0);
        // b forwards the external poke to a; a receives it twice (external
        // sends bypass the network model, node-to-node sends do not).
        sim.send_external(b, 0u32);
        sim.run_for(Duration::from_millis(5));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}

#[cfg(test)]
mod cancel_tests {
    use super::*;
    use crate::node::{Ctx, Message, Node, NodeId, TimerId};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Arms two timers and cancels the second when the first fires.
    struct Canceller {
        fired: Arc<AtomicU64>,
        pending: Option<TimerId>,
    }

    impl Node for Canceller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::from_millis(5), 1);
            self.pending = Some(ctx.set_timer(Duration::from_millis(10), 2));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.fired.fetch_add(token, Ordering::Relaxed);
            if token == 1 {
                if let Some(id) = self.pending.take() {
                    ctx.cancel_timer(id);
                }
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let fired = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("c", Box::new(Canceller { fired: fired.clone(), pending: None }));
        sim.run_for(Duration::from_secs(1));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "only the first timer fires");
    }

    #[test]
    fn cancelling_a_fired_timer_is_a_noop() {
        struct LateCancel {
            id: Option<TimerId>,
        }
        impl Node for LateCancel {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.id = Some(ctx.set_timer(Duration::from_millis(1), 1));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                // Cancel after the fact: must not panic or corrupt anything.
                if let Some(id) = self.id.take() {
                    ctx.cancel_timer(id);
                }
                ctx.set_timer(Duration::from_millis(1), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("l", Box::new(LateCancel { id: None }));
        sim.run_for(Duration::from_millis(50));
    }
}
