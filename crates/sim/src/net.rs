//! Network model: per-link latency, message loss, and partitions.
//!
//! The paper's Test B ("take out / plug back network wires", Table II and
//! Figure 8b) is reproduced through [`Network::cut`] / [`Network::heal`] and
//! [`Network::isolate`] / [`Network::rejoin`].

use std::collections::HashSet;

use crate::node::NodeId;
use crate::rng::DetRng;
use crate::time::Duration;

/// How long a message takes from one node to another.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed one-way base latency.
    pub base: Duration,
    /// Additional uniformly distributed jitter in `[0, jitter]`.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Gigabit-LAN profile used for the paper's 20-node testbed: ~100 µs
    /// one-way plus small jitter.
    pub fn lan() -> Self {
        LatencyModel { base: Duration::from_micros(100), jitter: Duration::from_micros(50) }
    }

    /// Same-host loopback (co-located processes).
    pub fn local() -> Self {
        LatencyModel { base: Duration::from_micros(10), jitter: Duration::from_micros(5) }
    }

    /// Sample a one-way latency.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        if self.jitter.micros() == 0 {
            self.base
        } else {
            self.base + Duration::from_micros(rng.below(self.jitter.micros() + 1))
        }
    }
}

/// The cluster interconnect.
#[derive(Debug)]
pub struct Network {
    default_latency: LatencyModel,
    /// Unordered pairs (stored as (min,max)) whose link is cut.
    cut_links: HashSet<(NodeId, NodeId)>,
    /// Nodes whose NIC is unplugged entirely.
    isolated: HashSet<NodeId>,
    /// Independent per-message loss probability (0 by default: TCP-like
    /// links; protocols still tolerate loss, exercised in tests).
    loss_probability: f64,
}

impl Network {
    pub fn new(default_latency: LatencyModel) -> Self {
        Network {
            default_latency,
            cut_links: HashSet::new(),
            isolated: HashSet::new(),
            loss_probability: 0.0,
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Cut the bidirectional link between `a` and `b`.
    pub fn cut(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert(Self::key(a, b));
    }

    /// Restore the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.remove(&Self::key(a, b));
    }

    /// Unplug a node from the network entirely (Test B).
    pub fn isolate(&mut self, n: NodeId) {
        self.isolated.insert(n);
    }

    /// Plug the node's cable back in.
    pub fn rejoin(&mut self, n: NodeId) {
        self.isolated.remove(&n);
    }

    /// Remove all partitions.
    pub fn heal_all(&mut self) {
        self.cut_links.clear();
        self.isolated.clear();
    }

    /// Set independent message-loss probability.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_probability = p;
    }

    /// Whether a message from `a` can currently reach `b`.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.isolated.contains(&a)
            && !self.isolated.contains(&b)
            && !self.cut_links.contains(&Self::key(a, b))
    }

    /// Sample the fate of a message: `Some(latency)` to deliver, `None` to
    /// drop (partitioned or lost).
    pub fn route(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> Option<Duration> {
        if !self.connected(from, to) {
            return None;
        }
        if self.loss_probability > 0.0 && rng.chance(self.loss_probability) {
            return None;
        }
        Some(self.default_latency.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_within_bounds() {
        let m = LatencyModel::lan();
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= m.base && d <= m.base + m.jitter);
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let m = LatencyModel { base: Duration::from_micros(42), jitter: Duration::ZERO };
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng), Duration::from_micros(42));
    }

    #[test]
    fn cut_and_heal_are_symmetric() {
        let mut n = Network::new(LatencyModel::lan());
        assert!(n.connected(1, 2));
        n.cut(2, 1);
        assert!(!n.connected(1, 2));
        assert!(!n.connected(2, 1));
        n.heal(1, 2);
        assert!(n.connected(2, 1));
    }

    #[test]
    fn isolation_blocks_all_traffic() {
        let mut n = Network::new(LatencyModel::lan());
        n.isolate(3);
        assert!(!n.connected(3, 1));
        assert!(!n.connected(1, 3));
        assert!(n.connected(1, 2));
        n.rejoin(3);
        assert!(n.connected(3, 1));
    }

    #[test]
    fn route_drops_on_partition_and_loss() {
        let mut n = Network::new(LatencyModel::lan());
        let mut rng = DetRng::seed_from_u64(9);
        n.cut(1, 2);
        assert!(n.route(1, 2, &mut rng).is_none());
        n.heal_all();
        n.set_loss_probability(1.0);
        assert!(n.route(1, 2, &mut rng).is_none());
        n.set_loss_probability(0.0);
        assert!(n.route(1, 2, &mut rng).is_some());
    }
}
