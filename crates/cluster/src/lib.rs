//! # mams-cluster — the CFS-like file system assembled on the simulator
//!
//! Everything needed to stand up and exercise a full deployment: the
//! [`deploy`] builder (coordination server + shared storage pool + replica
//! groups + data servers), the retrying [`client`] library (partition
//! routing, active discovery through the global view, transparent
//! reconnect-and-resend on failover — the paper's "the client can reconnect
//! to the new active directly and automatically ... and resend requests
//! when needed"), [`workload`] generators for every benchmark in the
//! paper's evaluation, [`metrics`] collection, [`faults`] injection
//! (Tests A/B/C), and [`mttr`] computation.

pub mod client;
pub mod datasrv;
pub mod deploy;
pub mod faults;
pub mod history;
pub mod metrics;
pub mod mttr;
pub mod workload;

pub use client::{ClientConfig, FsClient};
pub use datasrv::DataServer;
pub use deploy::{DeploySpec, Deployment};
pub use history::{History, OpRecord, Recorder};
pub use metrics::{Completion, Metrics};
pub use mttr::{mttr_from_completions, OutageStats};
pub use workload::Workload;
