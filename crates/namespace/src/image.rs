//! Namespace images: checkpoints of the whole tree.
//!
//! The renewing protocol ships an image to a junior whose journal gap is too
//! large to replay record-by-record. Images are encoded as a preorder DFS of
//! full-path entries so a decoder can rebuild the tree with the same public
//! operations used at runtime, and are read back in *chunks* so the junior
//! can checkpoint its progress and resume after an interruption (Section
//! III-D: "the junior records the checkpoint that has been committed ... and
//! avoid retransmitting the whole files").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mams_journal::Sn;

use crate::inode::{Inode, InodeId, ROOT_ID};
use crate::path as nspath;
use crate::tree::NamespaceTree;

/// Image format magic ("MIMG").
pub const MAGIC: u32 = 0x4d49_4d47;
/// Current image format version.
pub const VERSION: u16 = 1;

/// Image decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    BadMagic(u32),
    BadVersion(u16),
    Truncated,
    BadChecksum,
    Corrupt(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadMagic(m) => write!(f, "bad image magic {m:#x}"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::Truncated => write!(f, "truncated image"),
            ImageError::BadChecksum => write!(f, "image checksum mismatch"),
            ImageError::Corrupt(s) => write!(f, "corrupt image: {s}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A serialized namespace checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceImage {
    /// The journal sn this image reflects (replay continues from
    /// `checkpoint_sn + 1`).
    pub checkpoint_sn: Sn,
    /// Encoded bytes.
    pub data: Bytes,
    /// File count at checkpoint time.
    pub files: u64,
    /// Directory count at checkpoint time (excluding root).
    pub dirs: u64,
}

impl NamespaceImage {
    /// Size of the encoded image in bytes — the paper's "Image (MB)" column.
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// A chunk `[offset, offset + len)` of the encoded bytes, clamped to the
    /// image end. Used by the resumable transfer in the renewing protocol.
    pub fn chunk(&self, offset: u64, len: u64) -> Bytes {
        let start = (offset as usize).min(self.data.len());
        let end = ((offset + len) as usize).min(self.data.len());
        self.data.slice(start..end)
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Encode the tree into an image checkpointed at `checkpoint_sn`.
pub fn encode_image(tree: &NamespaceTree, checkpoint_sn: Sn) -> NamespaceImage {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(checkpoint_sn);
    // Root attributes.
    buf.put_u16(tree.inodes[&ROOT_ID].perm());

    // Preorder DFS with explicit paths; children of a directory are visited
    // in sorted order, so parents always precede children.
    let mut stack: Vec<(InodeId, String)> = vec![(ROOT_ID, "/".to_string())];
    while let Some((id, p)) = stack.pop() {
        match &tree.inodes[&id] {
            Inode::Directory { children, perm } => {
                if id != ROOT_ID {
                    buf.put_u8(b'D');
                    buf.put_u32(p.len() as u32);
                    buf.put_slice(p.as_bytes());
                    buf.put_u16(*perm);
                }
                for (name, child) in children.iter().rev() {
                    stack.push((*child, nspath::join(&p, name)));
                }
            }
            Inode::File { blocks, replication, sealed, perm } => {
                buf.put_u8(b'F');
                buf.put_u32(p.len() as u32);
                buf.put_slice(p.as_bytes());
                buf.put_u16(*perm);
                buf.put_u8(*replication);
                buf.put_u8(*sealed as u8);
                buf.put_u32(blocks.len() as u32);
                for b in blocks {
                    buf.put_u64(*b);
                }
            }
        }
    }
    let sum = fnv1a64(&buf);
    buf.put_u64(sum);
    NamespaceImage {
        checkpoint_sn,
        data: buf.freeze(),
        files: tree.num_files(),
        dirs: tree.num_dirs(),
    }
}

/// Decode an image back into a tree, verifying the checksum. Returns the
/// tree and the checkpoint sn stored in the image.
pub fn decode_image(data: Bytes) -> Result<(NamespaceTree, Sn), ImageError> {
    if data.len() < 8 {
        return Err(ImageError::Truncated);
    }
    let body_len = data.len() - 8;
    let body = data.slice(..body_len);
    let stored = {
        let mut t = data.slice(body_len..);
        t.get_u64()
    };
    if stored != fnv1a64(&body) {
        return Err(ImageError::BadChecksum);
    }
    let mut buf = body;
    if buf.remaining() < 4 + 2 + 8 + 2 {
        return Err(ImageError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC {
        return Err(ImageError::BadMagic(magic));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(ImageError::BadVersion(version));
    }
    let sn = buf.get_u64();
    let root_perm = buf.get_u16();
    let mut tree = NamespaceTree::new();
    tree.set_perm("/", root_perm).expect("root exists");

    while buf.has_remaining() {
        let kind = buf.get_u8();
        if buf.remaining() < 4 {
            return Err(ImageError::Truncated);
        }
        let plen = buf.get_u32() as usize;
        if buf.remaining() < plen {
            return Err(ImageError::Truncated);
        }
        let pbytes = buf.copy_to_bytes(plen);
        let p = std::str::from_utf8(&pbytes)
            .map_err(|_| ImageError::Corrupt("non-UTF-8 path".into()))?
            .to_string();
        match kind {
            b'D' => {
                if buf.remaining() < 2 {
                    return Err(ImageError::Truncated);
                }
                let perm = buf.get_u16();
                tree.mkdir(&p).map_err(|e| ImageError::Corrupt(e.to_string()))?;
                tree.set_perm(&p, perm).expect("just created");
            }
            b'F' => {
                if buf.remaining() < 2 + 1 + 1 + 4 {
                    return Err(ImageError::Truncated);
                }
                let perm = buf.get_u16();
                let replication = buf.get_u8();
                let sealed = buf.get_u8() != 0;
                let nblocks = buf.get_u32() as usize;
                if buf.remaining() < nblocks * 8 {
                    return Err(ImageError::Truncated);
                }
                tree.create(&p, replication).map_err(|e| ImageError::Corrupt(e.to_string()))?;
                for _ in 0..nblocks {
                    let b = buf.get_u64();
                    tree.add_block(&p, b).expect("just created");
                }
                if sealed {
                    tree.close_file(&p).expect("just created");
                }
                tree.set_perm(&p, perm).expect("just created");
            }
            k => return Err(ImageError::Corrupt(format!("unknown entry kind {k}"))),
        }
    }
    Ok((tree, sn))
}

/// Estimated encoded image size (bytes) for a namespace with the given
/// shape, used to size experiments without materializing millions of
/// inodes. Derived from the encoding: ~`path + 12` bytes per entry. The
/// paper's calibration point — "more than 7 million files when the image
/// size is about 1 GB" — corresponds to ~150 B/file with realistic paths.
pub fn estimated_image_bytes(files: u64, dirs: u64, avg_path_len: u64) -> u64 {
    16 + (files + dirs) * (avg_path_len + 12) + files * 28
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> NamespaceTree {
        let mut t = NamespaceTree::new();
        t.mkdir_p("/data/logs").unwrap();
        t.mkdir_p("/tmp").unwrap();
        for i in 0..20 {
            let p = format!("/data/logs/f{i}");
            t.create(&p, 3).unwrap();
            t.add_block(&p, 1000 + i).unwrap();
            if i % 2 == 0 {
                t.close_file(&p).unwrap();
            }
        }
        t.set_perm("/tmp", 0o777).unwrap();
        t.set_perm("/", 0o711).unwrap();
        t
    }

    #[test]
    fn image_round_trip_preserves_tree() {
        let t = sample_tree();
        let img = encode_image(&t, 42);
        assert_eq!(img.checkpoint_sn, 42);
        assert_eq!(img.files, 20);
        assert_eq!(img.dirs, 3);
        let (t2, sn) = decode_image(img.data.clone()).unwrap();
        assert_eq!(sn, 42);
        assert_eq!(t.fingerprint(), t2.fingerprint());
        assert_eq!(t2.num_files(), 20);
        assert_eq!(t2.num_dirs(), 3);
        assert_eq!(t2.getfileinfo("/tmp").unwrap().perm, 0o777);
        assert_eq!(t2.getfileinfo("/data/logs/f3").unwrap().blocks, vec![1003]);
    }

    #[test]
    fn corruption_detected() {
        let img = encode_image(&sample_tree(), 1);
        let mut bad = img.data.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x55;
        assert_eq!(decode_image(Bytes::from(bad)).unwrap_err(), ImageError::BadChecksum);
    }

    #[test]
    fn truncation_detected() {
        let img = encode_image(&sample_tree(), 1);
        let cut = img.data.slice(..img.data.len() / 3);
        assert!(decode_image(cut).is_err());
    }

    #[test]
    fn chunks_cover_exactly_the_image() {
        let img = encode_image(&sample_tree(), 1);
        let mut reassembled = Vec::new();
        let chunk = 37u64;
        let mut off = 0u64;
        loop {
            let c = img.chunk(off, chunk);
            if c.is_empty() {
                break;
            }
            reassembled.extend_from_slice(&c);
            off += c.len() as u64;
        }
        assert_eq!(Bytes::from(reassembled), img.data);
        // Past-the-end chunks are empty, not panics.
        assert!(img.chunk(img.size_bytes() + 100, 10).is_empty());
    }

    #[test]
    fn empty_tree_round_trips() {
        let t = NamespaceTree::new();
        let img = encode_image(&t, 0);
        let (t2, sn) = decode_image(img.data).unwrap();
        assert_eq!(sn, 0);
        assert_eq!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn estimator_is_in_papers_ballpark() {
        // ~7M files / ~1 GB from the paper (Section IV-B).
        let est = estimated_image_bytes(7_000_000, 700_000, 100);
        let gb = est as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((0.5..2.0).contains(&gb), "estimated {gb:.2} GB");
    }

    #[test]
    fn encoded_size_tracks_estimate_roughly() {
        let t = sample_tree();
        let img = encode_image(&t, 1);
        let est = estimated_image_bytes(t.num_files(), t.num_dirs(), 16);
        let ratio = img.size_bytes() as f64 / est as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }
}
