//! # mams-bench — harnesses that regenerate every table and figure
//!
//! One binary per experiment (see DESIGN.md §3). Shared plumbing lives
//! here: table formatting, JSON result export, throughput measurement, and
//! trace inspection helpers.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use mams_cluster::deploy::Deployment;
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_sim::{Duration, NodeId, Sim, SimTime};

/// Print an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write a JSON result document under `results/`.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).expect("serializable"));
            println!("(saved {})", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The current active of group 0 according to the recorded view trace.
pub fn current_active(sim: &Sim) -> Option<NodeId> {
    for e in sim.trace().events().iter().rev() {
        if e.tag == "view.set" {
            if let Some(rest) = e.detail.strip_prefix("g/0/active=") {
                return rest.parse().ok();
            }
        }
        if e.tag == "view.del" && e.detail == "g/0/active" {
            return None;
        }
    }
    None
}

/// Throughput of a workload against an already-built deployment:
/// `clients` closed-loop clients run for `warmup + measure`; returns mean
/// ops/s over the measurement window.
pub fn measure_throughput(
    sim: &mut Sim,
    deployment: &mut Deployment,
    make_workload: impl Fn(u32) -> Workload,
    clients: u32,
    warmup: Duration,
    measure: Duration,
) -> f64 {
    let metrics = Metrics::new(false);
    for c in 0..clients {
        deployment.add_client(sim, make_workload(c), metrics.clone());
    }
    sim.run_for(warmup);
    let from_sec = (sim.now().micros() / 1_000_000) as usize;
    sim.run_for(measure);
    let to_sec = (sim.now().micros() / 1_000_000) as usize;
    metrics.mean_throughput(from_sec, to_sec)
}

/// Pre-create `files_per_client` files per client (private dirs), waiting
/// for completion. Returns the metrics of the setup phase.
pub fn populate(
    sim: &mut Sim,
    deployment: &mut Deployment,
    clients: u32,
    files_per_client: u64,
    budget: Duration,
) -> Arc<Metrics> {
    let metrics = Metrics::new(false);
    for c in 0..clients {
        deployment.add_client_with(sim, Workload::create_only(c), metrics.clone(), |mut cfg| {
            // +1 for the setup mkdir.
            cfg.max_ops = Some(files_per_client + 1);
            cfg
        });
    }
    let target = clients as u64 * (files_per_client + 1);
    let deadline = sim.now() + budget;
    while metrics.ok_count() + metrics.failed_count() < target && sim.now() < deadline {
        sim.run_for(Duration::from_secs(1));
    }
    metrics
}

/// Standard kill-the-active MTTR probe: returns the measured MTTR in
/// seconds, if the service recovered.
pub fn mttr_probe(
    sim: &mut Sim,
    metrics: &Metrics,
    kill_at: SimTime,
    kill: impl FnOnce(&mut Sim) + Send + 'static,
    run_until: SimTime,
) -> Option<f64> {
    sim.at(kill_at, kill);
    sim.run_until(run_until);
    let outages =
        mams_cluster::mttr::mttr_from_completions(&metrics.completions(), &[kill_at.micros()]);
    outages.first().map(|o| o.mttr_secs())
}

/// Reconstruct the global-view state table (the paper's Table II rows) from
/// the coordination trace: one row per change to any member's state key,
/// values `A`/`S`/`J`, and `-` while a member's key is absent (dead or
/// unreachable).
pub fn reconstruct_states(sim: &Sim, members: &[NodeId]) -> Vec<(f64, Vec<String>)> {
    use std::collections::HashMap;
    let mut current: HashMap<NodeId, String> = HashMap::new();
    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    let snapshot = |current: &HashMap<NodeId, String>| -> Vec<String> {
        members.iter().map(|m| current.get(m).cloned().unwrap_or_else(|| "-".to_string())).collect()
    };
    for e in sim.trace().events() {
        let changed = match e.tag {
            "view.set" => {
                if let Some((key, value)) = e.detail.split_once('=') {
                    if let Some((0, node)) = mams_core::keys::parse_state_key(key) {
                        current.insert(node, value.to_string());
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            "view.del" => {
                if let Some((0, node)) = mams_core::keys::parse_state_key(&e.detail) {
                    current.remove(&node);
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if changed {
            let snap = snapshot(&current);
            if rows.last().map(|(_, s)| s) != Some(&snap) {
                rows.push((e.time.as_secs_f64(), snap));
            }
        }
    }
    rows
}

/// Schedule "make whoever is active at `at` lose the lock" (Test A).
pub fn expire_current_active_at(sim: &mut Sim, coord: NodeId, at: SimTime) {
    sim.at(at, move |s| {
        if let Some(victim) = current_active(s) {
            s.send_external(coord, mams_coord::CoordReq::ForceExpire { victim });
        }
    });
}

/// Schedule "unplug whoever is active at `at` for `down`" (Test B).
pub fn unplug_current_active_at(sim: &mut Sim, at: SimTime, down: Duration) {
    sim.at(at, move |s| {
        if let Some(victim) = current_active(s) {
            mams_cluster::faults::schedule_unplug(s, victim, s.now(), down);
        }
    });
}

/// Schedule "kill whoever is active at `at`, restart after `down`" (Test C).
pub fn crash_current_active_at(sim: &mut Sim, at: SimTime, down: Duration) {
    sim.at(at, move |s| {
        if let Some(victim) = current_active(s) {
            s.crash(victim);
            s.after(down, move |s2| s2.restart(victim));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::deploy::{build, DeploySpec};
    use mams_cluster::workload::Workload as W;
    use mams_sim::SimConfig;

    #[test]
    fn current_active_tracks_the_view_trace() {
        let mut sim = Sim::new(SimConfig::default());
        let mut d = build(
            &mut sim,
            DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() },
        );
        let m = Metrics::new(false);
        d.add_client(&mut sim, W::create_only(0), m);
        sim.run_for(Duration::from_secs(2));
        assert_eq!(current_active(&sim), Some(d.initial_active(0)));
        // After a failover, the helper reports the new active.
        let old = d.initial_active(0);
        sim.after(Duration::ZERO, move |s| s.crash(old));
        sim.run_for(Duration::from_secs(12));
        let now = current_active(&sim).expect("an active exists");
        assert_ne!(now, old);
        assert!(d.groups[0].members.contains(&now));
    }

    #[test]
    fn reconstruct_states_yields_letter_rows() {
        let mut sim = Sim::new(SimConfig::default());
        let mut d = build(
            &mut sim,
            DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() },
        );
        let m = Metrics::new(false);
        d.add_client(&mut sim, W::create_only(0), m);
        sim.run_for(Duration::from_secs(3));
        let rows = reconstruct_states(&sim, &d.groups[0].members);
        assert!(!rows.is_empty());
        let (_, last) = rows.last().unwrap();
        assert_eq!(last.len(), 3);
        assert_eq!(last.iter().filter(|s| s.as_str() == "A").count(), 1, "{last:?}");
        assert_eq!(last.iter().filter(|s| s.as_str() == "S").count(), 2, "{last:?}");
    }

    #[test]
    fn print_table_pads_columns() {
        // Smoke test: no panic on ragged rows.
        print_table(
            "t",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn measure_and_populate_helpers_work_together() {
        let mut sim = Sim::new(SimConfig { trace: false, ..SimConfig::default() });
        let mut d = build(
            &mut sim,
            DeploySpec { groups: 1, standbys_per_group: 1, ..DeploySpec::default() },
        );
        let setup = populate(&mut sim, &mut d, 2, 50, Duration::from_secs(60));
        assert_eq!(setup.ok_count(), 2 * 51, "2 clients × (50 files + setup mkdir)");
        let tput = measure_throughput(
            &mut sim,
            &mut d,
            |c| Workload::get_info(c, 50),
            2,
            Duration::from_secs(1),
            Duration::from_secs(3),
        );
        assert!(tput > 100.0, "read throughput {tput}");
    }
}
