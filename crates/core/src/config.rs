//! MDS configuration.

use mams_namespace::Partitioner;
use mams_sim::{Duration, NodeId};

/// Role a member boots into before the first view round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialRole {
    /// Race for the lock at startup (the deployment's designated active).
    Active,
    /// Hot backup from the start (empty namespace = trivially in sync).
    Standby,
    /// Out-of-sync backup: must be renewed before it can cover failures
    /// (a freshly added backup node).
    Junior,
}

/// Protocol timing and sizing knobs. Defaults follow the paper's setup
/// (Section IV): ZooKeeper heartbeat 2 s, session timeout 5 s; journal
/// batches aggregated and flushed asynchronously.
#[derive(Debug, Clone, Copy)]
pub struct MdsTiming {
    /// Journal batch flush cadence — the fixed cadence when
    /// `adaptive_commit` is off, and the idle cadence when it is on.
    pub flush_interval: Duration,
    /// Adaptive group commit: size batches from the observed arrival rate
    /// and in-flight ack latency instead of the fixed `flush_interval`
    /// (see `commit::GroupCommitPolicy`).
    pub adaptive_commit: bool,
    /// Shortest adaptive flush interval (latency floor under load).
    pub flush_min: Duration,
    /// Longest adaptive flush interval (batching ceiling when the
    /// durability pipe is slow). Also bounds the drain budget a single
    /// adaptive tick may spend, so a late tick cannot burst past the CPU
    /// model.
    pub flush_max: Duration,
    /// Flush as soon as this many mutations are pending.
    pub batch_max_ops: usize,
    /// Coordination heartbeat interval.
    pub heartbeat: Duration,
    /// Self-fencing lease: an active that has heard *nothing* from the
    /// coordination service for this long must assume its session expired
    /// and step down before a successor can be elected. The coordinator
    /// renews the session on *any* request arrival and we renew the lease
    /// on *any* response arrival (milliseconds later), so the lease clock
    /// can never lag the expiry clock — any value strictly below the
    /// session timeout fences the zombie before a successor serves. Keep
    /// a healthy margin below it, but not so tight that a short burst of
    /// lost view-refresh rounds triggers spurious fences.
    pub coord_lease: Duration,
    /// Active-side scan for juniors needing renewal.
    pub renew_scan: Duration,
    /// Maximum random election delay (Algorithm 1's bid is mapped onto a
    /// delay so the largest bid attempts the lock first).
    pub election_spread: Duration,
    /// Registration retry cadence after a view change.
    pub register_retry: Duration,
    /// Journal-sn gap at or below which the renewing protocol enters its
    /// final synchronization stage.
    pub renew_final_gap: u64,
    /// Journal-sn gap above which a junior loads the image instead of
    /// replaying the journal record-by-record.
    pub renew_image_gap: u64,
    /// Image transfer chunk size (bytes).
    pub image_chunk: u64,
    /// Batches per journal catch-up page.
    pub catchup_page: usize,
    /// Journal catch-up pages kept in flight against the pool at once, so
    /// network RTT overlaps replay instead of serializing with it.
    pub catchup_window: usize,
    /// Per-operation CPU costs (server capacity model).
    pub cpu: crate::ingress::CpuModel,
    /// Automatic image-checkpoint cadence for the active (`None` = only on
    /// explicit `MdsReq::Checkpoint`). Checkpoints compact the shared
    /// journal and bound junior recovery time.
    pub checkpoint_interval: Option<Duration>,
    /// Incremental-checkpoint cadence: the active folds the journal range
    /// since the last checkpoint artifact into a delta image and appends it
    /// to the pool's manifest chain (`None` = full images only). Much
    /// cheaper than a full image — cost is proportional to churn — so it
    /// can run far more often, keeping junior recovery time flat.
    pub delta_interval: Option<Duration>,
    /// Extra per-mutation CPU for each hot standby the active synchronizes
    /// (serialization + send per replica). This is what produces the
    /// paper's few-percent throughput decline per added standby (Fig. 5).
    pub sync_cpu_per_standby: Duration,
    /// **Deliberate bug switch** (chaos-checker teeth test): the active
    /// acknowledges `delete` without applying it. Must never be set outside
    /// chaos campaigns — it exists so the linearizability checker can be
    /// shown to catch a real double-ack defect.
    pub fault_double_ack: bool,
}

impl Default for MdsTiming {
    fn default() -> Self {
        MdsTiming {
            flush_interval: Duration::from_millis(2),
            adaptive_commit: true,
            flush_min: Duration::from_micros(250),
            flush_max: Duration::from_millis(8),
            batch_max_ops: 64,
            heartbeat: Duration::from_secs(2),
            coord_lease: Duration::from_secs(4),
            renew_scan: Duration::from_secs(1),
            election_spread: Duration::from_millis(50),
            register_retry: Duration::from_millis(250),
            renew_final_gap: 8,
            renew_image_gap: 512,
            image_chunk: 4 * 1024 * 1024,
            catchup_page: 64,
            catchup_window: 4,
            cpu: crate::ingress::CpuModel::default(),
            checkpoint_interval: None,
            delta_interval: None,
            sync_cpu_per_standby: Duration::from_micros(5),
            fault_double_ack: false,
        }
    }
}

/// Static configuration of one replica-group member.
#[derive(Debug, Clone)]
pub struct MdsConfig {
    /// This member's replica group.
    pub group: u32,
    /// All members of this replica group (including this node).
    pub members: Vec<NodeId>,
    /// The coordination server.
    pub coord: NodeId,
    /// Shared-storage-pool nodes (requests round-robin across them).
    pub pool: Vec<NodeId>,
    /// Namespace partitioning across all groups in the deployment.
    pub partitioner: Partitioner,
    /// Boot role.
    pub initial_role: InitialRole,
    pub timing: MdsTiming,
}

impl MdsConfig {
    /// Minimal config for a single-group deployment.
    pub fn single_group(
        members: Vec<NodeId>,
        coord: NodeId,
        pool: Vec<NodeId>,
        initial_role: InitialRole,
    ) -> Self {
        MdsConfig {
            group: 0,
            members,
            coord,
            pool,
            partitioner: Partitioner::new(1),
            initial_role,
            timing: MdsTiming::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let t = MdsTiming::default();
        assert_eq!(t.heartbeat, Duration::from_secs(2));
        assert!(t.flush_interval < Duration::from_millis(10));
        assert!(t.renew_final_gap < t.renew_image_gap);
        assert!(t.adaptive_commit);
        assert!(t.flush_min < t.flush_interval);
        assert!(t.flush_interval < t.flush_max);
    }

    #[test]
    fn single_group_builder() {
        let c = MdsConfig::single_group(vec![1, 2, 3], 0, vec![4], InitialRole::Standby);
        assert_eq!(c.group, 0);
        assert_eq!(c.partitioner.groups(), 1);
        assert_eq!(c.initial_role, InitialRole::Standby);
    }
}
