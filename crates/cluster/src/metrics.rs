//! Shared measurement sinks written by client nodes and read by harnesses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mams_sim::SimTime;
use parking_lot::Mutex;

/// One finished operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Completion time (µs of virtual time).
    pub at_us: u64,
    /// Issue time of the *first* attempt (µs) — latency includes retries.
    pub issued_us: u64,
    pub ok: bool,
}

impl Completion {
    pub fn latency_us(&self) -> u64 {
        self.at_us.saturating_sub(self.issued_us)
    }
}

/// Aggregated client metrics; cheaply cloneable handle.
#[derive(Debug, Default)]
pub struct Metrics {
    ok: AtomicU64,
    failed: AtomicU64,
    /// Successful completions per virtual second (index = second).
    per_second: Mutex<Vec<u64>>,
    /// Full completion record (enabled for MTTR/CDF experiments; throughput
    /// runs may leave it off to stay lean).
    record_completions: bool,
    completions: Mutex<Vec<Completion>>,
}

impl Metrics {
    /// `record_completions` controls whether the full per-op record is kept.
    pub fn new(record_completions: bool) -> Arc<Self> {
        Arc::new(Metrics { record_completions, ..Default::default() })
    }

    pub fn record(&self, issued: SimTime, done: SimTime, ok: bool) {
        if ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
            let sec = done.micros() / 1_000_000;
            let mut ps = self.per_second.lock();
            if ps.len() <= sec as usize {
                ps.resize(sec as usize + 1, 0);
            }
            ps[sec as usize] += 1;
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        if self.record_completions {
            self.completions.lock().push(Completion {
                at_us: done.micros(),
                issued_us: issued.micros(),
                ok,
            });
        }
    }

    pub fn ok_count(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    pub fn failed_count(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Successful ops per second, second `i` of the run.
    pub fn per_second(&self) -> Vec<u64> {
        self.per_second.lock().clone()
    }

    /// Full completion log (empty unless enabled).
    pub fn completions(&self) -> Vec<Completion> {
        self.completions.lock().clone()
    }

    /// Mean successful throughput over `[from_sec, to_sec)`.
    pub fn mean_throughput(&self, from_sec: usize, to_sec: usize) -> f64 {
        let ps = self.per_second.lock();
        let to = to_sec.min(ps.len());
        if from_sec >= to {
            return 0.0;
        }
        let sum: u64 = ps[from_sec..to].iter().sum();
        sum as f64 / (to - from_sec) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    #[test]
    fn counts_and_buckets() {
        let m = Metrics::new(false);
        m.record(t(0), t(500_000), true);
        m.record(t(0), t(1_200_000), true);
        m.record(t(0), t(1_300_000), false);
        assert_eq!(m.ok_count(), 2);
        assert_eq!(m.failed_count(), 1);
        assert_eq!(m.per_second(), vec![1, 1]);
        assert!(m.completions().is_empty(), "recording disabled");
    }

    #[test]
    fn completion_log_and_latency() {
        let m = Metrics::new(true);
        m.record(t(100), t(400), true);
        let c = m.completions();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].latency_us(), 300);
    }

    #[test]
    fn mean_throughput_window() {
        let m = Metrics::new(false);
        for s in 0..10u64 {
            for _ in 0..5 {
                m.record(t(0), t(s * 1_000_000 + 1), true);
            }
        }
        assert!((m.mean_throughput(0, 10) - 5.0).abs() < 1e-9);
        assert_eq!(m.mean_throughput(10, 20), 0.0);
        assert_eq!(m.mean_throughput(5, 5), 0.0);
    }
}
