//! Wall-clock hot-path benchmark: the per-op work an active performs on the
//! serve → journal → fan-out path, measured end to end.
//!
//! A fixed-seed 100k-op create/getfileinfo/rename workload runs against a
//! real [`NamespaceTree`]; every `BATCH_OPS` mutations the accumulated
//! transactions are sealed into a journal batch, appended to the active's
//! own log, fanned out to `STANDBYS` standby logs and one pool log, and
//! encoded once for the SSP wire write — exactly the flush path in
//! `mams-core::active`. The result (ops/sec) is written to
//! `BENCH_hotpath.json` at the repo root so successive PRs can track the
//! perf trajectory.
//!
//! Run from the repo root: `cargo run --release --bin bench_hotpath`.

use std::time::Instant;

use mams_journal::{JournalBatch, JournalLog, SharedBatch, Txn};
use mams_namespace::NamespaceTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x4d41_4d53; // "MAMS"
const TOTAL_OPS: usize = 100_000;
const BATCH_OPS: usize = 64;
const STANDBYS: usize = 3;

/// Directory fan-out of the pre-built tree: DIRS top-level dirs, each with
/// SUBS subdirectories nested DEPTH deep (paths like `/d3/s1/s0/s2/f17`).
const DIRS: usize = 16;
const SUBS: usize = 4;
const DEPTH: usize = 3;

fn build_tree() -> (NamespaceTree, Vec<String>) {
    let mut tree = NamespaceTree::new();
    let mut leaves = Vec::new();
    for d in 0..DIRS {
        let top = format!("/d{d}");
        tree.mkdir(&top).unwrap();
        let mut level = vec![top];
        for _ in 0..DEPTH {
            let mut next = Vec::new();
            for dir in &level {
                for s in 0..SUBS {
                    let sub = format!("{dir}/s{s}");
                    tree.mkdir(&sub).unwrap();
                    next.push(sub);
                }
            }
            level = next;
        }
        leaves.extend(level);
    }
    (tree, leaves)
}

/// One full fixed-seed run; returns (elapsed seconds, mutations, reads,
/// batches, wire bytes).
fn run_once() -> (f64, u64, u64, u64, u64) {
    let (mut tree, leaves) = build_tree();
    let mut rng = SmallRng::seed_from_u64(SEED);

    // The replication targets of the flush fan-out: the active's own log,
    // each standby's log, and the shared pool's journal segment.
    let mut active_log = JournalLog::new();
    let mut standby_logs: Vec<JournalLog> = (0..STANDBYS).map(|_| JournalLog::new()).collect();
    let mut pool_log = JournalLog::new();

    let mut files: Vec<String> = Vec::with_capacity(TOTAL_OPS);
    let mut pending: Vec<Txn> = Vec::with_capacity(BATCH_OPS);
    let mut next_sn = 1u64;
    let mut next_txid = 1u64;
    let mut next_file = 0u64;
    let mut batches = 0u64;
    let mut wire_bytes = 0u64;
    let mut mutations = 0u64;
    let mut reads = 0u64;

    let flush = |pending: &mut Vec<Txn>,
                 next_sn: &mut u64,
                 next_txid: &mut u64,
                 active_log: &mut JournalLog,
                 standby_logs: &mut [JournalLog],
                 pool_log: &mut JournalLog,
                 batches: &mut u64,
                 wire_bytes: &mut u64| {
        if pending.is_empty() {
            return;
        }
        let records = std::mem::take(pending);
        // Seal once: the wire form is encoded exactly here, and every
        // fan-out leg below shares the same allocation.
        let batch = SharedBatch::sealed(JournalBatch::new(*next_sn, *next_txid, records));
        *next_sn += 1;
        *next_txid = batch.last_txid() + 1;
        *wire_bytes += batch.wire().len() as u64;
        // Fan out: own log, every standby, the pool segment.
        for log in standby_logs.iter_mut() {
            log.append(batch.share()).unwrap();
        }
        pool_log.append(batch.share()).unwrap();
        active_log.append(batch).unwrap();
        *batches += 1;
    };

    let start = Instant::now();
    for _ in 0..TOTAL_OPS {
        let roll = rng.gen_range(0u32..100);
        if roll < 30 || files.is_empty() {
            // create
            let dir = &leaves[rng.gen_range(0usize..leaves.len())];
            let path = format!("{dir}/f{next_file}");
            next_file += 1;
            if tree.create(&path, 3).is_ok() {
                pending.push(Txn::Create { path: path.clone(), replication: 3 });
                files.push(path);
                mutations += 1;
            }
        } else if roll < 90 {
            // getfileinfo
            let path = &files[rng.gen_range(0usize..files.len())];
            let _ = std::hint::black_box(tree.getfileinfo(path));
            reads += 1;
        } else {
            // rename: move a random file to a fresh name in another leaf dir.
            let idx = rng.gen_range(0usize..files.len());
            let src = files[idx].clone();
            let dir = &leaves[rng.gen_range(0usize..leaves.len())];
            let dst = format!("{dir}/r{next_file}");
            next_file += 1;
            if tree.rename(&src, &dst).is_ok() {
                pending.push(Txn::Rename { src, dst: dst.clone() });
                files[idx] = dst;
                mutations += 1;
            }
        }
        if pending.len() >= BATCH_OPS {
            flush(
                &mut pending,
                &mut next_sn,
                &mut next_txid,
                &mut active_log,
                &mut standby_logs,
                &mut pool_log,
                &mut batches,
                &mut wire_bytes,
            );
        }
    }
    flush(
        &mut pending,
        &mut next_sn,
        &mut next_txid,
        &mut active_log,
        &mut standby_logs,
        &mut pool_log,
        &mut batches,
        &mut wire_bytes,
    );
    let elapsed = start.elapsed();

    // Sanity: every replica holds the identical journal.
    assert_eq!(active_log.tail_sn(), pool_log.tail_sn());
    for log in &standby_logs {
        assert_eq!(log.tail_sn(), active_log.tail_sn());
    }

    (elapsed.as_secs_f64(), mutations, reads, batches, wire_bytes)
}

fn main() {
    // Repeat the identical deterministic workload and keep the fastest run:
    // wall-clock best-of-N is far less sensitive to scheduler noise than a
    // single sample, and every run does exactly the same work.
    const REPS: usize = 5;
    let mut best = f64::INFINITY;
    let (mut mutations, mut reads, mut batches, mut wire_bytes) = (0, 0, 0, 0);
    for _ in 0..REPS {
        let (elapsed, m, r, b, w) = run_once();
        best = best.min(elapsed);
        (mutations, reads, batches, wire_bytes) = (m, r, b, w);
    }
    let ops_per_sec = TOTAL_OPS as f64 / best;
    // Hand-rolled JSON: the offline serde_json stand-in cannot serialize,
    // and this document is the repo's perf trajectory — it must hold real
    // numbers in every environment.
    let doc = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"seed\": {SEED},\n  \"reps\": {REPS},\n  \
         \"total_ops\": {TOTAL_OPS},\n  \
         \"mutations\": {mutations},\n  \"reads\": {reads},\n  \"batches\": {batches},\n  \
         \"standbys\": {STANDBYS},\n  \"wire_bytes\": {wire_bytes},\n  \"elapsed_s\": {best:.6},\n  \
         \"ops_per_sec\": {ops_per_sec:.1}\n}}\n"
    );
    let out = "BENCH_hotpath.json";
    std::fs::write(out, doc).expect("write BENCH_hotpath.json");
    println!(
        "hotpath: {TOTAL_OPS} ops ({mutations} mutations, {reads} reads, {batches} batches) \
         best of {REPS}: {best:.3}s -> {ops_per_sec:.0} ops/s (saved {out})"
    );
}
