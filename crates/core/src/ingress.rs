//! Server CPU model: bounded ingress queue with per-interval processing
//! budget.
//!
//! The simulator's message handling is instantaneous, so without a CPU
//! model every server would have infinite throughput and the paper's
//! capacity comparisons (Figures 5 and 6) could not reproduce. Each
//! namenode admits client operations into a bounded queue and drains it
//! once per flush interval, spending [`CpuModel`] time per operation until
//! the interval's budget is used up; the excess waits (queueing delay) or,
//! past the bound, is dropped for the client to retry.

use std::collections::VecDeque;

use mams_sim::{Duration, NodeId};

use crate::proto::FsOp;

/// A unit of admitted work: a client operation or a distributed-transaction
/// leg from another group's coordinator. Both consume server CPU, which is
/// why the paper's structural operations do not scale with the number of
/// actives.
#[derive(Debug)]
pub enum IngressItem {
    Client {
        from: NodeId,
        op: FsOp,
        seq: u64,
        /// Speculative-ack mode (`MdsReq::OpSpec`): `Some(min_token)`.
        /// Mutations ack on apply carrying an ordering token; reads wait
        /// until the applied watermark reaches `min_token`.
        spec: Option<u64>,
    },
    Leg {
        coordinator: NodeId,
        xid: (u32, u64),
        op: FsOp,
    },
}

impl IngressItem {
    pub fn op(&self) -> &FsOp {
        match self {
            IngressItem::Client { op, .. } | IngressItem::Leg { op, .. } => op,
        }
    }
}

/// Per-operation processing costs (calibrated to commodity-namenode rates:
/// ~20k reads/s and ~6.7k mutations/s per server).
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    pub read: Duration,
    pub mutation: Duration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel { read: Duration::from_micros(50), mutation: Duration::from_micros(150) }
    }
}

impl CpuModel {
    pub fn cost(&self, op: &FsOp) -> Duration {
        if op.is_mutation() {
            self.mutation
        } else {
            self.read
        }
    }
}

/// Bounded admission queue with deficit carry-over (unspent budget rolls
/// into the next interval while work is waiting, so sustained throughput
/// tracks the CPU model continuously instead of quantizing to whole ops
/// per interval).
#[derive(Debug)]
pub struct Ingress {
    queue: VecDeque<IngressItem>,
    bound: usize,
    dropped: u64,
    credit: Duration,
    admitted: u64,
}

impl Default for Ingress {
    fn default() -> Self {
        Ingress::new(10_000)
    }
}

impl Ingress {
    pub fn new(bound: usize) -> Self {
        Ingress { queue: VecDeque::new(), bound, dropped: 0, credit: Duration::ZERO, admitted: 0 }
    }

    /// Admit a client operation; `false` = queue full, op dropped (client
    /// will time out and retry).
    pub fn push(&mut self, from: NodeId, op: FsOp, seq: u64, spec: Option<u64>) -> bool {
        self.push_item(IngressItem::Client { from, op, seq, spec })
    }

    /// Admit any work item.
    pub fn push_item(&mut self, item: IngressItem) -> bool {
        if self.queue.len() >= self.bound {
            self.dropped += 1;
            return false;
        }
        self.queue.push_back(item);
        self.admitted += 1;
        true
    }

    /// Take as many queued operations as fit in `budget` (plus carried
    /// credit) under `cpu`.
    pub fn drain(&mut self, budget: Duration, cpu: CpuModel) -> Vec<IngressItem> {
        let mut avail = budget + self.credit;
        let mut out = Vec::new();
        while let Some(item) = self.queue.front() {
            let cost = cpu.cost(item.op());
            if cost > avail {
                break;
            }
            avail = avail - cost;
            out.push(self.queue.pop_front().expect("front checked"));
        }
        if out.is_empty() {
            if let Some(item) = self.queue.pop_front() {
                // Progress guarantee for overweight items.
                out.push(item);
                avail = Duration::ZERO;
            }
        }
        // Credit only accumulates while work is waiting (capacity cannot be
        // banked while idle).
        self.credit = if self.queue.is_empty() { Duration::ZERO } else { avail.min(budget) };
        out
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Operations rejected because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total operations ever admitted (monotone; the adaptive commit
    /// controller differences this across ticks to observe arrival rate).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Discard all queued operations (failover: clients retry elsewhere).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(i: u64) -> (NodeId, FsOp, u64) {
        (1, FsOp::GetFileInfo { path: "/x".into() }, i)
    }
    fn mutation(i: u64) -> (NodeId, FsOp, u64) {
        (1, FsOp::Create { path: format!("/f{i}"), replication: 1 }, i)
    }
    fn seq_of(item: &IngressItem) -> u64 {
        match item {
            IngressItem::Client { seq, .. } => *seq,
            IngressItem::Leg { xid, .. } => xid.1,
        }
    }

    #[test]
    fn budget_limits_drain() {
        let mut q = Ingress::new(1_000);
        for i in 0..50 {
            let (f, o, s) = mutation(i);
            q.push(f, o, s, None);
        }
        let cpu = CpuModel::default(); // 150us per mutation
        let got = q.drain(Duration::from_millis(2), cpu);
        // 2ms / 150us ≈ 13 ops.
        assert!((12..=14).contains(&got.len()), "drained {}", got.len());
        assert_eq!(q.len(), 50 - got.len());
        // Carry-over: over many intervals the rate converges to
        // budget/cost exactly (2ms / 150us = 13.33 ops per interval).
        for i in 50..200 {
            let (f, o, s) = mutation(i);
            q.push(f, o, s, None);
        }
        let mut total = got.len();
        for _ in 0..14 {
            total += q.drain(Duration::from_millis(2), cpu).len();
        }
        assert!((198..=200).contains(&total), "15 intervals drained {total}");
    }

    #[test]
    fn reads_are_cheaper() {
        let mut q = Ingress::new(100);
        for i in 0..50 {
            let (f, o, s) = read(i);
            q.push(f, o, s, None);
        }
        let got = q.drain(Duration::from_millis(2), CpuModel::default());
        assert!(got.len() >= 39, "drained {}", got.len());
    }

    #[test]
    fn at_least_one_op_even_if_overweight() {
        let mut q = Ingress::new(10);
        let (f, o, s) = mutation(0);
        q.push(f, o, s, None);
        let got = q.drain(Duration::from_micros(1), CpuModel::default());
        assert_eq!(got.len(), 1, "progress guarantee");
    }

    #[test]
    fn admitted_counts_only_accepted_ops() {
        let mut q = Ingress::new(2);
        for i in 0..5 {
            let (f, o, s) = mutation(i);
            q.push(f, o, s, None);
        }
        assert_eq!(q.admitted(), 2);
        q.drain(Duration::from_secs(1), CpuModel::default());
        let (f, o, s) = mutation(9);
        q.push(f, o, s, Some(0));
        // Monotone across drains.
        assert_eq!(q.admitted(), 3);
    }

    #[test]
    fn bound_drops_overflow() {
        let mut q = Ingress::new(2);
        for i in 0..5 {
            let (f, o, s) = mutation(i);
            q.push(f, o, s, None);
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 3);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = Ingress::new(10);
        for i in 0..5 {
            let (f, o, s) = mutation(i);
            q.push(f, o, s, None);
        }
        let got = q.drain(Duration::from_secs(1), CpuModel::default());
        let seqs: Vec<u64> = got.iter().map(seq_of).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
