//! Table I: MTTR vs image size for MAMS-1A3S, BackupNode, Hadoop Avatar,
//! and Hadoop HA.
//!
//! Expected shape (paper): BackupNode grows from ~3 s to ~140 s with image
//! size (block-location recollection); Avatar stays flat around 30 s;
//! Hadoop HA flat around 16–19 s; MAMS flat around 6 s (session timeout +
//! millisecond-scale election and switch + client reconnection), i.e.
//! 14–35 % of the baselines' average MTTR.

use mams_baselines::{avatar, backupnode, hadoop_ha, FsScale};
use mams_bench::{print_table, save_json};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::mttr::mttr_from_completions;
use mams_cluster::workload::Workload;
use mams_cluster::{ClientConfig, FsClient};
use mams_coord::{CoordConfig, CoordServer};
use mams_namespace::Partitioner;
use mams_sim::{DetRng, Sim, SimConfig, SimTime};

const IMAGE_MB: [u64; 7] = [16, 32, 64, 128, 256, 512, 1024];
const REPS: u64 = 5;
const KILL_AT: SimTime = SimTime(15_000_000);

fn run_one(system: &str, image_mb: u64, seed: u64) -> Option<f64> {
    let mut sim = Sim::new(SimConfig { seed, trace: true, ..SimConfig::default() });
    let metrics = Metrics::new(true);
    // Generous horizon: BackupNode at 1 GB needs ~2.5 virtual minutes.
    let horizon = SimTime(15_000_000 + 200_000_000);

    match system {
        "MAMS-1A3S" => {
            // Image size does not enter MAMS failover: the standbys are hot
            // and the data servers already report blocks to them.
            let mut d = build(
                &mut sim,
                DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() },
            );
            d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
            let victim = d.initial_active(0);
            sim.at(KILL_AT, move |s| s.crash(victim));
        }
        _ => {
            let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
            let victim = match system {
                "BackupNode" => {
                    let spec = backupnode::BackupNodeSpec {
                        scale: FsScale::from_image_mb(image_mb),
                        ..Default::default()
                    };
                    backupnode::build(&mut sim, coord, spec).0
                }
                "Hadoop Avatar" => avatar::build(&mut sim, coord, avatar::AvatarSpec::default()).0,
                "Hadoop HA" => {
                    hadoop_ha::build(&mut sim, coord, hadoop_ha::HadoopHaSpec::default()).0
                }
                other => panic!("unknown system {other}"),
            };
            let cfg = ClientConfig::new(coord, Partitioner::new(1));
            sim.add_node(
                "client",
                Box::new(FsClient::new(
                    cfg,
                    Workload::create_only(0),
                    metrics.clone(),
                    DetRng::seed_from_u64(seed ^ 0xC11E),
                )),
            );
            sim.at(KILL_AT, move |s| s.crash(victim));
        }
    }
    sim.run_until(horizon);
    let outages = mttr_from_completions(&metrics.completions(), &[KILL_AT.micros()]);
    outages.first().map(|o| o.mttr_secs())
}

fn mean_mttr(system: &str, image_mb: u64) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u32;
    for rep in 0..REPS {
        if let Some(m) = run_one(system, image_mb, 0x7AB1E + rep * 7919 + image_mb) {
            sum += m;
            n += 1;
        }
    }
    assert!(n > 0, "{system} at {image_mb} MB never recovered");
    sum / n as f64
}

fn main() {
    let systems = ["MAMS-1A3S", "BackupNode", "Hadoop Avatar", "Hadoop HA"];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for &mb in &IMAGE_MB {
        let mut row = vec![mb.to_string()];
        let mut jrow = serde_json::Map::new();
        jrow.insert("image_mb".into(), serde_json::json!(mb));
        for (i, sys) in systems.iter().enumerate() {
            let m = mean_mttr(sys, mb);
            sums[i] += m;
            row.push(format!("{m:.3}"));
            jrow.insert(sys.to_string(), serde_json::json!(m));
        }
        rows.push(row);
        json_rows.push(serde_json::Value::Object(jrow));
        eprintln!("  done {mb} MB");
    }
    let mut headers = vec!["Image (MB)"];
    headers.extend(systems.iter().copied());
    print_table("Table I: MTTR (s) of reliable metadata management systems", &headers, &rows);

    let n = IMAGE_MB.len() as f64;
    let avg: Vec<f64> = sums.iter().map(|s| s / n).collect();
    println!(
        "\nAverage MTTR: MAMS {:.2}s, BackupNode {:.2}s, Avatar {:.2}s, HA {:.2}s",
        avg[0], avg[1], avg[2], avg[3]
    );
    println!(
        "MAMS average failover time is {:.2}% of BackupNode, {:.2}% of Avatar, {:.2}% of HA",
        avg[0] / avg[1] * 100.0,
        avg[0] / avg[2] * 100.0,
        avg[0] / avg[3] * 100.0
    );
    println!("(paper: 14.35% of BackupNode, 19.77% of Avatar, 34.54% of HA)");
    save_json("table1_mttr", &serde_json::json!({ "rows": json_rows, "averages": avg }));
}
