//! Fault injection: the paper's three error classes.
//!
//! * **Test A** — "modifying the global view to make the active lose the
//!   lock": [`schedule_lock_loss`] force-expires the victim's coordination
//!   session.
//! * **Test B** — "unplugging and reconnecting network wires":
//!   [`schedule_unplug`] isolates a node's NIC for a while, then plugs it
//!   back.
//! * **Test C** — "shutting down and restarting processes":
//!   [`schedule_crash`] / [`schedule_restart`] (fresh in-memory state on
//!   restart, like a real process).

use mams_coord::CoordReq;
use mams_sim::{Duration, NodeId, Sim, SimTime};

/// Kill a process at `at`.
pub fn schedule_crash(sim: &mut Sim, node: NodeId, at: SimTime) {
    sim.at(at, move |s| s.crash(node));
}

/// Restart a crashed process at `at` (requires `add_restartable`).
pub fn schedule_restart(sim: &mut Sim, node: NodeId, at: SimTime) {
    sim.at(at, move |s| s.restart(node));
}

/// Crash at `at` and restart after `down_for`.
pub fn schedule_crash_restart(sim: &mut Sim, node: NodeId, at: SimTime, down_for: Duration) {
    schedule_crash(sim, node, at);
    schedule_restart(sim, node, at + down_for);
}

/// Unplug `node`'s network cable at `at`, plug it back after `down_for`.
pub fn schedule_unplug(sim: &mut Sim, node: NodeId, at: SimTime, down_for: Duration) {
    sim.at(at, move |s| s.net_mut().isolate(node));
    sim.at(at + down_for, move |s| s.net_mut().rejoin(node));
}

/// Force the victim's coordination session to expire at `at` (Test A).
pub fn schedule_lock_loss(sim: &mut Sim, coord: NodeId, victim: NodeId, at: SimTime) {
    sim.at(at, move |s| {
        s.send_external(coord, CoordReq::ForceExpire { victim });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_sim::{NodeStatus, SimConfig};

    use mams_sim::{Ctx, Message, Node};

    struct Idle;
    impl Node for Idle {
        fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
    }

    #[test]
    fn crash_restart_cycle() {
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_restartable("n", || Box::new(Idle));
        schedule_crash_restart(&mut sim, n, SimTime(1_000_000), Duration::from_secs(2));
        sim.run_until(SimTime(1_500_000));
        assert_eq!(sim.node_status(n), NodeStatus::Down);
        sim.run_until(SimTime(3_500_000));
        assert_eq!(sim.node_status(n), NodeStatus::Up);
    }

    #[test]
    fn unplug_cycle() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", Box::new(Idle));
        let b = sim.add_node("b", Box::new(Idle));
        schedule_unplug(&mut sim, a, SimTime(1_000_000), Duration::from_secs(1));
        sim.run_until(SimTime(1_100_000));
        assert!(!sim.net_mut().connected(a, b));
        sim.run_until(SimTime(2_100_000));
        assert!(sim.net_mut().connected(a, b));
    }
}
