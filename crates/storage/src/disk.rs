//! Disk latency model for pool nodes.
//!
//! Calibrated to the paper's testbed (commodity SATA behind a file system
//! cache, journal appends batched and written asynchronously): a fixed seek/
//! submit overhead plus a streaming term.

use mams_sim::Duration;

/// Latency model for sequential journal/image I/O.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Fixed per-operation overhead (submit + fsync amortization).
    pub op_overhead: Duration,
    /// Streaming throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl DiskModel {
    /// Journal-device profile: ~1.5 ms per flush, ~100 MB/s streaming.
    pub fn journal_disk() -> Self {
        DiskModel { op_overhead: Duration::from_micros(1_500), bytes_per_sec: 100 * 1024 * 1024 }
    }

    /// Image-store profile: ~5 ms seek, ~100 MB/s streaming (what the
    /// paper's image-load times during renewing are dominated by).
    pub fn image_disk() -> Self {
        DiskModel { op_overhead: Duration::from_micros(5_000), bytes_per_sec: 100 * 1024 * 1024 }
    }

    /// Time to read or write `bytes` sequentially.
    pub fn io_time(&self, bytes: u64) -> Duration {
        let stream_us = (bytes as u128 * 1_000_000 / self.bytes_per_sec as u128) as u64;
        self.op_overhead + Duration::from_micros(stream_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_io_dominated_by_overhead() {
        let d = DiskModel::journal_disk();
        let t = d.io_time(512);
        assert!(t >= d.op_overhead);
        assert!(t < d.op_overhead + Duration::from_micros(100));
    }

    #[test]
    fn large_io_dominated_by_streaming() {
        let d = DiskModel::image_disk();
        // 1 GiB at 100 MiB/s ≈ 10.24 s.
        let t = d.io_time(1024 * 1024 * 1024);
        let secs = t.as_secs_f64();
        assert!((9.0..12.0).contains(&secs), "1 GiB load took {secs}s");
    }

    #[test]
    fn io_time_is_monotone_in_size() {
        let d = DiskModel::journal_disk();
        assert!(d.io_time(10) <= d.io_time(1_000));
        assert!(d.io_time(1_000) <= d.io_time(1_000_000));
    }
}
