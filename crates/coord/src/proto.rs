//! Coordination protocol messages.

/// Correlates responses with requests.
pub type ReqId = u64;

/// One key mutation inside an atomic multi-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyOp {
    /// Set `key` to `value` (`ephemeral` ties it to the caller's session).
    Set { key: String, value: String, ephemeral: bool },
    /// Delete `key` (no-op if absent).
    Delete { key: String },
    /// Delete `key` only if it currently holds `value`. Cleanup writes from
    /// a deposed active use this so a delayed or duplicated delete can never
    /// clobber a successor's freshly published pointer.
    DeleteIfValue { key: String, value: String },
}

/// Client → server requests.
#[derive(Debug, Clone)]
pub enum CoordReq {
    /// Open (or refresh) a session for the sender.
    Register,
    /// Keep the sender's session alive.
    Heartbeat,
    /// Atomically apply several key operations.
    Multi { ops: Vec<KeyOp>, req: ReqId },
    /// Read one key.
    Get { key: String, req: ReqId },
    /// List `(key, value)` pairs under a prefix.
    List { prefix: String, req: ReqId },
    /// Subscribe to changes under a prefix (persistent watch).
    Watch { prefix: String, req: ReqId },
    /// Try to take the lock at `path`. Grants carry a fencing epoch.
    AcquireLock { path: String, req: ReqId },
    /// Release a held lock. `epoch` must match the grant being released:
    /// a delayed or duplicated release from an earlier tenure carries a
    /// stale epoch and must not free a lock the sender has since
    /// re-acquired.
    ReleaseLock { path: String, epoch: u64, req: ReqId },
    /// Deliberately drop the sender's session (Test A forces the active to
    /// lose the lock this way).
    Expire,
    /// Harness-only: drop `victim`'s session ("modifying the global view to
    /// make the active lose the lock", Test A).
    ForceExpire { victim: u32 },
}

/// Server → client responses.
#[derive(Debug, Clone)]
pub enum CoordResp {
    Registered,
    MultiOk {
        req: ReqId,
    },
    Value {
        key: String,
        value: Option<String>,
        req: ReqId,
    },
    Listing {
        prefix: String,
        entries: Vec<(String, String)>,
        req: ReqId,
    },
    Watching {
        prefix: String,
        req: ReqId,
    },
    LockGranted {
        path: String,
        epoch: u64,
        req: ReqId,
    },
    LockBusy {
        path: String,
        holder: u32,
        req: ReqId,
    },
    LockReleased {
        path: String,
        req: ReqId,
    },
    /// The sender has no live session (it must re-register).
    NoSession,
}

/// Server → watcher pushed events.
#[derive(Debug, Clone)]
pub enum CoordEvent {
    /// A watched key changed (`None` value = deleted). `by_expiry` marks
    /// changes caused by a session timeout rather than an explicit request.
    KeyChanged { key: String, value: Option<String>, by_expiry: bool },
    /// A watched lock was released (by request or expiry); watchers may race
    /// to acquire it.
    LockFreed { path: String, by_expiry: bool },
    /// A watched lock was granted to `holder` with `epoch`.
    LockTaken { path: String, holder: u32, epoch: u64 },
    /// The receiver's own session expired (it must re-register and rejoin).
    SessionExpired,
}
