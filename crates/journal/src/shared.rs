//! Reference-counted journal batches with an encode-once wire form.
//!
//! The active seals a pending batch exactly once per flush; after that the
//! batch is immutable and every consumer — the active's own log, each
//! standby's `SyncJournal` message, the SSP append, the retry and renewing
//! paths — holds the *same* allocation. [`SharedBatch`] makes that sharing
//! explicit: it is a cheap `Arc` handle around the decoded
//! [`JournalBatch`] plus a lazily-computed [`Bytes`] wire encoding that is
//! produced at most once per batch, no matter how many replicas it is
//! shipped to.

use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use bytes::Bytes;

use crate::encode::encode_batch;
use crate::txn::JournalBatch;

#[derive(Debug)]
struct Inner {
    batch: JournalBatch,
    /// Wire/disk encoding, computed on first use and reused for every
    /// subsequent ship or durable write of this batch.
    wire: OnceLock<Bytes>,
}

/// An immutable, shareable journal batch.
///
/// Dereferences to [`JournalBatch`], so read-only call sites (`batch.sn`,
/// `batch.entries()`, `batch.weight()`) are unchanged. Fan-out call sites
/// use [`SharedBatch::share`] — a reference-count bump — instead of deep
/// cloning records and path strings.
#[derive(Debug, Clone)]
pub struct SharedBatch {
    inner: Arc<Inner>,
}

impl SharedBatch {
    /// Wrap a freshly built batch. The wire form is computed lazily on the
    /// first [`wire`](Self::wire) call.
    pub fn new(batch: JournalBatch) -> Self {
        SharedBatch { inner: Arc::new(Inner { batch, wire: OnceLock::new() }) }
    }

    /// Wrap and immediately seal: the batch is encoded here, exactly once,
    /// and never again for its lifetime. This is what `flush_batch` uses.
    pub fn sealed(batch: JournalBatch) -> Self {
        let shared = SharedBatch::new(batch);
        shared.wire();
        shared
    }

    /// Wrap a batch that was just decoded from `wire` (a pool read or a
    /// network receive): the already-paid encoding is retained so the batch
    /// is never re-encoded downstream.
    pub fn from_wire(batch: JournalBatch, wire: Bytes) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(wire);
        SharedBatch { inner: Arc::new(Inner { batch, wire: cell }) }
    }

    /// Another handle to the same batch — a reference-count bump, not a
    /// copy. Named distinctly from `clone` so hot-path code reads as
    /// sharing.
    pub fn share(&self) -> SharedBatch {
        SharedBatch { inner: Arc::clone(&self.inner) }
    }

    /// The wire encoding, computed at most once per batch.
    pub fn wire(&self) -> &Bytes {
        self.inner.wire.get_or_init(|| encode_batch(&self.inner.batch))
    }

    /// Whether the wire form has been computed yet.
    pub fn is_sealed(&self) -> bool {
        self.inner.wire.get().is_some()
    }

    /// The decoded batch.
    pub fn batch(&self) -> &JournalBatch {
        &self.inner.batch
    }

    /// Whether two handles point at the same allocation.
    pub fn ptr_eq(a: &SharedBatch, b: &SharedBatch) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

/// Lets shared handles stand in wherever a `&JournalBatch` is borrowed
/// (e.g. [`crate::ReplayCursor::offer_all`]). Consistent with `Eq`: handle
/// equality is batch-content equality.
impl std::borrow::Borrow<JournalBatch> for SharedBatch {
    fn borrow(&self) -> &JournalBatch {
        &self.inner.batch
    }
}

impl Deref for SharedBatch {
    type Target = JournalBatch;

    fn deref(&self) -> &JournalBatch {
        &self.inner.batch
    }
}

impl From<JournalBatch> for SharedBatch {
    fn from(batch: JournalBatch) -> Self {
        SharedBatch::new(batch)
    }
}

/// Equality is over batch *contents* (divergence detection compares
/// payloads, not handles); identical handles short-circuit.
impl PartialEq for SharedBatch {
    fn eq(&self, other: &SharedBatch) -> bool {
        SharedBatch::ptr_eq(self, other) || self.inner.batch == other.inner.batch
    }
}

impl Eq for SharedBatch {}

impl PartialEq<JournalBatch> for SharedBatch {
    fn eq(&self, other: &JournalBatch) -> bool {
        self.inner.batch == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_batch;
    use crate::txn::Txn;

    fn sample(sn: u64) -> JournalBatch {
        JournalBatch::new(
            sn,
            sn * 10,
            vec![
                Txn::Create { path: format!("/a/f{sn}"), replication: 3 },
                Txn::Rename { src: format!("/a/f{sn}"), dst: format!("/b/f{sn}") },
            ],
        )
    }

    #[test]
    fn share_is_the_same_allocation() {
        let a = SharedBatch::new(sample(1));
        let b = a.share();
        assert!(SharedBatch::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(b.sn, 1, "deref reaches batch fields");
    }

    #[test]
    fn sealed_encodes_once_and_wire_round_trips() {
        let shared = SharedBatch::sealed(sample(7));
        assert!(shared.is_sealed());
        let w1 = shared.wire().clone();
        let w2 = shared.share().wire().clone();
        // Bytes clones of the same encoding share the same buffer.
        assert_eq!(w1.as_ptr(), w2.as_ptr(), "wire computed exactly once");
        assert_eq!(decode_batch(w1).unwrap(), *shared.batch());
    }

    #[test]
    fn from_wire_keeps_the_paid_encoding() {
        let original = SharedBatch::sealed(sample(3));
        let wire = original.wire().clone();
        let decoded = SharedBatch::from_wire(decode_batch(wire.clone()).unwrap(), wire.clone());
        assert!(decoded.is_sealed());
        assert_eq!(decoded.wire().as_ptr(), wire.as_ptr());
        assert_eq!(decoded, original);
    }

    #[test]
    fn equality_is_by_content_across_allocations() {
        let a = SharedBatch::new(sample(4));
        let b = SharedBatch::new(sample(4));
        assert!(!SharedBatch::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let c = SharedBatch::new(sample(5));
        assert_ne!(a, c);
    }
}
