//! Per-task completion records for the Figure 9 CDFs.

use std::sync::Arc;

use parking_lot::Mutex;

/// Completion timestamps (µs of virtual time), one entry per finished task.
#[derive(Debug, Default)]
pub struct JobStats {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    started: Option<u64>,
    maps_done: Vec<u64>,
    reduces_done: Vec<u64>,
    job_done: Option<u64>,
}

impl JobStats {
    pub fn new() -> Arc<Self> {
        Arc::new(JobStats::default())
    }

    pub fn job_started(&self, at_us: u64) {
        self.inner.lock().started = Some(at_us);
    }

    pub fn started_at(&self) -> Option<u64> {
        self.inner.lock().started
    }

    pub fn map_done(&self, at_us: u64) {
        self.inner.lock().maps_done.push(at_us);
    }

    pub fn reduce_done(&self, at_us: u64) {
        self.inner.lock().reduces_done.push(at_us);
    }

    pub fn job_done(&self, at_us: u64) {
        self.inner.lock().job_done = Some(at_us);
    }

    pub fn maps_done(&self) -> Vec<u64> {
        let mut v = self.inner.lock().maps_done.clone();
        v.sort_unstable();
        v
    }

    pub fn reduces_done(&self) -> Vec<u64> {
        let mut v = self.inner.lock().reduces_done.clone();
        v.sort_unstable();
        v
    }

    pub fn job_done_at(&self) -> Option<u64> {
        self.inner.lock().job_done
    }

    /// CDF points `(time_us, fraction_complete)` for a completion list.
    pub fn cdf(times: &[u64]) -> Vec<(u64, f64)> {
        let n = times.len();
        times.iter().enumerate().map(|(i, &t)| (t, (i + 1) as f64 / n as f64)).collect()
    }

    /// Time (µs) at which `frac` of the tasks had completed.
    pub fn quantile(times: &[u64], frac: f64) -> Option<u64> {
        if times.is_empty() {
            return None;
        }
        let idx = ((times.len() as f64 * frac).ceil() as usize).clamp(1, times.len());
        Some(times[idx - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let s = JobStats::new();
        s.map_done(30);
        s.map_done(10);
        s.reduce_done(99);
        s.job_done(100);
        assert_eq!(s.maps_done(), vec![10, 30]);
        assert_eq!(s.reduces_done(), vec![99]);
        assert_eq!(s.job_done_at(), Some(100));
    }

    #[test]
    fn cdf_and_quantiles() {
        let times = vec![10, 20, 30, 40];
        let cdf = JobStats::cdf(&times);
        assert_eq!(cdf.first(), Some(&(10, 0.25)));
        assert_eq!(cdf.last(), Some(&(40, 1.0)));
        assert_eq!(JobStats::quantile(&times, 0.5), Some(20));
        assert_eq!(JobStats::quantile(&times, 1.0), Some(40));
        assert_eq!(JobStats::quantile(&[], 0.5), None);
    }
}
