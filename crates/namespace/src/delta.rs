//! Delta images: journal-anchored incremental checkpoints.
//!
//! A delta image covers the journal range `(base_sn, end_sn]` as a minimal
//! **changed-path set**: folding the range keeps only the *final* state of
//! every path it touched (last-writer-wins), with tombstones for paths that
//! ended up removed. A delta is therefore far smaller than the raw journal
//! span it covers — a file appended a thousand times folds to one entry —
//! and applying it over any state within the covered range lands exactly on
//! the end state.
//!
//! **Apply-anywhere invariant.** A delta over `(N, M]` applied to the
//! namespace as of *any* sn `S ∈ [N, M]` yields the namespace as of `M`.
//! This holds because every path whose state differs between `S` and `M`
//! was necessarily touched by the range `(S, M] ⊆ (N, M]`, entries carry
//! whole final states (not edits), tombstones are idempotent
//! remove-if-present, and directories whose inode identity was severed
//! (delete or rename) ship as *replace* entries with their full final
//! subtree so stale children can never survive a merge. The renewing
//! junior's flat-MTTR fast path rests on this: a restarting replica at sn
//! `S ≥ N` skips the base image entirely and applies only the deltas whose
//! `end_sn > S`.
//!
//! Wire format (magic `MDLT`): the v2 image idiom — varint lengths, paths
//! prefix-compressed against the previous entry (entries are sorted, so
//! siblings share long prefixes), per-entry op tags, and the repo-wide
//! FNV-1a-64 trailer via [`HashingBuf`]. Deltas are small enough to buffer
//! whole before decoding, so unlike the base image there is no streaming
//! decoder; corruption anywhere fails [`decode_delta`] loudly.

use std::collections::BTreeSet;

use bytes::Bytes;
use mams_journal::hash::{fnv1a64, HashingBuf};
use mams_journal::{Sn, Txn};

use crate::image::ImageError;
use crate::inode::FileInfo;
use crate::retry::RetryWindow;
use crate::shard::ShardedNamespace;
use crate::tree::{NamespaceTree, NsError};

/// Delta image magic ("MDLT").
pub const DELTA_MAGIC: u32 = 0x4d44_4c54;
/// Delta wire format version.
pub const DELTA_VERSION: u16 = 1;

/// Fixed header: magic (4) + version (2) + base sn (8) + end sn (8).
const HEADER_LEN: usize = 22;
/// Trailing checksum length.
const TRAILER_LEN: usize = 8;

/// One folded change: the final state of a touched path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Merge-upsert a directory: create it if absent, otherwise keep its
    /// children and refresh the permission bits (a file in the way is
    /// replaced).
    UpsertDir { perm: u16 },
    /// Replace whatever is at the path with a fresh empty directory. Used
    /// when the inode identity was severed inside the folded range (delete
    /// or rename): merging would let children that only exist in the
    /// consumer's older state survive. The directory's final subtree rides
    /// along as ordinary upsert entries sorted after it.
    ReplaceDir { perm: u16 },
    /// Replace/create the file with exactly these attributes.
    UpsertFile { perm: u16, replication: u8, sealed: bool, blocks: Vec<u64> },
    /// Remove the path (recursively) if present.
    Tombstone,
}

/// A folded entry: path plus its final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEntry {
    pub path: String,
    pub op: DeltaOp,
}

/// A serialized delta image covering the journal range `(base_sn, end_sn]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaImage {
    /// The sn this delta chains onto (exclusive).
    pub base_sn: Sn,
    /// The sn this delta advances the consumer to (inclusive).
    pub end_sn: Sn,
    /// Number of folded entries.
    pub entries: u64,
    /// Encoded bytes.
    pub data: Bytes,
}

impl DeltaImage {
    /// Size of the encoded delta in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// A chunk `[offset, offset + len)` of the encoded bytes, clamped to
    /// the end (resumable transfer, same contract as the base image).
    pub fn chunk(&self, offset: u64, len: u64) -> Bytes {
        let size = self.data.len() as u64;
        let start = offset.min(size) as usize;
        let end = offset.saturating_add(len).min(size) as usize;
        self.data.slice(start..end)
    }
}

/// A decoded delta, ready to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedDelta {
    pub base_sn: Sn,
    pub end_sn: Sn,
    /// Entries in ascending path order (parents precede descendants).
    pub entries: Vec<DeltaEntry>,
    /// Retry-outcome window as of `end_sn` (empty for deltas written before
    /// the window extension). A junior restored from base + deltas adopts
    /// the window of the *last* delta it applies, so at-most-once survives
    /// the delta recovery ladder too.
    pub window: RetryWindow,
}

/// The namespace surface the fold and apply paths need, implemented by both
/// the flat [`NamespaceTree`] (parity tests, pool compaction) and the
/// [`ShardedNamespace`] a live replica runs (the renewing consumer).
pub trait DeltaNamespace {
    /// Final state of a path (`None` when absent).
    fn info(&self, p: &str) -> Option<FileInfo>;
    /// Child names of a directory (empty when absent or a file).
    fn child_names(&self, p: &str) -> Vec<String>;
    /// Recursive remove.
    fn remove(&mut self, p: &str) -> Result<(), NsError>;
    fn make_dir(&mut self, p: &str) -> Result<(), NsError>;
    fn make_file(&mut self, p: &str, replication: u8) -> Result<(), NsError>;
    fn push_block(&mut self, p: &str, block: u64) -> Result<(), NsError>;
    fn seal_file(&mut self, p: &str) -> Result<(), NsError>;
    fn chmod(&mut self, p: &str, perm: u16) -> Result<(), NsError>;
}

impl DeltaNamespace for NamespaceTree {
    fn info(&self, p: &str) -> Option<FileInfo> {
        self.getfileinfo(p).ok()
    }
    fn child_names(&self, p: &str) -> Vec<String> {
        self.list(p).unwrap_or_default()
    }
    fn remove(&mut self, p: &str) -> Result<(), NsError> {
        self.delete(p, true).map(|_| ())
    }
    fn make_dir(&mut self, p: &str) -> Result<(), NsError> {
        self.mkdir(p)
    }
    fn make_file(&mut self, p: &str, replication: u8) -> Result<(), NsError> {
        self.create(p, replication).map(|_| ())
    }
    fn push_block(&mut self, p: &str, block: u64) -> Result<(), NsError> {
        self.add_block(p, block)
    }
    fn seal_file(&mut self, p: &str) -> Result<(), NsError> {
        self.close_file(p)
    }
    fn chmod(&mut self, p: &str, perm: u16) -> Result<(), NsError> {
        self.set_perm(p, perm)
    }
}

impl DeltaNamespace for ShardedNamespace {
    fn info(&self, p: &str) -> Option<FileInfo> {
        self.getfileinfo(p).ok()
    }
    fn child_names(&self, p: &str) -> Vec<String> {
        self.list(p).unwrap_or_default()
    }
    fn remove(&mut self, p: &str) -> Result<(), NsError> {
        ShardedNamespace::delete(self, p, true).map(|_| ())
    }
    fn make_dir(&mut self, p: &str) -> Result<(), NsError> {
        ShardedNamespace::mkdir(self, p)
    }
    fn make_file(&mut self, p: &str, replication: u8) -> Result<(), NsError> {
        ShardedNamespace::create(self, p, replication).map(|_| ())
    }
    fn push_block(&mut self, p: &str, block: u64) -> Result<(), NsError> {
        ShardedNamespace::add_block(self, p, block)
    }
    fn seal_file(&mut self, p: &str) -> Result<(), NsError> {
        ShardedNamespace::close_file(self, p)
    }
    fn chmod(&mut self, p: &str, perm: u16) -> Result<(), NsError> {
        ShardedNamespace::set_perm(self, p, perm)
    }
}

// -------------------------------------------------------------------- fold

/// Fold a journal range into a delta image.
///
/// `src` must be the namespace **as of `end_sn`** (the producer folds off
/// its live tree right after applying the range), and `txns` the records of
/// `(base_sn, end_sn]` in order. Cost is proportional to the touched-path
/// set, not the namespace: only final states are looked up.
///
/// One deliberate coarseness: a directory that was renamed (or deleted and
/// recreated) ships its entire final subtree, because the consumer rebuilds
/// it from scratch. "Churn" for sizing purposes therefore counts the
/// subtrees moved by renames, not just the paths named in the journal.
pub fn fold_delta<'a, N: DeltaNamespace>(
    src: &N,
    base_sn: Sn,
    end_sn: Sn,
    txns: impl IntoIterator<Item = &'a Txn>,
) -> DeltaImage {
    fold_delta_with_window(src, base_sn, end_sn, txns, &RetryWindow::new())
}

/// [`fold_delta`] variant that embeds the producer's retry-outcome window as
/// of `end_sn`, so consumers on the delta ladder inherit at-most-once state
/// along with the namespace. An empty window is elided on the wire.
pub fn fold_delta_with_window<'a, N: DeltaNamespace>(
    src: &N,
    base_sn: Sn,
    end_sn: Sn,
    txns: impl IntoIterator<Item = &'a Txn>,
    window: &RetryWindow,
) -> DeltaImage {
    let mut touched: BTreeSet<String> = BTreeSet::new();
    let mut severed: BTreeSet<String> = BTreeSet::new();
    for txn in txns {
        match txn {
            Txn::Create { path, .. }
            | Txn::Mkdir { path }
            | Txn::AddBlock { path, .. }
            | Txn::CloseFile { path }
            | Txn::SetPerm { path, .. } => {
                touched.insert(path.clone());
            }
            Txn::Delete { path, .. } => {
                touched.insert(path.clone());
                severed.insert(path.clone());
            }
            Txn::Rename { src: s, dst: d } => {
                touched.insert(s.clone());
                severed.insert(s.clone());
                touched.insert(d.clone());
                severed.insert(d.clone());
            }
        }
    }
    // Severed paths that ended up as directories ship their whole final
    // subtree: the consumer replaces them with a fresh directory, so every
    // surviving descendant must ride along.
    let mut subtree: Vec<String> = Vec::new();
    for p in &severed {
        if src.info(p).is_some_and(|i| i.is_dir) {
            collect_subtree(src, p, &mut subtree);
        }
    }
    touched.extend(subtree);

    let mut entries = Vec::with_capacity(touched.len());
    for path in touched {
        match src.info(&path) {
            None => {
                if path != "/" {
                    entries.push(DeltaEntry { path, op: DeltaOp::Tombstone });
                }
            }
            Some(info) if info.is_dir => {
                let op = if path != "/" && severed.contains(path.as_str()) {
                    DeltaOp::ReplaceDir { perm: info.perm }
                } else {
                    DeltaOp::UpsertDir { perm: info.perm }
                };
                entries.push(DeltaEntry { path, op });
            }
            Some(info) => {
                entries.push(DeltaEntry {
                    path,
                    op: DeltaOp::UpsertFile {
                        perm: info.perm,
                        replication: info.replication,
                        sealed: info.sealed,
                        blocks: info.blocks,
                    },
                });
            }
        }
    }
    encode_delta_with_window(base_sn, end_sn, &entries, window)
}

fn collect_subtree<N: DeltaNamespace>(src: &N, root: &str, out: &mut Vec<String>) {
    let mut stack = vec![root.to_string()];
    while let Some(p) = stack.pop() {
        for name in src.child_names(&p) {
            let child = if p == "/" { format!("/{name}") } else { format!("{p}/{name}") };
            if src.info(&child).is_some_and(|i| i.is_dir) {
                stack.push(child.clone());
            }
            out.push(child);
        }
    }
}

// ------------------------------------------------------------------ encode

/// Encode sorted entries into the `MDLT` wire format. Callers normally go
/// through [`fold_delta`]; this is exposed for tests and the compactor.
pub fn encode_delta(base_sn: Sn, end_sn: Sn, entries: &[DeltaEntry]) -> DeltaImage {
    encode_delta_with_window(base_sn, end_sn, entries, &RetryWindow::new())
}

/// [`encode_delta`] variant carrying a retry-outcome window. The window
/// rides after the entries as `'W'` + varint length + blob, mirroring the
/// base image's section; an empty window writes nothing, keeping window-free
/// deltas byte-identical to the pre-extension format.
pub fn encode_delta_with_window(
    base_sn: Sn,
    end_sn: Sn,
    entries: &[DeltaEntry],
    window: &RetryWindow,
) -> DeltaImage {
    debug_assert!(entries.windows(2).all(|w| w[0].path < w[1].path), "entries must be sorted");
    let mut out = HashingBuf::with_capacity(256);
    out.put_u32(DELTA_MAGIC);
    out.put_u16(DELTA_VERSION);
    out.put_u64(base_sn);
    out.put_u64(end_sn);
    out.put_varint(entries.len() as u64);
    let mut prev: &str = "";
    for e in entries {
        let tag = match &e.op {
            DeltaOp::UpsertDir { .. } => b'D',
            DeltaOp::ReplaceDir { .. } => b'R',
            DeltaOp::UpsertFile { .. } => b'F',
            DeltaOp::Tombstone => b'T',
        };
        out.put_u8(tag);
        let shared = common_prefix(prev.as_bytes(), e.path.as_bytes());
        let suffix = &e.path.as_bytes()[shared..];
        out.put_varint(shared as u64);
        out.put_varint(suffix.len() as u64);
        out.put_slice(suffix);
        match &e.op {
            DeltaOp::UpsertDir { perm } | DeltaOp::ReplaceDir { perm } => out.put_u16(*perm),
            DeltaOp::UpsertFile { perm, replication, sealed, blocks } => {
                out.put_u16(*perm);
                out.put_u8(*replication);
                out.put_u8(*sealed as u8);
                out.put_varint(blocks.len() as u64);
                for b in blocks {
                    out.put_varint(*b);
                }
            }
            DeltaOp::Tombstone => {}
        }
        prev = &e.path;
    }
    if !window.is_empty() {
        let wb = window.encode_bytes();
        out.put_u8(b'W');
        out.put_varint(wb.len() as u64);
        out.put_slice(&wb);
    }
    DeltaImage { base_sn, end_sn, entries: entries.len() as u64, data: out.seal() }
}

// ------------------------------------------------------------------ decode

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.buf.len() - self.at < n {
            return Err(ImageError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn varint(&mut self) -> Result<u64, ImageError> {
        match mams_journal::hash::peek_varint(&self.buf[self.at..]) {
            mams_journal::hash::Varint::Val(v, n) => {
                self.at += n;
                Ok(v)
            }
            mams_journal::hash::Varint::Need => Err(ImageError::Truncated),
            mams_journal::hash::Varint::Bad => Err(ImageError::Corrupt("bad varint".to_string())),
        }
    }
}

/// Decode a delta image, verifying the checksum first. Corruption anywhere
/// in the artifact fails the whole decode: the consumer falls back down the
/// recovery ladder instead of applying a half-trusted delta.
pub fn decode_delta(data: &[u8]) -> Result<DecodedDelta, ImageError> {
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(ImageError::Truncated);
    }
    let (body, trailer) = data.split_at(data.len() - TRAILER_LEN);
    let want = u64::from_be_bytes(trailer.try_into().expect("trailer len"));
    if fnv1a64(body) != want {
        return Err(ImageError::BadChecksum);
    }
    let mut r = Reader { buf: body, at: 0 };
    let magic = r.u32()?;
    if magic != DELTA_MAGIC {
        return Err(ImageError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != DELTA_VERSION {
        return Err(ImageError::BadVersion(version));
    }
    let base_sn = r.u64()?;
    let end_sn = r.u64()?;
    if end_sn <= base_sn {
        return Err(ImageError::Corrupt(format!("empty range ({base_sn}, {end_sn}]")));
    }
    let count = r.varint()?;
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut prev = String::new();
    for _ in 0..count {
        let tag = r.u8()?;
        let shared = r.varint()? as usize;
        let suffix_len = r.varint()? as usize;
        if shared > prev.len() {
            return Err(ImageError::Corrupt(format!(
                "prefix {shared} exceeds previous path length {}",
                prev.len()
            )));
        }
        let suffix = std::str::from_utf8(r.take(suffix_len)?)
            .map_err(|_| ImageError::Corrupt("non-utf8 path".to_string()))?;
        let mut path = String::with_capacity(shared + suffix_len);
        path.push_str(&prev[..shared]);
        path.push_str(suffix);
        let op = match tag {
            b'D' => DeltaOp::UpsertDir { perm: r.u16()? },
            b'R' => DeltaOp::ReplaceDir { perm: r.u16()? },
            b'F' => {
                let perm = r.u16()?;
                let replication = r.u8()?;
                let sealed = r.u8()? != 0;
                let nblocks = r.varint()?;
                let mut blocks = Vec::with_capacity(nblocks.min(1 << 16) as usize);
                for _ in 0..nblocks {
                    blocks.push(r.varint()?);
                }
                DeltaOp::UpsertFile { perm, replication, sealed, blocks }
            }
            b'T' => DeltaOp::Tombstone,
            other => return Err(ImageError::Corrupt(format!("bad entry tag {other:#x}"))),
        };
        prev.clone_from(&path);
        entries.push(DeltaEntry { path, op });
    }
    let mut window = RetryWindow::new();
    if r.at != body.len() {
        // Optional retry-window section: 'W' + varint length + blob.
        let tag = r.u8()?;
        if tag != b'W' {
            return Err(ImageError::Corrupt(format!("bad section tag {tag:#x}")));
        }
        let wlen = r.varint()? as usize;
        window = RetryWindow::decode_bytes(r.take(wlen)?)?;
        if window.is_empty() {
            return Err(ImageError::Corrupt("empty retry-window section".to_string()));
        }
    }
    if r.at != body.len() {
        return Err(ImageError::Corrupt("trailing garbage after entries".to_string()));
    }
    Ok(DecodedDelta { base_sn, end_sn, entries, window })
}

/// Peek a delta artifact's `(base_sn, end_sn)` without a full decode (the
/// header is fixed-position). Checksum is *not* verified here.
pub fn peek_delta_range(data: &[u8]) -> Option<(Sn, Sn)> {
    if data.len() < HEADER_LEN {
        return None;
    }
    if u32::from_be_bytes(data[0..4].try_into().ok()?) != DELTA_MAGIC {
        return None;
    }
    let base = u64::from_be_bytes(data[6..14].try_into().ok()?);
    let end = u64::from_be_bytes(data[14..22].try_into().ok()?);
    Some((base, end))
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let mut n = 0;
    // Cap at b.len() - 1 so every entry emits at least one suffix byte and
    // the shared-length bound check stays meaningful on decode.
    let max = a.len().min(b.len().saturating_sub(1));
    while n < max && a[n] == b[n] {
        n += 1;
    }
    // Never split a UTF-8 code point (paths are almost always ASCII, but
    // component names are arbitrary UTF-8).
    while n > 0 && b[n] & 0xC0 == 0x80 {
        n -= 1;
    }
    n
}

// ------------------------------------------------------------------- apply

/// Apply a decoded delta. Entries are visited in their (ascending-path)
/// order, so parents materialize before their descendants. Errors indicate
/// a delta applied against a state outside its covered range — the caller
/// treats that exactly like corruption and falls back.
pub fn apply_delta<N: DeltaNamespace>(ns: &mut N, delta: &DecodedDelta) -> Result<(), NsError> {
    for e in &delta.entries {
        let p = e.path.as_str();
        match &e.op {
            DeltaOp::Tombstone => remove_if_present(ns, p)?,
            DeltaOp::ReplaceDir { perm } => {
                remove_if_present(ns, p)?;
                ns.make_dir(p)?;
                ns.chmod(p, *perm)?;
            }
            DeltaOp::UpsertDir { perm } => {
                match ns.info(p) {
                    Some(i) if i.is_dir => {}
                    Some(_) => {
                        remove_if_present(ns, p)?;
                        ns.make_dir(p)?;
                    }
                    None => ns.make_dir(p)?,
                }
                ns.chmod(p, *perm)?;
            }
            DeltaOp::UpsertFile { perm, replication, sealed, blocks } => {
                remove_if_present(ns, p)?;
                ns.make_file(p, *replication)?;
                for b in blocks {
                    ns.push_block(p, *b)?;
                }
                if *sealed {
                    ns.seal_file(p)?;
                }
                ns.chmod(p, *perm)?;
            }
        }
    }
    Ok(())
}

fn remove_if_present<N: DeltaNamespace>(ns: &mut N, p: &str) -> Result<(), NsError> {
    match ns.remove(p) {
        Ok(()) | Err(NsError::NotFound(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_tree() -> NamespaceTree {
        let mut t = NamespaceTree::new();
        t.mkdir_p("/data/logs").unwrap();
        t.mkdir_p("/tmp").unwrap();
        for i in 0..8 {
            let p = format!("/data/logs/f{i}");
            t.create(&p, 3).unwrap();
            t.add_block(&p, 100 + i).unwrap();
        }
        t
    }

    /// Run `txns` on a clone of `base`, fold them, apply the delta over the
    /// original base, and require the results to agree.
    fn fold_and_check(base: &NamespaceTree, txns: &[Txn]) -> DeltaImage {
        let mut end = base.clone();
        for txn in txns {
            let _ = end.apply(txn);
        }
        let delta = fold_delta(&end, 10, 20, txns.iter());
        let decoded = decode_delta(&delta.data).unwrap();
        assert_eq!((decoded.base_sn, decoded.end_sn), (10, 20));
        let mut applied = base.clone();
        apply_delta(&mut applied, &decoded).unwrap();
        assert_eq!(applied.fingerprint(), end.fingerprint(), "tree apply parity");
        // Sharded consumer path.
        let mut sharded = ShardedNamespace::from_tree(base.clone());
        apply_delta(&mut sharded, &decoded).unwrap();
        assert_eq!(sharded.fingerprint(), end.fingerprint(), "sharded apply parity");
        delta
    }

    #[test]
    fn last_writer_wins_folds_to_one_entry() {
        let base = base_tree();
        let txns: Vec<Txn> = (0..50)
            .map(|i| Txn::AddBlock { path: "/data/logs/f0".to_string(), block_id: 500 + i, len: 1 })
            .collect();
        let delta = fold_and_check(&base, &txns);
        assert_eq!(delta.entries, 1, "50 appends to one file fold to one entry");
    }

    #[test]
    fn deletes_fold_to_tombstones() {
        let base = base_tree();
        let txns = vec![
            Txn::Delete { path: "/data/logs/f1".to_string(), recursive: false },
            Txn::Create { path: "/data/logs/g".to_string(), replication: 1 },
            Txn::Delete { path: "/tmp".to_string(), recursive: true },
        ];
        let delta = fold_and_check(&base, &txns);
        let d = decode_delta(&delta.data).unwrap();
        let tombs: Vec<_> = d
            .entries
            .iter()
            .filter(|e| e.op == DeltaOp::Tombstone)
            .map(|e| e.path.as_str())
            .collect();
        assert_eq!(tombs, vec!["/data/logs/f1", "/tmp"]);
    }

    #[test]
    fn create_then_delete_folds_to_single_tombstone() {
        let base = base_tree();
        let txns = vec![
            Txn::Create { path: "/x".to_string(), replication: 1 },
            Txn::AddBlock { path: "/x".to_string(), block_id: 1, len: 1 },
            Txn::Delete { path: "/x".to_string(), recursive: false },
        ];
        let delta = fold_and_check(&base, &txns);
        let d = decode_delta(&delta.data).unwrap();
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].op, DeltaOp::Tombstone);
    }

    #[test]
    fn renamed_directory_ships_its_subtree() {
        let base = base_tree();
        let txns = vec![Txn::Rename { src: "/data".to_string(), dst: "/moved".to_string() }];
        let delta = fold_and_check(&base, &txns);
        let d = decode_delta(&delta.data).unwrap();
        // Tombstone for /data, replace for /moved, plus /moved/logs and the
        // eight files under it.
        assert!(d.entries.iter().any(|e| e.path == "/data" && e.op == DeltaOp::Tombstone));
        assert!(d
            .entries
            .iter()
            .any(|e| e.path == "/moved" && matches!(e.op, DeltaOp::ReplaceDir { .. })));
        assert_eq!(d.entries.iter().filter(|e| e.path.starts_with("/moved/")).count(), 9);
    }

    #[test]
    fn delete_and_recreate_replaces_instead_of_merging() {
        let base = base_tree();
        // /data/logs holds f0..f7 at base; nuke it and recreate with one
        // file. A merge-upsert would resurrect the old files.
        let txns = vec![
            Txn::Delete { path: "/data/logs".to_string(), recursive: true },
            Txn::Mkdir { path: "/data/logs".to_string() },
            Txn::Create { path: "/data/logs/only".to_string(), replication: 1 },
        ];
        fold_and_check(&base, &txns);
    }

    #[test]
    fn root_perm_change_folds_to_root_upsert() {
        let base = base_tree();
        let txns = vec![Txn::SetPerm { path: "/".to_string(), perm: 0o700 }];
        let delta = fold_and_check(&base, &txns);
        let d = decode_delta(&delta.data).unwrap();
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].path, "/");
        assert_eq!(d.entries[0].op, DeltaOp::UpsertDir { perm: 0o700 });
    }

    #[test]
    fn applies_from_any_intermediate_state() {
        // The flat-MTTR invariant: a delta over (N, M] applied at any
        // S ∈ [N, M] lands on the state at M.
        let base = base_tree();
        let txns = vec![
            Txn::Create { path: "/a".to_string(), replication: 1 },
            Txn::Delete { path: "/data/logs/f3".to_string(), recursive: false },
            Txn::Rename { src: "/data/logs".to_string(), dst: "/archive".to_string() },
            Txn::Mkdir { path: "/data/logs".to_string() },
            Txn::Create { path: "/data/logs/new".to_string(), replication: 2 },
            Txn::SetPerm { path: "/a".to_string(), perm: 0o600 },
            Txn::CloseFile { path: "/archive/f5".to_string() },
        ];
        let mut end = base.clone();
        for txn in &txns {
            end.apply(txn).unwrap();
        }
        let delta = fold_delta(&end, 0, txns.len() as u64, txns.iter());
        let decoded = decode_delta(&delta.data).unwrap();
        // Apply over every prefix state S = 0..=len.
        for cut in 0..=txns.len() {
            let mut state = base.clone();
            for txn in &txns[..cut] {
                state.apply(txn).unwrap();
            }
            apply_delta(&mut state, &decoded).unwrap();
            assert_eq!(state.fingerprint(), end.fingerprint(), "applied at S={cut}");
        }
    }

    #[test]
    fn corruption_detected_at_every_byte() {
        let base = base_tree();
        let txns = vec![
            Txn::Create { path: "/q".to_string(), replication: 1 },
            Txn::Delete { path: "/tmp".to_string(), recursive: true },
        ];
        let mut end = base.clone();
        for txn in &txns {
            end.apply(txn).unwrap();
        }
        let delta = fold_delta(&end, 1, 3, txns.iter());
        assert!(decode_delta(&delta.data).is_ok());
        for i in 0..delta.data.len() {
            let mut bad = delta.data.to_vec();
            bad[i] ^= 0x55;
            assert!(decode_delta(&bad).is_err(), "flip at byte {i} must not decode");
        }
        for cut in 0..delta.data.len() {
            assert!(decode_delta(&delta.data[..cut]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn window_section_round_trips_and_empty_is_elided() {
        use crate::retry::{RetryEntry, RetryOutcome};
        let base = base_tree();
        let txns = vec![Txn::Create { path: "/w".to_string(), replication: 1 }];
        let mut end = base.clone();
        for txn in &txns {
            end.apply(txn).unwrap();
        }
        let mut win = RetryWindow::new();
        win.record(3, 41, RetryEntry { outcome: RetryOutcome::Done, token: None });
        win.record(9, 2, RetryEntry { outcome: RetryOutcome::Block(777), token: Some(12) });
        let with = fold_delta_with_window(&end, 1, 2, txns.iter(), &win);
        let d = decode_delta(&with.data).unwrap();
        assert_eq!(d.window, win);
        // Applying still lands on the end state; the window rides alongside.
        let mut applied = base.clone();
        apply_delta(&mut applied, &d).unwrap();
        assert_eq!(applied.fingerprint(), end.fingerprint());
        // An empty window writes the pre-extension bytes exactly.
        let plain = fold_delta(&end, 1, 2, txns.iter());
        let explicit = fold_delta_with_window(&end, 1, 2, txns.iter(), &RetryWindow::new());
        assert_eq!(plain.data, explicit.data);
        assert!(decode_delta(&plain.data).unwrap().window.is_empty());
    }

    #[test]
    fn windowed_delta_corruption_detected_at_every_byte() {
        use crate::retry::{RetryEntry, RetryOutcome};
        let base = base_tree();
        let txns = vec![Txn::Delete { path: "/tmp".to_string(), recursive: true }];
        let mut end = base.clone();
        for txn in &txns {
            end.apply(txn).unwrap();
        }
        let mut win = RetryWindow::new();
        win.record(1, 1, RetryEntry { outcome: RetryOutcome::Done, token: None });
        let delta = fold_delta_with_window(&end, 1, 2, txns.iter(), &win);
        assert!(decode_delta(&delta.data).is_ok());
        for i in 0..delta.data.len() {
            let mut bad = delta.data.to_vec();
            bad[i] ^= 0x55;
            assert!(decode_delta(&bad).is_err(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn peek_reads_range_without_decode() {
        let delta = encode_delta(7, 19, &[]);
        assert_eq!(peek_delta_range(&delta.data), Some((7, 19)));
        assert_eq!(peek_delta_range(b"short"), None);
    }

    #[test]
    fn empty_range_rejected() {
        let delta = encode_delta(5, 5, &[]);
        assert!(matches!(decode_delta(&delta.data), Err(ImageError::Corrupt(_))));
    }

    #[test]
    fn delta_is_smaller_than_full_image_for_small_churn() {
        let mut base = NamespaceTree::new();
        base.mkdir_p("/big/dir").unwrap();
        for i in 0..2000 {
            base.create(&format!("/big/dir/f{i}"), 3).unwrap();
        }
        let txns = vec![Txn::Create { path: "/big/dir/new".to_string(), replication: 3 }];
        let mut end = base.clone();
        for txn in &txns {
            end.apply(txn).unwrap();
        }
        let delta = fold_delta(&end, 1, 2, txns.iter());
        let full = crate::image::encode_image(&end, 2);
        assert!(
            delta.size_bytes() * 20 < full.size_bytes(),
            "delta {} B vs full image {} B",
            delta.size_bytes(),
            full.size_bytes()
        );
    }
}
