//! Model-based property test: the namespace tree vs a flat reference model
//! (a set of absolute paths with kinds). Every operation must agree with
//! the model on success/failure *and* on the resulting state.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mams::namespace::NamespaceTree;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    File,
    Dir,
}

/// The reference model: path → kind, with "/" implicit.
#[derive(Debug, Default)]
struct Model {
    entries: BTreeMap<String, Kind>,
}

impl Model {
    fn parent_ok(&self, p: &str) -> bool {
        match mams_parent(p) {
            Some("/") => true,
            Some(parent) => self.entries.get(parent) == Some(&Kind::Dir),
            None => false,
        }
    }

    fn exists(&self, p: &str) -> bool {
        p == "/" || self.entries.contains_key(p)
    }

    fn children(&self, p: &str) -> Vec<String> {
        let prefix = if p == "/" { "/".to_string() } else { format!("{p}/") };
        self.entries
            .keys()
            .filter(|k| {
                k.starts_with(&prefix)
                    && !k[prefix.len()..].contains('/')
                    && !k[prefix.len()..].is_empty()
            })
            .cloned()
            .collect()
    }

    fn create(&mut self, p: &str) -> bool {
        if self.exists(p) || !self.parent_ok(p) {
            return false;
        }
        self.entries.insert(p.to_string(), Kind::File);
        true
    }

    fn mkdir(&mut self, p: &str) -> bool {
        if self.exists(p) || !self.parent_ok(p) {
            return false;
        }
        self.entries.insert(p.to_string(), Kind::Dir);
        true
    }

    fn delete(&mut self, p: &str, recursive: bool) -> bool {
        match self.entries.get(p) {
            None => false,
            Some(Kind::File) => {
                self.entries.remove(p);
                true
            }
            Some(Kind::Dir) => {
                if !self.children(p).is_empty() && !recursive {
                    return false;
                }
                let prefix = format!("{p}/");
                self.entries.retain(|k, _| k != p && !k.starts_with(&prefix));
                true
            }
        }
    }

    fn rename(&mut self, src: &str, dst: &str) -> bool {
        if src == dst
            || !self.exists(src)
            || src == "/"
            || self.exists(dst)
            || !self.parent_ok(dst)
            || is_descendant(dst, src)
        {
            return false;
        }
        let src_prefix = format!("{src}/");
        let moved: Vec<(String, Kind)> = self
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() == src || k.starts_with(&src_prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (k, _) in &moved {
            self.entries.remove(k);
        }
        for (k, v) in moved {
            let suffix = &k[src.len()..];
            self.entries.insert(format!("{dst}{suffix}"), v);
        }
        true
    }
}

fn mams_parent(p: &str) -> Option<&str> {
    if p == "/" {
        return None;
    }
    match p.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&p[..i]),
        None => None,
    }
}

fn is_descendant(descendant: &str, ancestor: &str) -> bool {
    descendant.len() > ancestor.len()
        && descendant.starts_with(ancestor)
        && descendant.as_bytes()[ancestor.len()] == b'/'
}

#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Mkdir(String),
    Delete(String, bool),
    Rename(String, String),
    GetInfo(String),
    List(String),
}

fn small_path() -> impl Strategy<Value = String> {
    // A tiny alphabet so ops collide often (the interesting cases).
    prop::collection::vec(
        prop_oneof![
            "a".prop_map(String::from),
            "b".prop_map(String::from),
            "c".prop_map(String::from)
        ],
        1..4,
    )
    .prop_map(|c| format!("/{}", c.join("/")))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        small_path().prop_map(Op::Create),
        small_path().prop_map(Op::Mkdir),
        (small_path(), any::<bool>()).prop_map(|(p, r)| Op::Delete(p, r)),
        (small_path(), small_path()).prop_map(|(s, d)| Op::Rename(s, d)),
        small_path().prop_map(Op::GetInfo),
        small_path().prop_map(Op::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_agrees_with_the_reference_model(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut tree = NamespaceTree::new();
        let mut model = Model::default();
        for op in &ops {
            match op {
                Op::Create(p) => {
                    let t = tree.create(p, 1).is_ok();
                    let m = model.create(p);
                    prop_assert_eq!(t, m, "create {} disagreed", p);
                }
                Op::Mkdir(p) => {
                    let t = tree.mkdir(p).is_ok();
                    let m = model.mkdir(p);
                    prop_assert_eq!(t, m, "mkdir {} disagreed", p);
                }
                Op::Delete(p, r) => {
                    let t = tree.delete(p, *r).is_ok();
                    let m = model.delete(p, *r);
                    prop_assert_eq!(t, m, "delete {} (r={}) disagreed", p, r);
                }
                Op::Rename(s, d) => {
                    let t = tree.rename(s, d).is_ok();
                    let m = model.rename(s, d);
                    prop_assert_eq!(t, m, "rename {} -> {} disagreed", s, d);
                }
                Op::GetInfo(p) => {
                    let t = tree.getfileinfo(p);
                    prop_assert_eq!(t.is_ok(), model.exists(p), "getfileinfo {} disagreed", p);
                    if let Ok(info) = t {
                        if p != "/" {
                            let kind = model.entries[p.as_str()];
                            prop_assert_eq!(info.is_dir, kind == Kind::Dir);
                        }
                    }
                }
                Op::List(p) => {
                    if let Ok(mut names) = tree.list(p) {
                        prop_assert_eq!(model.entries.get(p.as_str()).copied(), if p == "/" { None } else { Some(Kind::Dir) });
                        let mut expected: Vec<String> = model
                            .children(p)
                            .iter()
                            .map(|c| c.rsplit('/').next().unwrap().to_string())
                            .collect();
                        names.sort();
                        expected.sort();
                        prop_assert_eq!(names, expected, "list {} disagreed", p);
                    }
                }
            }
        }
        // Final shape agreement.
        let files = model.entries.values().filter(|&&k| k == Kind::File).count() as u64;
        let dirs = model.entries.values().filter(|&&k| k == Kind::Dir).count() as u64;
        prop_assert_eq!(tree.num_files(), files);
        prop_assert_eq!(tree.num_dirs(), dirs);
    }
}
