//! The sans-IO protocol interface: [`Node`], [`Ctx`], and type-erased
//! [`Message`]s.
//!
//! A protocol participant (metadata server, coordination server, data
//! server, client driver, …) implements [`Node`]. It owns only its local
//! state; every externally visible effect goes through the [`Ctx`] handle the
//! kernel passes to each callback. This keeps protocol code independent of
//! the runtime that drives it.

use std::any::Any;
use std::fmt;

use crate::rng::DetRng;
use crate::time::{Duration, SimTime};
use crate::trace::Trace;
use crate::world::Kernel;

/// Identifies a node in the simulated cluster. Dense small integers; assigned
/// by [`crate::Sim::add_node`] in registration order.
pub type NodeId = u32;

/// Reserved pseudo-sender for messages injected from outside the cluster
/// (test harnesses, fault injectors).
pub const EXTERNAL: NodeId = u32::MAX;

/// Handle to a pending timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// Object-safe super-trait for type-erased message payloads.
///
/// Blanket-implemented for every `'static + Send + Debug + Clone` type, so
/// protocol crates simply define plain structs/enums and send them. `Clone`
/// is required so the network can duplicate messages in flight (chaos
/// injection); wire-like payloads are cheaply cloneable by construction.
pub trait AnyMessage: Any + Send + fmt::Debug {
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    fn clone_boxed(&self) -> Box<dyn AnyMessage>;
}

impl<T: Any + Send + fmt::Debug + Clone> AnyMessage for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn clone_boxed(&self) -> Box<dyn AnyMessage> {
        Box::new(self.clone())
    }
}

/// A type-erased message in flight.
pub struct Message(pub Box<dyn AnyMessage>);

impl Message {
    /// Wrap a concrete payload.
    pub fn new<T: AnyMessage>(payload: T) -> Message {
        Message(Box::new(payload))
    }

    /// Borrow the payload as `T` if it has that type.
    ///
    /// Note the explicit deref: calling `as_any` directly on the `Box`
    /// would resolve to the blanket impl *for the box itself* and report the
    /// wrong type id.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        (*self.0).as_any().downcast_ref::<T>()
    }

    /// Consume the message, recovering the payload as `T`.
    ///
    /// Returns `Err(self)` unchanged when the type does not match, so
    /// dispatchers can try several protocol enums in sequence.
    pub fn downcast<T: Any>(self) -> Result<T, Message> {
        if self.is::<T>() {
            Ok(*self.0.into_any().downcast::<T>().expect("checked above"))
        } else {
            Err(self)
        }
    }

    /// Whether the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        (*self.0).as_any().is::<T>()
    }

    /// Deep-copy the message (network duplication).
    pub fn duplicate(&self) -> Message {
        Message((*self.0).clone_boxed())
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A protocol participant.
///
/// Callbacks are invoked by the driving runtime ([`crate::Sim`]). All methods
/// default to no-ops except [`Node::on_message`], which every node must
/// handle.
pub trait Node: Send {
    /// Invoked once when the node starts (either at simulation start or on
    /// restart after a crash). Typical use: arm heartbeat timers, register
    /// with the coordination service.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A message arrived from `from`.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message);

    /// A timer armed via [`Ctx::set_timer`] fired. `token` is the caller's
    /// semantic tag.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// The capability handle through which a node interacts with the world.
///
/// Lives only for the duration of one callback.
pub struct Ctx<'a> {
    pub(crate) kernel: &'a mut Kernel,
    pub(crate) id: NodeId,
}

impl<'a> Ctx<'a> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Send a message to `dst`. Latency is sampled from the network model;
    /// the message is silently dropped if the link is cut or the destination
    /// is down at delivery time (like a real datagram).
    pub fn send<T: AnyMessage>(&mut self, dst: NodeId, payload: T) {
        let msg = Message::new(payload);
        self.kernel.send_message(self.id, dst, msg);
    }

    /// Send an already-erased message.
    pub fn send_msg(&mut self, dst: NodeId, msg: Message) {
        self.kernel.send_message(self.id, dst, msg);
    }

    /// Arm a one-shot timer `delay` from now. `token` is returned to
    /// [`Node::on_timer`]. Timers are implicitly cancelled when the node
    /// crashes.
    pub fn set_timer(&mut self, delay: Duration, token: u64) -> TimerId {
        self.kernel.set_timer(self.id, delay, token)
    }

    /// Cancel a pending timer. Cancelling an already-fired or foreign timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.kernel.cancel_timer(id);
    }

    /// Deterministic random source shared by the whole simulation.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.kernel.rng
    }

    /// Emit a structured trace event (no-op when tracing is disabled).
    pub fn trace(&mut self, tag: &'static str, detail: impl FnOnce() -> String) {
        let now = self.kernel.now;
        let id = self.id;
        self.kernel.trace.record(now, id, tag, detail);
    }

    /// Access the trace sink directly (for counters the harness reads back).
    pub fn trace_sink(&mut self) -> &mut Trace {
        &mut self.kernel.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    struct Ping(u32);
    #[derive(Debug, Clone)]
    struct Pong;

    #[test]
    fn downcast_ref_and_is() {
        let m = Message::new(Ping(7));
        assert!(m.is::<Ping>());
        assert!(!m.is::<Pong>());
        assert_eq!(m.downcast_ref::<Ping>(), Some(&Ping(7)));
        assert!(m.downcast_ref::<Pong>().is_none());
    }

    #[test]
    fn downcast_consumes_or_returns() {
        let m = Message::new(Ping(9));
        let m = match m.downcast::<Pong>() {
            Ok(_) => panic!("wrong type must not downcast"),
            Err(m) => m,
        };
        assert_eq!(m.downcast::<Ping>().unwrap(), Ping(9));
    }

    #[test]
    fn debug_formats_payload() {
        let m = Message::new(Ping(1));
        assert!(format!("{m:?}").contains("Ping"));
    }

    #[test]
    fn duplicate_deep_copies_payload() {
        let m = Message::new(Ping(3));
        let d = m.duplicate();
        assert_eq!(d.downcast_ref::<Ping>(), Some(&Ping(3)));
        // Original untouched.
        assert_eq!(m.downcast::<Ping>().unwrap(), Ping(3));
    }
}
