//! Pool contents: per-replica-group journal segments, checkpoint artifacts
//! (base images and delta chains), and fencing.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use mams_journal::{AppendOutcome, JournalLog, SharedBatch, Sn};
use mams_namespace::{
    apply_delta, decode_delta, decode_image_with_window, encode_image_with_window, DeltaImage,
    NamespaceImage,
};
use parking_lot::Mutex;

/// Replica-group index (matches `mams_namespace::partition::GroupId`).
pub type GroupId = u32;

/// Fencing epoch: monotonically increasing per group; granted alongside the
/// distributed lock at election time.
pub type Epoch = u64;

/// Pool-unique checkpoint artifact id (never reused; a manifest entry
/// naming a GC'd id is how a consumer learns its manifest is stale).
pub type ArtifactId = u64;

/// Pool operation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Writer presented an epoch older than one the pool has seen: it has
    /// been deposed and must stop (IO fencing).
    Fenced { current: Epoch, presented: Epoch },
    /// Journal gap or divergence.
    Journal(String),
    /// Requested image/chunk does not exist.
    NoSuchImage,
    /// The named artifact is gone (GC'd by compaction after the caller
    /// cached its manifest): re-resolve the manifest and retry.
    NoSuchArtifact { id: ArtifactId },
    /// A delta was offered that does not chain onto the manifest's end.
    DeltaChain { expected: Sn, offered: Sn },
    /// A stored artifact failed to decode during compaction.
    Corrupt(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Fenced { current, presented } => {
                write!(f, "fenced: pool epoch {current}, writer presented {presented}")
            }
            PoolError::Journal(s) => write!(f, "journal: {s}"),
            PoolError::NoSuchImage => write!(f, "no such image"),
            PoolError::NoSuchArtifact { id } => write!(f, "no such artifact {id}"),
            PoolError::DeltaChain { expected, offered } => {
                write!(f, "delta chains onto sn {offered}, manifest ends at {expected}")
            }
            PoolError::Corrupt(s) => write!(f, "corrupt artifact: {s}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// What a checkpoint artifact holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A full namespace image (a snapshot *at* `end_sn`).
    Base,
    /// A delta image covering `(base_sn, end_sn]`.
    Delta,
}

/// One link of the manifest chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub id: ArtifactId,
    pub kind: ArtifactKind,
    /// Sn the artifact chains onto (for a base, equal to `end_sn`).
    pub base_sn: Sn,
    /// Sn the artifact advances a consumer to.
    pub end_sn: Sn,
    /// Encoded size, so consumers can plan transfers.
    pub bytes: u64,
}

/// The resolvable checkpoint chain `base@N ← delta@(N,M] ← delta@(M,K] …`.
///
/// Invariants (enforced by the writers): the first entry, if any, is a
/// base; every subsequent entry is a delta whose `base_sn` equals the
/// previous entry's `end_sn`. A consumer at applied sn `S` fetches the base
/// only when `S` predates it, then every delta with `end_sn > S` — bytes
/// proportional to churn, not namespace size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    pub chain: Vec<ManifestEntry>,
}

impl Manifest {
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// The base entry (always first when present).
    pub fn base(&self) -> Option<&ManifestEntry> {
        self.chain.first()
    }

    /// The delta links, in chain order.
    pub fn deltas(&self) -> &[ManifestEntry] {
        if self.chain.is_empty() {
            &[]
        } else {
            &self.chain[1..]
        }
    }

    /// Highest sn the chain reaches (0 when empty).
    pub fn end_sn(&self) -> Sn {
        self.chain.last().map(|e| e.end_sn).unwrap_or(0)
    }

    /// Total encoded delta bytes (the compaction-policy signal).
    pub fn delta_bytes(&self) -> u64 {
        self.deltas().iter().map(|e| e.bytes).sum()
    }
}

/// One replica group's shared files.
#[derive(Debug, Default)]
pub struct GroupStore {
    /// Highest writer epoch observed.
    epoch: Epoch,
    /// The shared journal segment.
    journal: JournalLog,
    /// Latest namespace image, if checkpointed.
    image: Option<NamespaceImage>,
    /// Checkpoint artifacts by id (base images and deltas). Entries not
    /// referenced by the manifest are garbage the next GC sweep collects.
    artifacts: HashMap<ArtifactId, Bytes>,
    /// The current resolvable chain.
    manifest: Manifest,
    next_artifact: ArtifactId,
    /// A merged base built by `compact_begin` and not yet committed.
    staged_base: Option<(ArtifactId, NamespaceImage)>,
}

impl GroupStore {
    fn check_epoch(&mut self, presented: Epoch) -> Result<(), PoolError> {
        if presented < self.epoch {
            return Err(PoolError::Fenced { current: self.epoch, presented });
        }
        self.epoch = presented;
        Ok(())
    }

    /// Append a batch under the writer's epoch. The pool retains the shared
    /// handle the writer sealed — no re-copy of records on the way in.
    pub fn append_journal(
        &mut self,
        epoch: Epoch,
        batch: impl Into<SharedBatch>,
    ) -> Result<AppendOutcome, PoolError> {
        self.check_epoch(epoch)?;
        self.journal.append(batch).map_err(|e| PoolError::Journal(e.to_string()))
    }

    /// Journal tail after `after_sn` (up to `max` batches). `None` means the
    /// range was compacted away and the reader needs the image. Returned
    /// batches share the stored allocations (reference-count bumps only).
    pub fn read_journal(&self, after_sn: Sn, max: usize) -> Option<Vec<SharedBatch>> {
        self.journal
            .read_after(after_sn)
            .map(|s| s.iter().take(max).map(SharedBatch::share).collect())
    }

    /// Tail sn of the shared journal.
    pub fn tail_sn(&self) -> Sn {
        self.journal.tail_sn()
    }

    fn alloc_artifact(&mut self, data: Bytes) -> ArtifactId {
        self.next_artifact += 1;
        let id = self.next_artifact;
        self.artifacts.insert(id, data);
        id
    }

    /// Store a checkpoint image, start a fresh manifest chain on it, and
    /// compact the journal through its sn. Superseded artifacts (the old
    /// chain) are GC'd.
    pub fn write_image(&mut self, epoch: Epoch, image: NamespaceImage) -> Result<(), PoolError> {
        self.check_epoch(epoch)?;
        let sn = image.checkpoint_sn;
        let id = self.alloc_artifact(image.data.clone());
        self.manifest = Manifest {
            chain: vec![ManifestEntry {
                id,
                kind: ArtifactKind::Base,
                base_sn: sn,
                end_sn: sn,
                bytes: image.size_bytes(),
            }],
        };
        self.image = Some(image);
        self.gc_unreferenced();
        self.journal.compact_through(sn);
        Ok(())
    }

    /// Append a delta to the manifest chain. The delta must chain exactly
    /// onto the current end (`delta.base_sn == manifest.end_sn()`); anything
    /// else — no base yet, a gap, a stale producer after failover — is
    /// rejected so the chain can never silently fork. The journal is *not*
    /// compacted: it stays retained from the base checkpoint, so journal
    /// catch-up from any sn at or past the base keeps working even if every
    /// delta turns out corrupt (the recovery ladder's last rung).
    pub fn append_delta(&mut self, epoch: Epoch, delta: DeltaImage) -> Result<Sn, PoolError> {
        self.check_epoch(epoch)?;
        let expected = self.manifest.end_sn();
        if self.manifest.is_empty() || delta.base_sn != expected {
            return Err(PoolError::DeltaChain { expected, offered: delta.base_sn });
        }
        let end_sn = delta.end_sn;
        let bytes = delta.size_bytes();
        let id = self.alloc_artifact(delta.data);
        self.manifest.chain.push(ManifestEntry {
            id,
            kind: ArtifactKind::Delta,
            base_sn: delta.base_sn,
            end_sn,
            bytes,
        });
        Ok(end_sn)
    }

    /// The current manifest chain (empty when no checkpoint exists).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// A chunk of an artifact's encoded bytes, with the artifact's total
    /// size. `NoSuchArtifact` means the id was GC'd (or never existed): the
    /// caller re-resolves the manifest.
    pub fn artifact_chunk(
        &self,
        id: ArtifactId,
        offset: u64,
        len: u64,
    ) -> Result<(Bytes, u64), PoolError> {
        let data = self.artifacts.get(&id).ok_or(PoolError::NoSuchArtifact { id })?;
        let size = data.len() as u64;
        let start = offset.min(size) as usize;
        let end = offset.saturating_add(len).min(size) as usize;
        Ok((data.slice(start..end), size))
    }

    /// Latest image metadata.
    pub fn image(&self) -> Option<&NamespaceImage> {
        self.image.as_ref()
    }

    // ------------------------------------------------------- compaction
    //
    // Merging a delta chain into a new base runs in three crash-safe steps,
    // exposed individually so tests can stop between any two:
    //
    //  1. `compact_begin` materializes the merged base as a *new, not yet
    //     referenced* artifact. A crash here leaks one artifact (collected
    //     by any later GC); the old chain stays fully resolvable.
    //  2. `compact_commit` swaps the manifest to the new single-entry chain
    //     in one assignment — the atomic point. Old artifacts are garbage
    //     but still present, so a consumer holding the pre-swap manifest
    //     keeps streaming until the next GC.
    //  3. `compact_gc` drops unreferenced artifacts. Idempotent; a crash
    //     between 2 and 3 just defers collection.

    /// Whether the chain is long or heavy enough to merge: more than
    /// `max_chain` deltas, or delta bytes exceeding the base's size. The
    /// byte rule is floored so a tiny base (a near-empty namespace) does
    /// not make every delta instantly trip a pointless merge.
    pub fn compaction_due(&self, max_chain: usize) -> bool {
        const BYTE_FLOOR: u64 = 64 * 1024;
        let deltas = self.manifest.deltas();
        if deltas.is_empty() {
            return false;
        }
        let base_bytes = self.manifest.base().map(|b| b.bytes).unwrap_or(0);
        deltas.len() > max_chain || self.manifest.delta_bytes() > base_bytes.max(BYTE_FLOOR)
    }

    /// Step 1: build the merged base (decode the current base, apply every
    /// delta in chain order, re-encode at the chain's end sn) and store it
    /// as a new unreferenced artifact. `Ok(None)` when there is nothing to
    /// merge. A corrupt artifact anywhere in the chain aborts with no state
    /// change — the chain is left for the next full checkpoint to supersede.
    pub fn compact_begin(&mut self) -> Result<Option<ArtifactId>, PoolError> {
        if self.manifest.deltas().is_empty() {
            return Ok(None);
        }
        let base = self.manifest.base().expect("deltas imply a base").clone();
        let base_bytes =
            self.artifacts.get(&base.id).ok_or(PoolError::NoSuchArtifact { id: base.id })?;
        let (mut tree, _, mut window) = decode_image_with_window(base_bytes.clone())
            .map_err(|e| PoolError::Corrupt(format!("base {}: {e}", base.id)))?;
        let mut end_sn = base.end_sn;
        for entry in self.manifest.deltas() {
            let data =
                self.artifacts.get(&entry.id).ok_or(PoolError::NoSuchArtifact { id: entry.id })?;
            let decoded = decode_delta(data)
                .map_err(|e| PoolError::Corrupt(format!("delta {}: {e}", entry.id)))?;
            apply_delta(&mut tree, &decoded)
                .map_err(|e| PoolError::Corrupt(format!("delta {} apply: {e}", entry.id)))?;
            end_sn = decoded.end_sn;
            // Each windowed delta carries the full retry window as of its
            // end sn; the merged base adopts the newest one. (A window only
            // ever empties when no acks were journaled at all, so an empty
            // section just means "nothing to carry" — keep what we have.)
            if !decoded.window.is_empty() {
                window = decoded.window;
            }
        }
        let merged = encode_image_with_window(&tree, end_sn, &window);
        let id = self.alloc_artifact(merged.data.clone());
        self.staged_base = Some((id, merged));
        Ok(Some(id))
    }

    /// Step 2: atomically point the manifest at the merged base.
    pub fn compact_commit(&mut self, new_base: ArtifactId) -> Result<Sn, PoolError> {
        let data =
            self.artifacts.get(&new_base).ok_or(PoolError::NoSuchArtifact { id: new_base })?;
        let bytes = data.len() as u64;
        let end_sn = match self.staged_base.take() {
            Some((id, image)) if id == new_base => {
                let sn = image.checkpoint_sn;
                self.image = Some(image);
                sn
            }
            other => {
                // Committing an id that was not staged (or re-committing
                // after the staging was dropped): fall back to the chain
                // end, which is what `compact_begin` encoded the merge at.
                self.staged_base = other;
                self.manifest.end_sn()
            }
        };
        self.manifest = Manifest {
            chain: vec![ManifestEntry {
                id: new_base,
                kind: ArtifactKind::Base,
                base_sn: end_sn,
                end_sn,
                bytes,
            }],
        };
        self.journal.compact_through(end_sn);
        Ok(end_sn)
    }

    /// Step 3: drop artifacts the manifest no longer references.
    pub fn compact_gc(&mut self) {
        self.gc_unreferenced();
    }

    /// Run the full merge. Returns the new base sn, or `None` when there
    /// was nothing to compact.
    pub fn compact(&mut self) -> Result<Option<Sn>, PoolError> {
        let Some(id) = self.compact_begin()? else { return Ok(None) };
        let sn = self.compact_commit(id)?;
        self.compact_gc();
        Ok(Some(sn))
    }

    fn gc_unreferenced(&mut self) {
        let live: std::collections::HashSet<ArtifactId> =
            self.manifest.chain.iter().map(|e| e.id).collect();
        self.artifacts.retain(|id, _| live.contains(id));
    }

    /// Chaos hook: flip one byte in the middle of the stored checkpoint
    /// image, simulating silent on-disk corruption. Returns whether an
    /// image was present to corrupt. Readers must detect the damage (the
    /// image decoder validates) rather than build a divergent namespace.
    /// The manifest's base artifact is the same bytes, so it is damaged
    /// identically.
    pub fn corrupt_image(&mut self) -> bool {
        let Some(img) = self.image.as_mut() else { return false };
        if img.data.is_empty() {
            return false;
        }
        let mut raw = img.data.to_vec();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        img.data = Bytes::from(raw);
        if let Some(base) = self.manifest.base() {
            self.artifacts.insert(base.id, img.data.clone());
        }
        true
    }

    /// Chaos hook: flip one byte in the middle of a mid-chain delta
    /// artifact. Returns whether a delta was present to corrupt. A junior
    /// streaming the chain must detect the damage and fall back down the
    /// recovery ladder instead of applying a divergent delta.
    pub fn corrupt_delta(&mut self) -> bool {
        let deltas = self.manifest.deltas();
        if deltas.is_empty() {
            return false;
        }
        let id = deltas[deltas.len() / 2].id;
        let Some(data) = self.artifacts.get(&id) else { return false };
        if data.is_empty() {
            return false;
        }
        let mut raw = data.to_vec();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        self.artifacts.insert(id, Bytes::from(raw));
        true
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Observe a new epoch without writing (called on lock grant so the old
    /// active is fenced even before the new one writes).
    pub fn advance_epoch(&mut self, to: Epoch) {
        self.epoch = self.epoch.max(to);
    }
}

/// All groups' shared files.
#[derive(Debug, Default)]
pub struct PoolState {
    groups: HashMap<GroupId, GroupStore>,
}

impl PoolState {
    pub fn new() -> Self {
        PoolState::default()
    }

    /// The store for `group`, created on first touch.
    pub fn group_mut(&mut self, group: GroupId) -> &mut GroupStore {
        self.groups.entry(group).or_default()
    }

    pub fn group(&self, group: GroupId) -> Option<&GroupStore> {
        self.groups.get(&group)
    }

    /// Ids of every group touched so far (for background sweeps).
    pub fn group_ids(&self) -> Vec<GroupId> {
        self.groups.keys().copied().collect()
    }
}

/// Handle shared by every pool node (the pool's contents are replicated
/// across nodes and survive any single crash).
pub type SharedPool = Arc<Mutex<PoolState>>;

/// Create an empty shared pool.
pub fn new_shared_pool() -> SharedPool {
    Arc::new(Mutex::new(PoolState::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_journal::{JournalBatch, Txn};
    use mams_namespace::{encode_image, NamespaceTree};

    fn batch(sn: Sn) -> JournalBatch {
        JournalBatch::new(sn, sn, vec![Txn::Mkdir { path: format!("/d{sn}") }])
    }

    #[test]
    fn append_and_read_tail() {
        let mut g = GroupStore::default();
        for sn in 1..=5 {
            assert_eq!(g.append_journal(1, batch(sn)).unwrap(), AppendOutcome::Appended);
        }
        assert_eq!(g.tail_sn(), 5);
        let tail = g.read_journal(3, 10).unwrap();
        assert_eq!(tail.iter().map(|b| b.sn).collect::<Vec<_>>(), vec![4, 5]);
        let capped = g.read_journal(0, 2).unwrap();
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn stale_epoch_is_fenced() {
        let mut g = GroupStore::default();
        g.append_journal(5, batch(1)).unwrap();
        let err = g.append_journal(4, batch(2)).unwrap_err();
        assert_eq!(err, PoolError::Fenced { current: 5, presented: 4 });
        // Same epoch continues to work; higher epoch takes over.
        g.append_journal(5, batch(2)).unwrap();
        g.append_journal(6, batch(3)).unwrap();
        assert_eq!(g.epoch(), 6);
    }

    #[test]
    fn advance_epoch_fences_before_first_write() {
        let mut g = GroupStore::default();
        g.append_journal(1, batch(1)).unwrap();
        g.advance_epoch(2);
        let err = g.append_journal(1, batch(2)).unwrap_err();
        assert!(matches!(err, PoolError::Fenced { current: 2, presented: 1 }));
    }

    #[test]
    fn image_checkpoint_compacts_journal() {
        let mut g = GroupStore::default();
        for sn in 1..=10 {
            g.append_journal(1, batch(sn)).unwrap();
        }
        let mut t = NamespaceTree::new();
        for sn in 1..=7 {
            t.mkdir(&format!("/d{sn}")).unwrap();
        }
        g.write_image(1, encode_image(&t, 7)).unwrap();
        assert_eq!(g.image().unwrap().checkpoint_sn, 7);
        // Journal before sn 7 is gone; readers fall back to the image.
        assert!(g.read_journal(3, 10).is_none());
        let tail = g.read_journal(7, 10).unwrap();
        assert_eq!(tail.iter().map(|b| b.sn).collect::<Vec<_>>(), vec![8, 9, 10]);
    }

    #[test]
    fn duplicate_appends_are_idempotent() {
        let mut g = GroupStore::default();
        g.append_journal(1, batch(1)).unwrap();
        assert_eq!(g.append_journal(1, batch(1)).unwrap(), AppendOutcome::Duplicate);
    }

    #[test]
    fn pool_state_isolates_groups() {
        let mut p = PoolState::new();
        p.group_mut(0).append_journal(1, batch(1)).unwrap();
        assert_eq!(p.group(0).unwrap().tail_sn(), 1);
        assert!(p.group(1).is_none());
        p.group_mut(1);
        assert_eq!(p.group(1).unwrap().tail_sn(), 0);
    }

    // ------------------------------------------- manifest chain + compaction

    use mams_namespace::fold_delta;

    /// Build a group holding a base at `base_sn` plus `n_deltas` chained
    /// deltas, each creating one file. Returns the final expected tree.
    fn chained_group(base_sn: Sn, n_deltas: usize) -> (GroupStore, NamespaceTree) {
        let mut g = GroupStore::default();
        let mut t = NamespaceTree::new();
        t.mkdir("/d").unwrap();
        g.write_image(1, encode_image(&t, base_sn)).unwrap();
        for (i, sn) in (base_sn..base_sn + n_deltas as u64).enumerate() {
            let txn = Txn::Create { path: format!("/d/f{i}"), replication: 3 };
            // Fold reads the *final* state of touched paths, so apply first.
            t.apply(&txn).unwrap();
            let delta = fold_delta(&t, sn, sn + 1, [&txn]);
            g.append_delta(1, delta).unwrap();
        }
        (g, t)
    }

    /// Decode base + deltas from the manifest like a consumer would.
    fn resolve_chain(g: &GroupStore) -> NamespaceTree {
        let m = g.manifest().clone();
        let base = m.base().expect("base");
        let (data, _) = g.artifact_chunk(base.id, 0, u64::MAX).unwrap();
        let (mut t, _) = mams_namespace::decode_image(data).unwrap();
        for e in m.deltas() {
            let (data, _) = g.artifact_chunk(e.id, 0, u64::MAX).unwrap();
            let d = decode_delta(&data).unwrap();
            apply_delta(&mut t, &d).unwrap();
        }
        t
    }

    #[test]
    fn deltas_chain_onto_manifest_end() {
        let (mut g, t) = chained_group(5, 3);
        let m = g.manifest();
        assert_eq!(m.base().unwrap().end_sn, 5);
        assert_eq!(m.deltas().len(), 3);
        assert_eq!(m.end_sn(), 8);
        assert_eq!(resolve_chain(&g).fingerprint(), t.fingerprint());
        // A gap is refused: the chain never silently forks.
        let mut t2 = t.clone();
        let txn = Txn::Mkdir { path: "/gap".into() };
        t2.apply(&txn).unwrap();
        let bad = fold_delta(&t2, 10, 11, [&txn]);
        assert_eq!(
            g.append_delta(1, bad).unwrap_err(),
            PoolError::DeltaChain { expected: 8, offered: 10 }
        );
    }

    #[test]
    fn delta_without_base_is_rejected() {
        let mut g = GroupStore::default();
        let t = NamespaceTree::new();
        let txn = Txn::Mkdir { path: "/x".into() };
        let delta = fold_delta(&t, 0, 1, [&txn]);
        assert!(matches!(g.append_delta(1, delta), Err(PoolError::DeltaChain { .. })));
    }

    #[test]
    fn stale_epoch_delta_is_fenced() {
        let (mut g, t) = chained_group(1, 1);
        g.advance_epoch(9);
        let txn = Txn::Mkdir { path: "/late".into() };
        let delta = fold_delta(&t, 2, 3, [&txn]);
        assert!(matches!(g.append_delta(1, delta), Err(PoolError::Fenced { .. })));
    }

    #[test]
    fn deltas_leave_journal_retained_from_base() {
        let mut g = GroupStore::default();
        let mut t = NamespaceTree::new();
        for sn in 1..=4 {
            g.append_journal(1, batch(sn)).unwrap();
            t.mkdir(&format!("/d{sn}")).unwrap();
        }
        g.write_image(1, encode_image(&t, 4)).unwrap();
        for sn in 5..=6 {
            g.append_journal(1, batch(sn)).unwrap();
            let txn = Txn::Mkdir { path: format!("/d{sn}") };
            t.apply(&txn).unwrap();
            let delta = fold_delta(&t, sn - 1, sn, [&txn]);
            g.append_delta(1, delta).unwrap();
        }
        // Journal from the base checkpoint is still there (the ladder's
        // last rung), even though the chain reaches sn 6.
        assert_eq!(g.manifest().end_sn(), 6);
        let tail = g.read_journal(4, 10).unwrap();
        assert_eq!(tail.iter().map(|b| b.sn).collect::<Vec<_>>(), vec![5, 6]);
    }

    #[test]
    fn compaction_carries_retry_window_from_newest_delta() {
        use mams_namespace::{fold_delta_with_window, RetryEntry, RetryOutcome, RetryWindow};
        let mut g = GroupStore::default();
        let mut t = NamespaceTree::new();
        t.mkdir("/d").unwrap();
        g.write_image(1, encode_image(&t, 1)).unwrap();
        // Delta 1 carries a window; delta 2 (pre-extension producer) does
        // not; delta 3 carries a newer window. The merged base must hold
        // delta 3's window.
        let mut old_win = RetryWindow::new();
        old_win.record(7, 1, RetryEntry { outcome: RetryOutcome::Done, token: None });
        let mut new_win = RetryWindow::new();
        new_win.record(7, 1, RetryEntry { outcome: RetryOutcome::Done, token: None });
        new_win.record(7, 2, RetryEntry { outcome: RetryOutcome::Block(31), token: None });
        for (i, win) in [old_win, RetryWindow::new(), new_win.clone()].into_iter().enumerate() {
            let sn = 1 + i as u64;
            let txn = Txn::Create { path: format!("/d/f{i}"), replication: 3 };
            t.apply(&txn).unwrap();
            g.append_delta(1, fold_delta_with_window(&t, sn, sn + 1, [&txn], &win)).unwrap();
        }
        g.compact().unwrap().unwrap();
        let m = g.manifest().clone();
        let base = m.base().expect("merged base");
        let (data, _) = g.artifact_chunk(base.id, 0, u64::MAX).unwrap();
        let (merged, sn, win) = mams_namespace::decode_image_with_window(data).unwrap();
        assert_eq!(sn, 4);
        assert_eq!(merged.fingerprint(), t.fingerprint());
        assert_eq!(win, new_win);
    }

    #[test]
    fn compaction_merges_chain_and_gcs() {
        let (mut g, t) = chained_group(1, 4);
        let old_ids: Vec<ArtifactId> = g.manifest().chain.iter().map(|e| e.id).collect();
        assert!(g.compaction_due(3));
        let sn = g.compact().unwrap().unwrap();
        assert_eq!(sn, 5);
        let m = g.manifest();
        assert_eq!(m.chain.len(), 1);
        assert_eq!(m.base().unwrap().end_sn, 5);
        assert_eq!(resolve_chain(&g).fingerprint(), t.fingerprint());
        assert_eq!(g.image().unwrap().checkpoint_sn, 5);
        // Old artifacts are gone; their ids resolve to NoSuchArtifact.
        for id in old_ids {
            assert!(matches!(g.artifact_chunk(id, 0, 8), Err(PoolError::NoSuchArtifact { .. })));
        }
    }

    #[test]
    fn compaction_with_no_deltas_is_a_noop() {
        let (mut g, _) = chained_group(3, 0);
        assert!(!g.compaction_due(0));
        assert_eq!(g.compact().unwrap(), None);
        assert_eq!(g.manifest().base().unwrap().end_sn, 3);
    }

    #[test]
    fn crash_between_begin_and_commit_leaves_old_chain_resolvable() {
        let (mut g, t) = chained_group(1, 3);
        let staged = g.compact_begin().unwrap().unwrap();
        // "Crash": nothing committed. The old chain still resolves.
        assert_eq!(g.manifest().deltas().len(), 3);
        assert_eq!(resolve_chain(&g).fingerprint(), t.fingerprint());
        // Recovery commits the staged base; the merge survives.
        let sn = g.compact_commit(staged).unwrap();
        g.compact_gc();
        assert_eq!(sn, 4);
        assert_eq!(resolve_chain(&g).fingerprint(), t.fingerprint());
    }

    #[test]
    fn commit_after_staging_lost_falls_back_to_chain_end() {
        let (mut g, t) = chained_group(1, 2);
        let staged = g.compact_begin().unwrap().unwrap();
        // Simulate the staging map being lost across a restart (the
        // artifact bytes themselves are durable).
        g.staged_base = None;
        let sn = g.compact_commit(staged).unwrap();
        g.compact_gc();
        assert_eq!(sn, 3);
        assert_eq!(resolve_chain(&g).fingerprint(), t.fingerprint());
    }

    #[test]
    fn corrupt_delta_aborts_compaction_without_state_change() {
        let (mut g, t) = chained_group(1, 3);
        assert!(g.corrupt_delta());
        let err = g.compact().unwrap_err();
        assert!(matches!(err, PoolError::Corrupt(_)), "got {err:?}");
        // Chain untouched: base + intact deltas still resolvable, and the
        // journal from the base still covers the whole range.
        assert_eq!(g.manifest().deltas().len(), 3);
        assert!(g.manifest().base().is_some());
        drop(t);
    }

    #[test]
    fn compaction_due_trips_on_bytes_too() {
        // Build a base heavier than the 64 KiB floor, then pile delta bytes
        // past it: the byte rule must trip even with a short chain.
        let mut g = GroupStore::default();
        let mut t = NamespaceTree::new();
        t.mkdir("/bulk").unwrap();
        for i in 0..3000 {
            t.create(&format!("/bulk/file-with-a-longish-name-{i:05}"), 3).unwrap();
        }
        g.write_image(1, encode_image(&t, 1)).unwrap();
        let base_bytes = g.manifest().base().unwrap().bytes;
        assert!(base_bytes > 64 * 1024, "base must exceed the floor: {base_bytes}");
        let mut sn = 1;
        while g.manifest().delta_bytes() <= base_bytes {
            // One delta re-upserting a whole directory's worth of entries.
            let txns: Vec<Txn> = (0..3000)
                .map(|i| Txn::SetPerm {
                    path: format!("/bulk/file-with-a-longish-name-{i:05}"),
                    perm: 0o640,
                })
                .collect();
            for txn in &txns {
                t.apply(txn).unwrap();
            }
            let delta = fold_delta(&t, sn, sn + 1, txns.iter());
            g.append_delta(1, delta).unwrap();
            sn += 1;
        }
        // Few deltas, but heavy relative to the base.
        assert!(g.compaction_due(1_000_000));
    }
}
