//! Declarative fault scenarios.
//!
//! A [`Scenario`] is a cluster shape + a contended workload + a *fault
//! program*: a list of timed [`FaultAction`]s over symbolic [`NodeRef`]s.
//! Programs are data, not code — the engine compiles them onto the
//! simulator's control hooks at run time, which is what makes failing
//! programs shrinkable (drop an action, rerun) and reportable (print the
//! minimal witness).
//!
//! Node references are symbolic (`Active { group }`, `BackupOf { group }`)
//! because the interesting nodes move: by the time the second fault of a
//! program fires, the active may be two failovers away from where it
//! started. References resolve against the live view trace when the action
//! fires.

use mams_cluster::Workload;
use mams_core::MdsTiming;
use mams_sim::{DetRng, Duration, NodeId};

/// A symbolic node reference, resolved when the action fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// The coordination server.
    Coord,
    /// The `i`-th shared-storage-pool node.
    Pool(usize),
    /// A replica-group member by boot index (0 = boot active).
    Member { group: u32, idx: usize },
    /// Whoever the view says is the group's active *right now*.
    Active { group: u32 },
    /// The first group member that is currently *not* the active (a hot
    /// standby if any is up, else a junior).
    BackupOf { group: u32 },
    /// Every workload client, as a set. Only meaningful in the set-valued
    /// positions of [`FaultKind::Partition`] / [`FaultKind::OneWay`] (it
    /// resolves to nothing as a single-node target) — used to cut the
    /// reply path so clients must retry.
    Clients,
}

/// One timed fault. Times are relative to scenario start.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill the node (state lost; restartable).
    Crash(NodeRef),
    /// Bring a previously crashed node back.
    Restart(NodeRef),
    /// Freeze the process without killing it (gray failure: a zombie that
    /// later resumes believing it still holds its old role).
    Pause(NodeRef),
    Resume(NodeRef),
    /// Cut every link between the two sides (both directions).
    Partition {
        a: Vec<NodeRef>,
        b: Vec<NodeRef>,
        heal_ms: Option<u64>,
    },
    /// Cut only `from → to` (asymmetric partition: acks flow, data does
    /// not).
    OneWay {
        from: Vec<NodeRef>,
        to: Vec<NodeRef>,
        heal_ms: Option<u64>,
    },
    /// Multiply every delivery latency on links touching the node
    /// (gray-slow node, not dead — heartbeats still arrive, late).
    SlowNode {
        node: NodeRef,
        factor: f64,
        clear_ms: Option<u64>,
    },
    /// Shape one link: latency factor plus independent loss probability.
    ShapeLink {
        a: NodeRef,
        b: NodeRef,
        factor: f64,
        loss: f64,
        clear_ms: Option<u64>,
    },
    /// Network-wide independent message loss.
    GlobalLoss(f64),
    /// Network-wide independent message duplication.
    GlobalDup(f64),
    /// Run the node's timers at `factor` speed (clock skew; 1.0 = clear).
    ClockSkew {
        node: NodeRef,
        factor: f64,
    },
    /// Flip a byte in the group's checkpoint image in the shared pool
    /// (silent storage corruption mid-catch-up).
    CorruptImage {
        group: u32,
    },
    /// Flip a byte in a mid-chain delta artifact (silent corruption of an
    /// incremental checkpoint; consumers must fall back down the recovery
    /// ladder, never apply the damage).
    CorruptDelta {
        group: u32,
    },
    /// Force an immediate delta-chain compaction in the pool (races the
    /// background sweep against whatever is in flight — failover, a junior
    /// mid-stream with a cached manifest).
    CompactPool {
        group: u32,
    },
    /// Heal all cuts, clear all shapes, zero global loss/dup.
    ClearNetwork,
}

/// A fault at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAction {
    /// Milliseconds after scenario start.
    pub at_ms: u64,
    pub kind: FaultKind,
}

impl FaultAction {
    pub fn at(at_ms: u64, kind: FaultKind) -> Self {
        FaultAction { at_ms, kind }
    }
}

/// A complete declarative scenario.
#[derive(Clone)]
pub struct Scenario {
    pub name: &'static str,
    pub about: &'static str,
    /// Replica groups (actives).
    pub groups: u32,
    /// Hot standbys per group.
    pub standbys: usize,
    /// Cold juniors per group.
    pub juniors: usize,
    /// Closed-loop clients, all hammering the same key set.
    pub clients: u32,
    /// Contended keys (paths `/hot/fK` + `/hot/gK`).
    pub keys: u64,
    /// Per-client pause between operations (bounds history size while the
    /// fault window stays covered).
    pub think_ms: u64,
    /// Main phase length; cleanup + grace follow.
    pub run_secs: u64,
    /// Drive clients in speculative-ack mode (`OpSpec` with ordering
    /// tokens). The checker then models spec-acked mutations as possibly
    /// lost and verifies the token contract instead of durable-ack
    /// linearizability.
    pub speculative: bool,
    /// Timing overrides (e.g. fast checkpoints for image scenarios).
    pub tune: fn(MdsTiming) -> MdsTiming,
    /// Per-client workload, by client boot index (scenarios can mix e.g.
    /// read-heavy observers with mutation-heavy writers on the same keys).
    pub workload: fn(u32, u64) -> Workload,
    /// The fault program, seeded so each campaign seed jitters times.
    pub faults: fn(&mut DetRng) -> Vec<FaultAction>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("groups", &self.groups)
            .field("standbys", &self.standbys)
            .field("juniors", &self.juniors)
            .field("clients", &self.clients)
            .field("run_secs", &self.run_secs)
            .finish()
    }
}

fn base(name: &'static str, about: &'static str) -> Scenario {
    Scenario {
        name,
        about,
        groups: 1,
        standbys: 2,
        juniors: 0,
        clients: 4,
        keys: 6,
        think_ms: 40,
        run_secs: 50,
        speculative: false,
        tune: |t| t,
        workload: |_, keys| Workload::shared_hot(keys),
        faults: |_| Vec::new(),
    }
}

/// Jitter `base_ms` by up to ±`spread_ms` (seeded).
fn jitter(rng: &mut DetRng, base_ms: u64, spread_ms: u64) -> u64 {
    (base_ms + rng.below(2 * spread_ms + 1)).saturating_sub(spread_ms)
}

const A0: NodeRef = NodeRef::Active { group: 0 };
const B0: NodeRef = NodeRef::BackupOf { group: 0 };

/// The built-in scenario corpus, in rough order of severity.
pub fn corpus() -> Vec<Scenario> {
    let mut v = Vec::new();

    v.push(Scenario {
        about: "crash the active mid-load, restart it later, crash the \
                successor too",
        faults: |r| {
            let t1 = jitter(r, 10_000, 3_000);
            let t2 = jitter(r, 30_000, 4_000);
            vec![
                FaultAction::at(t1, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 12_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                FaultAction::at(t2, FaultKind::Crash(A0)),
                FaultAction::at(
                    t2 + 12_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 1 }),
                ),
            ]
        },
        ..base("failover_crash", "")
    });

    v.push(Scenario {
        about: "partition the active away from everyone during load; heal; \
                repeat against the successor",
        faults: |r| {
            let t1 = jitter(r, 10_000, 3_000);
            let t2 = jitter(r, 32_000, 4_000);
            let everyone =
                vec![NodeRef::Coord, NodeRef::Pool(0), NodeRef::Pool(1), NodeRef::Pool(2), B0];
            vec![
                FaultAction::at(
                    t1,
                    FaultKind::Partition {
                        a: vec![A0],
                        b: everyone.clone(),
                        heal_ms: Some(10_000),
                    },
                ),
                FaultAction::at(
                    t2,
                    FaultKind::Partition { a: vec![A0], b: everyone, heal_ms: Some(10_000) },
                ),
            ]
        },
        ..base("failover_partition", "")
    });

    v.push(Scenario {
        about: "a standby turns gray-slow (25x latency), then the active \
                dies and failover must work around or through it",
        faults: |r| {
            let t1 = jitter(r, 6_000, 2_000);
            vec![
                FaultAction::at(
                    t1,
                    FaultKind::SlowNode { node: B0, factor: 25.0, clear_ms: Some(30_000) },
                ),
                FaultAction::at(t1 + 8_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 22_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("gray_slow_standby", "")
    });

    v.push(Scenario {
        about: "sustained 15% loss + 5% duplication network-wide, across a \
                failover",
        faults: |r| {
            let t1 = jitter(r, 5_000, 2_000);
            vec![
                FaultAction::at(t1, FaultKind::GlobalLoss(0.15)),
                FaultAction::at(t1, FaultKind::GlobalDup(0.05)),
                FaultAction::at(jitter(r, 18_000, 3_000), FaultKind::Crash(A0)),
                FaultAction::at(40_000, FaultKind::ClearNetwork),
                FaultAction::at(41_000, FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 })),
            ]
        },
        ..base("flaky_network", "")
    });

    v.push(Scenario {
        about: "one-way partition: the active can send to the coordinator \
                but hears nothing back (asymmetric gray link)",
        faults: |r| {
            let t1 = jitter(r, 9_000, 3_000);
            vec![
                FaultAction::at(
                    t1,
                    FaultKind::OneWay {
                        from: vec![NodeRef::Coord],
                        to: vec![A0],
                        heal_ms: Some(12_000),
                    },
                ),
                FaultAction::at(t1 + 20_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 32_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("one_way_partition", "")
    });

    v.push(Scenario {
        about: "freeze the active (zombie), let a successor take over, then \
                thaw the zombie — fencing must hold against its stale epoch",
        faults: |r| {
            let t1 = jitter(r, 10_000, 3_000);
            vec![
                FaultAction::at(t1, FaultKind::Pause(A0)),
                FaultAction::at(
                    t1 + 15_000,
                    FaultKind::Resume(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("pause_active", "")
    });

    v.push(Scenario {
        juniors: 1,
        tune: |mut t| {
            // Push juniors onto the image path and checkpoint often so a
            // corrupted image is eventually replaced by a fresh one.
            t.renew_image_gap = 64;
            t.checkpoint_interval = Some(Duration::from_secs(8));
            t
        },
        about: "flip a byte in the checkpoint image while a junior is \
                catching up from it; the decoder must reject the damage and \
                recovery must ride the next checkpoint",
        faults: |r| {
            let t1 = jitter(r, 12_000, 3_000);
            vec![
                FaultAction::at(t1, FaultKind::CorruptImage { group: 0 }),
                FaultAction::at(t1 + 9_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 21_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("corrupt_catchup", "")
    });

    v.push(Scenario {
        juniors: 1,
        tune: |mut t| {
            // Fast full checkpoints plus an even faster delta cadence, and
            // a low image gap so the renewing junior resolves the manifest
            // chain (base + deltas) rather than journal-only catch-up.
            t.renew_image_gap = 64;
            t.checkpoint_interval = Some(Duration::from_secs(10));
            t.delta_interval = Some(Duration::from_secs(2));
            t
        },
        about: "flip a byte in a mid-chain delta artifact while a junior \
                catches up over the manifest chain; the delta checksum must \
                reject the damage and recovery must fall back down the \
                ladder (journal from the base, or the full image) — never a \
                stuck renewing session, never a divergent replica",
        faults: |r| {
            let t1 = jitter(r, 12_000, 3_000);
            vec![
                FaultAction::at(t1, FaultKind::CorruptDelta { group: 0 }),
                FaultAction::at(t1 + 9_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 21_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("delta_corrupt_catchup", "")
    });

    v.push(Scenario {
        juniors: 1,
        tune: |mut t| {
            t.renew_image_gap = 64;
            t.checkpoint_interval = Some(Duration::from_secs(8));
            t.delta_interval = Some(Duration::from_secs(2));
            t
        },
        about: "force a pool compaction right as the active dies (and again \
                mid-recovery): the crash-safe manifest swap must never lose \
                the chain, and a consumer holding a pre-compaction manifest \
                must retry against the merged chain instead of wedging on a \
                GC'd artifact",
        faults: |r| {
            let t1 = jitter(r, 14_000, 3_000);
            vec![
                FaultAction::at(t1, FaultKind::Crash(A0)),
                FaultAction::at(t1 + 300, FaultKind::CompactPool { group: 0 }),
                FaultAction::at(t1 + 6_000, FaultKind::CompactPool { group: 0 }),
                FaultAction::at(
                    t1 + 18_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                FaultAction::at(t1 + 20_000, FaultKind::CompactPool { group: 0 }),
            ]
        },
        ..base("compaction_during_failover", "")
    });

    v.push(Scenario {
        about: "run the active's clock 3x fast and a standby's 3x slow \
                across a failover (timers fire out of mutual order)",
        faults: |r| {
            let t1 = jitter(r, 6_000, 2_000);
            vec![
                FaultAction::at(t1, FaultKind::ClockSkew { node: A0, factor: 3.0 }),
                FaultAction::at(t1, FaultKind::ClockSkew { node: B0, factor: 0.33 }),
                FaultAction::at(t1 + 10_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 24_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("clock_skew", "")
    });

    v.push(Scenario {
        clients: 6,
        run_secs: 60,
        about: "read-heavy observers run concurrently with writers while \
                the active crashes and a standby is promoted, then the \
                successor crashes too — reads served around the promotions \
                must only ever observe durable mutations",
        // Even boot indices observe (mostly getfileinfo), odd ones write
        // the same keys; the linearizability checker then cross-validates
        // every read against the durable write order.
        workload: |i, keys| {
            if i % 2 == 0 {
                Workload::shared_hot_reads(keys)
            } else {
                Workload::shared_hot(keys)
            }
        },
        faults: |r| {
            let t1 = jitter(r, 10_000, 3_000);
            let t2 = jitter(r, 36_000, 4_000);
            vec![
                FaultAction::at(t1, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 11_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                FaultAction::at(t2, FaultKind::Crash(A0)),
                FaultAction::at(
                    t2 + 11_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 1 }),
                ),
            ]
        },
        ..base("read_during_promotion", "")
    });

    v.push(Scenario {
        clients: 6,
        keys: 3,
        run_secs: 60,
        about: "maximum rename contention on 3 keys while the active \
                crashes twice — exercises retry reconciliation and the \
                replicated retry window across failovers",
        faults: |r| {
            let t1 = jitter(r, 12_000, 3_000);
            let t2 = jitter(r, 38_000, 4_000);
            vec![
                FaultAction::at(t1, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 10_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                FaultAction::at(t2, FaultKind::Crash(A0)),
                FaultAction::at(
                    t2 + 10_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 1 }),
                ),
            ]
        },
        ..base("rename_storm_crash", "")
    });

    v.push(Scenario {
        keys: 4,
        run_secs: 55,
        about: "cut the active's reply path to every client so acked \
                mutations look lost and clients retry with the same seq, \
                then crash the active mid-retry: the successor must answer \
                those retries from the journal-replicated retry window \
                (exact at-most-once), and the history must stay strictly \
                linearizable",
        faults: |r| {
            let t1 = jitter(r, 10_000, 3_000);
            let t2 = jitter(r, 32_000, 3_000);
            vec![
                // Requests still arrive and commit; only the acks vanish.
                FaultAction::at(
                    t1,
                    FaultKind::OneWay {
                        from: vec![A0],
                        to: vec![NodeRef::Clients],
                        heal_ms: Some(9_000),
                    },
                ),
                FaultAction::at(t1 + 4_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 16_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                // Second round against the successor.
                FaultAction::at(
                    t2,
                    FaultKind::OneWay {
                        from: vec![A0],
                        to: vec![NodeRef::Clients],
                        heal_ms: Some(9_000),
                    },
                ),
                FaultAction::at(t2 + 4_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t2 + 16_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 1 }),
                ),
            ]
        },
        ..base("retry_across_failover", "")
    });

    v.push(Scenario {
        standbys: 1,
        juniors: 1,
        keys: 4,
        run_secs: 60,
        tune: |mut t| {
            // Fast checkpoint + delta cadence and a low image gap so the
            // restarted member renews over the manifest chain (base image
            // + deltas) — the retry window must ride those artifacts, not
            // just live journal replay.
            t.renew_image_gap = 64;
            t.checkpoint_interval = Some(Duration::from_secs(10));
            t.delta_interval = Some(Duration::from_secs(2));
            t
        },
        about: "lose the active's replies so retries pile up, fail over, \
                and let the crashed member restart through the base+delta \
                recovery ladder; when the successor dies too, the promoted \
                junior's retry window — rebuilt from image and delta 'W' \
                sections plus the journal tail — must still answer stale \
                retries exactly-once under strict checking",
        faults: |r| {
            let t1 = jitter(r, 12_000, 2_000);
            vec![
                FaultAction::at(
                    t1,
                    FaultKind::OneWay {
                        from: vec![A0],
                        to: vec![NodeRef::Clients],
                        heal_ms: Some(9_000),
                    },
                ),
                FaultAction::at(t1 + 4_000, FaultKind::Crash(A0)),
                // The ex-active renews as a junior over base+deltas.
                FaultAction::at(
                    t1 + 14_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                // Second reply cut + crash: promotion now falls to a junior
                // whose window came up the recovery ladder.
                FaultAction::at(
                    t1 + 26_000,
                    FaultKind::OneWay {
                        from: vec![A0],
                        to: vec![NodeRef::Clients],
                        heal_ms: Some(9_000),
                    },
                ),
                FaultAction::at(t1 + 30_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 42_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 1 }),
                ),
            ]
        },
        ..base("retry_after_delta_restart", "")
    });

    v.push(Scenario {
        speculative: true,
        clients: 6,
        run_secs: 60,
        about: "speculative-ack clients across a double failover: acks \
                released before durability may be lost when the active \
                dies, which the checker accepts only for spec-acked ops — \
                and the ordering-token contract must hold (no regression \
                before the first fault)",
        faults: |r| {
            let t1 = jitter(r, 10_000, 3_000);
            let t2 = jitter(r, 36_000, 4_000);
            vec![
                FaultAction::at(t1, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 11_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
                FaultAction::at(t2, FaultKind::Crash(A0)),
                FaultAction::at(
                    t2 + 11_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 1 }),
                ),
            ]
        },
        ..base("spec_ack_loss", "")
    });

    v.push(Scenario {
        clients: 8,
        think_ms: 10,
        run_secs: 50,
        about: "a standby turns gray-slow while the adaptive group-commit \
                controller is pacing batches to its ack latency: the \
                controller must stretch toward flush_max (not spin), \
                durable acks stay strict, and service survives the \
                subsequent active crash",
        faults: |r| {
            let t1 = jitter(r, 8_000, 2_000);
            vec![
                FaultAction::at(
                    t1,
                    FaultKind::SlowNode { node: B0, factor: 15.0, clear_ms: Some(20_000) },
                ),
                FaultAction::at(t1 + 24_000, FaultKind::Crash(A0)),
                FaultAction::at(
                    t1 + 36_000,
                    FaultKind::Restart(NodeRef::Member { group: 0, idx: 0 }),
                ),
            ]
        },
        ..base("adaptive_gray_standby", "")
    });

    v
}

/// The fault-free scenario used with the deliberate double-ack injection.
/// The strict checker convicts a fake ack in any run; fault-free keeps
/// the witness small and the verdict instant.
pub fn quiet() -> Scenario {
    Scenario {
        clients: 3,
        keys: 2,
        think_ms: 30,
        run_secs: 20,
        about: "no faults; used to prove the checker catches an injected \
                double-ack bug",
        ..base("quiet", "")
    }
}

/// Look up a corpus scenario (or the teeth scenario) by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    if name == "quiet" {
        return Some(quiet());
    }
    corpus().into_iter().find(|s| s.name == name)
}

/// Nodes a [`NodeRef`] may resolve to, captured at build time.
#[derive(Debug, Clone)]
pub struct Topology {
    pub coord: NodeId,
    pub pool: Vec<NodeId>,
    /// Per group: member node ids in boot order.
    pub groups: Vec<Vec<NodeId>>,
    /// Workload client node ids ([`NodeRef::Clients`]).
    pub clients: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_named_and_findable() {
        let all = corpus();
        assert!(all.len() >= 8);
        for s in &all {
            assert!(!s.name.is_empty() && !s.about.is_empty());
            assert!(by_name(s.name).is_some(), "{} must round-trip", s.name);
            let mut r = DetRng::seed_from_u64(7);
            let prog = (s.faults)(&mut r);
            assert!(prog.iter().all(|a| a.at_ms < s.run_secs * 1_000), "{}", s.name);
        }
        assert!(by_name("quiet").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn fault_programs_jitter_by_seed() {
        let s = by_name("failover_crash").unwrap();
        let p1 = (s.faults)(&mut DetRng::seed_from_u64(1));
        let p2 = (s.faults)(&mut DetRng::seed_from_u64(2));
        assert_ne!(p1, p2, "seeds must vary the program");
        let p1b = (s.faults)(&mut DetRng::seed_from_u64(1));
        assert_eq!(p1, p1b, "same seed, same program");
    }
}
