//! Transparent failover for an upper-layer application: a MapReduce
//! wordcount job keeps running while a metadata server dies mid-job (the
//! paper's Figure 9 scenario).
//!
//! ```sh
//! cargo run --release --example mapreduce_failover
//! ```

use mams::cluster::deploy::{build, DeploySpec};
use mams::mapreduce::{build_job, JobSpec, JobStats};
use mams::sim::{Duration, Sim, SimConfig, SimTime};

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    // The paper's Figure 9 configuration: 3 actives, 9 standbys total.
    let cluster = build(&mut sim, DeploySpec::mams(3, 9));

    let stats = JobStats::new();
    let spec = JobSpec {
        maps: 24,
        reduces: 6,
        workers: 6,
        map_compute: Duration::from_secs(4),
        reduce_compute: Duration::from_secs(3),
    };
    build_job(&mut sim, cluster.coord, cluster.partitioner, spec, stats.clone());

    let victim = cluster.initial_active(0);
    sim.at(SimTime(10_000_000), move |s| {
        println!("[t=10s] >>> killing metadata server {victim} (active of group 0) mid-job");
        s.crash(victim);
    });

    sim.run_until(SimTime(180_000_000));

    let t0 = stats.started_at().expect("job started") as f64 / 1e6;
    println!("\njob started at t={t0:.1}s");
    for (label, times) in [("map", stats.maps_done()), ("reduce", stats.reduces_done())] {
        print!("{label} completions (s): ");
        for t in &times {
            print!("{:.1} ", *t as f64 / 1e6);
        }
        println!();
    }
    match stats.job_done_at() {
        Some(t) => println!(
            "\njob finished at t={:.1}s — the mid-job failover cost a few seconds of\n\
             stalled metadata operations but no task failed and no rerun was needed.",
            t as f64 / 1e6
        ),
        None => println!("\njob did not finish — unexpected"),
    }
}
