//! Facebook AvatarNode: hot standby over an NFS-shared edit log.
//!
//! The active writes every batch synchronously to the NFS filer before
//! answering; the standby tails the shared log with a small lag and — since
//! data servers talk to both avatars — needs no block recollection. What
//! keeps its MTTR around half a minute (Table I: 27–33 s, flat in image
//! size) is the switchover machinery outside the namenode: clients are
//! redirected through a VIP/configuration flip and the new avatar exits
//! safemode. We execute detection and log tailing for real and charge the
//! redirection as the calibrated [`AVATAR_SWITCH_COST`].

use mams_coord::{CoordClient, CoordEvent, Incoming};
use mams_core::{CpuModel, Ingress, MdsReq, MdsResp};
use mams_journal::{JournalBatch, ReplayCursor, Sn};
use mams_namespace::NamespaceTree;
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim};
use mams_storage::pool::new_shared_pool;
use mams_storage::proto::{PoolReq, PoolResp};
use mams_storage::{DiskModel, PoolNode};

use crate::common::{exec_op, reply, RetryCache, SavedCheckpoint, StandbyReplayer};

const T_FLUSH: u64 = 1;
const T_TAIL: u64 = 2;
const T_SWITCH_DONE: u64 = 3;

/// Calibrated switchover cost: VIP migration, client reconfiguration, and
/// safemode exit — the part of Avatar failover that is not journal work.
/// Table I shows 27–33 s total with a ~5 s detection timeout and second-
/// scale replay, leaving ~25 s of redirection machinery.
pub const AVATAR_SWITCH_COST: Duration = Duration::from_secs(25);

#[derive(Debug, Clone, Copy)]
pub struct AvatarSpec {
    pub flush_interval: Duration,
    /// NFS append latency (higher than local disk: network + filer fsync).
    pub nfs_latency: Duration,
    /// Standby tail-poll cadence.
    pub tail_interval: Duration,
    /// Primary-side journaling CPU per mutation (NFS client stack per edit record).
    pub journal_cpu: Duration,
}

impl Default for AvatarSpec {
    fn default() -> Self {
        AvatarSpec {
            flush_interval: Duration::from_millis(2),
            nfs_latency: Duration::from_micros(3_500),
            tail_interval: Duration::from_millis(300),
            journal_cpu: Duration::from_micros(25),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AvRole {
    Active,
    Standby,
    Switching,
}

/// One avatar (active or standby decided at build time; the standby becomes
/// active after failover).
pub struct AvatarNode {
    spec: AvatarSpec,
    role: AvRole,
    nfs: NodeId,
    coord: CoordClient,
    ns: NamespaceTree,
    next_block: u64,
    retry: RetryCache,
    cursor: ReplayCursor,
    replayer: StandbyReplayer,
    next_sn: Sn,
    pending: Vec<crate::common::PendingReply>,
    pending_txns: Vec<mams_journal::Txn>,
    /// Replies gated on the in-flight NFS append, by pool req id.
    awaiting_nfs: std::collections::HashMap<u64, Vec<crate::common::PendingReply>>,
    next_req: u64,
    /// Standby: whether the active's death has been observed.
    detected: bool,
    ingress: Ingress,
    cpu: CpuModel,
}

impl AvatarNode {
    pub fn new(coord: NodeId, nfs: NodeId, spec: AvatarSpec, active: bool) -> Self {
        AvatarNode {
            spec,
            role: if active { AvRole::Active } else { AvRole::Standby },
            nfs,
            coord: CoordClient::new(coord, Duration::from_secs(2)),
            ns: NamespaceTree::new(),
            next_block: 1,
            retry: RetryCache::new(),
            cursor: ReplayCursor::new(),
            replayer: StandbyReplayer::new(),
            next_sn: 1,
            pending: Vec::new(),
            pending_txns: Vec::new(),
            awaiting_nfs: std::collections::HashMap::new(),
            next_req: 1,
            detected: false,
            ingress: Ingress::default(),
            cpu: CpuModel::default(),
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>, from: NodeId, op: mams_core::FsOp, seq: u64) {
        if let Some(cached) = self.retry.check(from, seq) {
            ctx.send(from, cached);
            return;
        }
        match exec_op(&mut self.ns, &mut self.next_block, &op) {
            Ok((txn, out)) => {
                if let Some(txn) = txn {
                    self.pending_txns.push(txn);
                    self.pending.push((from, seq, Ok(out)));
                    self.cursor = ReplayCursor::at(self.next_sn - 1);
                } else {
                    reply(&mut self.retry, ctx, from, seq, Ok(out));
                }
            }
            Err(e) => reply(&mut self.retry, ctx, from, seq, Err(e)),
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_empty() && self.pending_txns.is_empty() {
            return;
        }
        let replies = std::mem::take(&mut self.pending);
        let txns = std::mem::take(&mut self.pending_txns);
        let req = self.next_req;
        self.next_req += 1;
        if txns.is_empty() {
            // Read-only flush window: nothing to persist.
            for (to, seq, result) in replies {
                reply(&mut self.retry, ctx, to, seq, result);
            }
            return;
        }
        let batch = JournalBatch::new(self.next_sn, 1, txns);
        self.next_sn += 1;
        self.awaiting_nfs.insert(req, replies);
        ctx.send(self.nfs, PoolReq::AppendJournal { group: 0, epoch: 1, batch: batch.into(), req });
    }

    fn apply_tail(&mut self, batches: Vec<mams_journal::SharedBatch>) {
        for b in batches {
            self.replayer.offer(&mut self.cursor, &mut self.ns, &mut self.next_block, &b);
        }
        self.next_sn = self.cursor.max_sn() + 1;
    }

    fn request_tail(&mut self, ctx: &mut Ctx<'_>) {
        let req = self.next_req;
        self.next_req += 1;
        let after_sn = self.cursor.max_sn();
        ctx.send(self.nfs, PoolReq::ReadJournal { group: 0, after_sn, max: 4_096, req });
    }
}

impl Node for AvatarNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.coord.start(ctx);
        self.coord.watch(ctx, "g/0/".to_string());
        ctx.set_timer(self.spec.flush_interval, T_FLUSH);
        if self.role == AvRole::Standby {
            ctx.set_timer(self.spec.tail_interval, T_TAIL);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.coord.on_timer(ctx, token) {
            return;
        }
        match token {
            T_FLUSH => {
                if self.role == AvRole::Active {
                    let budget = self.spec.flush_interval;
                    let mut cpu = self.cpu;
                    cpu.mutation += self.spec.journal_cpu;
                    for item in self.ingress.drain(budget, cpu) {
                        if let mams_core::IngressItem::Client { from, op, seq, .. } = item {
                            self.serve(ctx, from, op, seq);
                        }
                    }
                    self.flush(ctx);
                }
                ctx.set_timer(self.spec.flush_interval, T_FLUSH);
            }
            T_TAIL => {
                if matches!(self.role, AvRole::Standby | AvRole::Switching) {
                    self.request_tail(ctx);
                    ctx.set_timer(self.spec.tail_interval, T_TAIL);
                }
            }
            T_SWITCH_DONE if self.role == AvRole::Switching => {
                // Part of safemode exit: the promoted avatar writes a fresh
                // fsimage checkpoint and restarts from the reload, so it
                // serves exactly the state a cold image load yields. The
                // image I/O is covered by the calibrated switch cost.
                let cp = SavedCheckpoint::save(&self.ns, self.next_block, self.cursor.max_sn());
                match cp.restore() {
                    Ok((tree, _)) => {
                        ctx.trace("avatar.image_checkpoint", || {
                            format!(
                                "v{} image, {} B",
                                cp.image.version().unwrap_or(0),
                                cp.image.size_bytes()
                            )
                        });
                        self.ns = tree;
                        self.next_block = cp.next_block;
                    }
                    Err(e) => ctx.trace("avatar.image_corrupt", || e.to_string()),
                }
                // The namespace was just replaced (and will now be mutated
                // outside replay): drop the session's cached handles.
                self.replayer.reset();
                self.role = AvRole::Active;
                let me = ctx.id();
                self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                ctx.trace("avatar.switch_done", String::new);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match CoordClient::classify(msg) {
            Ok(Incoming::Resp(mams_coord::CoordResp::Registered)) => {
                if self.role == AvRole::Active {
                    let me = ctx.id();
                    self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                }
                return;
            }
            Ok(Incoming::Event(CoordEvent::KeyChanged { key, value, .. })) => {
                // The active's ephemeral pointer vanished: begin failover.
                if self.role == AvRole::Standby
                    && !self.detected
                    && key == mams_core::keys::active(0)
                    && value.is_none()
                {
                    self.detected = true;
                    self.role = AvRole::Switching;
                    ctx.trace("avatar.failover_detected", String::new);
                    // Drain the shared log once more, then pay the
                    // redirection machinery.
                    self.request_tail(ctx);
                    ctx.set_timer(AVATAR_SWITCH_COST, T_SWITCH_DONE);
                }
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        let msg = match msg.downcast::<PoolResp>() {
            Ok(PoolResp::AppendOk { req, .. }) => {
                if let Some(replies) = self.awaiting_nfs.remove(&req) {
                    for (to, seq, result) in replies {
                        reply(&mut self.retry, ctx, to, seq, result);
                    }
                }
                return;
            }
            Ok(PoolResp::Journal { batches, .. }) => {
                self.apply_tail(batches);
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        if let Ok(MdsReq::Op { op, seq, .. }) = msg.downcast::<MdsReq>() {
            if self.role != AvRole::Active {
                ctx.send(from, MdsResp::NotActive { seq });
                return;
            }
            self.ingress.push(from, op, seq, None);
        }
    }
}

/// Build the avatar pair plus the NFS filer. Returns
/// `(active, standby, nfs)`.
pub fn build(sim: &mut Sim, coord: NodeId, spec: AvatarSpec) -> (NodeId, NodeId, NodeId) {
    let nfs_pool = new_shared_pool();
    let nfs_disk = DiskModel { op_overhead: spec.nfs_latency, bytes_per_sec: 80 * 1024 * 1024 };
    let nfs = sim
        .add_node("avatar-nfs", Box::new(PoolNode::new(nfs_pool).with_disks(nfs_disk, nfs_disk)));
    let active = sim.add_node("avatar-active", Box::new(AvatarNode::new(coord, nfs, spec, true)));
    let standby =
        sim.add_node("avatar-standby", Box::new(AvatarNode::new(coord, nfs, spec, false)));
    (active, standby, nfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::metrics::Metrics;
    use mams_cluster::mttr::mttr_from_completions;
    use mams_cluster::workload::Workload;
    use mams_cluster::{ClientConfig, FsClient};
    use mams_coord::{CoordConfig, CoordServer};
    use mams_namespace::Partitioner;
    use mams_sim::{DetRng, Sim, SimConfig, SimTime};

    #[test]
    fn failover_is_flat_and_around_thirty_seconds() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let (active, _standby, _nfs) = build(&mut sim, coord, AvatarSpec::default());
        let m = Metrics::new(true);
        let cfg = ClientConfig::new(coord, Partitioner::new(1));
        sim.add_node(
            "client",
            Box::new(FsClient::new(
                cfg,
                Workload::create_only(0),
                m.clone(),
                DetRng::seed_from_u64(3),
            )),
        );
        let kill = SimTime(10_000_000);
        sim.at(kill, move |s| s.crash(active));
        sim.run_for(Duration::from_secs(90));
        let outages = mttr_from_completions(&m.completions(), &[kill.micros()]);
        assert_eq!(outages.len(), 1);
        let mttr = outages[0].mttr_secs();
        // Paper band: 27–33 s (5 s detection + ~25 s switchover + replay).
        assert!((26.0..38.0).contains(&mttr), "Avatar MTTR {mttr:.1}s");
    }
}
