//! Offline stand-in for `serde_json`.
//!
//! What works: building [`Value`] trees by hand and rendering them with
//! [`to_string`] / [`to_string_pretty`] / [`to_vec`] (real JSON output).
//! What is deliberately inert: the [`json!`] macro discards its arguments
//! and yields `Value::Null` (callers keep `let _ = …` markers for values
//! only used inside it), and [`from_slice`] always errors — there is no
//! deserializer here.

use std::fmt;

pub use std::collections::BTreeMap as MapImpl;

/// Keeps the `serde_json::Map<String, Value>` spelling working.
pub type Map<K, V> = MapImpl<K, V>;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn render(&self, out: &mut String, indent: usize, pretty: bool) {
        let (nl, pad, pad_in) = if pretty {
            ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
        } else {
            ("", String::new(), String::new())
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.render(out, indent + 1, pretty);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    escape_into(out, k);
                    out.push_str(if pretty { ": " } else { ":" });
                    v.render(out, indent + 1, pretty);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    fn rendered(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.render(&mut out, 0, pretty);
        out
    }
}

impl serde::Serialize for Value {
    fn stand_in_json(&self) -> Option<String> {
        Some(self.rendered(true))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Stand-in error: deserialization is unsupported offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in: deserialization unsupported")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.stand_in_json().unwrap_or_else(|| "null".to_string()))
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_bytes: &'a [u8]) -> Result<T, Error> {
    Err(Error)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(Error)
}

/// The stand-in `json!` discards its arguments and yields `Value::Null`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)*) => {
        $crate::Value::Null
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_real_json_for_hand_built_values() {
        let mut m = Map::new();
        m.insert("n".to_string(), Value::from(3u64));
        m.insert("s".to_string(), Value::from("a\"b"));
        m.insert("a".to_string(), Value::Array(vec![Value::Null, Value::from(true)]));
        let v = Value::Object(m);
        let compact = v.rendered(false);
        assert_eq!(compact, r#"{"a":[null,true],"n":3,"s":"a\"b"}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"n\": 3"));
    }

    #[test]
    fn json_macro_discards() {
        let v = json!({"anything": 1});
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn from_slice_always_errors() {
        #[derive(Debug)]
        struct T;
        impl<'de> serde::Deserialize<'de> for T {}
        assert!(from_slice::<T>(b"{}").is_err());
    }
}
