//! Figure 9: MapReduce (wordcount-shaped) task-completion CDFs with a
//! metadata-server failure injected mid-job — CFS (MAMS-3A9S) vs Boom-FS.
//!
//! Expected shape (paper): both systems finish the job, but Boom-FS's
//! slower centralized recovery stalls maps (and therefore the reduce
//! barrier) longer; CFS completes maps ~28% and reduces ~10% sooner in the
//! failure case.

use mams_baselines::boomfs;
use mams_bench::save_json;
use mams_cluster::deploy::{build, DeploySpec};
use mams_coord::{CoordConfig, CoordServer};
use mams_mapreduce::{build_job, JobSpec, JobStats};
use mams_namespace::Partitioner;
use mams_sim::{Duration, NodeId, Sim, SimConfig, SimTime};
use std::sync::Arc;

const FAIL_AT: SimTime = SimTime(30_000_000);

fn job_spec() -> JobSpec {
    JobSpec {
        maps: 64,
        reduces: 10,
        workers: 8,
        map_compute: Duration::from_secs(4),
        reduce_compute: Duration::from_secs(6),
    }
}

fn run_cfs(fail: bool) -> Arc<JobStats> {
    let mut sim = Sim::new(SimConfig { seed: 0xF169, trace: true, ..SimConfig::default() });
    let d = build(&mut sim, DeploySpec::mams(3, 9));
    let stats = JobStats::new();
    build_job(&mut sim, d.coord, d.partitioner, job_spec(), stats.clone());
    if fail {
        let victim = d.initial_active(0);
        sim.at(FAIL_AT, move |s| s.crash(victim));
    }
    sim.run_until(SimTime(600_000_000));
    assert!(stats.job_done_at().is_some(), "CFS job (fail={fail}) did not finish");
    stats
}

fn run_boomfs(fail: bool) -> Arc<JobStats> {
    let mut sim = Sim::new(SimConfig { seed: 0xF16A, trace: true, ..SimConfig::default() });
    let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
    boomfs::build(&mut sim, coord, boomfs::BoomFsSpec::default());
    // Give the RSM time to elect before the job starts.
    sim.run_for(Duration::from_secs(10));
    let stats = JobStats::new();
    build_job(&mut sim, coord, Partitioner::new(1), job_spec(), stats.clone());
    if fail {
        sim.at(FAIL_AT, move |s| {
            let leader = s
                .trace()
                .events()
                .iter()
                .rev()
                .find(|e| e.tag == "rsm.leader")
                .map(|e| e.node)
                .expect("a Boom-FS leader exists");
            s.crash(leader);
        });
    }
    sim.run_until(SimTime(600_000_000));
    assert!(stats.job_done_at().is_some(), "Boom-FS job (fail={fail}) did not finish");
    stats
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

/// Completion times relative to the job's start.
fn summarize(label: &str, stats: &JobStats) -> (f64, f64) {
    let t0 = stats.started_at().expect("job started");
    let rel = |us: u64| secs(us.saturating_sub(t0));
    let maps = stats.maps_done();
    let reduces = stats.reduces_done();
    let map_done = rel(*maps.last().expect("maps"));
    let red_done = rel(*reduces.last().expect("reduces"));
    println!(
        "{label:<24} maps 50%/90%/100%: {:>6.1}/{:>6.1}/{:>6.1}s   reduces 100%: {:>6.1}s",
        rel(JobStats::quantile(&maps, 0.5).expect("q")),
        rel(JobStats::quantile(&maps, 0.9).expect("q")),
        map_done,
        red_done,
    );
    (map_done, red_done)
}

fn main() {
    println!("Running the no-failure references...");
    let cfs_ok = run_cfs(false);
    let boom_ok = run_boomfs(false);
    println!("Running the failure cases (metadata server killed at t=30s)...");
    let cfs_fail = run_cfs(true);
    let boom_fail = run_boomfs(true);

    println!("\n== Figure 9: task completion under a mid-job MDS failure ==");
    summarize("CFS (normal)", &cfs_ok);
    summarize("Boom-FS (normal)", &boom_ok);
    let (cfs_map, cfs_red) = summarize("CFS (failure)", &cfs_fail);
    let (boom_map, boom_red) = summarize("Boom-FS (failure)", &boom_fail);

    let map_gain = (boom_map - cfs_map) / boom_map * 100.0;
    let red_gain = (boom_red - cfs_red) / boom_red * 100.0;
    println!("\nCFS finishes maps {map_gain:.1}% sooner and reduces {red_gain:.1}% sooner than Boom-FS under failure");
    println!("(paper: 28.13% and 9.76%)");
    assert!(map_gain > 0.0, "CFS must beat Boom-FS on map completion under failure");

    let cdf = |s: &JobStats| {
        // The offline `json!` stand-in discards its arguments; keep `s`
        // visibly used in every build.
        let _ = s;
        serde_json::json!({
            "maps": JobStats::cdf(&s.maps_done()).iter().map(|(t, f)| serde_json::json!([secs(*t), f])).collect::<Vec<_>>(),
            "reduces": JobStats::cdf(&s.reduces_done()).iter().map(|(t, f)| serde_json::json!([secs(*t), f])).collect::<Vec<_>>(),
        })
    };
    let _ = &cdf;
    save_json(
        "fig9_mapreduce_failover",
        &serde_json::json!({
            "cfs_normal": cdf(&cfs_ok), "boomfs_normal": cdf(&boom_ok),
            "cfs_failure": cdf(&cfs_fail), "boomfs_failure": cdf(&boom_fail),
            "map_gain_pct": map_gain, "reduce_gain_pct": red_gain,
        }),
    );
    let _ = NodeId::default();
}
