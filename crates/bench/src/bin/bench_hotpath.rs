//! Wall-clock hot-path benchmark: the per-op work an active performs on the
//! serve → journal → fan-out path, measured end to end — now with a
//! multi-core sweep over the sharded namespace.
//!
//! A fixed-seed 100k-op create/getfileinfo/rename workload runs against a
//! real [`ShardedNamespace`]; every `BATCH_OPS` mutations the accumulated
//! transactions are sealed into a journal batch, appended to the worker's
//! own log, fanned out to `STANDBYS` standby logs and one pool log, and
//! encoded once for the SSP wire write — exactly the flush path in
//! `mams-core::active`. With `N` threads the op budget is split into `N`
//! shard-worker lanes (each with its own RNG stream, leaf-directory slice,
//! file namespace, and journal fan-out, mirroring per-shard journaling
//! order); reads go through the concurrent read path, one in every
//! [`PIN_EVERY`] through a pinned epoch snapshot. The per-thread-count
//! curve is written to `BENCH_hotpath.json` at the repo root so successive
//! PRs can track the perf trajectory; the top-level fields stay the
//! 1-thread run, comparable with the file's pre-sharding history.
//!
//! The file also records `host_cpus`: aggregate speedup is bounded by the
//! cores actually present, so a sweep recorded on a 1-core builder shows
//! the (small) coordination overhead of time-slicing, not the parallel
//! scaling the sharded tree exists for — re-run on multi-core hardware to
//! see the curve climb.
//!
//! # Latency mode
//!
//! Besides the wall-clock throughput sweep, the bench drives the *simulated*
//! cluster to measure client-observed commit latency percentiles
//! (p50/p99/p999) under two offered loads — a single think-time client
//! (idle: every op rides an empty batch) and a closed-loop fleet (loaded:
//! batches fill and queueing dominates) — once with the fixed
//! `flush_interval` cadence and once with the adaptive group-commit
//! controller. The `latency` section of `BENCH_hotpath.json` records the
//! curve; the claim under test is that adaptive pacing improves loaded p99
//! without regressing idle latency.
//!
//! Run from the repo root: `cargo run --release --bin bench_hotpath`
//! (full sweep) or `-- --threads 2` (one thread count, no file write — the
//! CI smoke) or `-- --latency` (short latency-percentile smoke, no file
//! write) or `-- --latency --guard [pct]` (rerun the baseline's latency
//! window — deterministic in the sim seed — and fail when loaded p99
//! regressed more than `pct` percent, default 5, vs the checked-in
//! `BENCH_hotpath.json`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mams_cluster::deploy::{self, DeploySpec};
use mams_cluster::{Metrics, Workload};
use mams_core::MdsTiming;
use mams_journal::{JournalBatch, JournalLog, SharedBatch, Txn};
use mams_namespace::ShardedNamespace;
use mams_sim::{Duration, Sim, SimConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x4d41_4d53; // "MAMS"
const TOTAL_OPS: usize = 100_000;
const BATCH_OPS: usize = 64;
const STANDBYS: usize = 3;
/// Every `PIN_EVERY`-th read pins an epoch snapshot instead of reading the
/// newest published state, keeping the snapshot path under the measurement.
const PIN_EVERY: u64 = 16;
/// Thread counts of the default sweep.
const SWEEP: [usize; 3] = [1, 2, 4];

/// Directory fan-out of the pre-built tree: DIRS top-level dirs, each with
/// SUBS subdirectories nested DEPTH deep (paths like `/d3/s1/s0/s2/f17`).
const DIRS: usize = 16;
const SUBS: usize = 4;
const DEPTH: usize = 3;

fn build_tree() -> (ShardedNamespace, Vec<String>) {
    let ns = ShardedNamespace::new();
    let mut leaves = Vec::new();
    for d in 0..DIRS {
        let top = format!("/d{d}");
        ns.mkdir(&top).unwrap();
        let mut level = vec![top];
        for _ in 0..DEPTH {
            let mut next = Vec::new();
            for dir in &level {
                for s in 0..SUBS {
                    let sub = format!("{dir}/s{s}");
                    ns.mkdir(&sub).unwrap();
                    next.push(sub);
                }
            }
            level = next;
        }
        leaves.extend(level);
    }
    (ns, leaves)
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    mutations: u64,
    reads: u64,
    batches: u64,
    wire_bytes: u64,
}

/// One shard-worker lane: `ops` operations of the 30/60/10
/// create/getfileinfo/rename mix against the shared namespace, with the
/// lane's own journal fan-out (own log + standbys + pool, sealed once per
/// `BATCH_OPS` mutations). `lane 0` with the full leaf set reproduces the
/// historical single-thread workload exactly.
fn worker(ns: &ShardedNamespace, leaves: &[String], lane: usize, ops: usize) -> Counters {
    let mut rng = SmallRng::seed_from_u64(SEED ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut active_log = JournalLog::new();
    let mut standby_logs: Vec<JournalLog> = (0..STANDBYS).map(|_| JournalLog::new()).collect();
    let mut pool_log = JournalLog::new();

    let mut files: Vec<String> = Vec::with_capacity(ops);
    let mut pending: Vec<Txn> = Vec::with_capacity(BATCH_OPS);
    let mut next_sn = 1u64;
    let mut next_txid = 1u64;
    // Lane-disjoint file numbering keeps path shapes identical to the
    // historical bench while making cross-lane name collisions impossible.
    let mut next_file = lane as u64 * 10_000_000;
    let mut c = Counters::default();

    let flush = |pending: &mut Vec<Txn>,
                 next_sn: &mut u64,
                 next_txid: &mut u64,
                 active_log: &mut JournalLog,
                 standby_logs: &mut [JournalLog],
                 pool_log: &mut JournalLog,
                 c: &mut Counters| {
        if pending.is_empty() {
            return;
        }
        let records = std::mem::take(pending);
        // Seal once: the wire form is encoded exactly here, and every
        // fan-out leg below shares the same allocation.
        let batch = SharedBatch::sealed(JournalBatch::new(*next_sn, *next_txid, records));
        *next_sn += 1;
        *next_txid = batch.last_txid() + 1;
        c.wire_bytes += batch.wire().len() as u64;
        for log in standby_logs.iter_mut() {
            log.append(batch.share()).unwrap();
        }
        pool_log.append(batch.share()).unwrap();
        active_log.append(batch).unwrap();
        c.batches += 1;
    };

    for _ in 0..ops {
        let roll = rng.gen_range(0u32..100);
        if roll < 30 || files.is_empty() {
            // create
            let dir = &leaves[rng.gen_range(0usize..leaves.len())];
            let path = format!("{dir}/f{next_file}");
            next_file += 1;
            if ns.create(&path, 3).is_ok() {
                pending.push(Txn::Create { path: path.clone(), replication: 3 });
                files.push(path);
                c.mutations += 1;
            }
        } else if roll < 90 {
            // getfileinfo — concurrent read path; periodically through a
            // pinned epoch snapshot.
            let path = &files[rng.gen_range(0usize..files.len())];
            if c.reads % PIN_EVERY == PIN_EVERY - 1 {
                let view = ns.pin();
                let _ = std::hint::black_box(view.getfileinfo(path));
            } else {
                let _ = std::hint::black_box(ns.getfileinfo(path));
            }
            c.reads += 1;
        } else {
            // rename: move a random file to a fresh name in another leaf dir.
            let idx = rng.gen_range(0usize..files.len());
            let src = files[idx].clone();
            let dir = &leaves[rng.gen_range(0usize..leaves.len())];
            let dst = format!("{dir}/r{next_file}");
            next_file += 1;
            if ns.rename(&src, &dst).is_ok() {
                pending.push(Txn::Rename { src, dst: dst.clone() });
                files[idx] = dst;
                c.mutations += 1;
            }
        }
        if pending.len() >= BATCH_OPS {
            flush(
                &mut pending,
                &mut next_sn,
                &mut next_txid,
                &mut active_log,
                &mut standby_logs,
                &mut pool_log,
                &mut c,
            );
        }
    }
    flush(
        &mut pending,
        &mut next_sn,
        &mut next_txid,
        &mut active_log,
        &mut standby_logs,
        &mut pool_log,
        &mut c,
    );

    // Sanity: every replica of this lane holds the identical journal.
    assert_eq!(active_log.tail_sn(), pool_log.tail_sn());
    for log in &standby_logs {
        assert_eq!(log.tail_sn(), active_log.tail_sn());
    }
    c
}

#[derive(Debug, Clone, Copy)]
struct RunResult {
    elapsed: f64,
    c: Counters,
    cache_hits: u64,
    cache_misses: u64,
}

/// One full fixed-seed run at `threads` lanes. The op budget is split
/// evenly; every lane works a disjoint slice of the leaf directories (a
/// strided slice, so each still spans all top-level dirs) and the shared
/// namespace absorbs all lanes concurrently.
fn run_once(threads: usize) -> RunResult {
    let (ns, leaves) = build_tree();
    let ns = Arc::new(ns);
    let hits0 = ns.cache_stats();
    let ops_per_lane = TOTAL_OPS / threads;

    let (elapsed, c) = if threads == 1 {
        let start = Instant::now();
        let c = worker(&ns, &leaves, 0, ops_per_lane);
        (start.elapsed().as_secs_f64(), c)
    } else {
        let go = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..threads)
            .map(|lane| {
                let ns = Arc::clone(&ns);
                let go = Arc::clone(&go);
                let slice: Vec<String> =
                    leaves.iter().skip(lane).step_by(threads).cloned().collect();
                std::thread::spawn(move || {
                    while !go.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    worker(&ns, &slice, lane, ops_per_lane)
                })
            })
            .collect();
        let start = Instant::now();
        go.store(true, Ordering::Release);
        let counters: Vec<Counters> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let elapsed = start.elapsed().as_secs_f64();
        let mut c = Counters::default();
        for lc in counters {
            c.mutations += lc.mutations;
            c.reads += lc.reads;
            c.batches += lc.batches;
            c.wire_bytes += lc.wire_bytes;
        }
        (elapsed, c)
    };
    let stats = ns.cache_stats();
    RunResult {
        elapsed,
        c,
        cache_hits: stats.hits - hits0.hits,
        cache_misses: stats.misses - hits0.misses,
    }
}

/// Best-of-`REPS` at one thread count: wall-clock best-of-N is far less
/// sensitive to scheduler noise than a single sample, and every run does
/// exactly the same work.
fn measure(threads: usize) -> RunResult {
    const REPS: usize = 5;
    let mut best: Option<RunResult> = None;
    for _ in 0..REPS {
        let r = run_once(threads);
        best = Some(match best {
            Some(b) if b.elapsed <= r.elapsed => b,
            _ => r,
        });
    }
    best.expect("REPS > 0")
}

// ------------------------------------------------------- latency mode

/// One latency case: offered load + commit policy.
#[derive(Debug, Clone, Copy)]
struct LatencyCase {
    load: &'static str,
    clients: u32,
    think_ms: u64,
    adaptive: bool,
}

#[derive(Debug, Clone, Copy)]
struct LatencyResult {
    case: LatencyCase,
    ops: usize,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

/// The idle case: one client with think time, so every op arrives at an
/// empty batch and latency is pure commit-path overhead.
const IDLE_CLIENTS: u32 = 1;
const IDLE_THINK_MS: u64 = 5;
/// The loaded case: a closed-loop fleet with no think time hammering the
/// group, so batch fill and queueing dominate.
const LOAD_CLIENTS: u32 = 64;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one simulated-cluster latency case and return commit-latency
/// percentiles over the post-warmup window. Deterministic in the case.
fn run_latency_case(case: LatencyCase, run_secs: u64, warmup_secs: u64) -> LatencyResult {
    let mut sim = Sim::new(SimConfig { seed: SEED ^ 0x1a7e, ..SimConfig::default() });
    let timing = MdsTiming { adaptive_commit: case.adaptive, ..MdsTiming::default() };
    let spec = DeploySpec { groups: 1, standbys_per_group: 2, timing, ..DeploySpec::default() };
    let mut d = deploy::build(&mut sim, spec);
    let metrics = Metrics::new(true);
    for i in 0..case.clients {
        let think = Duration::from_millis(case.think_ms);
        d.add_client_with(&mut sim, Workload::mixed(i), metrics.clone(), move |mut c| {
            c.think = think;
            c
        });
    }
    sim.run_for(Duration::from_secs(run_secs));

    let mut lat: Vec<u64> = metrics
        .completions()
        .iter()
        .filter(|c| c.ok && c.issued_us >= warmup_secs * 1_000_000)
        .map(|c| c.latency_us())
        .collect();
    lat.sort_unstable();
    LatencyResult {
        case,
        ops: lat.len(),
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        p999_us: percentile(&lat, 0.999),
    }
}

/// All four latency cases (idle/loaded x fixed/adaptive), in print order.
fn latency_cases() -> [LatencyCase; 4] {
    let mk = |load, clients, think_ms, adaptive| LatencyCase { load, clients, think_ms, adaptive };
    [
        mk("idle", IDLE_CLIENTS, IDLE_THINK_MS, false),
        mk("idle", IDLE_CLIENTS, IDLE_THINK_MS, true),
        mk("loaded", LOAD_CLIENTS, 0, false),
        mk("loaded", LOAD_CLIENTS, 0, true),
    ]
}

fn run_latency(run_secs: u64, warmup_secs: u64) -> Vec<LatencyResult> {
    latency_cases()
        .iter()
        .map(|&case| {
            let r = run_latency_case(case, run_secs, warmup_secs);
            println!(
                "latency[{}/{}]: {} ops p50 {}us p99 {}us p999 {}us",
                r.case.load,
                if r.case.adaptive { "adaptive" } else { "fixed" },
                r.ops,
                r.p50_us,
                r.p99_us,
                r.p999_us,
            );
            r
        })
        .collect()
}

/// Extract `"key": <digits>` from one baseline JSON line. The vendored
/// serde_json stand-in cannot parse, so the guard matches the latency case
/// lines of `BENCH_hotpath.json` by hand.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Hold the loaded-p99 results against the checked-in baseline. The latency
/// run is simulated — deterministic in the seed — so any drift beyond `pct`
/// percent is a real commit-path regression, not host noise.
fn guard_latency(results: &[LatencyResult], pct: f64) {
    let baseline = std::fs::read_to_string("BENCH_hotpath.json")
        .expect("BENCH_hotpath.json baseline at the repo root (run the full bench to create it)");
    let mut failed = false;
    for r in results.iter().filter(|r| r.case.load == "loaded") {
        let policy = if r.case.adaptive { "adaptive" } else { "fixed" };
        let base_p99 = baseline
            .lines()
            .filter(|l| {
                l.contains("\"load\": \"loaded\"")
                    && l.contains(&format!("\"policy\": \"{policy}\""))
            })
            .find_map(|l| json_u64_field(l, "p99_us"))
            .unwrap_or_else(|| panic!("no loaded/{policy} p99_us case in BENCH_hotpath.json"));
        let limit = base_p99 as f64 * (1.0 + pct / 100.0);
        let ok = r.p99_us as f64 <= limit;
        if !ok {
            failed = true;
        }
        println!(
            "guard[loaded/{policy}]: p99 {}us vs baseline {}us (limit {:.0}us): {}",
            r.p99_us,
            base_p99,
            limit,
            if ok { "ok" } else { "REGRESSION" },
        );
    }
    if failed {
        eprintln!("latency guard: loaded p99 regressed more than {pct}% vs baseline: FAIL");
        std::process::exit(1);
    }
    println!("latency guard: loaded p99 within {pct}% of baseline: PASS");
}

fn latency_json(results: &[LatencyResult]) -> String {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        rows.push_str(&format!(
            "      {{ \"load\": \"{}\", \"policy\": \"{}\", \"clients\": {}, \
             \"think_ms\": {}, \"ops\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {} }}{}",
            r.case.load,
            if r.case.adaptive { "adaptive" } else { "fixed" },
            r.case.clients,
            r.case.think_ms,
            r.ops,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            if i + 1 < results.len() { ",\n" } else { "\n" },
        ));
    }
    let by = |load: &str, adaptive: bool| {
        results.iter().find(|r| r.case.load == load && r.case.adaptive == adaptive)
    };
    let p99_gain = match (by("loaded", false), by("loaded", true)) {
        (Some(f), Some(a)) if a.p99_us > 0 => f.p99_us as f64 / a.p99_us as f64,
        _ => 1.0,
    };
    format!(
        "  \"latency\": {{\n    \"cases\": [\n{rows}    ],\n    \
         \"loaded_p99_fixed_over_adaptive\": {p99_gain:.3}\n  }}"
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let single: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"));
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    if args.iter().any(|a| a == "--latency") {
        if let Some(i) = args.iter().position(|a| a == "--guard") {
            // Guard mode (CI): rerun the baseline's exact (run, warmup)
            // window and fail if loaded p99 regressed beyond the threshold.
            let pct: f64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(5.0);
            let results = run_latency(20, 4);
            guard_latency(&results, pct);
        } else {
            // Latency smoke (CI): short simulated runs, report only.
            run_latency(8, 2);
        }
        return;
    }

    if let Some(threads) = single {
        // Single-count mode (the CI smoke): run and report, leave the
        // trajectory file alone.
        assert!(threads >= 1, "--threads takes a positive integer");
        let r = measure(threads);
        let total = TOTAL_OPS / threads * threads;
        println!(
            "hotpath[{threads}t]: {total} ops ({} mutations, {} reads, {} batches, \
             cache {}h/{}m) best of 5: {:.3}s -> {:.0} ops/s (host_cpus {host_cpus})",
            r.c.mutations,
            r.c.reads,
            r.c.batches,
            r.cache_hits,
            r.cache_misses,
            r.elapsed,
            total as f64 / r.elapsed,
        );
        return;
    }

    let results: Vec<(usize, RunResult)> = SWEEP.iter().map(|&t| (t, measure(t))).collect();
    let latency = run_latency(20, 4);
    let (_, one) = results[0];
    let base_ops = TOTAL_OPS as f64 / one.elapsed;

    let mut sweep_rows = String::new();
    let mut speedup_4t = 1.0;
    for (i, (threads, r)) in results.iter().enumerate() {
        let total = TOTAL_OPS / threads * threads;
        let ops_per_sec = total as f64 / r.elapsed;
        let speedup = ops_per_sec / base_ops;
        if *threads == 4 {
            speedup_4t = speedup;
        }
        sweep_rows.push_str(&format!(
            "    {{ \"threads\": {threads}, \"total_ops\": {total}, \"elapsed_s\": {:.6}, \
             \"ops_per_sec\": {ops_per_sec:.1}, \"speedup_vs_1t\": {speedup:.3}, \
             \"mutations\": {}, \"reads\": {}, \"batches\": {}, \"wire_bytes\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {} }}{}",
            r.elapsed,
            r.c.mutations,
            r.c.reads,
            r.c.batches,
            r.c.wire_bytes,
            r.cache_hits,
            r.cache_misses,
            if i + 1 < results.len() { ",\n" } else { "\n" },
        ));
        println!(
            "hotpath[{threads}t]: {total} ops best of 5: {:.3}s -> {ops_per_sec:.0} ops/s \
             ({speedup:.2}x vs 1t, cache {}h/{}m)",
            r.elapsed, r.cache_hits, r.cache_misses,
        );
    }

    let ops_per_sec = base_ops;
    // Hand-rolled JSON: the offline serde_json stand-in cannot serialize,
    // and this document is the repo's perf trajectory — it must hold real
    // numbers in every environment. Top-level fields are the 1-thread run
    // (comparable with the file's pre-sharding history); `threads_sweep`
    // holds the curve. `host_cpus` bounds the believable speedup: on a
    // 1-core builder the 4-thread row measures time-slicing overhead, not
    // parallelism.
    let doc = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"seed\": {SEED},\n  \"reps\": 5,\n  \
         \"total_ops\": {TOTAL_OPS},\n  \
         \"mutations\": {},\n  \"reads\": {},\n  \"batches\": {},\n  \
         \"standbys\": {STANDBYS},\n  \"wire_bytes\": {},\n  \"elapsed_s\": {:.6},\n  \
         \"ops_per_sec\": {ops_per_sec:.1},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"host_cpus\": {host_cpus},\n  \
         \"aggregate_speedup_4t\": {speedup_4t:.3},\n  \
         \"threads_sweep\": [\n{sweep_rows}  ],\n{}\n}}\n",
        one.c.mutations,
        one.c.reads,
        one.c.batches,
        one.c.wire_bytes,
        one.elapsed,
        one.cache_hits,
        one.cache_misses,
        latency_json(&latency),
    );
    let out = "BENCH_hotpath.json";
    std::fs::write(out, doc).expect("write BENCH_hotpath.json");
    println!("saved {out} (host_cpus {host_cpus}, 4t speedup {speedup_4t:.2}x)");
}
