//! Run the cluster against the wall clock: the same deployment that powers
//! the tests and benches, paced in real time (here at 20× fast-forward so
//! the demo takes ~2 s of wall time for ~40 s of cluster time).
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```

use std::time::Instant;

use mams::cluster::deploy::{build, DeploySpec};
use mams::cluster::metrics::Metrics;
use mams::cluster::workload::Workload;
use mams::sim::{Duration, RealTimePacer, Sim, SimConfig, SimTime};

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    let mut cluster =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 2, ..DeploySpec::default() });
    let metrics = Metrics::new(false);
    cluster.add_client(&mut sim, Workload::create_only(0), metrics.clone());
    let active = cluster.initial_active(0);
    sim.at(SimTime(15_000_000), move |s| s.crash(active));

    let mut pacer = RealTimePacer::new(sim).with_speed(20.0);
    let wall = Instant::now();
    println!("running 40 s of cluster time at 20x (≈2 s wall time)...");
    for chunk in 0..8 {
        pacer.run_for(Duration::from_secs(5));
        println!(
            "  wall {:>6.2}s | cluster t={:>5.1}s | {:>6} ops ok",
            wall.elapsed().as_secs_f64(),
            pacer.sim().now().as_secs_f64(),
            metrics.ok_count(),
        );
        if chunk == 2 {
            println!("  (the active died at t=15s — watch the ops counter stall, then recover)");
        }
    }
    println!(
        "\ndone: {} operations in {:.2} s of wall time; failover included.",
        metrics.ok_count(),
        wall.elapsed().as_secs_f64()
    );
}
