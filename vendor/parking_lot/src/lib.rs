//! Offline stand-in for `parking_lot`, backed by `std::sync`. Matches the
//! subset of the API this workspace uses: non-poisoning `Mutex`/`RwLock`
//! whose `lock()`/`read()`/`write()` return guards directly.

use std::fmt;
use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that (like parking_lot's) has no poisoning: a panic while
/// holding the lock simply releases it.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(format!("{m:?}").contains('2'));
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
