//! MTTR computation, following the paper's definition:
//!
//! ```text
//! MTTR = Σ (Time_return_success − Time_return_failure) / Times
//! ```
//!
//! i.e. for each injected failure, the span from the first failed/blocked
//! operation to the first successful operation after recovery.

use crate::metrics::Completion;

/// One measured outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageStats {
    /// Last success before the outage (µs).
    pub last_success_us: u64,
    /// First success after recovery (µs).
    pub recovered_us: u64,
}

impl OutageStats {
    /// The recovery time in seconds.
    pub fn mttr_secs(&self) -> f64 {
        (self.recovered_us.saturating_sub(self.last_success_us)) as f64 / 1e6
    }
}

/// Detect outages from a completion log: an outage begins when successes
/// stop flowing for more than `gap_threshold_us` and ends at the next
/// success. `injected_at_us` anchors each expected outage (one per injected
/// failure), so unrelated hiccups are not miscounted.
pub fn mttr_from_completions(
    completions: &[Completion],
    injected_at_us: &[u64],
) -> Vec<OutageStats> {
    let successes: Vec<u64> = completions.iter().filter(|c| c.ok).map(|c| c.at_us).collect();
    let mut out = Vec::new();
    for &inj in injected_at_us {
        // Last success at or before the injection, first success after.
        let last_before = successes.iter().copied().take_while(|&t| t <= inj).last();
        let first_after = successes.iter().copied().find(|&t| t > inj);
        if let (Some(last_success_us), Some(recovered_us)) = (last_before, first_after) {
            out.push(OutageStats { last_success_us, recovered_us });
        }
    }
    out
}

/// Mean MTTR in seconds over a set of outages (`None` when empty).
pub fn mean_mttr_secs(outages: &[OutageStats]) -> Option<f64> {
    if outages.is_empty() {
        return None;
    }
    Some(outages.iter().map(|o| o.mttr_secs()).sum::<f64>() / outages.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(at: u64, ok: bool) -> Completion {
        Completion { at_us: at, issued_us: at.saturating_sub(1_000), ok }
    }

    #[test]
    fn single_outage_measured() {
        // Successes every 100ms, outage injected at 1.0s, recovery at 6.2s.
        let mut log: Vec<Completion> = (1..=10).map(|i| c(i * 100_000, true)).collect();
        log.push(c(1_500_000, false));
        log.push(c(2_500_000, false));
        log.push(c(6_200_000, true));
        log.push(c(6_300_000, true));
        let outages = mttr_from_completions(&log, &[1_000_000]);
        assert_eq!(outages.len(), 1);
        let o = outages[0];
        assert_eq!(o.last_success_us, 1_000_000);
        assert_eq!(o.recovered_us, 6_200_000);
        assert!((o.mttr_secs() - 5.2).abs() < 1e-9);
    }

    #[test]
    fn multiple_outages() {
        let mut log = Vec::new();
        for i in 1..=5 {
            log.push(c(i * 1_000_000, true));
        }
        log.push(c(8_000_000, true)); // recovery 1 (injected at 5s): 3s
        for i in 9..=12 {
            log.push(c(i * 1_000_000, true));
        }
        log.push(c(20_000_000, true)); // recovery 2 (injected at 12s): 8s
        let outages = mttr_from_completions(&log, &[5_000_000, 12_000_000]);
        assert_eq!(outages.len(), 2);
        assert!((outages[0].mttr_secs() - 3.0).abs() < 1e-9);
        assert!((outages[1].mttr_secs() - 8.0).abs() < 1e-9);
        assert!((mean_mttr_secs(&outages).unwrap() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn unrecovered_outage_is_skipped() {
        let log = vec![c(1_000_000, true), c(2_000_000, false)];
        assert!(mttr_from_completions(&log, &[1_500_000]).is_empty());
        assert_eq!(mean_mttr_secs(&[]), None);
    }
}
