//! Wire vocabulary shared by the single-decree machines and the RSM.

use bytes::Bytes;

use crate::ballot::Ballot;

/// The value type consensus is run over. Opaque bytes: the Boom-FS baseline
/// stores encoded journal batches; the tests store small literals.
pub type Value = Bytes;

/// Single-decree Paxos messages for one instance (the instance id is carried
/// by the enclosing protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaxosMsg {
    /// Phase 1a.
    Prepare { ballot: Ballot },
    /// Phase 1b (positive): the acceptor promises `ballot` and reveals its
    /// previously accepted `(ballot, value)` if any.
    Promise { ballot: Ballot, accepted: Option<(Ballot, Value)> },
    /// Phase 1b (negative): already promised a higher ballot.
    PrepareNack { ballot: Ballot, promised: Ballot },
    /// Phase 2a.
    Accept { ballot: Ballot, value: Value },
    /// Phase 2b (positive).
    Accepted { ballot: Ballot },
    /// Phase 2b (negative).
    AcceptNack { ballot: Ballot, promised: Ballot },
}
