//! The replica-group member: state, dispatch, and shared machinery.
//!
//! Role-specific behaviour lives in sibling modules: `active` (client
//! operations, journal batching/sync, distributed transactions,
//! checkpoints), `failover` (detection, election, the six-step switch,
//! degradation), and `renewing` (junior recovery).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use mams_coord::{CoordClient, Incoming};
use mams_journal::{JournalBatch, JournalLog, ReplayCursor, SharedBatch, Sn, Txn, TxnId};
use mams_namespace::{
    replay_outcome, BlockMap, RetryEntry, RetryWindow, ShardedNamespace, ShardedReplaySession,
};
use mams_sim::{Ctx, Duration, Message, Node, NodeId, SimTime};
use mams_storage::pool::Epoch;
use mams_storage::proto::{PoolReq, PoolResp, ReqId};

use crate::config::{InitialRole, MdsConfig};
use crate::proto::{GroupMsg, MdsReq, OpOutput};

/// Timer tokens (coord heartbeat uses its own reserved token).
pub(crate) const T_FLUSH: u64 = 1;
pub(crate) const T_RENEW_SCAN: u64 = 2;
pub(crate) const T_ELECT: u64 = 3;
pub(crate) const T_REGISTER: u64 = 4;
pub(crate) const T_XG_RETRY: u64 = 5;
pub(crate) const T_GAP_REPAIR: u64 = 6;
pub(crate) const T_POOL_RETRY: u64 = 7;
pub(crate) const T_VIEW_REFRESH: u64 = 8;
pub(crate) const T_UPGRADE_RETRY: u64 = 9;
pub(crate) const T_CHECKPOINT: u64 = 10;
pub(crate) const T_DELTA: u64 = 11;

/// A member's role, as in Figure 3 of the paper, plus the two transitional
/// states the protocol moves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Active,
    Standby,
    Junior,
    /// Participating in an election round (bid posted).
    Electing,
    /// Holds the lock; executing the six-step switch.
    Upgrading,
}

impl Role {
    /// The single-letter view encoding used in the global view (and in the
    /// paper's Table II).
    pub fn letter(self) -> &'static str {
        match self {
            Role::Active => "A",
            Role::Standby => "S",
            Role::Junior => "J",
            Role::Electing => "S", // a bidding standby is still a standby
            Role::Upgrading => "S",
        }
    }
}

/// Why we are waiting on a pool response.
#[derive(Debug)]
pub(crate) enum PoolCtx {
    /// Ack for the SSP append of batch `sn`.
    AppendAck { sn: Sn },
    /// Upgrade step: reading the authoritative journal tail from the pool.
    UpgradeTail,
    /// Journal page during catch-up (renewing or upgrade).
    CatchupPage { for_upgrade: bool },
    /// Checkpoint write ack.
    CheckpointWrite,
    /// Incremental-checkpoint (delta image) write ack.
    DeltaWrite,
    /// Renewing/upgrade: resolving the checkpoint manifest chain.
    Manifest { for_upgrade: bool },
    /// Renewing/upgrade: a chunk of a manifest artifact (base or delta).
    ArtifactChunk { for_upgrade: bool },
    /// Fencing epoch advance ack during upgrade.
    EpochAdvance,
    /// Standby-side repair of a sync gap (lost `SyncJournal`) from the pool.
    GapRepair,
}

/// Client reply destination for a pending mutation.
#[derive(Debug, Clone)]
pub(crate) enum ReplyTo {
    Client {
        node: NodeId,
        seq: u64,
    },
    /// A distributed-transaction leg: ack the coordinating active.
    XGroup {
        coordinator: NodeId,
        xid: (u32, u64),
    },
    /// Speculative mode: the client was already acknowledged on apply
    /// (`MdsResp::ReplySpec`); nothing is owed at durability. The client
    /// identity still rides along so the flush can journal the ack record
    /// that replicates the `(client, seq) → outcome` binding.
    SpecAcked {
        node: NodeId,
        seq: u64,
    },
}

/// A validated-and-not-yet-flushed mutation.
#[derive(Debug)]
pub(crate) struct PendingOp {
    pub txn: Txn,
    pub reply: ReplyTo,
    pub output: OpOutput,
    /// Distributed-transaction id when this op coordinates legs on other
    /// groups.
    pub xid: Option<(u32, u64)>,
}

/// A client reply held until its batch (and its shards' predecessors) are
/// durable. `shards` are the home shards the op touched: release preserves
/// per-shard FIFO order, while ops on disjoint shards (different parent
/// directories) release independently — the out-of-order ack path.
#[derive(Debug)]
pub(crate) struct ClientReply {
    pub reply: ReplyTo,
    pub result: Result<OpOutput, String>,
    pub shards: Vec<usize>,
}

/// A flushed batch awaiting durability votes.
///
/// Two release levels: **durability** (SSP + standby acks) frees the
/// distributed-transaction leg acks immediately — tying leg acks to full
/// completion would deadlock two groups coordinating at each other — while
/// **client replies** additionally wait for this batch's own outgoing legs
/// and are released in per-shard FIFO order (see `try_complete`).
#[derive(Debug, Default)]
pub(crate) struct Inflight {
    pub waiting_pool: bool,
    pub waiting_members: BTreeSet<NodeId>,
    /// Outgoing distributed-transaction legs client replies wait on.
    pub waiting_xg: HashSet<(u32, u64)>,
    pub client_replies: Vec<ClientReply>,
    /// Leg acknowledgements owed to other groups' coordinators.
    pub xg_replies: Vec<(ReplyTo, Result<OpOutput, String>)>,
    pub xg_acked: bool,
    /// Seal time, for the adaptive controller's ack-latency signal.
    pub flushed_at: SimTime,
}

impl Inflight {
    /// Locally durable: in the SSP and on every current standby.
    pub fn durable(&self) -> bool {
        !self.waiting_pool && self.waiting_members.is_empty()
    }

    pub fn complete(&self) -> bool {
        self.durable() && self.waiting_xg.is_empty()
    }
}

/// Junior-side renewing progress.
#[derive(Debug)]
pub(crate) enum CatchupStage {
    /// Asked the pool for the checkpoint manifest chain.
    Manifest,
    /// Streaming the manifest chain (base image, then deltas). `plan` is
    /// the artifacts this junior needs — the base only when its own state
    /// predates it, then every delta past its applied sn — `idx`/`offset`
    /// the resume checkpoint within it. A base streams through the push
    /// decoder (no whole-image buffer); a delta is churn-sized, so it is
    /// buffered whole in `buf` and applied in one step.
    Chain {
        plan: Vec<mams_storage::ManifestEntry>,
        idx: usize,
        offset: u64,
        decoder: Option<Box<mams_namespace::StreamingImageDecoder>>,
        buf: Vec<u8>,
    },
    /// Replaying journal pages from the pool, with up to `catchup_window`
    /// page requests in flight so network RTT overlaps apply. `inflight`
    /// counts outstanding requests, `next_after` is the next speculative
    /// page boundary, and `tail_hint` bounds speculation (the last tail sn
    /// any pool response reported; 0 until the first response).
    Journal { inflight: usize, next_after: Sn, tail_hint: Sn },
    /// Waiting for the active's final synchronization range.
    Final,
}

/// A catch-up session (used by a renewing junior and by an elected member
/// syncing with the pool before switching).
#[derive(Debug)]
pub(crate) struct Catchup {
    pub stage: CatchupStage,
}

/// Active-side renewing session (one junior at a time, per the paper).
#[derive(Debug)]
pub(crate) struct RenewDriver {
    pub junior: NodeId,
    pub last_progress_sn: Sn,
    /// Scan ticks with no progress; a stalled session (lost messages, dead
    /// junior) is abandoned and restarted.
    pub stale_scans: u32,
}

/// A coordinator-side distributed transaction with unacked legs.
#[derive(Debug)]
pub(crate) struct XgOutstanding {
    pub txn: Txn,
    /// Groups that have not acknowledged the leg yet.
    pub groups: HashSet<u32>,
}

/// Election round stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ElectStage {
    /// Bid posted; waiting for the bid window to close.
    Window,
    /// Bid listing requested / lock attempt possibly in flight; if nothing
    /// happens by the backoff deadline the round restarts.
    Backoff,
}

/// Election round state.
#[derive(Debug)]
pub(crate) struct ElectState {
    /// Our bid value (random for standbys, journal sn for juniors).
    pub bid: u64,
    pub stage: ElectStage,
}

/// One MAMS replica-group member.
pub struct MdsServer {
    pub(crate) cfg: MdsConfig,
    pub(crate) coord: CoordClient,
    pub(crate) role: Role,
    /// Fencing epoch from our lock grant (valid when Active/Upgrading).
    pub(crate) epoch: Epoch,
    /// Highest group epoch observed (stale-active hygiene).
    pub(crate) group_epoch: Epoch,
    pub(crate) active_hint: Option<NodeId>,

    pub(crate) ns: ShardedNamespace,
    pub(crate) blocks: BlockMap,
    pub(crate) log: JournalLog,
    pub(crate) cursor: ReplayCursor,
    /// Out-of-order sync buffer (drained contiguously into the cursor);
    /// holds shared handles, so stashing never copies records.
    pub(crate) stash: BTreeMap<Sn, SharedBatch>,
    pub(crate) next_txid: TxnId,
    /// Next block id to allocate (replay advances it past any seen id).
    pub(crate) next_block_id: u64,
    /// Journal replay fast path (validate-skip + cached parent handle).
    /// Reset whenever `ns` is replaced or mutated outside replay (image
    /// load, replica reset, a stint as active).
    pub(crate) replay: ShardedReplaySession,
    /// Replicated retry-outcome window: the `(client, seq) → outcome`
    /// bindings of every journaled batch this replica has applied (or
    /// adopted from an image/delta). A pure function of the journal prefix
    /// — standbys, catch-up juniors, and the active all agree byte-for-byte
    /// — so a freshly promoted active can seed its response cache from it
    /// and keep at-most-once across the switch.
    pub(crate) window: RetryWindow,

    /// View cache maintained from watch events.
    pub(crate) view: HashMap<String, String>,

    // ---- active-side state ----
    pub(crate) pending: Vec<PendingOp>,
    pub(crate) inflight: BTreeMap<Sn, Inflight>,
    pub(crate) standbys: BTreeSet<NodeId>,
    pub(crate) member_sns: HashMap<NodeId, Sn>,
    pub(crate) retry_cache: crate::retry::RetryCache,
    /// Read barrier: replies to reads that observed not-yet-durable
    /// mutations, keyed by the batch sn that must commit before release.
    /// Dropped on degradation — a dirty read must never be answered.
    pub(crate) deferred_reads: Vec<(Sn, NodeId, u64, std::sync::Arc<crate::proto::MdsResp>)>,
    /// Step-3 buffer: client requests received mid-upgrade.
    pub(crate) buffered: Vec<(NodeId, MdsReq)>,
    pub(crate) renew_driver: Option<RenewDriver>,
    /// As coordinator: xid → the batch sn whose replies wait on it.
    pub(crate) xg_to_sn: HashMap<(u32, u64), Sn>,
    /// As participant: xids already applied (duplicate suppression).
    pub(crate) xg_seen: HashSet<(u32, u64)>,
    /// As coordinator: legs still outstanding per xid (retried until every
    /// group acknowledges, so a mid-failover group cannot jam the
    /// in-order reply pipeline).
    pub(crate) xg_outstanding: HashMap<(u32, u64), XgOutstanding>,
    pub(crate) next_xid: u64,

    // ---- member-side state ----
    pub(crate) registered: bool,
    /// Whether the boot-time lock attempt (designated active) was made.
    pub(crate) boot_lock_tried: bool,
    pub(crate) catchup: Option<Catchup>,
    pub(crate) elect: Option<ElectState>,

    /// Admission queue (CPU capacity model).
    pub(crate) ingress: crate::ingress::Ingress,

    // ---- adaptive commit pipeline ----
    /// Flush-cadence controller (drives `T_FLUSH` when
    /// `timing.adaptive_commit` is on).
    pub(crate) commit: crate::commit::GroupCommitPolicy,
    /// When the ingress queue was last drained; the next drain's budget is
    /// the elapsed wall time, so the CPU model's service rate is invariant
    /// under the adaptive tick cadence.
    pub(crate) last_drain_at: SimTime,
    /// `ingress.admitted()` at the previous tick (arrival-rate signal).
    pub(crate) last_admitted: u64,
    /// Speculative reads whose `min_token` is ahead of the applied txid
    /// watermark. Served when the watermark catches up; any wait still
    /// unsatisfied at the next flush tick is answered with the current
    /// watermark — a token below the request's `min_token` tells the
    /// client its speculative timeline was discarded (failover).
    pub(crate) token_waits: Vec<(u64, NodeId, u64, crate::proto::FsOp)>,

    // ---- pool plumbing ----
    pub(crate) pool_pending: HashMap<ReqId, PoolCtx>,
    pub(crate) next_pool_req: ReqId,
    pub(crate) pool_rr: usize,

    /// Whether a gap-repair timer is armed (lost-sync recovery).
    pub(crate) gap_repair_armed: bool,

    /// Sn of the last checkpoint artifact (full image or delta) this active
    /// wrote to the pool: the anchor the next delta folds from. `None`
    /// until a base image lands (a delta must chain onto something) and
    /// cleared on every role change — a new active must re-establish the
    /// chain with a full image before producing deltas.
    pub(crate) delta_anchor: Option<Sn>,

    // ---- measurement hooks ----
    /// When we observed the previous active disappear (drives the Figure 7
    /// stage breakdown).
    pub(crate) failure_seen_at: Option<SimTime>,
    /// Replay-divergence counter; must stay 0 in a correct deployment.
    pub(crate) divergences: u64,
    /// One-shot guard for the `replica.diverged` trace event.
    pub(crate) diverged_traced: bool,

    /// When we last heard *anything* from the coordination service. An
    /// active whose last contact is older than `timing.coord_lease` must
    /// assume its session expired and self-fence (see `check_coord_lease`).
    pub(crate) last_coord_contact: SimTime,

    /// Grant epoch of a lock release the coordinator has not yet confirmed.
    /// Re-sent every view-refresh tick: a lost release from a node whose
    /// session keeps heartbeating would otherwise hold the group lock (and
    /// block every election) forever.
    pub(crate) pending_lock_release: Option<u64>,
}

impl MdsServer {
    pub fn new(cfg: MdsConfig) -> Self {
        let coord = CoordClient::new(cfg.coord, cfg.timing.heartbeat);
        let commit = crate::commit::GroupCommitPolicy::new(
            cfg.timing.flush_interval,
            cfg.timing.flush_min,
            cfg.timing.flush_max,
        );
        let role = match cfg.initial_role {
            InitialRole::Active => Role::Standby, // becomes Active via the lock
            InitialRole::Standby => Role::Standby,
            InitialRole::Junior => Role::Junior,
        };
        MdsServer {
            cfg,
            coord,
            role,
            epoch: 0,
            group_epoch: 0,
            active_hint: None,
            ns: ShardedNamespace::new(),
            blocks: BlockMap::new(),
            log: JournalLog::new(),
            cursor: ReplayCursor::new(),
            stash: BTreeMap::new(),
            next_txid: 1,
            next_block_id: 1,
            replay: ShardedReplaySession::new(),
            window: RetryWindow::new(),
            view: HashMap::new(),
            pending: Vec::new(),
            inflight: BTreeMap::new(),
            standbys: BTreeSet::new(),
            member_sns: HashMap::new(),
            retry_cache: crate::retry::RetryCache::new(),
            deferred_reads: Vec::new(),
            buffered: Vec::new(),
            renew_driver: None,
            xg_to_sn: HashMap::new(),
            xg_seen: HashSet::new(),
            xg_outstanding: HashMap::new(),
            next_xid: 1,
            registered: false,
            boot_lock_tried: false,
            catchup: None,
            elect: None,
            ingress: crate::ingress::Ingress::default(),
            commit,
            last_drain_at: SimTime::ZERO,
            last_admitted: 0,
            token_waits: Vec::new(),
            pool_pending: HashMap::new(),
            next_pool_req: 1,
            pool_rr: 0,
            gap_repair_armed: false,
            delta_anchor: None,
            failure_seen_at: None,
            divergences: 0,
            diverged_traced: false,
            last_coord_contact: SimTime::ZERO,
            pending_lock_release: None,
        }
    }

    /// Current role (test/harness hook).
    pub fn role(&self) -> Role {
        self.role
    }

    /// Applied journal position (test/harness hook).
    pub fn applied_sn(&self) -> Sn {
        self.cursor.max_sn()
    }

    /// Namespace fingerprint (test hook).
    pub fn fingerprint(&self) -> u64 {
        self.ns.fingerprint()
    }

    /// Replay divergences observed (test hook; must be 0).
    pub fn divergences(&self) -> u64 {
        self.divergences + self.ns.divergences()
    }

    /// Surface replica divergence on the trace (once per boot) so harnesses
    /// outside the boxed node — e.g. the chaos campaign's invariant sweep —
    /// can detect it by tag.
    pub(crate) fn note_divergence(&mut self, ctx: &mut Ctx<'_>) {
        if !self.diverged_traced && self.divergences() > 0 {
            self.diverged_traced = true;
            let n = self.divergences();
            ctx.trace("replica.diverged", || format!("count={n}"));
        }
    }

    // ---------------------------------------------------------------- pool

    /// Send a pool request (round-robin across pool nodes), remembering why.
    pub(crate) fn pool_send(
        &mut self,
        ctx: &mut Ctx<'_>,
        build: impl FnOnce(ReqId) -> PoolReq,
        why: PoolCtx,
    ) -> ReqId {
        let req = self.next_pool_req;
        self.next_pool_req += 1;
        self.pool_pending.insert(req, why);
        let target = self.cfg.pool[self.pool_rr % self.cfg.pool.len()];
        self.pool_rr += 1;
        ctx.send(target, build(req));
        req
    }

    // ------------------------------------------------------------- journal

    /// Apply a batch's records to the namespace + block map and advance the
    /// txid high-water mark. Caller is responsible for cursor bookkeeping.
    ///
    /// Ack records riding on the batch (wire v2) are folded into the
    /// replicated retry window *at each record's apply point*, so the
    /// reconstructed outcome (e.g. the `FileInfo` a `Create` answered) is
    /// exactly what the original active sent.
    fn apply_records(&mut self, batch: &JournalBatch) {
        let mut acks = batch.acks.iter().peekable();
        for (i, (txid, txn)) in batch.entries().enumerate() {
            if let Txn::AddBlock { block_id, len, .. } = txn {
                self.blocks.register(*block_id, *len);
                self.next_block_id = self.next_block_id.max(*block_id + 1);
            }
            // Replay fast path: journalled records were validated by the
            // active, so the session skips re-validation and reuses the
            // previous record's parent-directory resolution.
            if self.replay.apply(&self.ns, txn).is_err() {
                // Journaled transactions were validated before logging, so
                // failure to re-apply means replica divergence.
                self.divergences += 1;
            }
            self.next_txid = self.next_txid.max(txid + 1);
            // Acks are sorted by record index (the flush emits them in op
            // order), so a single forward scan pairs them up.
            while let Some(ack) = acks.next_if(|a| a.record as usize == i) {
                let outcome = replay_outcome(|p| self.ns.getfileinfo(p).ok(), txn);
                // A speculative ack carried the record's txid as its
                // ordering token; replay knows it exactly.
                let token = ack.spec.then_some(txid);
                self.window.record(ack.client, ack.seq, RetryEntry { outcome, token });
            }
        }
    }

    /// The replicated retry window (test/harness hook: replay-parity
    /// assertions compare fingerprints across replicas).
    pub fn retry_window(&self) -> &RetryWindow {
        &self.window
    }

    /// Fan a drained admission window across the namespace's shard workers:
    /// ops are bucketed by the shard that owns their parent directory
    /// ([`ShardedNamespace::home_shard`]) and the buckets are served in
    /// shard-index order. Within a bucket the admission order is preserved,
    /// so ops against the same directory — and hence the per-shard journal
    /// order — serve exactly as admitted; ops against different shards were
    /// concurrent (clients are closed-loop, one op in flight each), so any
    /// interleaving is a legal linearization. The grouping is deterministic,
    /// keeping replica replay and the retry cache's in-order assumptions
    /// intact, and it batches each shard's lock traffic together — the
    /// single-process analogue of one worker thread per shard.
    pub(crate) fn fan_out_by_shard(
        &self,
        drained: Vec<crate::ingress::IngressItem>,
    ) -> Vec<crate::ingress::IngressItem> {
        if drained.len() < 2 {
            return drained;
        }
        let mut buckets: Vec<Vec<crate::ingress::IngressItem>> =
            (0..self.ns.shard_count()).map(|_| Vec::new()).collect();
        for item in drained {
            let shard = self.ns.home_shard(item.op().primary_path());
            buckets[shard].push(item);
        }
        buckets.into_iter().flatten().collect()
    }

    /// Ingest a batch from any source (live sync, re-flush, renewing, pool
    /// catch-up): stash, then drain contiguously through the cursor.
    /// Returns the highest sn applied by this call, if any.
    ///
    /// A non-empty stash after draining means a batch went missing on the
    /// wire; the caller should arm gap repair (`arm_gap_repair`).
    pub(crate) fn ingest_batch(&mut self, batch: SharedBatch) -> Option<Sn> {
        if batch.sn <= self.cursor.max_sn() {
            return None; // duplicate: suppressed by sn comparison
        }
        self.stash.insert(batch.sn, batch);
        let mut last = None;
        while let Some(next) = self.stash.remove(&(self.cursor.max_sn() + 1)) {
            self.apply_records(&next);
            // Keep a local handle in the log (standbys serve renewing reads
            // and may become the active) — same allocation, no copy.
            let _ = self.log.append(next.share());
            self.cursor = ReplayCursor::at(next.sn);
            last = Some(next.sn);
        }
        last
    }

    /// Discard every bit of replicated state (a divergent member resetting
    /// to junior, per step 5 of the switch when sn values cannot match).
    pub(crate) fn reset_replica_state(&mut self) {
        self.ns = ShardedNamespace::new();
        self.replay.reset();
        self.log = JournalLog::new();
        self.cursor = ReplayCursor::new();
        self.stash.clear();
        self.next_txid = 1;
        self.next_block_id = 1;
        // Block locations are rebuilt by the periodic reports.
        self.blocks = BlockMap::new();
        // The window is a function of the journal prefix; no prefix, no
        // window. Rebuilt alongside the namespace during catch-up.
        self.window.clear();
    }

    // ---------------------------------------------------------------- view

    pub(crate) fn view_set(&mut self, key: String, value: Option<String>) {
        match value {
            Some(v) => {
                self.view.insert(key, v);
            }
            None => {
                self.view.remove(&key);
            }
        }
    }

    /// Node ids of members currently in state `letter` per our view cache.
    pub(crate) fn members_in_state(&self, letter: &str) -> Vec<NodeId> {
        let prefix = format!("g/{}/state/", self.cfg.group);
        let mut v: Vec<NodeId> = self
            .view
            .iter()
            .filter(|(k, val)| k.starts_with(&prefix) && val.as_str() == letter)
            .filter_map(|(k, _)| k[prefix.len()..].parse().ok())
            .collect();
        v.sort_unstable();
        v
    }

    /// The active for an arbitrary group, per our view cache (distributed
    /// transactions route through this).
    pub(crate) fn active_of_group(&self, group: u32) -> Option<NodeId> {
        self.view.get(&crate::view::keys::active(group)).and_then(|v| crate::view::decode_node(v))
    }
}

impl Node for MdsServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Open the session; the state announcement and (for the designated
        // active) the boot lock attempt are sequenced behind the
        // `Registered` response because coordination messages may reorder.
        self.coord.start(ctx);
        self.coord.watch(ctx, crate::view::keys::all_groups());
        ctx.set_timer(self.cfg.timing.flush_interval, T_FLUSH);
        ctx.set_timer(self.cfg.timing.renew_scan, T_RENEW_SCAN);
        ctx.set_timer(self.cfg.timing.register_retry, T_REGISTER);
        ctx.set_timer(self.cfg.timing.register_retry.mul_f64(2.0), T_XG_RETRY);
        ctx.set_timer(self.cfg.timing.register_retry.mul_f64(0.4), T_POOL_RETRY);
        ctx.set_timer(Duration::from_secs(1), T_VIEW_REFRESH);
        if let Some(interval) = self.cfg.timing.checkpoint_interval {
            ctx.set_timer(interval, T_CHECKPOINT);
        }
        if let Some(interval) = self.cfg.timing.delta_interval {
            ctx.set_timer(interval, T_DELTA);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.coord.on_timer(ctx, token) {
            return;
        }
        match token {
            T_FLUSH => {
                let now = ctx.now();
                let elapsed = now.since(self.last_drain_at);
                self.last_drain_at = now;
                let admitted = self.ingress.admitted();
                let arrived = admitted - self.last_admitted;
                self.last_admitted = admitted;
                let mut next = self.cfg.timing.flush_interval;
                if self.role == Role::Active {
                    let adaptive = self.cfg.timing.adaptive_commit;
                    self.commit.observe_tick(arrived, elapsed);
                    // Token waits left over from the previous tick: serve
                    // what the watermark now covers, answer the rest with
                    // the current (regressed) watermark.
                    self.answer_token_waits(ctx);
                    // The drain budget is the elapsed wall time — not the
                    // tick interval — so the CPU model's service rate is
                    // the same whether the controller ticks every 250µs or
                    // every 8ms. Bounded by `flush_max` so a tick delayed
                    // past the cadence (promotion, timer skew) cannot
                    // burst beyond the modeled capacity.
                    let budget = if adaptive {
                        elapsed.min(self.cfg.timing.flush_max)
                    } else {
                        self.cfg.timing.flush_interval
                    };
                    let mut cpu = self.cfg.timing.cpu;
                    // Journal fan-out: every mutation is serialized and
                    // sent to each hot standby.
                    cpu.mutation +=
                        self.cfg.timing.sync_cpu_per_standby.mul_f64(self.standbys.len() as f64);
                    let drained = self.ingress.drain(budget, cpu);
                    for item in self.fan_out_by_shard(drained) {
                        match item {
                            crate::ingress::IngressItem::Client { from, op, seq, spec } => {
                                self.serve_op(ctx, from, op, seq, spec)
                            }
                            crate::ingress::IngressItem::Leg { coordinator, xid, op } => {
                                self.serve_leg(ctx, coordinator, xid, op)
                            }
                        }
                    }
                    self.flush_batch(ctx);
                    if adaptive {
                        next = self.commit.next_interval(self.ingress.len());
                    }
                }
                ctx.set_timer(next, T_FLUSH);
            }
            T_RENEW_SCAN => {
                if self.role == Role::Active {
                    self.renew_scan(ctx);
                }
                ctx.set_timer(self.cfg.timing.renew_scan, T_RENEW_SCAN);
            }
            T_ELECT => self.election_window_closed(ctx),
            T_REGISTER => {
                self.maybe_register(ctx);
                ctx.set_timer(self.cfg.timing.register_retry, T_REGISTER);
            }
            T_XG_RETRY => {
                if self.role == Role::Active {
                    self.retry_xg_legs(ctx);
                }
                ctx.set_timer(self.cfg.timing.register_retry.mul_f64(2.0), T_XG_RETRY);
            }
            T_GAP_REPAIR => self.gap_repair_fired(ctx),
            T_POOL_RETRY => {
                if self.role == Role::Active {
                    self.retry_pool_appends(ctx);
                }
                ctx.set_timer(self.cfg.timing.register_retry.mul_f64(0.4), T_POOL_RETRY);
            }
            T_VIEW_REFRESH => {
                // Watch events are fire-and-forget; a periodic listing heals
                // any lost ones (stale routing, missed failure detection,
                // lost view updates).
                self.check_coord_lease(ctx);
                if let Some(epoch) = self.pending_lock_release {
                    self.coord.release_lock(ctx, crate::view::keys::lock(self.cfg.group), epoch);
                }
                self.coord.list(ctx, crate::view::keys::all_groups());
                ctx.set_timer(Duration::from_secs(1), T_VIEW_REFRESH);
            }
            T_CHECKPOINT => {
                if let Some(interval) = self.cfg.timing.checkpoint_interval {
                    if self.role == Role::Active {
                        self.start_checkpoint(ctx);
                    }
                    ctx.set_timer(interval, T_CHECKPOINT);
                }
            }
            T_DELTA => {
                if let Some(interval) = self.cfg.timing.delta_interval {
                    if self.role == Role::Active {
                        self.start_delta(ctx);
                    }
                    ctx.set_timer(interval, T_DELTA);
                }
            }
            T_UPGRADE_RETRY if self.role == Role::Upgrading => {
                // A pool reply went missing mid-switch; the sequence is
                // idempotent, so run it again from the fencing step.
                ctx.trace("failover.upgrade_retry", String::new);
                let epoch = self.epoch;
                self.begin_upgrade(ctx, epoch);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        // Coordination traffic first.
        let msg = match CoordClient::classify(msg) {
            Ok(incoming) => {
                self.last_coord_contact = ctx.now();
                match incoming {
                    Incoming::Resp(resp) => self.on_coord_resp(ctx, resp),
                    Incoming::Event(ev) => self.on_coord_event(ctx, ev),
                }
                return;
            }
            Err(m) => m,
        };
        // Pool responses.
        let msg = match msg.downcast::<PoolResp>() {
            Ok(resp) => {
                self.on_pool_resp(ctx, resp);
                return;
            }
            Err(m) => m,
        };
        // Intra-group protocol.
        let msg = match msg.downcast::<GroupMsg>() {
            Ok(gm) => {
                self.on_group_msg(ctx, from, gm);
                return;
            }
            Err(m) => m,
        };
        // Client requests.
        if let Ok(req) = msg.downcast::<MdsReq>() {
            self.on_client_req(ctx, from, req);
        }
    }
}
