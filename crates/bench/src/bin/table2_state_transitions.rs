//! Table II: server state transitions under the three error classes, with a
//! 1A3S replica group (MDS + three backup nodes).
//!
//! * Test A — "modifying the global view to make the active lose the lock":
//!   the deposed active's state is intact, so it re-registers with a
//!   matching sn and returns directly as a standby.
//! * Test B — "taking out / plugging back network wires": unplugged members
//!   expire, show as `-`, and rejoin as juniors that renew back to standby.
//! * Test C — "shutting down and restarting processes": a restarted process
//!   has empty state, registers as junior, and is renewed to standby.

use mams_bench::{
    crash_current_active_at, expire_current_active_at, print_table, reconstruct_states, save_json,
};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_sim::{Duration, Sim, SimConfig, SimTime};

fn run_test(
    label: &str,
    schedule: impl FnOnce(&mut Sim, &mams_cluster::deploy::Deployment),
) -> Vec<(f64, Vec<String>)> {
    let mut sim = Sim::new(SimConfig { seed: 0x7AB2, trace: true, ..SimConfig::default() });
    let mut d =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() });
    let metrics = Metrics::new(false);
    for c in 0..2 {
        d.add_client(&mut sim, Workload::create_mkdir(c), metrics.clone());
    }
    schedule(&mut sim, &d);
    sim.run_until(SimTime(200_000_000));
    let rows = reconstruct_states(&sim, &d.groups[0].members);
    println!("\n--- {label} ---");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(t, s)| {
            let mut row = vec![format!("{t:.1}s")];
            row.extend(s.iter().cloned());
            row
        })
        .collect();
    print_table(label, &["time", "MDS", "BN1", "BN2", "BN3"], &table);
    assert!(metrics.ok_count() > 0);
    rows
}

fn main() {
    let a = run_test("Test A: active loses the lock (x3)", |sim, d| {
        let coord = d.coord;
        for t in [20u64, 80, 140] {
            expire_current_active_at(sim, coord, SimTime(t * 1_000_000));
        }
    });
    let b = run_test("Test B: network wires out/in", |sim, d| {
        let m = d.groups[0].members.clone();
        let rest_of = |sim: &Sim, side: &[mams_sim::NodeId]| -> Vec<mams_sim::NodeId> {
            (0..sim.num_nodes() as mams_sim::NodeId).filter(|n| !side.contains(n)).collect()
        };
        // First: two backup nodes unplugged, then replugged.
        let side = vec![m[2], m[3]];
        let rest = rest_of(sim, &side);
        mams_cluster::faults::schedule_partition(
            sim,
            side,
            rest,
            SimTime(20_000_000),
            Some(Duration::from_secs(20)),
        );
        // Then: the active and one standby.
        let side = vec![m[0], m[1]];
        let rest = rest_of(sim, &side);
        mams_cluster::faults::schedule_partition(
            sim,
            side,
            rest,
            SimTime(90_000_000),
            Some(Duration::from_secs(20)),
        );
    });
    let c = run_test("Test C: processes shut down and restarted", |sim, d| {
        crash_current_active_at(sim, SimTime(20_000_000), Duration::from_secs(15));
        let m = d.groups[0].members.clone();
        // Later: two of the (by then) standbys go down and come back.
        sim.at(SimTime(90_000_000), {
            let m = m.clone();
            move |s| {
                s.crash(m[1]);
                s.crash(m[2]);
            }
        });
        sim.at(SimTime(110_000_000), move |s| {
            s.restart(m[1]);
            s.restart(m[2]);
        });
    });

    println!("\nShape checks (paper Table II):");
    println!("  * A: deposed active returns directly as S (state intact)");
    println!("  * B: unplugged members show '-' then rejoin as J and renew to S");
    println!("  * C: restarted processes register as J and renew to S");
    let to_json = |rows: &[(f64, Vec<String>)]| {
        rows.iter()
            .map(|(t, s)| {
                // The offline `json!` stand-in discards its arguments; keep
                // the fields visibly used in every build.
                let _ = (t, s);
                serde_json::json!({"t": t, "states": s})
            })
            .collect::<Vec<_>>()
    };
    let _ = (&a, &b, &c, &to_json);
    save_json(
        "table2_state_transitions",
        &serde_json::json!({ "test_a": to_json(&a), "test_b": to_json(&b), "test_c": to_json(&c) }),
    );
}
