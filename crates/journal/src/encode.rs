//! Binary journal encoding.
//!
//! The SSP stores journal segments as sequential shared files; this module
//! defines the record format. Two versions exist behind the header's
//! version field:
//!
//! * **v1** — fixed-width header (`sn`, `first_txid`, record count as
//!   u64/u32), u16-length-prefixed path strings, and a trailing FNV-1a-64
//!   checksum computed by a second scan over the body. Still decoded for
//!   compatibility with journals written by older actives.
//! * **v2** — the current write format. Header integers are LEB128
//!   varints; per-record txids stay implicit deltas from the varint
//!   `first_txid` base (txid of record *i* is `first_txid + i`). Paths are
//!   prefix-compressed against the previous path in the batch: journals
//!   have heavy directory locality (a client writing `/a/b/f0001..f9999`
//!   repeats the 40-byte prefix thousands of times), so each path is
//!   `⟨varint shared, varint suffix_len, suffix bytes⟩` where `shared` is
//!   the byte length of the common prefix with the previously encoded
//!   path. `Rename` chains: `src` deltas against the previous path and
//!   `dst` deltas against `src`. The checksum is folded in while encoding
//!   via [`HashingBuf`] — sealing a batch is one 8-byte append, not a
//!   second pass. After the records the body may carry an **ack section**
//!   (varint count + per-entry `⟨record idx, client, seq, flags⟩`
//!   varints) binding records to the client requests they answer — the
//!   replicated retry-outcome window rides here. The section is detected
//!   by "body bytes remain after the `n` records", so v2 bytes written
//!   before the extension decode unchanged with an empty ack list, and
//!   old decoders never looked past record `n` anyway: read-compat both
//!   ways.
//!
//! Both versions end with the same 8-byte big-endian FNV-1a-64 trailer over
//! everything before it, so a torn or corrupted write is detected on
//! replay before any field is trusted.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::hash::{fnv1a64, peek_varint, HashingBuf, Varint};
use crate::txn::{AckRecord, JournalBatch, Txn};

/// Format magic: "MAMSJRNL" truncated to 4 bytes.
pub const MAGIC: u32 = 0x4d4a_524e;
/// Legacy fixed-width format.
pub const VERSION_V1: u16 = 1;
/// Varint + prefix-compressed-path format (current write format).
pub const VERSION_V2: u16 = 2;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    BadMagic(u32),
    BadVersion(u16),
    Truncated,
    BadChecksum {
        stored: u64,
        computed: u64,
    },
    BadTag(u8),
    BadUtf8,
    BadVarint,
    /// A v2 path delta referenced more shared bytes than the previous path
    /// has, or split it off a UTF-8 character boundary.
    BadPrefix {
        shared: u64,
        prev_len: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BadMagic(m) => write!(f, "bad journal magic {m:#x}"),
            EncodeError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            EncodeError::Truncated => write!(f, "truncated journal batch"),
            EncodeError::BadChecksum { stored, computed } => {
                write!(f, "journal checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            EncodeError::BadTag(t) => write!(f, "unknown transaction tag {t}"),
            EncodeError::BadUtf8 => write!(f, "non-UTF-8 path in journal record"),
            EncodeError::BadVarint => write!(f, "malformed varint in journal batch"),
            EncodeError::BadPrefix { shared, prev_len } => {
                write!(f, "journal path delta shares {shared} bytes of a {prev_len}-byte prefix")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------------------
// v1 (legacy fixed-width)
// ---------------------------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, EncodeError> {
    if buf.remaining() < 2 {
        return Err(EncodeError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(EncodeError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| EncodeError::BadUtf8)
}

fn put_txn_v1(buf: &mut BytesMut, t: &Txn) {
    buf.put_u8(t.tag());
    match t {
        Txn::Create { path, replication } => {
            put_str(buf, path);
            buf.put_u8(*replication);
        }
        Txn::Mkdir { path } => put_str(buf, path),
        Txn::Delete { path, recursive } => {
            put_str(buf, path);
            buf.put_u8(*recursive as u8);
        }
        Txn::Rename { src, dst } => {
            put_str(buf, src);
            put_str(buf, dst);
        }
        Txn::AddBlock { path, block_id, len } => {
            put_str(buf, path);
            buf.put_u64(*block_id);
            buf.put_u32(*len);
        }
        Txn::CloseFile { path } => put_str(buf, path),
        Txn::SetPerm { path, perm } => {
            put_str(buf, path);
            buf.put_u16(*perm);
        }
    }
}

fn get_txn_v1(buf: &mut Bytes) -> Result<Txn, EncodeError> {
    if buf.remaining() < 1 {
        return Err(EncodeError::Truncated);
    }
    let tag = buf.get_u8();
    Ok(match tag {
        1 => {
            let path = get_str(buf)?;
            if buf.remaining() < 1 {
                return Err(EncodeError::Truncated);
            }
            Txn::Create { path, replication: buf.get_u8() }
        }
        2 => Txn::Mkdir { path: get_str(buf)? },
        3 => {
            let path = get_str(buf)?;
            if buf.remaining() < 1 {
                return Err(EncodeError::Truncated);
            }
            Txn::Delete { path, recursive: buf.get_u8() != 0 }
        }
        4 => Txn::Rename { src: get_str(buf)?, dst: get_str(buf)? },
        5 => {
            let path = get_str(buf)?;
            if buf.remaining() < 12 {
                return Err(EncodeError::Truncated);
            }
            Txn::AddBlock { path, block_id: buf.get_u64(), len: buf.get_u32() }
        }
        6 => Txn::CloseFile { path: get_str(buf)? },
        7 => {
            let path = get_str(buf)?;
            if buf.remaining() < 2 {
                return Err(EncodeError::Truncated);
            }
            Txn::SetPerm { path, perm: buf.get_u16() }
        }
        t => return Err(EncodeError::BadTag(t)),
    })
}

/// Encode a batch in the legacy v1 format. Kept for the bench baseline and
/// for tests exercising the read-compat path; new wire bytes use v2.
pub fn encode_batch_v1(batch: &JournalBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + batch.records.len() * 48);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION_V1);
    buf.put_u64(batch.sn);
    buf.put_u64(batch.first_txid);
    buf.put_u32(batch.records.len() as u32);
    for t in &batch.records {
        put_txn_v1(&mut buf, t);
    }
    let sum = fnv1a64(&buf);
    buf.put_u64(sum);
    buf.freeze()
}

fn decode_batch_v1(mut buf: Bytes) -> Result<JournalBatch, EncodeError> {
    if buf.remaining() < 8 + 8 + 4 {
        return Err(EncodeError::Truncated);
    }
    let sn = buf.get_u64();
    let first_txid = buf.get_u64();
    let n = buf.get_u32() as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(get_txn_v1(&mut buf)?);
    }
    // v1 predates the ack section; journals written by old actives carry
    // no replicated retry outcomes.
    Ok(JournalBatch { sn, first_txid, records, acks: Vec::new() })
}

// ---------------------------------------------------------------------------
// v2 (varints + prefix-compressed paths + incremental checksum)
// ---------------------------------------------------------------------------

/// Longest common prefix of `prev` and `next` in bytes, clamped back to a
/// character boundary so the suffix stays valid UTF-8 on its own.
fn shared_prefix(prev: &str, next: &str) -> usize {
    let a = prev.as_bytes();
    let b = next.as_bytes();
    let mut n = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    while n > 0 && !prev.is_char_boundary(n) {
        n -= 1;
    }
    n
}

/// Append one path as a delta against `prev`, then advance `prev` to it.
fn put_path_v2(buf: &mut HashingBuf, prev: &mut String, path: &str) {
    let shared = shared_prefix(prev, path);
    let suffix = &path.as_bytes()[shared..];
    buf.put_varint(shared as u64);
    buf.put_varint(suffix.len() as u64);
    buf.put_slice(suffix);
    prev.truncate(shared);
    prev.push_str(&path[shared..]);
}

fn put_txn_v2(buf: &mut HashingBuf, prev: &mut String, t: &Txn) {
    buf.put_u8(t.tag());
    match t {
        Txn::Create { path, replication } => {
            put_path_v2(buf, prev, path);
            buf.put_u8(*replication);
        }
        Txn::Mkdir { path } => put_path_v2(buf, prev, path),
        Txn::Delete { path, recursive } => {
            put_path_v2(buf, prev, path);
            buf.put_u8(*recursive as u8);
        }
        Txn::Rename { src, dst } => {
            put_path_v2(buf, prev, src);
            put_path_v2(buf, prev, dst);
        }
        Txn::AddBlock { path, block_id, len } => {
            put_path_v2(buf, prev, path);
            buf.put_varint(*block_id);
            buf.put_varint(*len as u64);
        }
        Txn::CloseFile { path } => put_path_v2(buf, prev, path),
        Txn::SetPerm { path, perm } => {
            put_path_v2(buf, prev, path);
            buf.put_u16(*perm);
        }
    }
}

/// A consuming view over the checksum-verified v2 body.
struct Reader<'a> {
    w: &'a [u8],
}

impl<'a> Reader<'a> {
    fn varint(&mut self) -> Result<u64, EncodeError> {
        match peek_varint(self.w) {
            Varint::Val(v, n) => {
                self.w = &self.w[n..];
                Ok(v)
            }
            Varint::Need => Err(EncodeError::Truncated),
            Varint::Bad => Err(EncodeError::BadVarint),
        }
    }

    fn u8(&mut self) -> Result<u8, EncodeError> {
        let (&b, rest) = self.w.split_first().ok_or(EncodeError::Truncated)?;
        self.w = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, EncodeError> {
        if self.w.len() < 2 {
            return Err(EncodeError::Truncated);
        }
        let v = u16::from_be_bytes(self.w[..2].try_into().expect("2 bytes"));
        self.w = &self.w[2..];
        Ok(v)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], EncodeError> {
        if self.w.len() < n {
            return Err(EncodeError::Truncated);
        }
        let (head, rest) = self.w.split_at(n);
        self.w = rest;
        Ok(head)
    }

    /// Rebuild a delta-encoded path into `prev` and return an owned copy.
    fn path(&mut self, prev: &mut String) -> Result<String, EncodeError> {
        let shared = self.varint()?;
        if shared as usize > prev.len() || !prev.is_char_boundary(shared as usize) {
            return Err(EncodeError::BadPrefix { shared, prev_len: prev.len() });
        }
        let suffix_len = self.varint()? as usize;
        let suffix =
            std::str::from_utf8(self.bytes(suffix_len)?).map_err(|_| EncodeError::BadUtf8)?;
        prev.truncate(shared as usize);
        prev.push_str(suffix);
        Ok(prev.clone())
    }

    fn txn(&mut self, prev: &mut String) -> Result<Txn, EncodeError> {
        let tag = self.u8()?;
        Ok(match tag {
            1 => {
                let path = self.path(prev)?;
                Txn::Create { path, replication: self.u8()? }
            }
            2 => Txn::Mkdir { path: self.path(prev)? },
            3 => {
                let path = self.path(prev)?;
                Txn::Delete { path, recursive: self.u8()? != 0 }
            }
            4 => {
                let src = self.path(prev)?;
                let dst = self.path(prev)?;
                Txn::Rename { src, dst }
            }
            5 => {
                let path = self.path(prev)?;
                let block_id = self.varint()?;
                let len = self.varint()?;
                Txn::AddBlock { path, block_id, len: len as u32 }
            }
            6 => Txn::CloseFile { path: self.path(prev)? },
            7 => {
                let path = self.path(prev)?;
                Txn::SetPerm { path, perm: self.u16()? }
            }
            t => return Err(EncodeError::BadTag(t)),
        })
    }
}

/// Encode a batch into its on-disk/wire bytes (current format, v2).
pub fn encode_batch(batch: &JournalBatch) -> Bytes {
    let mut buf = HashingBuf::with_capacity(32 + batch.records.len() * 24);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION_V2);
    buf.put_varint(batch.sn);
    buf.put_varint(batch.first_txid);
    buf.put_varint(batch.records.len() as u64);
    let mut prev = String::new();
    for t in &batch.records {
        put_txn_v2(&mut buf, &mut prev, t);
    }
    // Optional ack section. Elided when empty so ack-free batches stay
    // byte-identical to the pre-extension format.
    if !batch.acks.is_empty() {
        buf.put_varint(batch.acks.len() as u64);
        for a in &batch.acks {
            buf.put_varint(a.record as u64);
            buf.put_varint(a.client as u64);
            buf.put_varint(a.seq);
            buf.put_u8(a.spec as u8);
        }
    }
    buf.seal()
}

fn decode_batch_v2(body: &[u8]) -> Result<JournalBatch, EncodeError> {
    let mut r = Reader { w: body };
    let sn = r.varint()?;
    let first_txid = r.varint()?;
    let n = r.varint()? as usize;
    let mut records = Vec::with_capacity(n.min(body.len()));
    let mut prev = String::new();
    for _ in 0..n {
        records.push(r.txn(&mut prev)?);
    }
    // Body bytes past the records host the ack section (absent in batches
    // written before the extension, or with nothing owed to clients).
    let mut acks = Vec::new();
    if !r.w.is_empty() {
        let count = r.varint()? as usize;
        acks.reserve(count.min(body.len()));
        for _ in 0..count {
            let record = r.varint()?;
            let client = r.varint()?;
            let seq = r.varint()?;
            let spec = r.u8()? != 0;
            if record >= n as u64 || record > u32::MAX as u64 || client > u32::MAX as u64 {
                return Err(EncodeError::BadVarint);
            }
            acks.push(AckRecord { record: record as u32, client: client as u32, seq, spec });
        }
        if !r.w.is_empty() {
            return Err(EncodeError::Truncated);
        }
    }
    Ok(JournalBatch { sn, first_txid, records, acks })
}

/// Decode a batch of either version, verifying magic, version and checksum.
pub fn decode_batch(data: Bytes) -> Result<JournalBatch, EncodeError> {
    if data.remaining() < 8 {
        return Err(EncodeError::Truncated);
    }
    let body_len = data.remaining() - 8;
    let stored = u64::from_be_bytes(data[body_len..].try_into().expect("8-byte trailer"));
    let computed = fnv1a64(&data[..body_len]);
    if stored != computed {
        return Err(EncodeError::BadChecksum { stored, computed });
    }
    if body_len < 4 + 2 {
        return Err(EncodeError::Truncated);
    }
    let magic = u32::from_be_bytes(data[..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(EncodeError::BadMagic(magic));
    }
    let version = u16::from_be_bytes(data[4..6].try_into().expect("2 bytes"));
    match version {
        VERSION_V1 => decode_batch_v1(data.slice(6..body_len)),
        VERSION_V2 => decode_batch_v2(&data[6..body_len]),
        v => Err(EncodeError::BadVersion(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> JournalBatch {
        JournalBatch::new(
            3,
            40,
            vec![
                Txn::Create { path: "/dir/file-α".into(), replication: 3 },
                Txn::Mkdir { path: "/dir/sub".into() },
                Txn::Delete { path: "/old".into(), recursive: true },
                Txn::Rename { src: "/a".into(), dst: "/b".into() },
                Txn::AddBlock { path: "/dir/file-α".into(), block_id: 99, len: 4096 },
                Txn::CloseFile { path: "/dir/file-α".into() },
                Txn::SetPerm { path: "/dir".into(), perm: 0o750 },
            ],
        )
    }

    #[test]
    fn round_trip_all_variants() {
        let b = sample_batch();
        let dec = decode_batch(encode_batch(&b)).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn ack_section_round_trips() {
        let mut b = sample_batch();
        b.acks = vec![
            AckRecord { record: 0, client: 17, seq: 5, spec: false },
            AckRecord { record: 3, client: 2, seq: u64::MAX - 7, spec: true },
            AckRecord { record: 6, client: u32::MAX, seq: 0, spec: false },
        ];
        let enc = encode_batch(&b);
        let dec = decode_batch(enc).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn ack_free_batches_stay_byte_identical_to_pre_extension_wire() {
        // The section is elided when empty, so old v2 bytes (which are
        // exactly this encoding) decode to an empty ack list: read-compat.
        let b = sample_batch();
        let enc = encode_batch(&b);
        let dec = decode_batch(enc.clone()).unwrap();
        assert!(dec.acks.is_empty());
        let mut with_acks = b.clone();
        with_acks.acks = vec![AckRecord { record: 1, client: 9, seq: 4, spec: false }];
        assert!(encode_batch(&with_acks).len() > enc.len());
    }

    #[test]
    fn ack_referencing_missing_record_rejected() {
        let mut b = sample_batch();
        let n = b.records.len() as u32;
        b.acks = vec![AckRecord { record: n, client: 1, seq: 1, spec: false }];
        // Bypass the constructor's debug assertion: encode the raw struct.
        let enc = encode_batch(&b);
        assert!(decode_batch(enc).is_err(), "out-of-range ack index must not decode");
    }

    #[test]
    fn v1_drops_acks_but_still_decodes() {
        let mut b = sample_batch();
        b.acks = vec![AckRecord { record: 0, client: 3, seq: 9, spec: false }];
        let dec = decode_batch(encode_batch_v1(&b)).unwrap();
        assert_eq!(dec.records, b.records);
        assert!(dec.acks.is_empty(), "legacy format cannot carry the window");
    }

    #[test]
    fn v1_round_trip_still_decodes() {
        let b = sample_batch();
        let enc = encode_batch_v1(&b);
        assert_eq!(decode_batch(enc).unwrap(), b);
    }

    #[test]
    fn v1_and_v2_decode_agree() {
        let b = sample_batch();
        assert_eq!(
            decode_batch(encode_batch_v1(&b)).unwrap(),
            decode_batch(encode_batch(&b)).unwrap()
        );
    }

    #[test]
    fn v2_prefix_compression_shrinks_local_workloads() {
        // A directory-local run of creates: v2's shared-prefix deltas
        // should beat v1's full path strings comfortably.
        let records: Vec<Txn> = (0..256)
            .map(|i| Txn::Create {
                path: format!("/warehouse/db7/events/part-{i:05}"),
                replication: 3,
            })
            .collect();
        let b = JournalBatch::new(9, 1000, records);
        let v1 = encode_batch_v1(&b);
        let v2 = encode_batch(&b);
        assert_eq!(decode_batch(v2.clone()).unwrap(), b);
        assert!(v2.len() * 2 < v1.len(), "v2 ({}) should be <half of v1 ({})", v2.len(), v1.len());
    }

    #[test]
    fn v2_handles_multibyte_boundary_prefixes() {
        // Paths diverging inside a multi-byte character: the shared prefix
        // must clamp to a char boundary, not split "α"/"β" mid-sequence.
        let b = JournalBatch::new(
            1,
            1,
            vec![
                Txn::Mkdir { path: "/αβ".into() },
                Txn::Mkdir { path: "/αγ".into() },
                Txn::Mkdir { path: "/α".into() },
                Txn::Mkdir { path: "/αβγδ".into() },
            ],
        );
        assert_eq!(decode_batch(encode_batch(&b)).unwrap(), b);
    }

    #[test]
    fn single_record_batch_round_trips() {
        let b = JournalBatch::new(1, u64::MAX - 1, vec![Txn::Mkdir { path: "/x".into() }]);
        assert_eq!(decode_batch(encode_batch(&b)).unwrap(), b);
        assert_eq!(decode_batch(encode_batch_v1(&b)).unwrap(), b);
    }

    #[test]
    fn corruption_detected() {
        for enc in [encode_batch(&sample_batch()), encode_batch_v1(&sample_batch())] {
            for i in [0usize, 6, enc.len() / 2, enc.len() - 1] {
                let mut bad = enc.to_vec();
                bad[i] ^= 0xff;
                let err = decode_batch(Bytes::from(bad)).unwrap_err();
                assert!(
                    matches!(
                        err,
                        EncodeError::BadChecksum { .. }
                            | EncodeError::BadMagic(_)
                            | EncodeError::BadVersion(_)
                    ),
                    "unexpected error at byte {i}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn truncation_detected() {
        for enc in [encode_batch(&sample_batch()), encode_batch_v1(&sample_batch())] {
            for cut in [0usize, 4, 7, 20, enc.len() - 9] {
                let err = decode_batch(enc.slice(..cut)).unwrap_err();
                assert!(
                    matches!(err, EncodeError::Truncated | EncodeError::BadChecksum { .. }),
                    "cut={cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = EncodeError::BadChecksum { stored: 1, computed: 2 };
        assert!(format!("{e}").contains("checksum"));
        assert!(format!("{}", EncodeError::BadTag(9)).contains("tag 9"));
        assert!(format!("{}", EncodeError::BadVarint).contains("varint"));
        assert!(format!("{}", EncodeError::BadPrefix { shared: 5, prev_len: 2 }).contains("5"));
    }
}
