//! Absolute slash-separated path handling.
//!
//! All namespace APIs take normalized absolute paths: `/`, `/a`, `/a/b`.
//! No `.`/`..` components, no trailing slash (except the root itself), no
//! empty components.

/// Path validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError(pub String);

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid path: {}", self.0)
    }
}

impl std::error::Error for PathError {}

/// Check that `p` is a normalized absolute path.
pub fn validate(p: &str) -> Result<(), PathError> {
    if p == "/" {
        return Ok(());
    }
    if !p.starts_with('/') {
        return Err(PathError(format!("{p:?} is not absolute")));
    }
    if p.ends_with('/') {
        return Err(PathError(format!("{p:?} has a trailing slash")));
    }
    for comp in p[1..].split('/') {
        if comp.is_empty() {
            return Err(PathError(format!("{p:?} has an empty component")));
        }
        if comp == "." || comp == ".." {
            return Err(PathError(format!("{p:?} contains {comp:?}")));
        }
    }
    Ok(())
}

/// Parent directory of a validated path. `None` for the root.
pub fn parent(p: &str) -> Option<&str> {
    if p == "/" {
        return None;
    }
    match p.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&p[..i]),
        None => None,
    }
}

/// Final component of a validated path. The root has no basename.
pub fn basename(p: &str) -> Option<&str> {
    if p == "/" {
        return None;
    }
    p.rfind('/').map(|i| &p[i + 1..])
}

/// Split a validated non-root path into `(parent_dir, basename)` in one
/// scan (`"/a/b/c"` → `("/a/b", "c")`, `"/a"` → `("/", "a")`). `None` for
/// the root. One `rfind` instead of separate [`parent`] + [`basename`]
/// calls on the hot resolution path.
pub fn split(p: &str) -> Option<(&str, &str)> {
    if p == "/" {
        return None;
    }
    match p.rfind('/') {
        Some(0) => Some(("/", &p[1..])),
        Some(i) => Some((&p[..i], &p[i + 1..])),
        None => None,
    }
}

/// Components of a validated path (empty for the root).
pub fn components(p: &str) -> impl Iterator<Item = &str> {
    p.strip_prefix('/').unwrap_or(p).split('/').filter(|c| !c.is_empty())
}

/// Every ancestor prefix of a validated non-root path, shallowest first,
/// ending with the path itself: `"/a/b/c"` → `"/a"`, `"/a/b"`, `"/a/b/c"`.
/// Borrowed slices of the input — no per-level `String` building (this is
/// what `mkdir_p` walks).
pub fn prefixes(p: &str) -> impl Iterator<Item = &str> {
    let bytes = p.as_bytes();
    (2..=p.len()).filter(move |&i| i == p.len() || bytes[i] == b'/').map(move |i| &p[..i])
}

/// Join a validated directory path with a single component.
pub fn join(dir: &str, name: &str) -> String {
    debug_assert!(!name.contains('/'), "join with multi-component name");
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// Whether `descendant` is strictly inside `ancestor` (path-wise).
pub fn is_strict_descendant(descendant: &str, ancestor: &str) -> bool {
    if ancestor == "/" {
        return descendant != "/";
    }
    descendant.len() > ancestor.len()
        && descendant.starts_with(ancestor)
        && descendant.as_bytes()[ancestor.len()] == b'/'
}

/// Depth of a path (root = 0).
pub fn depth(p: &str) -> usize {
    components(p).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_normal_paths() {
        for p in ["/", "/a", "/a/b", "/long/path/with/many/components", "/with-dash_и"] {
            assert!(validate(p).is_ok(), "{p}");
        }
    }

    #[test]
    fn validation_rejects_malformed() {
        for p in ["", "a", "a/b", "/a/", "//", "/a//b", "/.", "/a/..", "/../x"] {
            assert!(validate(p).is_err(), "{p:?} should be invalid");
        }
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent("/"), None);
        assert_eq!(parent("/a"), Some("/"));
        assert_eq!(parent("/a/b/c"), Some("/a/b"));
        assert_eq!(basename("/"), None);
        assert_eq!(basename("/a"), Some("a"));
        assert_eq!(basename("/a/b/c"), Some("c"));
    }

    #[test]
    fn join_inverts_split() {
        for p in ["/a", "/a/b", "/x/y/z"] {
            let d = parent(p).unwrap();
            let b = basename(p).unwrap();
            assert_eq!(join(d, b), p);
        }
    }

    #[test]
    fn split_matches_parent_and_basename() {
        assert_eq!(split("/"), None);
        for p in ["/a", "/a/b", "/x/y/z", "/with-dash_и/f"] {
            assert_eq!(split(p), Some((parent(p).unwrap(), basename(p).unwrap())));
        }
    }

    #[test]
    fn prefixes_walk_shallowest_first() {
        assert_eq!(prefixes("/a").collect::<Vec<_>>(), vec!["/a"]);
        assert_eq!(prefixes("/a/b/c").collect::<Vec<_>>(), vec!["/a", "/a/b", "/a/b/c"]);
    }

    #[test]
    fn components_and_depth() {
        assert_eq!(components("/").count(), 0);
        assert_eq!(components("/a/b").collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(depth("/"), 0);
        assert_eq!(depth("/a/b/c"), 3);
    }

    #[test]
    fn descendant_checks() {
        assert!(is_strict_descendant("/a/b", "/a"));
        assert!(is_strict_descendant("/a", "/"));
        assert!(!is_strict_descendant("/a", "/a"));
        assert!(!is_strict_descendant("/ab", "/a"), "prefix but not a path child");
        assert!(!is_strict_descendant("/", "/"));
        assert!(!is_strict_descendant("/a", "/a/b"));
    }
}
