//! Criterion micro-benchmarks for the hot paths under the experiment
//! harnesses: journal encode/decode/replay, namespace operations, image
//! checkpointing, Paxos rounds, and a full simulated failover.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mams_journal::{decode_batch, encode_batch, JournalBatch, ReplayCursor, Txn};
use mams_namespace::{decode_image, encode_image, NamespaceTree, Partitioner};
use mams_paxos::{Acceptor, Ballot, Proposer, ProposerEvent};

fn sample_batch(records: usize) -> JournalBatch {
    let txns = (0..records)
        .map(|i| Txn::Create { path: format!("/bench/dir{}/file{}", i % 8, i), replication: 3 })
        .collect();
    JournalBatch::new(1, 1, txns)
}

fn bench_journal(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal");
    let batch = sample_batch(64);
    g.throughput(Throughput::Elements(64));
    g.bench_function("encode_64", |b| b.iter(|| encode_batch(&batch)));
    let encoded = encode_batch(&batch);
    g.bench_function("decode_64", |b| b.iter(|| decode_batch(encoded.clone()).unwrap()));
    g.bench_function("replay_64", |b| {
        b.iter_batched(
            || (ReplayCursor::new(), NamespaceTree::new()),
            |(mut cur, mut ns)| {
                let mut sink = |_: u64, t: &Txn| {
                    let _ = ns.apply(t);
                };
                cur.offer(&batch, &mut sink)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_namespace(c: &mut Criterion) {
    let mut g = c.benchmark_group("namespace");
    g.bench_function("create", |b| {
        b.iter_batched(
            || {
                let mut t = NamespaceTree::new();
                t.mkdir("/d").unwrap();
                (t, 0u64)
            },
            |(mut t, mut i)| {
                t.create(&format!("/d/f{i}"), 3).unwrap();
                i += 1;
                (t, i)
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree = NamespaceTree::new();
    tree.mkdir("/d").unwrap();
    for i in 0..10_000 {
        tree.create(&format!("/d/f{i}"), 3).unwrap();
    }
    g.bench_function("getfileinfo_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            tree.getfileinfo(&format!("/d/f{i}")).unwrap()
        })
    });
    g.bench_function("fingerprint_10k", |b| b.iter(|| tree.fingerprint()));
    g.finish();
}

fn bench_image(c: &mut Criterion) {
    let mut g = c.benchmark_group("image");
    let mut tree = NamespaceTree::new();
    tree.mkdir("/d").unwrap();
    for i in 0..10_000 {
        tree.create(&format!("/d/f{i}"), 3).unwrap();
    }
    g.bench_function("encode_10k_files", |b| b.iter(|| encode_image(&tree, 1)));
    let img = encode_image(&tree, 1);
    g.bench_function("decode_10k_files", |b| b.iter(|| decode_image(img.data.clone()).unwrap()));
    g.finish();
}

fn bench_paxos(c: &mut Criterion) {
    c.bench_function("paxos/single_decree_round", |b| {
        b.iter_batched(
            || vec![Acceptor::new(); 5],
            |mut acceptors| {
                let ballot = Ballot::new(1, 0);
                let mut p = Proposer::new(0, 5, ballot, bytes::Bytes::from_static(b"value"));
                let mut accepts = None;
                for (i, a) in acceptors.iter_mut().enumerate() {
                    let r = a.on_prepare(ballot);
                    if let ProposerEvent::SendAccepts { ballot, value } =
                        p.on_prepare_reply(i as u32, r)
                    {
                        accepts = Some((ballot, value));
                        break;
                    }
                }
                let (ballot, value) = accepts.expect("quorum");
                for (i, a) in acceptors.iter_mut().enumerate() {
                    let r = a.on_accept(ballot, value.clone());
                    if let ProposerEvent::Chosen { .. } = p.on_accept_reply(i as u32, r) {
                        break;
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_partitioner(c: &mut Criterion) {
    let p = Partitioner::new(3);
    let mut i = 0u64;
    c.bench_function("partitioner/owner", |b| {
        b.iter(|| {
            i += 1;
            p.owner(&format!("/bench/dir{}/file{}", i % 100, i))
        })
    });
}

fn bench_failover_sim(c: &mut Criterion) {
    use mams_cluster::deploy::{build, DeploySpec};
    use mams_cluster::metrics::Metrics;
    use mams_cluster::workload::Workload;
    use mams_sim::{Sim, SimConfig, SimTime};

    c.bench_function("sim/full_failover_30s_virtual", |b| {
        b.iter(|| {
            let mut sim = Sim::new(SimConfig { seed: 1, trace: false, ..SimConfig::default() });
            let mut d = build(
                &mut sim,
                DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() },
            );
            let m = Metrics::new(false);
            d.add_client(&mut sim, Workload::create_only(0), m.clone());
            let victim = d.initial_active(0);
            sim.at(SimTime(10_000_000), move |s| s.crash(victim));
            sim.run_until(SimTime(30_000_000));
            m.ok_count()
        })
    });
}

criterion_group!(
    benches,
    bench_journal,
    bench_namespace,
    bench_image,
    bench_paxos,
    bench_partitioner,
    bench_failover_sim
);
criterion_main!(benches);
