//! Job tracker and task workers.
//!
//! Execution model (wordcount-shaped): each map task computes for
//! `map_compute`, then writes one intermediate file per reduce partition
//! through the metadata service; each reduce task stats every map's
//! intermediate file for its partition, computes, and writes one output
//! file. Reduces start only after every map has finished — the dependency
//! that makes Boom-FS's reduce curve "suspend" in the paper's Figure 9.

use std::collections::VecDeque;
use std::sync::Arc;

use mams_core::FsOp;
use mams_namespace::Partitioner;
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim};

use crate::fsio::{FsIo, IoEvent};
use crate::stats::JobStats;

/// Worker-local timer tokens (FsIo owns tokens ≥ 2^32).
const T_MAP_COMPUTE: u64 = 1;
const T_REDUCE_COMPUTE: u64 = 2;

/// Job shape and costs.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    pub maps: usize,
    pub reduces: usize,
    pub workers: usize,
    pub map_compute: Duration,
    pub reduce_compute: Duration,
}

impl Default for JobSpec {
    fn default() -> Self {
        // ~5 GB input at 128 MB splits → 40 maps, 10 reduces, 8 workers.
        JobSpec {
            maps: 40,
            reduces: 10,
            workers: 8,
            map_compute: Duration::from_secs(10),
            reduce_compute: Duration::from_secs(8),
        }
    }
}

/// Tracker ↔ worker messages.
#[derive(Debug, Clone)]
pub enum MrMsg {
    AssignMap { id: usize },
    AssignReduce { id: usize },
    MapDone { id: usize },
    ReduceDone { id: usize },
}

/// Paths used by the job.
fn intermediate(map: usize, reduce: usize) -> String {
    format!("/job/tmp/m{map}-r{reduce}")
}

fn output(reduce: usize) -> String {
    format!("/job/out/part-{reduce}")
}

/// The job tracker: runs setup, assigns tasks, records completions.
pub struct JobTracker {
    spec: JobSpec,
    workers: Vec<NodeId>,
    io: FsIo,
    stats: Arc<JobStats>,
    setup_pending: usize,
    map_queue: VecDeque<usize>,
    reduce_queue: VecDeque<usize>,
    maps_done: usize,
    reduces_done: usize,
    started_reduce: bool,
}

impl JobTracker {
    pub fn new(
        coord: NodeId,
        partitioner: Partitioner,
        spec: JobSpec,
        workers: Vec<NodeId>,
        stats: Arc<JobStats>,
    ) -> Self {
        JobTracker {
            spec,
            workers,
            io: FsIo::new(coord, partitioner),
            stats,
            setup_pending: 0,
            map_queue: (0..spec.maps).collect(),
            reduce_queue: (0..spec.reduces).collect(),
            maps_done: 0,
            reduces_done: 0,
            started_reduce: false,
        }
    }

    fn assign_initial_maps(&mut self, ctx: &mut Ctx<'_>) {
        let workers = self.workers.clone();
        for w in workers {
            if let Some(id) = self.map_queue.pop_front() {
                ctx.send(w, MrMsg::AssignMap { id });
            }
        }
    }

    fn begin_reduce_phase(&mut self, ctx: &mut Ctx<'_>) {
        self.started_reduce = true;
        ctx.trace("mr.reduce_phase", String::new);
        let workers = self.workers.clone();
        for w in workers {
            if let Some(id) = self.reduce_queue.pop_front() {
                ctx.send(w, MrMsg::AssignReduce { id });
            }
        }
    }
}

impl Node for JobTracker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.io.start(ctx);
        for dir in ["/job", "/job/tmp", "/job/out"] {
            self.io.submit(ctx, FsOp::Mkdir { path: dir.into() });
            self.setup_pending += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.io.on_timer(ctx, token);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match self.io.on_message(ctx, msg) {
            IoEvent::Completed { .. } => {
                if self.setup_pending > 0 {
                    self.setup_pending -= 1;
                    if self.setup_pending == 0 {
                        ctx.trace("mr.job_start", String::new);
                        self.stats.job_started(ctx.now().micros());
                        self.assign_initial_maps(ctx);
                    }
                }
                return;
            }
            IoEvent::Consumed => return,
            IoEvent::NotMine(m) => m,
        };
        if let Ok(mr) = msg.downcast::<MrMsg>() {
            match mr {
                MrMsg::MapDone { id } => {
                    self.maps_done += 1;
                    self.stats.map_done(ctx.now().micros());
                    ctx.trace("mr.map_done", || format!("map {id} ({})", self.maps_done));
                    if let Some(next) = self.map_queue.pop_front() {
                        ctx.send(from, MrMsg::AssignMap { id: next });
                    } else if self.maps_done == self.spec.maps && !self.started_reduce {
                        self.begin_reduce_phase(ctx);
                    }
                }
                MrMsg::ReduceDone { id } => {
                    self.reduces_done += 1;
                    self.stats.reduce_done(ctx.now().micros());
                    ctx.trace("mr.reduce_done", || format!("reduce {id} ({})", self.reduces_done));
                    if let Some(next) = self.reduce_queue.pop_front() {
                        ctx.send(from, MrMsg::AssignReduce { id: next });
                    } else if self.reduces_done == self.spec.reduces {
                        self.stats.job_done(ctx.now().micros());
                        ctx.trace("mr.job_done", String::new);
                    }
                }
                MrMsg::AssignMap { .. } | MrMsg::AssignReduce { .. } => {}
            }
        }
    }
}

#[derive(Debug)]
enum TaskState {
    Idle,
    MapComputing { id: usize },
    MapWriting { id: usize, remaining: usize },
    ReduceReading { id: usize, remaining: usize },
    ReduceComputing { id: usize },
    ReduceWriting { id: usize },
}

/// A task worker (one task at a time).
pub struct TaskWorker {
    spec: JobSpec,
    tracker: NodeId,
    io: FsIo,
    state: TaskState,
}

impl TaskWorker {
    pub fn new(coord: NodeId, partitioner: Partitioner, spec: JobSpec, tracker: NodeId) -> Self {
        TaskWorker { spec, tracker, io: FsIo::new(coord, partitioner), state: TaskState::Idle }
    }

    fn start_map_write(&mut self, ctx: &mut Ctx<'_>, id: usize) {
        for r in 0..self.spec.reduces {
            self.io.submit(ctx, FsOp::Create { path: intermediate(id, r), replication: 3 });
        }
        self.state = TaskState::MapWriting { id, remaining: self.spec.reduces };
    }

    fn start_reduce_read(&mut self, ctx: &mut Ctx<'_>, id: usize) {
        for m in 0..self.spec.maps {
            self.io.submit(ctx, FsOp::GetFileInfo { path: intermediate(m, id) });
        }
        self.state = TaskState::ReduceReading { id, remaining: self.spec.maps };
    }

    fn op_completed(&mut self, ctx: &mut Ctx<'_>) {
        match &mut self.state {
            TaskState::MapWriting { id, remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    let id = *id;
                    self.state = TaskState::Idle;
                    ctx.send(self.tracker, MrMsg::MapDone { id });
                }
            }
            TaskState::ReduceReading { id, remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    let id = *id;
                    self.state = TaskState::ReduceComputing { id };
                    ctx.set_timer(self.spec.reduce_compute, T_REDUCE_COMPUTE);
                }
            }
            TaskState::ReduceWriting { id } => {
                let id = *id;
                self.state = TaskState::Idle;
                ctx.send(self.tracker, MrMsg::ReduceDone { id });
            }
            _ => {}
        }
    }
}

impl Node for TaskWorker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.io.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.io.on_timer(ctx, token) {
            return;
        }
        match (token, &self.state) {
            (T_MAP_COMPUTE, TaskState::MapComputing { id }) => {
                let id = *id;
                self.start_map_write(ctx, id);
            }
            (T_REDUCE_COMPUTE, TaskState::ReduceComputing { id }) => {
                let id = *id;
                self.io.submit(ctx, FsOp::Create { path: output(id), replication: 3 });
                self.state = TaskState::ReduceWriting { id };
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        let msg = match self.io.on_message(ctx, msg) {
            IoEvent::Completed { .. } => {
                self.op_completed(ctx);
                return;
            }
            IoEvent::Consumed => return,
            IoEvent::NotMine(m) => m,
        };
        if let Ok(mr) = msg.downcast::<MrMsg>() {
            match mr {
                MrMsg::AssignMap { id } => {
                    self.state = TaskState::MapComputing { id };
                    ctx.set_timer(self.spec.map_compute, T_MAP_COMPUTE);
                }
                MrMsg::AssignReduce { id } => {
                    self.start_reduce_read(ctx, id);
                }
                _ => {}
            }
        }
    }
}

/// Add a tracker and its workers to the simulation. Returns
/// `(tracker, workers)`.
pub fn build_job(
    sim: &mut Sim,
    coord: NodeId,
    partitioner: Partitioner,
    spec: JobSpec,
    stats: Arc<JobStats>,
) -> (NodeId, Vec<NodeId>) {
    let base = sim.num_nodes() as NodeId;
    let tracker_id = base;
    let worker_ids: Vec<NodeId> = (0..spec.workers as NodeId).map(|i| base + 1 + i).collect();
    let tracker = JobTracker::new(coord, partitioner, spec, worker_ids.clone(), stats);
    let got = sim.add_node("mr-tracker", Box::new(tracker));
    assert_eq!(got, tracker_id);
    for (i, &planned) in worker_ids.iter().enumerate() {
        let w = TaskWorker::new(coord, partitioner, spec, tracker_id);
        let got = sim.add_node(format!("mr-worker-{i}"), Box::new(w));
        assert_eq!(got, planned);
    }
    (tracker_id, worker_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::deploy::{build, DeploySpec};
    use mams_sim::{Sim, SimConfig, SimTime};

    fn small_spec() -> JobSpec {
        JobSpec {
            maps: 8,
            reduces: 4,
            workers: 4,
            map_compute: Duration::from_secs(2),
            reduce_compute: Duration::from_secs(1),
        }
    }

    #[test]
    fn job_completes_on_a_healthy_cluster() {
        let mut sim = Sim::new(SimConfig::default());
        let d = build(&mut sim, DeploySpec { standbys_per_group: 2, ..DeploySpec::default() });
        let stats = JobStats::new();
        build_job(&mut sim, d.coord, d.partitioner, small_spec(), stats.clone());
        sim.run_for(Duration::from_secs(60));
        assert_eq!(stats.maps_done().len(), 8);
        assert_eq!(stats.reduces_done().len(), 4);
        assert!(stats.job_done_at().is_some());
        // Reduces strictly after the last map.
        let last_map = *stats.maps_done().last().unwrap();
        assert!(stats.reduces_done().iter().all(|&r| r > last_map));
    }

    #[test]
    fn mid_job_failover_delays_but_does_not_kill_the_job() {
        let mut sim = Sim::new(SimConfig::default());
        let d = build(&mut sim, DeploySpec { standbys_per_group: 3, ..DeploySpec::default() });
        let active = d.initial_active(0);
        let stats = JobStats::new();
        build_job(&mut sim, d.coord, d.partitioner, small_spec(), stats.clone());
        sim.at(SimTime(3_000_000), move |s| s.crash(active));
        sim.run_for(Duration::from_secs(120));
        assert_eq!(stats.maps_done().len(), 8, "all maps finish despite failover");
        assert_eq!(stats.reduces_done().len(), 4);
        assert!(stats.job_done_at().is_some());
    }
}
