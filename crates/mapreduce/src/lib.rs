//! # mams-mapreduce — a minimal MapReduce engine over the simulated FS
//!
//! Reproduces the paper's Figure 9 experiment: a wordcount-style job whose
//! tasks create and stat files through the metadata service, with a
//! metadata-server failure injected mid-job. "The reduce jobs needed the
//! former maps to write intermediate results into the file system before
//! continuing subsequent operations" — so a slow metadata failover shows up
//! directly as delayed map completions and stalled reduces.
//!
//! Components:
//! * [`FsIo`] — an embedded file-system port (routing, retry, duplicate
//!   reconciliation) usable from any node, mirroring `mams-cluster`'s
//!   standalone client,
//! * [`JobTracker`] / [`TaskWorker`] — scheduling and execution,
//! * [`JobStats`] — per-task completion timestamps for the CDF plots.

pub mod engine;
pub mod fsio;
pub mod stats;

pub use engine::{build_job, JobSpec, JobTracker, MrMsg, TaskWorker};
pub use fsio::{FsIo, IoEvent};
pub use stats::JobStats;
