//! Active-role behaviour: serving client operations, journal batching and
//! synchronization, distributed transactions, checkpoints.

use mams_journal::{JournalBatch, ReplayCursor, SharedBatch, Sn, Txn};
use mams_sim::{Ctx, NodeId};
use mams_storage::pool::PoolError;
use mams_storage::proto::{PoolReq, PoolResp};

use crate::proto::{FsOp, GroupMsg, MdsReq, MdsResp, OpOutput};
use crate::server::{Inflight, MdsServer, PendingOp, PoolCtx, ReplyTo, Role, XgOutstanding};

impl MdsServer {
    // ------------------------------------------------------------- clients

    pub(crate) fn on_client_req(&mut self, ctx: &mut Ctx<'_>, from: NodeId, req: MdsReq) {
        // Block reports go to every member regardless of role — that is
        // what keeps standbys hot on file locations.
        if let MdsReq::BlockReport { server, blocks } = &req {
            self.blocks.report(*server, blocks);
            return;
        }
        // Lazy lease enforcement: a just-thawed zombie can receive queued
        // client requests before its first timer tick — it must notice its
        // lapsed session *now*, not a second from now.
        if matches!(self.role, Role::Active | Role::Upgrading) {
            self.check_coord_lease(ctx);
        }
        match self.role {
            Role::Active => {}
            Role::Upgrading => {
                // Step 3 of the switch: accept and buffer, commit later.
                self.buffered.push((from, req));
                return;
            }
            _ => {
                match req {
                    MdsReq::Op { seq, .. } | MdsReq::OpSpec { seq, .. } => {
                        ctx.send(from, MdsResp::NotActive { seq });
                    }
                    _ => {}
                }
                return;
            }
        }
        match req {
            MdsReq::Checkpoint => self.start_checkpoint(ctx),
            MdsReq::Op { op, seq, acked } => {
                // The piggybacked receipt watermark retires exactly the
                // responses this client can never retry.
                self.retry_cache.note_acked(from, acked);
                // Admission control: the op executes at the next drain,
                // modeling server CPU capacity.
                self.ingress.push(from, op, seq, None);
            }
            MdsReq::OpSpec { op, seq, min_token, acked } => {
                self.retry_cache.note_acked(from, acked);
                self.ingress.push(from, op, seq, Some(min_token));
            }
            MdsReq::BlockReport { .. } => unreachable!("handled above"),
        }
    }

    pub(crate) fn serve_op(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        op: FsOp,
        seq: u64,
        spec: Option<u64>,
    ) {
        if let Some(min_token) = spec {
            return self.serve_spec_op(ctx, from, op, seq, min_token);
        }
        // Duplicate handling: a retried request (same seq) is answered from
        // the cache, never re-executed.
        if let Some(cached) = self.retry_cache.check(from, seq) {
            ctx.send(from, cached);
            return;
        }
        if !op.is_mutation() {
            let result = self.exec_read(&op);
            let resp = std::sync::Arc::new(MdsResp::Reply { seq, result });
            // Read barrier: the image may include mutations that are not
            // yet durable in the SSP. Releasing the reply now would let
            // the client observe state that can still be discarded — an
            // isolated active throws its speculative suffix away when it
            // degrades, so such a dirty read contradicts the successor's
            // timeline. Hold the reply until everything the read could
            // have observed has committed; on degradation the reply is
            // dropped instead and the client retries against the new
            // active. The read still linearizes at its execution point.
            self.send_or_defer_observation(ctx, from, seq, resp);
            return;
        }
        if self.cfg.timing.fault_double_ack {
            if let FsOp::Delete { .. } = &op {
                // Injected defect (chaos teeth test): acknowledge the
                // delete as done without executing it.
                let resp = std::sync::Arc::new(MdsResp::Reply { seq, result: Ok(OpOutput::Done) });
                self.retry_cache.store(from, seq, resp.clone());
                ctx.send(from, resp);
                return;
            }
        }
        // In-flight suppression: the response cache above only covers
        // *answered* requests. A duplicate that lands while the original
        // mutation is still waiting on durability (duplicated on the wire,
        // or retried into a slow round) must not execute a second time —
        // the re-execution could interleave with other clients' operations
        // (e.g. re-delete a path someone re-created) and break
        // linearizability. The original's reply covers the client.
        if !self.retry_cache.begin(from, seq) {
            return;
        }
        self.enqueue_mutation(ctx, op, ReplyTo::Client { node: from, seq });
    }

    // ---------------------------------------------------- speculative mode

    /// Applied txid watermark: the highest transaction id executed against
    /// the image (flushed or still pending). This is the ordering token
    /// speculative clients carry between operations.
    fn applied_watermark(&self) -> u64 {
        self.next_txid + self.pending.len() as u64 - 1
    }

    /// Serve an `MdsReq::OpSpec` operation. Mutations are acknowledged on
    /// apply — before durability — with the op's own txid as the ordering
    /// token; reads wait until the watermark reaches the client's
    /// `min_token` (read-your-writes) and return the current watermark.
    /// The PR 6 read barrier does not apply: a speculative client opted out
    /// of the durable-observation contract, and a discarded suffix is
    /// surfaced through token regression instead.
    fn serve_spec_op(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        op: FsOp,
        seq: u64,
        min_token: u64,
    ) {
        if let Some(cached) = self.retry_cache.check(from, seq) {
            ctx.send(from, cached);
            return;
        }
        if !op.is_mutation() {
            if self.applied_watermark() >= min_token {
                let result = self.exec_read(&op);
                let token = self.applied_watermark();
                let resp = std::sync::Arc::new(MdsResp::ReplySpec { seq, result, token });
                self.retry_cache.store(from, seq, resp.clone());
                ctx.send(from, resp);
            } else {
                // The watermark is behind the client's last ack — only
                // possible across a failover that discarded a speculative
                // suffix. Hold one flush tick (the mutation may be in this
                // very drain window), then answer with whatever watermark
                // we have; a token below `min_token` is the loss signal.
                self.token_waits.push((min_token, from, seq, op));
            }
            return;
        }
        if !self.retry_cache.begin(from, seq) {
            return;
        }
        match self.exec_mutation(op) {
            Err(e) => {
                // Errors observed speculative state the client opted into;
                // nothing was journaled, so answer immediately.
                let token = self.applied_watermark();
                let resp = std::sync::Arc::new(MdsResp::ReplySpec { seq, result: Err(e), token });
                self.retry_cache.store(from, seq, resp.clone());
                ctx.send(from, resp);
            }
            Ok((txn, output)) => {
                // The txid this op receives when its batch seals.
                let token = self.next_txid + self.pending.len() as u64;
                let resp = std::sync::Arc::new(MdsResp::ReplySpec {
                    seq,
                    result: Ok(output.clone()),
                    token,
                });
                self.retry_cache.store(from, seq, resp.clone());
                ctx.send(from, resp);
                let xid = self.maybe_xg_fanout(ctx, &txn, true);
                let reply = ReplyTo::SpecAcked { node: from, seq };
                self.pending.push(PendingOp { txn, reply, output, xid });
                if self.pending.len() >= self.cfg.timing.batch_max_ops {
                    self.flush_batch(ctx);
                }
            }
        }
    }

    /// Resolve speculative reads parked on a watermark. Called at every
    /// flush tick: waits the watermark now covers serve normally; the rest
    /// are answered with the current (regressed) watermark so the client
    /// learns its speculative timeline was discarded.
    pub(crate) fn answer_token_waits(&mut self, ctx: &mut Ctx<'_>) {
        if self.token_waits.is_empty() {
            return;
        }
        let token = self.applied_watermark();
        for (_min_token, node, seq, op) in std::mem::take(&mut self.token_waits) {
            let result = self.exec_read(&op);
            let resp = std::sync::Arc::new(MdsResp::ReplySpec { seq, result, token });
            self.retry_cache.store(node, seq, resp.clone());
            ctx.send(node, resp);
        }
    }

    /// Release a reply that *observed* the namespace without journaling
    /// anything (a read, or a mutation rejected by validation). If the
    /// image contains not-yet-durable mutations the reply is barriered
    /// behind the newest such batch — see the read-barrier comment in
    /// `serve_op`.
    fn send_or_defer_observation(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        seq: u64,
        resp: std::sync::Arc<MdsResp>,
    ) {
        let barrier = if self.pending.is_empty() {
            self.inflight.keys().next_back().copied()
        } else {
            Some(self.log.tail_sn() + 1)
        };
        match barrier {
            None => {
                self.retry_cache.store(from, seq, resp.clone());
                ctx.send(from, resp);
            }
            Some(sn) => self.deferred_reads.push((sn, from, seq, resp)),
        }
    }

    /// Serve a read against a pinned epoch snapshot. In this simulated node
    /// the server is single-threaded, so the pin is vacuous here — but it is
    /// the same path a threaded deployment uses (see `bench_hotpath
    /// --threads`), and going through it keeps the snapshot machinery under
    /// the full protocol test surface: a pinned read must observe exactly
    /// the applied-and-published prefix, never a mutation mid-apply.
    fn exec_read(&self, op: &FsOp) -> Result<OpOutput, String> {
        let view = self.ns.pin();
        match op {
            FsOp::GetFileInfo { path } => {
                view.getfileinfo(path).map(OpOutput::Info).map_err(|e| e.to_string())
            }
            FsOp::List { path } => {
                view.list(path).map(OpOutput::Listing).map_err(|e| e.to_string())
            }
            _ => unreachable!("exec_read on a mutation"),
        }
    }

    /// Validate + apply a mutation against our namespace, producing the
    /// journal record. Errors are replied immediately and never journaled.
    /// Consumes the op so its paths move into the record instead of being
    /// cloned — on a create/rename-heavy mix the journal's strings are
    /// allocated exactly once, at request decode.
    fn exec_mutation(&mut self, op: FsOp) -> Result<(Txn, OpOutput), String> {
        match op {
            FsOp::Create { path, replication } => self
                .ns
                .create(&path, replication)
                .map(|info| (Txn::Create { path, replication }, OpOutput::Info(info)))
                .map_err(|e| e.to_string()),
            FsOp::Mkdir { path } => self
                .ns
                .mkdir(&path)
                .map(|()| (Txn::Mkdir { path }, OpOutput::Done))
                .map_err(|e| e.to_string()),
            FsOp::Delete { path, recursive } => self
                .ns
                .delete(&path, recursive)
                .map(|_| (Txn::Delete { path, recursive }, OpOutput::Done))
                .map_err(|e| e.to_string()),
            FsOp::Rename { src, dst } => self
                .ns
                .rename(&src, &dst)
                .map(|()| (Txn::Rename { src, dst }, OpOutput::Done))
                .map_err(|e| e.to_string()),
            FsOp::AddBlock { path, len } => {
                let block_id = self.next_block_id;
                self.ns
                    .add_block(&path, block_id)
                    .map(|()| {
                        self.next_block_id += 1;
                        self.blocks.register(block_id, len);
                        (Txn::AddBlock { path, block_id, len }, OpOutput::Block(block_id))
                    })
                    .map_err(|e| e.to_string())
            }
            FsOp::CloseFile { path } => self
                .ns
                .close_file(&path)
                .map(|()| (Txn::CloseFile { path }, OpOutput::Done))
                .map_err(|e| e.to_string()),
            FsOp::SetPerm { path, perm } => self
                .ns
                .set_perm(&path, perm)
                .map(|()| (Txn::SetPerm { path, perm }, OpOutput::Done))
                .map_err(|e| e.to_string()),
            FsOp::GetFileInfo { .. } | FsOp::List { .. } => {
                unreachable!("exec_mutation on a read")
            }
        }
    }

    pub(crate) fn enqueue_mutation(&mut self, ctx: &mut Ctx<'_>, op: FsOp, reply: ReplyTo) {
        match self.exec_mutation(op) {
            // A rejected mutation journals nothing but its error *observed*
            // the image (e.g. "already exists" proves a create happened) —
            // it must cross the same barrier as a read, or it leaks
            // speculative state.
            Err(e) => match reply {
                ReplyTo::Client { node, seq } => {
                    let resp = std::sync::Arc::new(MdsResp::Reply { seq, result: Err(e) });
                    self.send_or_defer_observation(ctx, node, seq, resp);
                }
                other => self.reply_now(ctx, other, Err(e)),
            },
            Ok((txn, output)) => {
                let client = matches!(reply, ReplyTo::Client { .. });
                let xid = self.maybe_xg_fanout(ctx, &txn, client);
                self.pending.push(PendingOp { txn, reply, output, xid });
                if self.pending.len() >= self.cfg.timing.batch_max_ops {
                    self.flush_batch(ctx);
                }
            }
        }
    }

    /// Distributed-transaction fan-out: structural operations in a
    /// multi-group deployment must also run on every other group's active
    /// (their directory skeletons stay in lock-step). Only client-originated
    /// ops coordinate; a leg never fans out again. Returns the xid when legs
    /// were launched.
    fn maybe_xg_fanout(
        &mut self,
        ctx: &mut Ctx<'_>,
        txn: &mams_journal::Txn,
        client_originated: bool,
    ) -> Option<(u32, u64)> {
        if !(client_originated && txn.is_structural() && self.cfg.partitioner.groups() > 1) {
            return None;
        }
        let id = (self.cfg.group, self.next_xid);
        self.next_xid += 1;
        let mut groups = std::collections::HashSet::new();
        for g in 0..self.cfg.partitioner.groups() {
            if g == self.cfg.group {
                continue;
            }
            groups.insert(g);
            if let Some(act) = self.active_of_group(g) {
                ctx.send(act, GroupMsg::XGroupApply { xid: id, txn: txn.clone() });
            }
            // Groups without a known active are retried by the T_XG_RETRY
            // timer until they recover.
        }
        if groups.is_empty() {
            return None;
        }
        self.xg_outstanding.insert(id, XgOutstanding { txn: txn.clone(), groups });
        Some(id)
    }

    fn reply_now(&mut self, ctx: &mut Ctx<'_>, reply: ReplyTo, result: Result<OpOutput, String>) {
        match reply {
            ReplyTo::Client { node, seq } => {
                let resp = std::sync::Arc::new(MdsResp::Reply { seq, result });
                self.retry_cache.store(node, seq, resp.clone());
                ctx.send(node, resp);
            }
            ReplyTo::XGroup { coordinator, xid } => {
                let group = self.cfg.group;
                ctx.send(coordinator, GroupMsg::XGroupAck { xid, group, ok: result.is_ok() });
            }
            // The speculative ack already went out on apply.
            ReplyTo::SpecAcked { .. } => {}
        }
    }

    /// Home shards a journaled transaction touched (a rename spans its
    /// source and destination parents). Client replies release in per-shard
    /// FIFO order, so ops whose shard sets are disjoint ack independently.
    fn shards_of_txn(&self, txn: &mams_journal::Txn) -> Vec<usize> {
        match txn {
            mams_journal::Txn::Rename { src, dst } => {
                let a = self.ns.home_shard(src);
                let b = self.ns.home_shard(dst);
                if a == b {
                    vec![a]
                } else {
                    vec![a, b]
                }
            }
            other => vec![self.ns.home_shard(other.primary_path())],
        }
    }

    // --------------------------------------------------------------- flush

    /// Seal the pending mutations into a `⟨sn, txid⟩` batch, append it to
    /// the SSP, and synchronize it to the standbys. Replies are released
    /// when the SSP and every current standby have acknowledged.
    ///
    /// The batch is encoded to its wire form exactly once, here; every
    /// fan-out leg (own log, each standby's `SyncJournal`, the SSP append,
    /// later retries) shares the same sealed allocation.
    pub(crate) fn flush_batch(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.pending);
        let first_txid = self.next_txid;
        let records: Vec<Txn> = ops.iter().map(|o| o.txn.clone()).collect();
        // Ack records replicate the `(client, seq)` each record settles, so
        // every replica that replays the batch rebuilds the retry window.
        // Distributed-transaction legs carry no ack — their client binding
        // lives in the coordinating group's journal.
        let acks: Vec<mams_journal::AckRecord> = ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op.reply {
                ReplyTo::Client { node, seq } => Some(mams_journal::AckRecord {
                    record: i as u32,
                    client: node,
                    seq,
                    spec: false,
                }),
                ReplyTo::SpecAcked { node, seq } => Some(mams_journal::AckRecord {
                    record: i as u32,
                    client: node,
                    seq,
                    spec: true,
                }),
                ReplyTo::XGroup { .. } => None,
            })
            .collect();
        let sn = self.log.tail_sn() + 1;
        let batch = SharedBatch::sealed(JournalBatch::with_acks(sn, first_txid, records, acks));
        self.next_txid = batch.last_txid() + 1;
        self.log.append(batch.share()).expect("own batch is contiguous");
        self.cursor = ReplayCursor::at(sn);
        // Fold the same bindings into our own window (our batches never go
        // through `apply_records` — the ops already executed in
        // `exec_mutation`). Outcomes come straight from the executed ops,
        // which is byte-identical to what replicas reconstruct at replay.
        for (i, op) in ops.iter().enumerate() {
            let (client, seq, spec) = match op.reply {
                ReplyTo::Client { node, seq } => (node, seq, false),
                ReplyTo::SpecAcked { node, seq } => (node, seq, true),
                ReplyTo::XGroup { .. } => continue,
            };
            let outcome = match &op.output {
                OpOutput::Done => mams_namespace::RetryOutcome::Done,
                OpOutput::Block(b) => mams_namespace::RetryOutcome::Block(*b),
                OpOutput::Info(info) => mams_namespace::RetryOutcome::Info(info.clone()),
                OpOutput::Listing(_) => unreachable!("reads are never journaled"),
            };
            let token = spec.then_some(first_txid + i as u64);
            self.window.record(client, seq, mams_namespace::RetryEntry { outcome, token });
        }

        let mut inflight = Inflight {
            waiting_pool: true,
            waiting_members: self.standbys.clone(),
            flushed_at: ctx.now(),
            ..Default::default()
        };
        for op in ops {
            if let Some(xid) = op.xid {
                // The legs may have settled already (fast acks); only wait
                // on xids still outstanding.
                if self.xg_outstanding.contains_key(&xid) {
                    inflight.waiting_xg.insert(xid);
                    self.xg_to_sn.insert(xid, sn);
                }
            }
            match &op.reply {
                ReplyTo::XGroup { .. } => inflight.xg_replies.push((op.reply, Ok(op.output))),
                ReplyTo::Client { .. } => {
                    let shards = self.shards_of_txn(&op.txn);
                    inflight.client_replies.push(crate::server::ClientReply {
                        reply: op.reply,
                        result: Ok(op.output),
                        shards,
                    });
                }
                // Speculative ops were acknowledged on apply; the batch
                // still rides the durability pipeline (journal + sync), but
                // owes the client nothing at completion.
                ReplyTo::SpecAcked { .. } => {}
            }
        }
        self.inflight.insert(sn, inflight);

        let epoch = self.epoch;
        let group = self.cfg.group;
        for s in self.standbys.clone() {
            ctx.send(s, GroupMsg::SyncJournal { epoch, batch: batch.share() });
        }
        self.pool_send(
            ctx,
            move |req| PoolReq::AppendJournal { group, epoch, batch, req },
            PoolCtx::AppendAck { sn },
        );
    }

    /// Release replies: leg acks as soon as their batch is durable (any
    /// order); client replies when their batch is fully complete, released
    /// **out of order** across batches subject to per-shard FIFO.
    ///
    /// Safety: the pool's journal rejects gaps, so an `AppendOk` for batch
    /// `sn` proves every batch ≤ `sn` is durable in the SSP, and standby
    /// acks are cumulative — a *complete* batch is never durable ahead of
    /// its predecessors in reality, only ahead of their bookkeeping
    /// (a lost pool ack) or their distributed-transaction legs. What the
    /// ascending walk preserves is the client-visible contract: replies
    /// touching the same home shard (same parent-directory region) release
    /// in batch order, while creates/deletes/renames under disjoint shards
    /// stop serializing behind each other's legs and stragglers.
    pub(crate) fn try_complete(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut leg_acks = Vec::new();
        for inf in self.inflight.values_mut() {
            if inf.durable() && !inf.xg_acked {
                inf.xg_acked = true;
                leg_acks.append(&mut inf.xg_replies);
            }
        }
        for (reply, result) in leg_acks {
            self.reply_now(ctx, reply, result);
        }
        let (released, drained, ooo) = release_walk(&mut self.inflight);
        if ooo > 0 {
            ctx.trace("commit.ooo_release", || format!("{ooo} replies past an incomplete batch"));
        }
        for sn in drained {
            if let Some(inf) = self.inflight.remove(&sn) {
                // Group-commit ack latency (seal → fully released) feeds
                // the adaptive flush controller.
                self.commit.observe_ack(now.since(inf.flushed_at));
            }
        }
        for (reply, result) in released {
            self.reply_now(ctx, reply, result);
        }
        // Release barriered reads whose observed mutations are all durable:
        // the barrier batch must have been sealed (sn on the log) and every
        // inflight entry at or below it completed.
        if !self.deferred_reads.is_empty() {
            let frontier = self.inflight.keys().next().copied().unwrap_or(Sn::MAX);
            let tail = self.log.tail_sn();
            let mut keep = Vec::new();
            for (sn, node, seq, resp) in std::mem::take(&mut self.deferred_reads) {
                if sn <= tail && sn < frontier {
                    self.retry_cache.store(node, seq, resp.clone());
                    ctx.send(node, resp);
                } else {
                    keep.push((sn, node, seq, resp));
                }
            }
            self.deferred_reads = keep;
        }
    }

    // ------------------------------------------------------------- members

    pub(crate) fn on_group_msg(&mut self, ctx: &mut Ctx<'_>, from: NodeId, gm: GroupMsg) {
        match gm {
            GroupMsg::SyncJournal { epoch, batch } => self.on_sync_journal(ctx, from, epoch, batch),
            GroupMsg::SyncAck { sn } => self.on_sync_ack(ctx, from, sn),
            GroupMsg::Register { sn } => self.on_register(ctx, from, sn),
            GroupMsg::RegisterAck { as_standby, epoch, tail_sn } => {
                self.on_register_ack(ctx, from, as_standby, epoch, tail_sn)
            }
            GroupMsg::RenewStart { tip_sn } => self.on_renew_start(ctx, from, tip_sn),
            GroupMsg::RenewProgress { sn } => self.on_renew_progress(ctx, from, sn),
            GroupMsg::RenewJournal { epoch, batches } => {
                self.on_renew_journal(ctx, from, epoch, batches)
            }
            GroupMsg::XGroupApply { xid, txn } => self.on_xgroup_apply(ctx, from, xid, txn),
            GroupMsg::XGroupAck { xid, group, ok } => self.on_xgroup_ack(ctx, xid, group, ok),
        }
    }

    /// Member side of journal synchronization. "The standby only receives
    /// and responds for journals which come from the active server" — and
    /// only at the current epoch, so a deposed active's flushes are inert.
    fn on_sync_journal(&mut self, ctx: &mut Ctx<'_>, from: NodeId, epoch: u64, batch: SharedBatch) {
        if epoch < self.group_epoch {
            return; // obsolete data from a deposed active (see Fig. 4a)
        }
        self.group_epoch = epoch;
        if matches!(self.role, Role::Active | Role::Upgrading) {
            // We hold (or are taking) the lock; a sync from elsewhere at an
            // equal-or-higher epoch would mean we lost it — failover.rs
            // handles that through the view. Ignore here.
            return;
        }
        self.active_hint = Some(from);
        self.ingest_batch(batch);
        self.note_divergence(ctx);
        ctx.send(from, GroupMsg::SyncAck { sn: self.cursor.max_sn() });
        if !self.stash.is_empty() {
            // A batch was lost on the wire: fetch the missing range from
            // the shared pool rather than stalling the active's commits.
            self.arm_gap_repair(ctx);
        }
    }

    /// Arm the lost-sync repair timer (idempotent).
    pub(crate) fn arm_gap_repair(&mut self, ctx: &mut Ctx<'_>) {
        if !self.gap_repair_armed {
            self.gap_repair_armed = true;
            ctx.set_timer(self.cfg.timing.register_retry.mul_f64(0.4), crate::server::T_GAP_REPAIR);
        }
    }

    /// The gap-repair timer fired: if the stash still has a hole, read the
    /// missing batches from the pool; in any case refresh our cumulative
    /// ack so a lost `SyncAck` cannot stall the active either.
    pub(crate) fn gap_repair_fired(&mut self, ctx: &mut Ctx<'_>) {
        self.gap_repair_armed = false;
        if !matches!(self.role, Role::Standby | Role::Junior) {
            return;
        }
        if let Some(active) = self.active_hint {
            if active != ctx.id() {
                ctx.send(active, GroupMsg::SyncAck { sn: self.cursor.max_sn() });
            }
        }
        if !self.stash.is_empty() {
            let group = self.cfg.group;
            let after = self.cursor.max_sn();
            let max = self.cfg.timing.catchup_page;
            self.pool_send(
                ctx,
                move |req| PoolReq::ReadJournal { group, after_sn: after, max, req },
                PoolCtx::GapRepair,
            );
        }
    }

    /// Active side: a member acknowledged everything up to `sn`.
    fn on_sync_ack(&mut self, ctx: &mut Ctx<'_>, from: NodeId, sn: Sn) {
        self.member_sns.insert(from, sn);
        for (&bsn, inf) in self.inflight.iter_mut() {
            if bsn <= sn {
                inf.waiting_members.remove(&from);
            }
        }
        self.try_complete(ctx);
        self.renew_check_promotion(ctx, from, sn);
    }

    // ------------------------------------------------- distributed txns

    /// Participant: admit a structural transaction leg from another group's
    /// active. Legs go through the same ingress queue as client operations:
    /// synchronizing the directory skeleton consumes real capacity on every
    /// group, which is why the paper's distributed transactions do not
    /// scale with the number of actives.
    fn on_xgroup_apply(&mut self, ctx: &mut Ctx<'_>, from: NodeId, xid: (u32, u64), txn: Txn) {
        if self.role != Role::Active {
            return; // coordinator's client retries after our group recovers
        }
        if self.xg_seen.contains(&xid) {
            // Already applied (the ack may have been lost): re-ack.
            ctx.send(from, GroupMsg::XGroupAck { xid, group: self.cfg.group, ok: true });
            return;
        }
        self.xg_seen.insert(xid);
        let op = match txn {
            Txn::Mkdir { path } => FsOp::Mkdir { path },
            Txn::Delete { path, recursive } => FsOp::Delete { path, recursive },
            Txn::Rename { src, dst } => FsOp::Rename { src, dst },
            other => {
                debug_assert!(false, "non-structural xgroup txn {other:?}");
                return;
            }
        };
        self.ingress.push_item(crate::ingress::IngressItem::Leg { coordinator: from, xid, op });
    }

    /// Execute an admitted distributed-transaction leg.
    pub(crate) fn serve_leg(
        &mut self,
        ctx: &mut Ctx<'_>,
        coordinator: NodeId,
        xid: (u32, u64),
        op: FsOp,
    ) {
        if self.role != Role::Active {
            return;
        }
        self.enqueue_mutation(ctx, op, ReplyTo::XGroup { coordinator, xid });
    }

    /// Coordinator: a leg completed.
    fn on_xgroup_ack(&mut self, ctx: &mut Ctx<'_>, xid: (u32, u64), group: u32, ok: bool) {
        if !ok {
            // A rejected leg (e.g. the skeleton already had the entry from a
            // previous coordinator's half-finished transaction) still counts
            // as settled: the directory skeleton is consistent either way.
            ctx.trace("xg.leg_failed", || format!("xid {xid:?} group {group}"));
        }
        let done = match self.xg_outstanding.get_mut(&xid) {
            Some(o) => {
                o.groups.remove(&group);
                o.groups.is_empty()
            }
            None => return,
        };
        if done {
            self.xg_outstanding.remove(&xid);
            if let Some(sn) = self.xg_to_sn.remove(&xid) {
                if let Some(inf) = self.inflight.get_mut(&sn) {
                    inf.waiting_xg.remove(&xid);
                }
                self.try_complete(ctx);
            }
        }
    }

    /// Retransmit SSP appends whose acknowledgement has not arrived (the
    /// pool deduplicates by sn, so this is safe under any message loss).
    /// Also re-push the current batch to standbys that have not caught up —
    /// cumulative acks make the refresh idempotent.
    pub(crate) fn retry_pool_appends(&mut self, ctx: &mut Ctx<'_>) {
        let epoch = self.epoch;
        let group = self.cfg.group;
        let stuck: Vec<mams_journal::Sn> =
            self.inflight.iter().filter(|(_, inf)| inf.waiting_pool).map(|(&sn, _)| sn).collect();
        for sn in stuck {
            // `share` ends the log borrow, so the retained handle can move
            // into the request without copying the batch.
            if let Some(batch) = self.log.get(sn).map(SharedBatch::share) {
                self.pool_send(
                    ctx,
                    move |req| PoolReq::AppendJournal { group, epoch, batch, req },
                    PoolCtx::AppendAck { sn },
                );
            }
        }
        // Standbys behind the oldest incomplete batch get that range again.
        let lagging: Vec<(NodeId, mams_journal::Sn)> = self
            .standbys
            .iter()
            .filter_map(|&m| {
                let acked = self.member_sns.get(&m).copied().unwrap_or(0);
                (acked < self.log.tail_sn()).then_some((m, acked))
            })
            .collect();
        for (member, acked) in lagging {
            if let Some(batches) = self.log.read_after(acked) {
                for b in batches.iter().take(4) {
                    ctx.send(member, GroupMsg::SyncJournal { epoch, batch: b.share() });
                }
            }
        }
    }

    /// Resend unacked distributed-transaction legs to the current actives
    /// of their groups.
    pub(crate) fn retry_xg_legs(&mut self, ctx: &mut Ctx<'_>) {
        let resend: Vec<(NodeId, (u32, u64), mams_journal::Txn)> = self
            .xg_outstanding
            .iter()
            .flat_map(|(&xid, o)| {
                o.groups
                    .iter()
                    .filter_map(|&g| self.active_of_group(g).map(|a| (a, xid, o.txn.clone())))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (act, xid, txn) in resend {
            ctx.send(act, GroupMsg::XGroupApply { xid, txn });
        }
    }

    // ---------------------------------------------------------- checkpoint

    /// Write a namespace image to the SSP (compacts the shared journal).
    pub(crate) fn start_checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        // The image encoder works on the flat legacy layout; `to_tree`
        // snapshots the sharded namespace into one (ids preserved, so the
        // image round-trips through `from_tree` on the junior unchanged).
        // The retry window rides inside the image so a junior restored from
        // it inherits the duplicate-suppression state as of this sn.
        let image = mams_namespace::encode_image_with_window(
            &self.ns.to_tree(),
            self.cursor.max_sn(),
            &self.window,
        );
        let group = self.cfg.group;
        let epoch = self.epoch;
        ctx.trace("checkpoint.start", || {
            format!("sn {} size {} B", image.checkpoint_sn, image.size_bytes())
        });
        self.pool_send(
            ctx,
            move |req| PoolReq::WriteImage { group, epoch, image, req },
            PoolCtx::CheckpointWrite,
        );
    }

    /// Incremental checkpoint: fold the journal range since the last
    /// checkpoint artifact into a delta image and append it to the pool's
    /// manifest chain. Cost is proportional to churn in the window, not to
    /// namespace size — which is why it can run at a much faster cadence
    /// than `start_checkpoint` and keep junior recovery time flat.
    pub(crate) fn start_delta(&mut self, ctx: &mut Ctx<'_>) {
        let Some(anchor) = self.delta_anchor else {
            // Nothing to chain onto yet: establish the chain with a full
            // image (unless one is already in flight).
            if !self.pool_pending.values().any(|c| matches!(c, PoolCtx::CheckpointWrite)) {
                self.start_checkpoint(ctx);
            }
            return;
        };
        let end = self.cursor.max_sn();
        if end <= anchor {
            return; // no churn since the last artifact
        }
        if self
            .pool_pending
            .values()
            .any(|c| matches!(c, PoolCtx::DeltaWrite | PoolCtx::CheckpointWrite))
        {
            // One artifact write at a time keeps the chain ordered; a delta
            // folded while a full image is in flight would chain onto an
            // anchor the image is about to supersede.
            return;
        }
        let Some(batches) = self.log.read_after(anchor) else {
            // Local log compacted past the anchor (a concurrent full
            // checkpoint landed): re-anchor with a fresh image.
            self.delta_anchor = None;
            self.start_checkpoint(ctx);
            return;
        };
        let txns =
            batches.iter().filter(|b| b.sn <= end).flat_map(|b| b.entries().map(|(_, txn)| txn));
        let delta =
            mams_namespace::fold_delta_with_window(&self.ns, anchor, end, txns, &self.window);
        ctx.trace("delta.start", || {
            format!("({anchor}, {end}] {} entries {} B", delta.entries, delta.size_bytes())
        });
        let group = self.cfg.group;
        let epoch = self.epoch;
        self.pool_send(
            ctx,
            move |req| PoolReq::WriteDelta { group, epoch, delta, req },
            PoolCtx::DeltaWrite,
        );
    }

    // ------------------------------------------------------ pool responses

    pub(crate) fn on_pool_resp(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp) {
        let why = match self.pool_pending.remove(&resp.req_id()) {
            Some(w) => w,
            None => return,
        };
        match why {
            PoolCtx::AppendAck { sn } => match resp {
                PoolResp::AppendOk { .. } => {
                    if let Some(inf) = self.inflight.get_mut(&sn) {
                        inf.waiting_pool = false;
                    }
                    self.try_complete(ctx);
                }
                PoolResp::Failed { error: PoolError::Fenced { .. }, .. } => {
                    // We have been deposed: IO fencing in action.
                    ctx.trace("fencing.append_refused", || format!("sn {sn}"));
                    self.degrade_to_junior(ctx, "fenced by pool");
                }
                other => {
                    ctx.trace("pool.append_error", || format!("{other:?}"));
                }
            },
            PoolCtx::CheckpointWrite => {
                if let PoolResp::ImageWritten { checkpoint_sn, .. } = resp {
                    self.log.compact_through(checkpoint_sn);
                    // The new base starts a fresh manifest chain; deltas
                    // fold from here on.
                    self.delta_anchor = Some(checkpoint_sn);
                    ctx.trace("checkpoint.done", || format!("sn {checkpoint_sn}"));
                }
            }
            PoolCtx::DeltaWrite => match resp {
                PoolResp::DeltaWritten { end_sn, .. } => {
                    self.delta_anchor = Some(end_sn);
                    ctx.trace("delta.done", || format!("sn {end_sn}"));
                }
                PoolResp::Failed { error: PoolError::DeltaChain { .. }, .. } => {
                    // The pool's chain moved under us (another writer's
                    // checkpoint, a lost ack): our anchor is stale. Restart
                    // the chain with a full image.
                    ctx.trace("delta.rechain", String::new);
                    self.delta_anchor = None;
                    if self.role == crate::server::Role::Active {
                        self.start_checkpoint(ctx);
                    }
                }
                other => {
                    ctx.trace("delta.error", || format!("{other:?}"));
                }
            },
            PoolCtx::GapRepair => {
                if let PoolResp::Journal { batches, .. } = resp {
                    for b in batches {
                        self.ingest_batch(b);
                    }
                    self.note_divergence(ctx);
                    if let Some(active) = self.active_hint {
                        if active != ctx.id() {
                            ctx.send(active, GroupMsg::SyncAck { sn: self.cursor.max_sn() });
                        }
                    }
                    if !self.stash.is_empty() {
                        self.arm_gap_repair(ctx);
                    }
                }
            }
            PoolCtx::EpochAdvance => self.on_epoch_advanced(ctx, resp),
            PoolCtx::UpgradeTail => self.on_upgrade_tail(ctx, resp),
            PoolCtx::Manifest { for_upgrade } => self.on_manifest(ctx, resp, for_upgrade),
            PoolCtx::ArtifactChunk { for_upgrade } => {
                self.on_artifact_chunk(ctx, resp, for_upgrade)
            }
            PoolCtx::CatchupPage { for_upgrade } => self.on_catchup_page(ctx, resp, for_upgrade),
        }
    }
}

/// A reply ready to go out: destination plus the operation's result.
pub(crate) type ReadyReply = (ReplyTo, Result<OpOutput, String>);

/// The ascending release walk over the inflight window (the out-of-order
/// ack core, see `try_complete`): a *complete* batch releases its client
/// replies unless an earlier still-held reply shares one of their home
/// shards; an *incomplete* batch blocks every shard its replies touch.
/// Returns the replies to send, in release order, the sns whose reply lists
/// fully drained, and how many replies released *past* an earlier
/// still-incomplete batch (the out-of-order count, for observability).
///
/// Kept as a free function over the window so the ordering contract —
/// same-directory ops never reorder, disjoint directories may — is pinned
/// by unit tests without standing up a cluster.
pub(crate) fn release_walk(
    inflight: &mut std::collections::BTreeMap<Sn, Inflight>,
) -> (Vec<ReadyReply>, Vec<Sn>, u64) {
    let mut blocked: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut released: Vec<ReadyReply> = Vec::new();
    let mut drained: Vec<Sn> = Vec::new();
    let mut held = false;
    let mut ooo = 0u64;
    for (&sn, inf) in inflight.iter_mut() {
        if inf.complete() {
            let mut kept = Vec::new();
            for cr in inf.client_replies.drain(..) {
                if cr.shards.iter().any(|s| blocked.contains(s)) {
                    // An earlier reply on this shard is still held: keep
                    // FIFO within the shard, and hold everything behind
                    // this reply's shards too.
                    blocked.extend(cr.shards.iter().copied());
                    kept.push(cr);
                } else {
                    if held {
                        ooo += 1;
                    }
                    released.push((cr.reply, cr.result));
                }
            }
            if !kept.is_empty() {
                held = true;
            }
            inf.client_replies = kept;
            if inf.client_replies.is_empty() {
                drained.push(sn);
            }
        } else {
            held = true;
            for cr in &inf.client_replies {
                blocked.extend(cr.shards.iter().copied());
            }
        }
    }
    (released, drained, ooo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ClientReply;
    use std::collections::BTreeMap;

    fn reply(seq: u64, shards: &[usize]) -> ClientReply {
        ClientReply {
            reply: ReplyTo::Client { node: 1, seq },
            result: Ok(OpOutput::Done),
            shards: shards.to_vec(),
        }
    }

    fn complete(replies: Vec<ClientReply>) -> Inflight {
        Inflight { client_replies: replies, ..Default::default() }
    }

    fn incomplete(replies: Vec<ClientReply>) -> Inflight {
        Inflight { waiting_pool: true, client_replies: replies, ..Default::default() }
    }

    fn seqs(released: &[ReadyReply]) -> Vec<u64> {
        released
            .iter()
            .map(|(r, _)| match r {
                ReplyTo::Client { seq, .. } => *seq,
                other => panic!("unexpected reply target {other:?}"),
            })
            .collect()
    }

    /// Same home shard = same parent directory: a later batch's reply must
    /// never overtake an earlier incomplete batch on that shard, while a
    /// disjoint-shard reply in the same later batch releases immediately.
    #[test]
    fn same_shard_replies_hold_behind_an_incomplete_batch() {
        let mut w = BTreeMap::new();
        w.insert(1, incomplete(vec![reply(1, &[3])]));
        w.insert(2, complete(vec![reply(2, &[3]), reply(3, &[7])]));
        let (released, drained, ooo) = release_walk(&mut w);
        assert_eq!(seqs(&released), vec![3], "disjoint shard releases out of order");
        assert_eq!(ooo, 1, "that release overtook the incomplete sn 1");
        assert!(drained.is_empty(), "sn 2 still holds the blocked reply");
        assert_eq!(w[&2].client_replies.len(), 1, "same-shard reply stays held");

        // Once sn 1 turns durable, both release — in batch (txid) order.
        w.get_mut(&1).unwrap().waiting_pool = false;
        let (released, drained, ooo) = release_walk(&mut w);
        assert_eq!(seqs(&released), vec![1, 2], "per-shard FIFO preserved");
        assert_eq!(ooo, 0, "nothing overtaken once the window is complete");
        assert_eq!(drained, vec![1, 2]);
    }

    /// Blocking is transitive through shard *sets*: a held rename spanning
    /// two parents extends the block to its second parent, so a later op
    /// under that parent cannot slip past the rename.
    #[test]
    fn a_held_rename_blocks_both_of_its_parents() {
        let mut w = BTreeMap::new();
        w.insert(1, incomplete(vec![reply(1, &[0])]));
        w.insert(2, complete(vec![reply(2, &[1, 0])])); // rename /b/x -> /a/y
        w.insert(3, complete(vec![reply(3, &[1])]));
        let (released, drained, _) = release_walk(&mut w);
        assert!(released.is_empty(), "rename held on shard 0 must also hold shard 1");
        assert!(drained.is_empty());
    }

    /// Batches whose shard sets are fully disjoint from everything earlier
    /// ack independently, whatever the completion order was.
    #[test]
    fn disjoint_directories_release_independently() {
        let mut w = BTreeMap::new();
        w.insert(1, incomplete(vec![reply(1, &[0]), reply(2, &[4])]));
        w.insert(2, complete(vec![reply(3, &[2])]));
        w.insert(3, complete(vec![reply(4, &[5]), reply(5, &[4])]));
        let (released, _, ooo) = release_walk(&mut w);
        assert_eq!(seqs(&released), vec![3, 4], "only shard-4 reply waits for sn 1");
        assert_eq!(ooo, 2, "both releases overtook the incomplete sn 1");
        assert_eq!(w[&3].client_replies.len(), 1);
    }

    /// The shard map itself groups by parent directory — two files in one
    /// directory share a home shard, which is what makes the walk's
    /// per-shard FIFO mean "same-directory ops never reorder".
    #[test]
    fn same_directory_ops_share_a_home_shard() {
        let ns = mams_namespace::ShardedNamespace::with_shards(8);
        assert_eq!(ns.home_shard("/jobs/out/part-0"), ns.home_shard("/jobs/out/part-1"));
        let t1 = mams_journal::Txn::Create { path: "/jobs/out/part-0".into(), replication: 3 };
        let t2 = mams_journal::Txn::Create { path: "/jobs/out/part-1".into(), replication: 3 };
        assert_eq!(ns.home_shard(t1.primary_path()), ns.home_shard(t2.primary_path()));
    }
}
