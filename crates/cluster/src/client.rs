//! The file-system client: partition routing, active discovery through the
//! global view, and transparent retry across failovers.
//!
//! "Benefiting from our namespace partition strategy, the client can
//! reconnect to the new active directly and automatically after
//! active-standby switching and resend requests when needed. As the process
//! is completely transparent to applications, the file system sees no
//! errors occur in the case of failures." (Section III-C.)

use std::collections::HashMap;
use std::sync::Arc;

use mams_coord::{CoordEvent, CoordReq, CoordResp};
use mams_core::{FsOp, MdsReq, MdsResp, OpOutput};
use mams_namespace::Partitioner;
use mams_sim::{Ctx, DetRng, Duration, Message, Node, NodeId, SimTime};

use crate::history::Recorder;
use crate::metrics::Metrics;
use crate::workload::Workload;

const T_START: u64 = 1;
const T_NEXT: u64 = 2;
/// Operation timers use the op's seq as token; seqs start above the control
/// token range.
const SEQ_BASE: u64 = 1_000;

/// Retry timers are scoped to `(seq, attempt)`: a firing only acts if the
/// op is still outstanding *on that same attempt*. Without the attempt
/// scope, a fast retry (NotActive backoff) and the per-attempt timeout both
/// stay armed for the same op, and each firing re-arms both — under a
/// persistently unavailable group the live timer chains double on every
/// round and the client melts down in an exponential retry storm.
fn op_token(seq: u64, attempts: u32) -> u64 {
    (seq << 20) | u64::from(attempts & 0xF_FFFF)
}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub coord: NodeId,
    pub partitioner: Partitioner,
    /// Per-attempt timeout before re-resolving the active and resending.
    pub op_timeout: Duration,
    /// Grace period before the first operation (cluster boot).
    pub start_delay: Duration,
    /// Stop after this many completed operations (`None` = run forever).
    pub max_ops: Option<u64>,
    /// Pause between a completion and the next operation (zero = closed
    /// loop at full speed). Chaos runs use this to pace bounded histories
    /// across long fault windows.
    pub think: Duration,
    /// When set, every operation's invocation/completion is logged for
    /// linearizability checking.
    pub history: Option<Recorder>,
    /// Opt into speculative acks (`MdsReq::OpSpec`): mutations acknowledge
    /// on apply (before durability) with an ordering token, and reads carry
    /// the last token so the server enforces read-your-writes. A token
    /// regression on a reply means a failover discarded acked operations.
    pub speculative: bool,
}

impl ClientConfig {
    pub fn new(coord: NodeId, partitioner: Partitioner) -> Self {
        ClientConfig {
            coord,
            partitioner,
            op_timeout: Duration::from_millis(1_000),
            start_delay: Duration::from_millis(500),
            max_ops: None,
            think: Duration::ZERO,
            history: None,
            speculative: false,
        }
    }
}

#[derive(Debug)]
struct Outstanding {
    op: FsOp,
    seq: u64,
    issued: SimTime,
    attempts: u32,
    group: u32,
    /// The private-directory setup mkdir (idempotent by construction).
    is_setup: bool,
    /// Index of this op's record in the history log, when recording.
    rec: Option<usize>,
}

/// A closed-loop client (one outstanding operation).
pub struct FsClient {
    cfg: ClientConfig,
    workload: Workload,
    metrics: Arc<Metrics>,
    rng: DetRng,
    seq: u64,
    actives: HashMap<u32, NodeId>,
    outstanding: Option<Outstanding>,
    setup: Option<String>,
    completed: u64,
    /// Last ordering token seen (speculative mode); sent as `min_token`.
    last_token: u64,
    /// Cumulative receipt watermark piggybacked on every request: the
    /// client is closed-loop (one op outstanding), so the last completed
    /// seq means every reply at or below it has been received. The server
    /// evicts exactly those retry-cache entries.
    acked: u64,
}

impl FsClient {
    pub fn new(cfg: ClientConfig, workload: Workload, metrics: Arc<Metrics>, rng: DetRng) -> Self {
        let setup = workload.setup_dir();
        FsClient {
            cfg,
            workload,
            metrics,
            rng,
            seq: SEQ_BASE,
            actives: HashMap::new(),
            outstanding: None,
            setup,
            completed: 0,
            last_token: 0,
            acked: 0,
        }
    }

    /// Wire form of an operation: default durable-ack, or `OpSpec` carrying
    /// the last token when this client opted into speculative mode.
    fn wire_req(&self, op: FsOp, seq: u64) -> MdsReq {
        if self.cfg.speculative {
            MdsReq::OpSpec { op, seq, min_token: self.last_token, acked: self.acked }
        } else {
            MdsReq::Op { op, seq, acked: self.acked }
        }
    }

    fn refresh_view(&self, ctx: &mut Ctx<'_>) {
        ctx.send(self.cfg.coord, CoordReq::List { prefix: "g/".into(), req: 0 });
    }

    fn absorb_active(&mut self, key: &str, value: Option<&str>) {
        if let Some(group) = mams_core::keys::parse_active_key(key) {
            match value.and_then(|v| v.parse().ok()) {
                Some(n) => {
                    self.actives.insert(group, n);
                }
                None => {
                    self.actives.remove(&group);
                }
            }
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.outstanding.is_some() {
            return;
        }
        if let Some(max) = self.cfg.max_ops {
            if self.completed >= max {
                return;
            }
        }
        let mut is_setup = false;
        let op = if let Some(dir) = self.setup.take() {
            is_setup = true;
            FsOp::Mkdir { path: dir }
        } else {
            match self.workload.next_op(&mut self.rng) {
                Some(op) => op,
                None => return, // stream exhausted
            }
        };
        self.seq += 1;
        let group = self.cfg.partitioner.owner(op.primary_path());
        let rec = self
            .cfg
            .history
            .as_ref()
            .map(|h| h.log.invoke(h.client, op.clone(), is_setup, ctx.now().micros()));
        self.outstanding = Some(Outstanding {
            op,
            seq: self.seq,
            issued: ctx.now(),
            attempts: 0,
            group,
            is_setup,
            rec,
        });
        self.attempt(ctx);
    }

    fn attempt(&mut self, ctx: &mut Ctx<'_>) {
        let (seq, group, op, attempts) = match &mut self.outstanding {
            Some(o) => {
                o.attempts += 1;
                (o.seq, o.group, o.op.clone(), o.attempts)
            }
            None => return,
        };
        match self.actives.get(&group) {
            Some(&active) => {
                let req = self.wire_req(op, seq);
                ctx.send(active, req);
            }
            None => {
                self.refresh_view(ctx);
            }
        }
        ctx.set_timer(self.cfg.op_timeout, op_token(seq, attempts));
    }

    /// A retried mutation may hit the result of its own earlier, half-acked
    /// execution; reconcile those errors into successes.
    pub(crate) fn reconcile_retry(op: &FsOp, err: &str) -> bool {
        match op {
            FsOp::Create { .. } | FsOp::Mkdir { .. } => err.contains("already exists"),
            FsOp::Delete { .. } => err.contains("no such file"),
            FsOp::Rename { .. } => err.contains("no such file"),
            _ => false,
        }
    }

    fn finish(
        &mut self,
        ctx: &mut Ctx<'_>,
        ok: bool,
        result: &Result<OpOutput, String>,
        token: Option<u64>,
    ) {
        let o = self.outstanding.take().expect("outstanding op");
        // Closed loop: completing seq N means every reply ≤ N was received.
        self.acked = self.acked.max(o.seq);
        self.metrics.record(o.issued, ctx.now(), ok);
        if let (Some(idx), Some(h)) = (o.rec, self.cfg.history.as_ref()) {
            h.log.complete(idx, ctx.now().micros(), result, ok, o.attempts);
            if let Some(t) = token {
                h.log.set_spec_token(idx, t);
            }
        }
        self.completed += 1;
        if self.cfg.think > Duration::ZERO {
            ctx.set_timer(self.cfg.think, T_NEXT);
        } else {
            self.issue_next(ctx);
        }
    }

    /// Shared completion path for `Reply` and `ReplySpec`.
    fn handle_reply(
        &mut self,
        ctx: &mut Ctx<'_>,
        seq: u64,
        result: Result<OpOutput, String>,
        token: Option<u64>,
    ) {
        let (matches, attempts, is_setup) = match &self.outstanding {
            Some(o) => (o.seq == seq, o.attempts, o.is_setup),
            None => (false, 0, false),
        };
        if !matches {
            return;
        }
        if let Some(t) = token {
            if t < self.last_token {
                // The active changed and our speculatively acked suffix was
                // discarded — the opt-in contract's loss signal.
                ctx.trace("client.spec_token_regressed", || {
                    format!("token {t} < last {}", self.last_token)
                });
            }
            // Adopt the server's timeline either way; subsequent reads wait
            // on it, not on the discarded one.
            self.last_token = t;
        }
        let ok = match &result {
            Ok(_) => true,
            Err(e) => {
                (is_setup && e.contains("already exists"))
                    || (attempts > 1
                        && Self::reconcile_retry(
                            &self.outstanding.as_ref().expect("matched").op,
                            e,
                        ))
            }
        };
        if !ok {
            // A genuine error (e.g. AlreadyExists on a first attempt) is an
            // application-level failure; trace it for diagnosis.
            let err = result.as_ref().err().cloned().unwrap_or_default();
            let op = self.outstanding.as_ref().map(|o| format!("{:?}", o.op));
            ctx.trace("client.op_failed", || format!("{op:?}: {err}"));
        }
        self.finish(ctx, ok, &result, token);
    }
}

impl Node for FsClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.cfg.coord, CoordReq::Watch { prefix: "g/".into(), req: 0 });
        self.refresh_view(ctx);
        ctx.set_timer(self.cfg.start_delay, T_START);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_START || token == T_NEXT {
            self.issue_next(ctx);
            return;
        }
        // Per-op timeout: if the op is still outstanding *on the attempt
        // this timer belongs to*, re-resolve the active and resend with the
        // same seq (server-side duplicate suppression makes this safe).
        // Timers for superseded attempts are inert, so at most one retry
        // chain is ever live per op.
        let (seq, attempt) = (token >> 20, (token & 0xF_FFFF) as u32);
        if self
            .outstanding
            .as_ref()
            .is_some_and(|o| o.seq == seq && o.attempts & 0xF_FFFF == attempt)
        {
            self.refresh_view(ctx);
            self.attempt(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        let msg = match MdsResp::from_message(msg) {
            Ok(resp) => {
                match resp {
                    MdsResp::Reply { seq, result } => {
                        self.handle_reply(ctx, seq, result, None);
                    }
                    MdsResp::ReplySpec { seq, result, token } => {
                        self.handle_reply(ctx, seq, result, Some(token));
                    }
                    MdsResp::NotActive { seq } => {
                        if let Some(o) = self.outstanding.as_ref().filter(|o| o.seq == seq) {
                            // Stale routing: refresh and retry shortly. The
                            // fast timer shares the current attempt's token,
                            // so whichever of it and the full timeout fires
                            // first supersedes the other.
                            let token = op_token(seq, o.attempts);
                            self.refresh_view(ctx);
                            ctx.set_timer(Duration::from_millis(50), token);
                        }
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CoordEvent>() {
            Ok(ev) => {
                if let CoordEvent::KeyChanged { key, value, .. } = ev {
                    self.absorb_active(&key, value.as_deref());
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(CoordResp::Listing { entries, .. }) = msg.downcast::<CoordResp>() {
            for (k, v) in &entries {
                self.absorb_active(k, Some(v));
            }
            // If an op was blocked on routing, push it out now.
            if let Some(o) = &self.outstanding {
                if o.attempts == 1 && self.actives.contains_key(&o.group) {
                    // First attempt may have been swallowed by missing
                    // routing; resend immediately rather than waiting for
                    // the timeout.
                    let (seq, group, op) = (o.seq, o.group, o.op.clone());
                    if let Some(&active) = self.actives.get(&group) {
                        let req = self.wire_req(op, seq);
                        ctx.send(active, req);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::workload::Workload;
    use mams_coord::{CoordConfig, CoordServer};
    use mams_core::OpOutput;
    use mams_sim::{Sim, SimConfig};

    #[test]
    fn reconcile_only_accepts_own_echoes() {
        let create = FsOp::Create { path: "/f".into(), replication: 1 };
        assert!(FsClient::reconcile_retry(&create, "/f: already exists"));
        assert!(!FsClient::reconcile_retry(&create, "/f: no such file or directory"));
        let del = FsOp::Delete { path: "/f".into(), recursive: false };
        assert!(FsClient::reconcile_retry(&del, "/f: no such file or directory"));
        assert!(!FsClient::reconcile_retry(&del, "/f: directory not empty"));
        let read = FsOp::GetFileInfo { path: "/f".into() };
        assert!(!FsClient::reconcile_retry(&read, "/f: already exists"));
    }

    /// A fake MDS that ignores the first `drop_n` requests (forcing client
    /// timeouts + same-seq resends), then answers; duplicate seqs must not
    /// be double-counted by the client.
    struct FlakyMds {
        drop_n: usize,
        seen: Vec<u64>,
        coord: NodeId,
        published: bool,
    }

    impl Node for FlakyMds {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.coord, mams_coord::CoordReq::Register);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
            if msg.is::<mams_coord::CoordResp>() {
                if !self.published {
                    self.published = true;
                    ctx.send(
                        self.coord,
                        mams_coord::CoordReq::Multi {
                            ops: vec![mams_coord::KeyOp::Set {
                                key: mams_core::keys::active(0),
                                value: ctx.id().to_string(),
                                ephemeral: true,
                            }],
                            req: 1,
                        },
                    );
                    ctx.send(self.coord, mams_coord::CoordReq::Heartbeat);
                }
                return;
            }
            if let Ok(mams_core::MdsReq::Op { seq, .. }) = msg.downcast::<mams_core::MdsReq>() {
                self.seen.push(seq);
                if self.drop_n > 0 {
                    self.drop_n -= 1;
                    return; // swallow: client must time out and resend
                }
                ctx.send(from, MdsResp::Reply { seq, result: Ok(OpOutput::Done) });
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
    }

    #[test]
    fn client_resends_with_the_same_seq_after_timeout() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let mds = sim.add_node(
            "mds",
            Box::new(FlakyMds { drop_n: 2, seen: Vec::new(), coord, published: false }),
        );
        let m = Metrics::new(true);
        let mut cfg = ClientConfig::new(coord, Partitioner::new(1));
        cfg.max_ops = Some(1);
        sim.add_node(
            "client",
            Box::new(FsClient::new(
                cfg,
                Workload::script(vec![FsOp::Mkdir { path: "/x".into() }]),
                m.clone(),
                DetRng::seed_from_u64(1),
            )),
        );
        sim.run_for(Duration::from_secs(10));
        assert_eq!(m.ok_count(), 1, "exactly one completion");
        // Latency includes the two dropped attempts (two 1 s timeouts).
        let c = m.completions();
        assert!(c[0].latency_us() >= 2_000_000, "latency {}us", c[0].latency_us());
        let _ = mds;
    }
}
