//! Inodes: the nodes of the namespace tree.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Dense inode identifier, unique within one namespace tree.
pub type InodeId = u64;

/// Root inode id (always present).
pub const ROOT_ID: InodeId = 0;

/// Default permission bits for new files/directories.
pub const DEFAULT_PERM: u16 = 0o755;

/// A node of the namespace tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inode {
    Directory {
        /// Child name → inode id, kept sorted for deterministic iteration
        /// and image encoding. Names are interned `Arc<str>` handles (see
        /// `NamespaceTree`): the many repeated component names of a big
        /// namespace share one allocation apiece.
        children: BTreeMap<Arc<str>, InodeId>,
        perm: u16,
    },
    File {
        /// Block ids in file order.
        blocks: Vec<u64>,
        /// Target replication factor.
        replication: u8,
        /// Whether the file is sealed (no more blocks may be added).
        sealed: bool,
        perm: u16,
    },
}

impl Inode {
    pub fn new_dir() -> Inode {
        Inode::Directory { children: BTreeMap::new(), perm: DEFAULT_PERM }
    }

    pub fn new_file(replication: u8) -> Inode {
        Inode::File { blocks: Vec::new(), replication, sealed: false, perm: DEFAULT_PERM }
    }

    pub fn is_dir(&self) -> bool {
        matches!(self, Inode::Directory { .. })
    }

    pub fn is_file(&self) -> bool {
        matches!(self, Inode::File { .. })
    }

    pub fn perm(&self) -> u16 {
        match self {
            Inode::Directory { perm, .. } | Inode::File { perm, .. } => *perm,
        }
    }

    pub fn set_perm(&mut self, p: u16) {
        match self {
            Inode::Directory { perm, .. } | Inode::File { perm, .. } => *perm = p,
        }
    }
}

/// The answer to `getfileinfo`: a snapshot of one inode's metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileInfo {
    pub path: String,
    pub is_dir: bool,
    /// Block ids (empty for directories).
    pub blocks: Vec<u64>,
    pub replication: u8,
    pub sealed: bool,
    pub perm: u16,
    /// Number of children (directories only).
    pub child_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kind_checks() {
        let d = Inode::new_dir();
        assert!(d.is_dir() && !d.is_file());
        let f = Inode::new_file(3);
        assert!(f.is_file() && !f.is_dir());
        match f {
            Inode::File { replication, sealed, blocks, .. } => {
                assert_eq!(replication, 3);
                assert!(!sealed);
                assert!(blocks.is_empty());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn perm_round_trip() {
        let mut f = Inode::new_file(1);
        assert_eq!(f.perm(), DEFAULT_PERM);
        f.set_perm(0o600);
        assert_eq!(f.perm(), 0o600);
        let mut d = Inode::new_dir();
        d.set_perm(0o700);
        assert_eq!(d.perm(), 0o700);
    }
}
