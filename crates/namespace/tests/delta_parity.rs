//! Randomized fold parity for delta images.
//!
//! A delta folded from a journal range must be *observationally identical*
//! to replaying that range: applying the delta over the base state (or any
//! intermediate state inside the covered range — the apply-anywhere
//! invariant) has to land on exactly the fingerprint a naive full replay
//! reaches. The fold is lossy by design (last-writer-wins, tombstones,
//! severed directories shipped as full subtrees), so these tests are the
//! proof that nothing observable is lost.
//!
//! These are seeded randomized tests, not `proptest` suites: the vendored
//! `proptest` crate is an intentionally empty stand-in (see
//! `vendor/proptest`), so property coverage comes from the vendored `rand`
//! with fixed seeds — deterministic, shrink-free, CI-friendly.
//! `PARITY_CASES` scales the number of cases per test (nightly runs more).

use mams_journal::Txn;
use mams_namespace::{apply_delta, decode_delta, fold_delta, NamespaceTree, ShardedNamespace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases per test; override with `PARITY_CASES` (nightly runs elevated).
fn cases() -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

const TOPS: [&str; 3] = ["a", "b", "c"];
const SUBS: [&str; 3] = ["x", "y", "z"];
const LEAVES: [&str; 8] = ["f0", "f1", "f2", "f3", "g0", "g1", "g2", "g3"];

/// A directory path from the small contended universe ("/" included).
fn rand_dir(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..3u32) {
        0 => "/".to_string(),
        1 => format!("/{}", TOPS[rng.gen_range(0..TOPS.len())]),
        _ => format!(
            "/{}/{}",
            TOPS[rng.gen_range(0..TOPS.len())],
            SUBS[rng.gen_range(0..SUBS.len())]
        ),
    }
}

/// A leaf path under a random universe directory.
fn rand_path(rng: &mut SmallRng) -> String {
    let d = rand_dir(rng);
    let leaf = LEAVES[rng.gen_range(0..LEAVES.len())];
    if d == "/" {
        format!("/{leaf}")
    } else {
        format!("{d}/{leaf}")
    }
}

/// One randomly drawn journal transaction. The mix is collision-heavy on a
/// small universe so folds see repeated writes, delete/recreate identity
/// severing, and renames landing on occupied destinations.
fn rand_txn(rng: &mut SmallRng) -> Txn {
    match rng.gen_range(0..16u32) {
        0..=4 => Txn::Create { path: rand_path(rng), replication: rng.gen_range(1..4u32) as u8 },
        5..=6 => Txn::Mkdir { path: rand_dir(rng) },
        7..=8 => Txn::Delete { path: rand_path(rng), recursive: rng.gen_bool(0.3) },
        9 => Txn::Delete { path: rand_dir(rng), recursive: rng.gen_bool(0.5) },
        10..=11 => Txn::Rename { src: rand_path(rng), dst: rand_path(rng) },
        12 => Txn::Rename { src: rand_dir(rng), dst: rand_dir(rng) },
        13 => Txn::AddBlock {
            path: rand_path(rng),
            block_id: rng.gen_range(0..1u64 << 32),
            len: rng.gen_range(1..1u32 << 20),
        },
        14 => Txn::CloseFile { path: rand_path(rng) },
        _ => Txn::SetPerm { path: rand_path(rng), perm: rng.gen_range(0..0o1000u32) as u16 },
    }
}

/// Grow a tree with `n` *committed* transactions (failed attempts are
/// discarded, as the journal only ever records successful ops) and return
/// the committed sequence.
fn grow(rng: &mut SmallRng, tree: &mut NamespaceTree, n: usize) -> Vec<Txn> {
    let mut journal = Vec::with_capacity(n);
    while journal.len() < n {
        let txn = rand_txn(rng);
        if tree.apply(&txn).is_ok() {
            journal.push(txn);
        }
    }
    journal
}

/// Folding a random journal range and applying the delta over the base
/// state must land on exactly the fingerprint a naive full replay reaches.
#[test]
fn fold_plus_apply_matches_naive_replay() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x000D_E17A_0001 ^ (case << 8));
        let mut live = NamespaceTree::new();
        let base_len = rng.gen_range(0..200usize);
        grow(&mut rng, &mut live, base_len);
        let base = live.clone();
        let base_sn = base_len as u64;

        let range_len = rng.gen_range(1..300usize);
        let journal = grow(&mut rng, &mut live, range_len);
        let end_sn = base_sn + range_len as u64;

        // `live` is now the post state the fold reads final paths from.
        let delta = fold_delta(&live, base_sn, end_sn, journal.iter());
        assert_eq!((delta.base_sn, delta.end_sn), (base_sn, end_sn), "case {case}: range");

        let decoded = decode_delta(&delta.data)
            .unwrap_or_else(|e| panic!("case {case}: decode of a fresh fold failed: {e:?}"));
        let mut patched = base.clone();
        apply_delta(&mut patched, &decoded)
            .unwrap_or_else(|e| panic!("case {case}: apply failed: {e:?}"));
        assert_eq!(
            patched.fingerprint(),
            live.fingerprint(),
            "case {case}: fold+apply diverged from naive replay \
             (base {base_len} ops, range {range_len} ops)"
        );
        assert_eq!(patched.num_files(), live.num_files(), "case {case}: file count");
        assert_eq!(patched.num_dirs(), live.num_dirs(), "case {case}: dir count");
    }
}

/// Apply-anywhere: a delta over `(N, M]` applied at *any* intermediate
/// sn `S ∈ [N, M]` must land on the state at `M`. A renewing junior that
/// crashed mid-range leans on exactly this to skip the base image.
#[test]
fn delta_applies_cleanly_at_every_intermediate_state() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x000D_E17A_0002 ^ (case << 8));
        let mut live = NamespaceTree::new();
        let base_len = rng.gen_range(0..150usize);
        grow(&mut rng, &mut live, base_len);
        let base_sn = base_len as u64;

        // Record every intermediate state across the folded range.
        let range_len = rng.gen_range(1..120usize);
        let mut snapshots = vec![live.clone()]; // state at S = base_sn
        let mut journal = Vec::with_capacity(range_len);
        for txn in grow(&mut rng, &mut live, range_len) {
            journal.push(txn);
            snapshots.push(live.clone());
        }
        let end_sn = base_sn + range_len as u64;
        let delta = fold_delta(&live, base_sn, end_sn, journal.iter());
        let decoded = decode_delta(&delta.data).expect("fresh fold decodes");

        let want = live.fingerprint();
        for (i, snap) in snapshots.into_iter().enumerate() {
            let mut patched = snap;
            apply_delta(&mut patched, &decoded)
                .unwrap_or_else(|e| panic!("case {case}: apply at S = base+{i} failed: {e:?}"));
            assert_eq!(
                patched.fingerprint(),
                want,
                "case {case}: delta applied at S = base+{i} missed the end state"
            );
        }
    }
}

/// The sharded namespace a live replica runs must accept the same deltas
/// the flat tree does and land on the same fingerprint — the renewing
/// consumer applies deltas straight onto its `ShardedNamespace`.
#[test]
fn sharded_apply_matches_tree_apply() {
    for case in 0..cases() {
        // Odd shard counts and 1 exercise the modulo layout edge cases.
        let shards = [1usize, 2, 4, 16][case as usize % 4];
        let mut rng = SmallRng::seed_from_u64(0x000D_E17A_0003 ^ (case << 8));
        let mut live = NamespaceTree::new();
        let base_len = rng.gen_range(0..150usize);
        let prefix = grow(&mut rng, &mut live, base_len);
        let base = live.clone();

        let range_len = rng.gen_range(1..200usize);
        let journal = grow(&mut rng, &mut live, range_len);
        let delta =
            fold_delta(&live, base_len as u64, (base_len + range_len) as u64, journal.iter());
        let decoded = decode_delta(&delta.data).expect("fresh fold decodes");

        // Stand a sharded replica up at the base state, then patch it.
        let mut sharded = ShardedNamespace::with_shards(shards);
        for txn in &prefix {
            sharded.apply(txn).unwrap_or_else(|e| {
                panic!("case {case}: sharded replay of committed txn failed: {e:?}")
            });
        }
        apply_delta(&mut sharded, &decoded)
            .unwrap_or_else(|e| panic!("case {case}: sharded apply failed: {e:?}"));

        let mut tree = base;
        apply_delta(&mut tree, &decoded).expect("tree apply");
        assert_eq!(
            sharded.fingerprint(),
            tree.fingerprint(),
            "case {case} ({shards} shards): sharded and tree apply diverged"
        );
        assert_eq!(sharded.fingerprint(), live.fingerprint(), "case {case}: vs naive replay");
    }
}

/// Deltas are idempotent: applying the same delta twice is a no-op, since
/// entries carry whole final states and tombstones are remove-if-present.
/// Catch-up retries after a dropped ack depend on this.
#[test]
fn double_apply_is_idempotent() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x000D_E17A_0004 ^ (case << 8));
        let mut live = NamespaceTree::new();
        let base_len = rng.gen_range(0..100usize);
        grow(&mut rng, &mut live, base_len);
        let base = live.clone();

        let range_len = rng.gen_range(1..150usize);
        let journal = grow(&mut rng, &mut live, range_len);
        let delta =
            fold_delta(&live, base_len as u64, (base_len + range_len) as u64, journal.iter());
        let decoded = decode_delta(&delta.data).expect("fresh fold decodes");

        let mut patched = base;
        apply_delta(&mut patched, &decoded).expect("first apply");
        let once = patched.fingerprint();
        apply_delta(&mut patched, &decoded).expect("second apply");
        assert_eq!(patched.fingerprint(), once, "case {case}: double apply drifted");
        assert_eq!(patched.fingerprint(), live.fingerprint(), "case {case}: vs replay");
    }
}

/// Any single flipped byte in the encoded delta must fail decoding loudly —
/// the consumer's fallback ladder (full image, then journal) only engages
/// when corruption is *detected*.
#[test]
fn corruption_anywhere_is_detected() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x000D_E17A_0005 ^ (case << 8));
        let mut live = NamespaceTree::new();
        grow(&mut rng, &mut live, 40);
        let base_sn = 40u64;
        let journal = grow(&mut rng, &mut live, 60);
        let delta = fold_delta(&live, base_sn, base_sn + 60, journal.iter());
        assert!(decode_delta(&delta.data).is_ok(), "case {case}: clean delta decodes");

        for _ in 0..16 {
            let mut bytes = delta.data.to_vec();
            let pos = rng.gen_range(0..bytes.len());
            let flip = rng.gen_range(1..256u32) as u8;
            bytes[pos] ^= flip;
            assert!(
                decode_delta(&bytes).is_err(),
                "case {case}: flipping byte {pos} went undetected"
            );
        }
        // Truncation at any prefix length is also loud.
        let cut = rng.gen_range(0..delta.data.len());
        assert!(decode_delta(&delta.data[..cut]).is_err(), "case {case}: truncation at {cut}");
    }
}
