//! # mams-namespace — the metadata server's in-memory file system state
//!
//! A CFS/HDFS-style namespace: an inode tree of directories and files, the
//! metadata operations the paper benchmarks (`create`, `mkdir`, `delete`,
//! `rename`, `getfileinfo`), hash-based namespace partitioning across
//! multiple actives (Section III-A: "Hash-based methods are adopted for
//! namespace partitioning and metadata distribution"), namespace images
//! (checkpoints juniors load during renewing), and the block-location map
//! that data servers keep fresh on actives *and* standbys.
//!
//! Mutations are driven by [`mams_journal::Txn`] records so that live
//! execution on the active and journal replay on a standby run the exact
//! same code — the replay-determinism invariant the property tests check.

pub mod blocks;
pub mod delta;
pub mod image;
pub mod inode;
pub mod partition;
pub mod path;
pub mod retry;
pub mod shard;
pub mod tree;

pub use blocks::{BlockInfo, BlockMap};
pub use delta::{
    apply_delta, decode_delta, encode_delta, encode_delta_with_window, fold_delta,
    fold_delta_with_window, peek_delta_range, DecodedDelta, DeltaEntry, DeltaImage, DeltaNamespace,
    DeltaOp, DELTA_MAGIC, DELTA_VERSION,
};
pub use image::{
    decode_image, decode_image_with_window, encode_image, encode_image_v1,
    encode_image_with_window, estimated_image_bytes, ImageError, NamespaceImage,
    StreamingImageDecoder, VERSION_V1, VERSION_V2,
};
pub use inode::{FileInfo, Inode, InodeId};
pub use partition::Partitioner;
pub use retry::{replay_outcome, RetryEntry, RetryOutcome, RetryWindow, DEFAULT_WINDOW_CAP};
pub use shard::{CacheStats, ShardedNamespace, ShardedReplaySession, SnapshotView};
pub use tree::{NamespaceTree, NsError, ReplaySession};
