//! Figure 7: proportion of MAMS failover time spent in each stage,
//! excluding the session timeout — active election, active-standby
//! switching, and client reconnection.
//!
//! Expected shape (paper): election is the smallest share (<100 ms —
//! event-triggered bids + the lock grant), switching is bounded and stable,
//! and client reconnection grows to dominate as total failover time grows.

use mams_bench::{print_table, save_json};
use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_sim::{Sim, SimConfig, SimTime};

const KILL_AT: SimTime = SimTime(15_000_000);
const RUNS: u64 = 10;

struct Stages {
    election_ms: f64,
    switching_ms: f64,
    reconnection_ms: f64,
}

fn run_once(seed: u64) -> Option<Stages> {
    let mut sim = Sim::new(SimConfig { seed, trace: true, ..SimConfig::default() });
    let mut d =
        build(&mut sim, DeploySpec { groups: 1, standbys_per_group: 3, ..DeploySpec::default() });
    let metrics = Metrics::new(true);
    d.add_client(&mut sim, Workload::create_only(0), metrics.clone());
    let victim = d.initial_active(0);
    sim.at(KILL_AT, move |s| s.crash(victim));
    sim.run_until(SimTime(45_000_000));

    let trace = sim.trace();
    let detected = trace.first_at_or_after("failover.detected", KILL_AT)?.time;
    let lock = trace.first_at_or_after("failover.lock_acquired", KILL_AT)?.time;
    let switch_done = trace.first_at_or_after("failover.switch_done", KILL_AT)?.time;
    let first_success = metrics
        .completions()
        .iter()
        .filter(|c| c.ok && c.at_us > switch_done.micros())
        .map(|c| c.at_us)
        .next()?;
    Some(Stages {
        election_ms: (lock - detected).micros() as f64 / 1e3,
        switching_ms: (switch_done - lock).micros() as f64 / 1e3,
        reconnection_ms: (first_success - switch_done.micros()) as f64 / 1e3,
    })
}

fn main() {
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut ok_elect = true;
    for run in 0..RUNS {
        let s = match run_once(0xF167 + run * 104_729) {
            Some(s) => s,
            None => continue,
        };
        let total = s.election_ms + s.switching_ms + s.reconnection_ms;
        rows.push(vec![
            format!("{run}"),
            format!("{:.1}", s.election_ms),
            format!("{:.1}", s.switching_ms),
            format!("{:.1}", s.reconnection_ms),
            format!("{:.1}", total),
            format!("{:.0}%", s.election_ms / total * 100.0),
            format!("{:.0}%", s.switching_ms / total * 100.0),
            format!("{:.0}%", s.reconnection_ms / total * 100.0),
        ]);
        json_rows.push(serde_json::json!({
            "election_ms": s.election_ms,
            "switching_ms": s.switching_ms,
            "reconnection_ms": s.reconnection_ms,
        }));
        ok_elect &= s.election_ms < 100.0;
    }
    print_table(
        "Figure 7: MAMS failover stages (excluding the 5 s session timeout)",
        &[
            "run",
            "election ms",
            "switch ms",
            "reconnect ms",
            "total ms",
            "elec %",
            "switch %",
            "reconn %",
        ],
        &rows,
    );
    println!("\nShape checks (paper):");
    println!("  * election under 100 ms in every run: {}", if ok_elect { "yes" } else { "NO" });
    println!("  * client reconnection dominates as total failover time grows");
    save_json("fig7_stage_breakdown", &serde_json::json!({ "runs": json_rows }));
}
