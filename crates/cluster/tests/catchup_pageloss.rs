//! Windowed journal catch-up under sustained page loss.
//!
//! Regression guard on the paged `CatchupStage::Journal` path: a junior
//! replaying the shared journal pages its reads with several requests in
//! flight. When pages are repeatedly lost, the re-anchor-on-idle repair must
//! keep re-driving the window until the junior converges — a single lost
//! page must never strand the renewal.

use mams_cluster::deploy::{build, DeploySpec};
use mams_cluster::faults;
use mams_cluster::metrics::Metrics;
use mams_cluster::workload::Workload;
use mams_sim::{Duration, Sim, SimConfig, SimTime};

#[test]
fn journal_catchup_converges_under_sustained_page_loss() {
    let mut s = Sim::new(SimConfig { seed: 77, ..SimConfig::default() });
    let mut spec = DeploySpec { standbys_per_group: 2, ..DeploySpec::default() };
    // Force the journal-replay path: never fall back to an image load, no
    // matter how far behind the junior is.
    spec.timing.renew_image_gap = u64::MAX;
    let mut d = build(&mut s, spec);

    let m = Metrics::new(false);
    d.add_client(&mut s, Workload::create_only(0), m.clone());

    // Take a standby down long enough for its session to expire and a real
    // journal gap to accumulate, then restart it into a lossy world: every
    // junior↔pool link drops half its messages while it catches up.
    let standby = d.groups[0].members[2];
    faults::schedule_crash_restart(&mut s, standby, SimTime(10_000_000), Duration::from_secs(6));
    for &p in &d.pool {
        faults::schedule_loss(
            &mut s,
            standby,
            p,
            0.5,
            SimTime(16_000_000),
            Some(Duration::from_secs(20)),
        );
    }
    s.run_for(Duration::from_secs(80));

    let trace = s.trace();
    // The junior must have converged and been promoted back to standby —
    // if catch-up wedges on a lost page, this is what goes missing.
    let promoted = trace.events().iter().any(|e| {
        e.tag == "renew.promoted"
            && e.detail == format!("n{standby}")
            && e.time > SimTime(16_000_000)
    });
    assert!(promoted, "restarted member never converged back to standby under page loss");
    // Replaying with lost-and-retried pages must not reorder or skip
    // records.
    assert!(
        !trace.events().iter().any(|e| e.tag == "replica.diverged"),
        "catch-up under loss produced a divergent replica"
    );
    // The cluster as a whole kept serving throughout.
    assert!(m.ok_count() > 1_000, "only {} ops completed", m.ok_count());
}
