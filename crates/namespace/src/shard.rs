//! A sharded namespace with epoch-snapshot reads.
//!
//! [`NamespaceTree`] is a single mutable structure: one op at a time, reads
//! blocking behind mutations. This module breaks that ceiling for the active
//! server's hot path while keeping the replicated-state contract intact:
//!
//! * **Inode-id sharding.** Inodes live in N power-of-two shards keyed by
//!   `id % N`, each behind its own `RwLock`. Directory entries, the interned
//!   component-name table, and the parent-directory resolution cache all move
//!   to per-shard state, so ops on unrelated directories touch disjoint
//!   locks. New *file* ids are allocated from their parent directory's shard
//!   (a create or block op locks exactly one shard); new *directory* ids are
//!   spread by hashing `(parent, name)` so a deep tree doesn't collapse into
//!   the root's shard.
//!
//! * **Epoch-snapshot reads.** Every mutation is stamped from a global
//!   counter and published in stamp order to a `visible` epoch. A reader can
//!   [`pin`] the current epoch and see a point-in-time namespace regardless
//!   of concurrent mutations: mutators that run while a pin is registered
//!   preserve the displaced version of each inode they touch in a per-slot
//!   history chain (copy-on-write at inode granularity). When no pin is
//!   registered — the common case on the hot path — mutations write in
//!   place and the structure behaves like the legacy tree plus a lock.
//!
//! * **Deterministic multi-shard lock order.** Ops that touch several shards
//!   (mkdir, cross-directory file rename) lock them in ascending shard-index
//!   order; structural subtree ops (directory rename, recursive delete) take
//!   every shard — the namespace-level analogue of the paper's "structural
//!   operations are distributed transactions". Readers never hold two shard
//!   locks at once (each path step locks exactly one shard), so they can
//!   never deadlock against ascending-order writers.
//!
//! ### Pin/mutator protocol
//!
//! The correctness pivot is the race between a mutator deciding "no pins ⇒
//! in-place write is safe" and a reader concurrently registering a pin at an
//! epoch that still needs the displaced version. A `gate: RwLock<()>` closes
//! it: every mutator holds `gate.read()` from before its first write until
//! after it publishes its stamp; a pin registers under `gate.write()`. Pin
//! registration therefore sees a quiescent namespace (`visible` equals the
//! latest allocated stamp) and any mutator that starts afterwards observes
//! the registered pin and copies on write. Unpinning is a plain atomic store
//! — a mutator that still sees a dying pin merely preserves a version nobody
//! reads, which the lazy pruning below reclaims.
//!
//! Version chains are pruned on the next write to a slot once the pins that
//! needed them are gone; subtree deletions performed while a pin was active
//! leave tombstones that each shard sweeps at the start of a later mutation.
//!
//! ### Replay parity
//!
//! Standbys replay journal records through [`ShardedReplaySession`] (the
//! validate-skip analogue of [`ReplaySession`]) and juniors install decoded
//! images via [`ShardedNamespace::from_tree`]; both produce a namespace whose
//! [`fingerprint`] is byte-for-byte the legacy tree's over the same history —
//! inode ids may differ (per-shard allocators), but the fingerprint hashes
//! structure, names, and attributes, never ids. Property tests pin this
//! parity (`tests/sharded_parity.rs`).
//!
//! [`pin`]: ShardedNamespace::pin
//! [`fingerprint`]: ShardedNamespace::fingerprint
//! [`ReplaySession`]: crate::tree::ReplaySession

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockWriteGuard};

use mams_journal::{Apply, Txn, TxnId};

use crate::inode::{FileInfo, Inode, InodeId, DEFAULT_PERM, ROOT_ID};
use crate::partition::fnv1a64;
use crate::path::{self, PathError};
use crate::tree::{NamespaceTree, NsError};

/// Mutation stamp: allocated per mutation, published in order to `visible`.
pub type Stamp = u64;

/// Default shard count (power of two).
pub const DEFAULT_SHARDS: usize = 16;
/// Concurrent snapshot-pin capacity; `pin` waits for a free slot beyond it.
const MAX_PINS: usize = 32;
/// Sentinel for an unoccupied pin slot.
const PIN_EMPTY: u64 = u64::MAX;
/// Per-shard intern-table bound (legacy table split across shards).
const SHARD_NAME_CAP: usize = 1 << 12;
/// Per-shard resolution-cache bound.
const SHARD_CACHE_CAP: usize = 1 << 10;

/// One inode's versions. `stamp`/`node` is the newest version; `hist` holds
/// displaced versions (oldest first) and is empty unless mutations ran while
/// a snapshot pin was registered. `node == None` is a tombstone: the inode
/// was deleted at `stamp` but an older version may still be pinned.
#[derive(Debug)]
struct Slot {
    stamp: Stamp,
    node: Option<Inode>,
    hist: Vec<(Stamp, Option<Inode>)>,
}

impl Slot {
    fn base(node: Inode) -> Slot {
        Slot { stamp: 0, node: Some(node), hist: Vec::new() }
    }

    fn fresh(stamp: Stamp, node: Inode) -> Slot {
        Slot { stamp, node: Some(node), hist: Vec::new() }
    }

    /// Newest version (what unpinned readers and mutators see).
    fn latest(&self) -> Option<&Inode> {
        self.node.as_ref()
    }

    /// The version visible at `epoch`, if the inode existed then.
    fn at(&self, epoch: Stamp) -> Option<&Inode> {
        if self.stamp <= epoch {
            return self.node.as_ref();
        }
        self.hist.iter().rev().find(|(s, _)| *s <= epoch).and_then(|(_, n)| n.as_ref())
    }

    /// Version visible at `epoch`, or newest when `epoch` is `None`.
    fn view(&self, epoch: Option<Stamp>) -> Option<&Inode> {
        match epoch {
            None => self.latest(),
            Some(e) => self.at(e),
        }
    }

    /// Open the newest version for writing at `stamp`. `keep` is the oldest
    /// registered pin epoch: when present, the displaced version is pushed
    /// onto the history chain (after pruning what no pin can read any more);
    /// when absent the chain is cleared and the write happens in place.
    /// Idempotent per stamp, so one op may touch a slot twice.
    fn open(&mut self, stamp: Stamp, keep: Option<Stamp>) -> &mut Option<Inode> {
        if self.stamp == stamp {
            return &mut self.node;
        }
        match keep {
            None => self.hist.clear(),
            Some(w) => {
                // Keep the newest history entry at-or-below the oldest pin
                // (it serves that pin) and everything newer.
                if let Some(pos) = self.hist.iter().rposition(|(s, _)| *s <= w) {
                    self.hist.drain(..pos);
                }
                self.hist.push((self.stamp, self.node.clone()));
            }
        }
        self.stamp = stamp;
        &mut self.node
    }
}

/// Hasher for inode-id keys. Ids are sequential per shard (stride = shard
/// count), so SipHash's DoS resistance buys nothing here while dominating
/// the cost of every slot lookup on the hot path; a SplitMix-style mix is
/// a few cycles and fully scrambles the stride (a bare multiply would leave
/// the low bits — the bucket index — in lock-step).
#[derive(Default, Clone, Copy)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("inode-id keys hash via write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z ^= z >> 32;
        self.0 = z.wrapping_mul(0xd6e8_feb8_6659_fd93);
    }
}

type IdBuild = std::hash::BuildHasherDefault<IdHasher>;

/// Hasher for path and name string keys (resolution cache, name interner).
/// Paths are short (tens of bytes) trusted strings, so FNV-1a beats
/// SipHash's fixed finalization cost on every probe.
#[derive(Clone, Copy)]
struct PathHasher(u64);

impl Default for PathHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for PathHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        self.0 = h;
    }
}

type PathBuild = std::hash::BuildHasherDefault<PathHasher>;

/// Mutable per-shard state, behind the shard's `RwLock`.
#[derive(Debug, Default)]
struct ShardState {
    slots: HashMap<InodeId, Slot, IdBuild>,
    /// Interned child-name handles for entries living in this shard's
    /// directories (same bounded-reset policy as the legacy table).
    names: HashSet<Arc<str>, PathBuild>,
    /// Next inode id this shard hands out (always ≡ shard index mod N).
    next_id: InodeId,
    /// Tombstoned ids awaiting the no-pins sweep.
    dead: Vec<InodeId>,
}

impl ShardState {
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(n) = self.names.get(name) {
            return n.clone();
        }
        if self.names.len() >= SHARD_NAME_CAP {
            self.names.clear();
        }
        let n: Arc<str> = Arc::from(name);
        self.names.insert(n.clone());
        n
    }

    fn alloc_id(&mut self, nshards: u64) -> InodeId {
        let id = self.next_id;
        self.next_id += nshards;
        id
    }
}

#[derive(Debug)]
struct Shard {
    state: RwLock<ShardState>,
}

/// One shard of the path → directory-id resolution cache (sharded by path
/// hash, independently of the inode shards). Entries are stamped with the
/// mutation that inserted them: an entry is valid for an unpinned reader
/// whenever present (the legacy invalidation invariant — only delete/rename
/// relocate a directory, and both remove the entry), and valid for a pinned
/// reader at epoch `E` when its stamp is ≤ `E` (the binding has held
/// continuously from the stamp to now, which covers `E`).
struct CacheShard {
    map: Mutex<HashMap<Box<str>, (InodeId, Stamp), PathBuild>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for CacheShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheShard")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

/// Resolution-cache hit/miss counters, summed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// Ascending-order write guards over a set of shards (the deterministic
/// multi-shard lock order for cross-shard ops).
struct Locked<'a> {
    guards: Vec<(usize, RwLockWriteGuard<'a, ShardState>)>,
}

impl Locked<'_> {
    fn get(&mut self, shard: usize) -> &mut ShardState {
        let i = self
            .guards
            .binary_search_by_key(&shard, |g| g.0)
            .expect("op touched a shard outside its lock set");
        &mut self.guards[i].1
    }
}

/// The sharded, concurrently-usable namespace. All operations take `&self`;
/// the structure is `Sync` and is shared across shard workers and reader
/// threads without external locking.
pub struct ShardedNamespace {
    shards: Box<[Shard]>,
    cache: Box<[CacheShard]>,
    mask: usize,
    /// Pin/mutator coordination gate (see module docs): mutators hold it
    /// shared across apply+publish, pin registration takes it exclusively.
    gate: RwLock<()>,
    next_stamp: AtomicU64,
    visible: AtomicU64,
    pins_active: AtomicUsize,
    pin_slots: Box<[AtomicU64]>,
    num_files: AtomicU64,
    num_dirs: AtomicU64,
    divergences: AtomicU64,
}

impl std::fmt::Debug for ShardedNamespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNamespace")
            .field("shards", &self.shards.len())
            .field("num_files", &self.num_files())
            .field("num_dirs", &self.num_dirs())
            .field("visible", &self.visible.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ShardedNamespace {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedNamespace {
    /// A namespace containing only the root directory, with
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A namespace with `n` shards (rounded up to a power of two, clamped to
    /// `1..=256`).
    pub fn with_shards(n: usize) -> Self {
        let n = n.clamp(1, 256).next_power_of_two();
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            let mut st = ShardState {
                // Shard k hands out ids ≡ k (mod n); id 0 is the root.
                next_id: if k == 0 { n as u64 } else { k as u64 },
                ..ShardState::default()
            };
            if k == 0 {
                st.slots.insert(ROOT_ID, Slot::base(Inode::new_dir()));
            }
            shards.push(Shard { state: RwLock::new(st) });
        }
        let cache = (0..n)
            .map(|_| CacheShard {
                map: Mutex::new(HashMap::default()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
            .collect::<Vec<_>>();
        ShardedNamespace {
            shards: shards.into_boxed_slice(),
            cache: cache.into_boxed_slice(),
            mask: n - 1,
            gate: RwLock::new(()),
            next_stamp: AtomicU64::new(0),
            visible: AtomicU64::new(0),
            pins_active: AtomicUsize::new(0),
            pin_slots: (0..MAX_PINS).map(|_| AtomicU64::new(PIN_EMPTY)).collect(),
            num_files: AtomicU64::new(0),
            num_dirs: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
        }
    }

    /// Build from a legacy tree (the image-install path: the streaming
    /// decoder produces a [`NamespaceTree`], the junior installs it here).
    /// Ids are preserved; placement follows `id % N`.
    pub fn from_tree(tree: NamespaceTree) -> Self {
        Self::from_tree_with_shards(tree, DEFAULT_SHARDS)
    }

    /// [`from_tree`](Self::from_tree) with an explicit shard count.
    pub fn from_tree_with_shards(tree: NamespaceTree, n: usize) -> Self {
        let ns = Self::with_shards(n);
        let nshards = ns.shards.len() as u64;
        let (inodes, next_id, num_files, num_dirs) = tree.into_parts();
        {
            let mut guards: Vec<_> = ns.shards.iter().map(|s| s.state.write().unwrap()).collect();
            for (id, inode) in inodes {
                guards[(id as usize) & ns.mask].slots.insert(id, Slot::base(inode));
            }
            // Each shard's allocator resumes above every legacy id.
            for (k, g) in guards.iter_mut().enumerate() {
                let k = k as u64;
                let base = next_id.max(1);
                // Smallest value ≥ base that is ≡ k (mod n).
                let rem = base % nshards;
                let mut v = base + (k + nshards - rem) % nshards;
                if v == 0 {
                    v = nshards;
                }
                g.next_id = g.next_id.max(v);
            }
        }
        ns.num_files.store(num_files, Ordering::Relaxed);
        ns.num_dirs.store(num_dirs, Ordering::Relaxed);
        ns
    }

    /// Flatten the newest versions into a legacy tree (checkpoint encoding
    /// goes through this; ids are preserved).
    pub fn to_tree(&self) -> NamespaceTree {
        let mut inodes = HashMap::new();
        let mut next_id: InodeId = 1;
        for shard in self.shards.iter() {
            let st = shard.state.read().unwrap();
            next_id = next_id.max(st.next_id);
            for (&id, slot) in &st.slots {
                if let Some(node) = slot.latest() {
                    inodes.insert(id, node.clone());
                }
            }
        }
        NamespaceTree::from_parts(inodes, next_id, self.num_files(), self.num_dirs())
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of files.
    pub fn num_files(&self) -> u64 {
        self.num_files.load(Ordering::Relaxed)
    }

    /// Number of directories, excluding the root.
    pub fn num_dirs(&self) -> u64 {
        self.num_dirs.load(Ordering::Relaxed)
    }

    /// Replay divergence count (must stay 0 in a correct deployment).
    pub fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::Relaxed)
    }

    /// Resolution-cache hit/miss counters summed over shards (the bench
    /// surfaces these in `BENCH_hotpath.json`).
    pub fn cache_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in self.cache.iter() {
            s.hits += c.hits.load(Ordering::Relaxed);
            s.misses += c.misses.load(Ordering::Relaxed);
        }
        s
    }

    /// The shard worker an op on `p` should run on: ops against the same
    /// parent directory map to the same worker, so per-shard journal order
    /// matches per-directory serve order. Purely a scheduling hint — any
    /// assignment is correct.
    pub fn home_shard(&self, p: &str) -> usize {
        let dir = path::parent(p).unwrap_or("/");
        (fnv1a64(dir.as_bytes()) as usize) & self.mask
    }

    // ------------------------------------------------------------------
    // Internal plumbing
    // ------------------------------------------------------------------

    #[inline]
    fn shard_of(&self, id: InodeId) -> usize {
        (id as usize) & self.mask
    }

    /// Target shard for a new directory id: spread by (parent, name) so deep
    /// trees don't pile into one shard. Deterministic, so replicas replaying
    /// the same journal allocate identically.
    fn dir_home(&self, parent: InodeId, name: &str) -> usize {
        let mut h = fnv1a64(name.as_bytes());
        h ^= parent.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h as usize) & self.mask
    }

    fn alloc_stamp(&self) -> Stamp {
        self.next_stamp.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publish `s` once every earlier stamp is visible. Called after the
    /// shard locks are dropped but while the gate is still held shared.
    fn publish(&self, s: Stamp) {
        let mut spins = 0u32;
        while self.visible.load(Ordering::Acquire) != s - 1 {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.visible.store(s, Ordering::Release);
    }

    /// Oldest registered pin epoch, or `None` when no snapshot is pinned
    /// (the in-place fast path).
    fn watermark(&self) -> Option<Stamp> {
        if self.pins_active.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut w = None;
        for s in self.pin_slots.iter() {
            let v = s.load(Ordering::Acquire);
            if v != PIN_EMPTY {
                w = Some(w.map_or(v, |x: u64| x.min(v)));
            }
        }
        w
    }

    /// Reclaim tombstoned slots once no pin can see them. Runs at the start
    /// of mutations on shards that accumulated tombstones.
    fn sweep(&self, st: &mut ShardState) {
        if st.dead.is_empty() || self.pins_active.load(Ordering::Acquire) != 0 {
            return;
        }
        for id in st.dead.drain(..) {
            if st.slots.get(&id).is_some_and(|s| s.node.is_none()) {
                st.slots.remove(&id);
            }
        }
    }

    fn lock_set(&self, idxs: &[usize]) -> Locked<'_> {
        let mut v: Vec<usize> = idxs.to_vec();
        v.sort_unstable();
        v.dedup();
        Locked {
            guards: v.into_iter().map(|i| (i, self.shards[i].state.write().unwrap())).collect(),
        }
    }

    fn lock_all(&self) -> Locked<'_> {
        Locked {
            guards: (0..self.shards.len())
                .map(|i| (i, self.shards[i].state.write().unwrap()))
                .collect(),
        }
    }

    fn cache_shard(&self, p: &str) -> &CacheShard {
        &self.cache[(fnv1a64(p.as_bytes()) as usize) & self.mask]
    }

    /// Probe the resolution cache. `epoch` filters entries stamped after a
    /// pinned snapshot. Contended probes count as misses (`try_lock`): the
    /// reader falls back to the walk rather than blocking.
    fn cache_get(&self, p: &str, epoch: Option<Stamp>) -> Option<InodeId> {
        let cs = self.cache_shard(p);
        let m = cs.map.try_lock().ok()?;
        let &(id, s) = m.get(p)?;
        if epoch.is_some_and(|e| s > e) {
            return None;
        }
        Some(id)
    }

    /// Record `p → id` (mutation paths only, while holding the op's shard
    /// write locks — this serializes inserts against the invalidations of
    /// structural ops, which also hold their shard locks).
    fn cache_put(&self, p: &str, id: InodeId, stamp: Stamp) {
        let cs = self.cache_shard(p);
        let mut m = cs.map.lock().unwrap();
        if m.contains_key(p) {
            // Keep the older entry: the binding is unchanged and the older
            // stamp serves more pinned epochs.
            return;
        }
        if m.len() >= SHARD_CACHE_CAP {
            m.clear();
        }
        m.insert(Box::from(p), (id, stamp));
    }

    /// Drop the entry for `p` — and, when `p` was a directory, every entry
    /// beneath it (the subtree moved or disappeared). Scans all cache shards
    /// for the subtree case: descendant paths hash anywhere.
    fn cache_invalidate(&self, p: &str, was_dir: bool) {
        if was_dir {
            for cs in self.cache.iter() {
                cs.map
                    .lock()
                    .unwrap()
                    .retain(|k, _| !(k.as_ref() == p || path::is_strict_descendant(k, p)));
            }
        } else {
            self.cache_shard(p).map.lock().unwrap().remove(p);
        }
    }

    /// Read the version of `id` visible at `epoch` (newest when `None`).
    fn with_node<R>(
        &self,
        id: InodeId,
        epoch: Option<Stamp>,
        f: impl FnOnce(&Inode) -> R,
    ) -> Option<R> {
        let st = self.shards[self.shard_of(id)].state.read().unwrap();
        st.slots.get(&id).and_then(|s| s.view(epoch)).map(f)
    }

    /// From-root component walk at `epoch`. One shard read lock per step —
    /// readers never hold two shard locks at once.
    fn walk(&self, p: &str, epoch: Option<Stamp>) -> Option<InodeId> {
        let mut cur = ROOT_ID;
        for comp in path::components(p) {
            let st = self.shards[self.shard_of(cur)].state.read().unwrap();
            match st.slots.get(&cur)?.view(epoch)? {
                Inode::Directory { children, .. } => cur = *children.get(comp)?,
                Inode::File { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Resolve a validated path at `epoch`: full-path cache probe first
    /// (directories are the cached population, and dir resolution dominates
    /// this fast path — parent lookups for mutations), then a parent-dir
    /// probe (covers files with a warm parent), then the walk. Maintains
    /// the hit/miss counters — a walk fallback is the "miss" the legacy
    /// tree never recorded.
    fn resolve(&self, p: &str, epoch: Option<Stamp>) -> Option<InodeId> {
        if p == "/" {
            return Some(ROOT_ID);
        }
        let cs = self.cache_shard(p);
        if let Ok(m) = cs.map.try_lock() {
            if let Some(&(id, s)) = m.get(p) {
                if epoch.is_none_or(|e| s <= e) {
                    drop(m);
                    cs.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(id);
                }
            }
        }
        if let Some((dir, name)) = path::split(p) {
            let pid = if dir == "/" { Some(ROOT_ID) } else { self.cache_get(dir, epoch) };
            if let Some(pid) = pid {
                let st = self.shards[self.shard_of(pid)].state.read().unwrap();
                if let Some(Inode::Directory { children, .. }) =
                    st.slots.get(&pid).and_then(|s| s.view(epoch))
                {
                    cs.hits.fetch_add(1, Ordering::Relaxed);
                    return children.get(name).copied();
                }
            }
        }
        cs.misses.fetch_add(1, Ordering::Relaxed);
        self.walk(p, epoch)
    }

    /// Resolve the parent directory of `p` at `epoch`, classifying failures
    /// exactly like the legacy tree.
    fn resolve_parent(&self, p: &str, epoch: Option<Stamp>) -> Result<InodeId, NsError> {
        let parent = path::parent(p).ok_or(NsError::RootImmutable)?;
        match self.resolve(parent, epoch) {
            Some(id) => match self.with_node(id, epoch, Inode::is_dir) {
                Some(true) => Ok(id),
                Some(false) => Err(NsError::ParentNotDirectory(p.to_string())),
                None => Err(NsError::ParentNotFound(p.to_string())),
            },
            None => Err(self.parent_missing_error(p, parent, epoch)),
        }
    }

    /// Classify a failed parent resolution the way the legacy tree does:
    /// a file somewhere along the chain is `ParentNotDirectory`, anything
    /// else `ParentNotFound`.
    fn parent_missing_error(&self, p: &str, parent: &str, epoch: Option<Stamp>) -> NsError {
        if self.chain_has_file(parent, epoch) {
            NsError::ParentNotDirectory(p.to_string())
        } else {
            NsError::ParentNotFound(p.to_string())
        }
    }

    fn chain_has_file(&self, p: &str, epoch: Option<Stamp>) -> bool {
        let mut cur = ROOT_ID;
        for comp in path::components(p) {
            let st = self.shards[self.shard_of(cur)].state.read().unwrap();
            match st.slots.get(&cur).and_then(|s| s.view(epoch)) {
                Some(Inode::Directory { children, .. }) => match children.get(comp) {
                    Some(id) => cur = *id,
                    None => return false,
                },
                Some(Inode::File { .. }) => return true,
                None => return false,
            }
        }
        self.with_node(cur, epoch, Inode::is_file).unwrap_or(false)
    }

    fn info_of(p: &str, node: &Inode) -> FileInfo {
        match node {
            Inode::Directory { children, perm } => FileInfo {
                path: p.to_string(),
                is_dir: true,
                blocks: Vec::new(),
                replication: 0,
                sealed: false,
                perm: *perm,
                child_count: children.len(),
            },
            Inode::File { blocks, replication, sealed, perm } => FileInfo {
                path: p.to_string(),
                is_dir: false,
                blocks: blocks.clone(),
                replication: *replication,
                sealed: *sealed,
                perm: *perm,
                child_count: 0,
            },
        }
    }

    // ------------------------------------------------------------------
    // Reads (newest-version path; snapshot reads live on SnapshotView)
    // ------------------------------------------------------------------

    /// `getfileinfo`: read-only metadata lookup against the newest published
    /// state. Fused fast path: when the parent directory is cached and the
    /// target is co-located in the parent's shard (the file-create layout),
    /// the whole read is one cache probe plus one shard read lock.
    pub fn getfileinfo(&self, p: &str) -> Result<FileInfo, NsError> {
        path::validate(p)?;
        if p == "/" {
            return self
                .with_node(ROOT_ID, None, |n| Self::info_of(p, n))
                .ok_or_else(|| NsError::NotFound(p.to_string()));
        }
        if let Some((dir, name)) = path::split(p) {
            // Probe the parent path directly on its own cache shard so the
            // hit counter costs no extra hash over the full path.
            let probe = if dir == "/" {
                Some((ROOT_ID, self.cache_shard(p)))
            } else {
                let cs = self.cache_shard(dir);
                let id = cs.map.try_lock().ok().and_then(|m| m.get(dir).map(|&(id, _)| id));
                id.map(|id| (id, cs))
            };
            if let Some((pid, cs)) = probe {
                let pk = self.shard_of(pid);
                let st = self.shards[pk].state.read().unwrap();
                if let Some(Inode::Directory { children, .. }) =
                    st.slots.get(&pid).and_then(Slot::latest)
                {
                    cs.hits.fetch_add(1, Ordering::Relaxed);
                    let id = *children.get(name).ok_or_else(|| NsError::NotFound(p.to_string()))?;
                    if self.shard_of(id) == pk {
                        return st
                            .slots
                            .get(&id)
                            .and_then(Slot::latest)
                            .map(|n| Self::info_of(p, n))
                            .ok_or_else(|| NsError::NotFound(p.to_string()));
                    }
                    drop(st);
                    return self
                        .with_node(id, None, |n| Self::info_of(p, n))
                        .ok_or_else(|| NsError::NotFound(p.to_string()));
                }
            }
        }
        let id = self.resolve(p, None).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        self.with_node(id, None, |n| Self::info_of(p, n))
            .ok_or_else(|| NsError::NotFound(p.to_string()))
    }

    /// List child names of a directory (sorted), newest state.
    pub fn list(&self, p: &str) -> Result<Vec<String>, NsError> {
        path::validate(p)?;
        let id = self.resolve(p, None).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        self.with_node(id, None, |n| match n {
            Inode::Directory { children, .. } => {
                Ok(children.keys().map(|k| k.to_string()).collect())
            }
            Inode::File { .. } => Err(NsError::IsFile(p.to_string())),
        })
        .ok_or_else(|| NsError::NotFound(p.to_string()))?
    }

    /// Resolve a path to its inode id (cached fast path, newest state).
    pub fn resolve_path(&self, p: &str) -> Option<InodeId> {
        path::validate(p).ok()?;
        self.resolve(p, None)
    }

    /// Resolve by walking from the root, ignoring the cache (the oracle the
    /// fast path must agree with; does not touch the hit/miss counters).
    pub fn resolve_path_uncached(&self, p: &str) -> Option<InodeId> {
        path::validate(p).ok()?;
        self.walk(p, None)
    }

    /// Whether a path exists in the newest state.
    pub fn exists(&self, p: &str) -> bool {
        path::validate(p).is_ok() && self.resolve(p, None).is_some()
    }

    // ------------------------------------------------------------------
    // Snapshot pinning
    // ------------------------------------------------------------------

    /// Pin the current epoch: the returned view reads a frozen namespace
    /// while mutations proceed underneath. Registration excludes in-flight
    /// mutators via the gate (see module docs); the view itself never blocks
    /// mutators and mutators never block it.
    pub fn pin(&self) -> SnapshotView<'_> {
        let _g = self.gate.write().unwrap();
        let slot = loop {
            match self.pin_slots.iter().position(|s| s.load(Ordering::Acquire) == PIN_EMPTY) {
                Some(i) => break i,
                // All pin slots taken: wait for an unpin (which does not
                // need the gate, so progress is guaranteed).
                None => std::thread::yield_now(),
            }
        };
        let epoch = self.visible.load(Ordering::Acquire);
        self.pin_slots[slot].store(epoch, Ordering::SeqCst);
        self.pins_active.fetch_add(1, Ordering::SeqCst);
        SnapshotView { ns: self, epoch, slot }
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// `create`: make an empty file. The new id comes from the parent's
    /// shard, so the op locks exactly one shard.
    pub fn create(&self, p: &str, replication: u8) -> Result<FileInfo, NsError> {
        path::validate(p)?;
        let (dir, name) = path::split(p).ok_or(NsError::RootImmutable)?;
        // Bare resolve for the candidate parent id; its kind (and the
        // legacy error precedence) is classified under the write lock
        // below, saving a separate read-locked kind check per create.
        // Probing inline also tells us whether the parent is already
        // cached, so the steady-state create skips the cache insert.
        let cached = if dir == "/" {
            Some(ROOT_ID)
        } else {
            let cs = self.cache_shard(dir);
            let hit = cs.map.try_lock().ok().and_then(|m| m.get(dir).map(|&(id, _)| id));
            if hit.is_some() {
                cs.hits.fetch_add(1, Ordering::Relaxed);
            }
            hit
        };
        let (pid, from_cache) = match cached {
            Some(id) => (id, true),
            None => match self.resolve(dir, None) {
                Some(pid) => (pid, false),
                None => return Err(self.parent_missing_error(p, dir, None)),
            },
        };
        let _gate = self.gate.read().unwrap();
        let pk = self.shard_of(pid);
        let mut st = self.shards[pk].state.write().unwrap();
        self.sweep(&mut st);
        match st.slots.get(&pid).and_then(Slot::latest) {
            Some(Inode::Directory { children, .. }) => {
                if children.contains_key(name) {
                    return Err(NsError::AlreadyExists(p.to_string()));
                }
            }
            Some(Inode::File { .. }) => return Err(NsError::ParentNotDirectory(p.to_string())),
            None => return Err(NsError::ParentNotFound(p.to_string())),
        }
        let keep = self.watermark();
        let s = self.alloc_stamp();
        let name = st.intern(name);
        let id = st.alloc_id(self.shards.len() as u64);
        match st.slots.get_mut(&pid).expect("parent checked above").open(s, keep) {
            Some(Inode::Directory { children, .. }) => {
                children.insert(name, id);
            }
            _ => unreachable!("parent kind checked above"),
        }
        st.slots.insert(id, Slot::fresh(s, Inode::new_file(replication)));
        if !from_cache {
            self.cache_put(dir, pid, s);
        }
        self.num_files.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.publish(s);
        Ok(FileInfo {
            path: p.to_string(),
            is_dir: false,
            blocks: Vec::new(),
            replication,
            sealed: false,
            perm: DEFAULT_PERM,
            child_count: 0,
        })
    }

    /// `mkdir`: make a directory (parent must exist). The new id is spread
    /// across shards, so this locks the parent's shard and the new id's.
    pub fn mkdir(&self, p: &str) -> Result<(), NsError> {
        path::validate(p)?;
        let (dir, name) = path::split(p).ok_or(NsError::RootImmutable)?;
        let pid = match self.resolve(dir, None) {
            Some(pid) => pid,
            None => return Err(self.parent_missing_error(p, dir, None)),
        };
        let _gate = self.gate.read().unwrap();
        let pk = self.shard_of(pid);
        let tk = self.dir_home(pid, name);
        let mut locked = self.lock_set(&[pk, tk]);
        self.sweep(locked.get(pk));
        match locked.get(pk).slots.get(&pid).and_then(Slot::latest) {
            Some(Inode::Directory { children, .. }) => {
                if children.contains_key(name) {
                    return Err(NsError::AlreadyExists(p.to_string()));
                }
            }
            Some(Inode::File { .. }) => return Err(NsError::ParentNotDirectory(p.to_string())),
            None => return Err(NsError::ParentNotFound(p.to_string())),
        }
        let keep = self.watermark();
        let s = self.alloc_stamp();
        let id = locked.get(tk).alloc_id(self.shards.len() as u64);
        let name = locked.get(pk).intern(name);
        match locked.get(pk).slots.get_mut(&pid).expect("parent checked above").open(s, keep) {
            Some(Inode::Directory { children, .. }) => {
                children.insert(name, id);
            }
            _ => unreachable!("parent kind checked above"),
        }
        locked.get(tk).slots.insert(id, Slot::fresh(s, Inode::new_dir()));
        self.cache_put(dir, pid, s);
        self.cache_put(p, id, s);
        self.num_dirs.fetch_add(1, Ordering::Relaxed);
        drop(locked);
        self.publish(s);
        Ok(())
    }

    /// `mkdir -p`: create all missing ancestors. Ok if the directory exists.
    pub fn mkdir_p(&self, p: &str) -> Result<(), NsError> {
        path::validate(p)?;
        if p == "/" {
            return Ok(());
        }
        for prefix in path::prefixes(p) {
            match self.mkdir(prefix) {
                Ok(()) => {}
                Err(NsError::AlreadyExists(_)) => {
                    if let Some(id) = self.resolve(prefix, None) {
                        if self.with_node(id, None, Inode::is_file).unwrap_or(false) {
                            return Err(NsError::IsFile(prefix.to_string()));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `delete`: remove a file, or a directory (recursively when asked).
    /// Returns `(files_removed, dirs_removed)`. Directory deletion takes
    /// every shard (the subtree may live anywhere); file deletion locks at
    /// most two.
    pub fn delete(&self, p: &str, recursive: bool) -> Result<(u64, u64), NsError> {
        path::validate(p)?;
        if p == "/" {
            return Err(NsError::RootImmutable);
        }
        loop {
            let id = self.resolve(p, None).ok_or_else(|| NsError::NotFound(p.to_string()))?;
            let is_dir = self
                .with_node(id, None, Inode::is_dir)
                .ok_or_else(|| NsError::NotFound(p.to_string()))?;
            let pid = self.resolve_parent(p, None)?;
            let (dir, name) = path::split(p).expect("non-root validated path");
            let _gate = self.gate.read().unwrap();
            let mut locked = if is_dir {
                self.lock_all()
            } else {
                self.lock_set(&[self.shard_of(pid), self.shard_of(id)])
            };
            // Revalidate under the locks; a concurrent structural op may
            // have changed the binding since the unlocked resolution.
            let pk = self.shard_of(pid);
            match locked.get(pk).slots.get(&pid).and_then(Slot::latest) {
                Some(Inode::Directory { children, .. }) if children.get(name) == Some(&id) => {}
                _ => continue,
            }
            let (empty, still_dir) = match locked.get(self.shard_of(id)).slots.get(&id) {
                Some(slot) => match slot.latest() {
                    Some(Inode::Directory { children, .. }) => (children.is_empty(), true),
                    Some(Inode::File { .. }) => (true, false),
                    None => continue,
                },
                None => continue,
            };
            if still_dir != is_dir {
                continue;
            }
            if is_dir && !empty && !recursive {
                return Err(NsError::NotEmpty(p.to_string()));
            }
            let keep = self.watermark();
            let s = self.alloc_stamp();
            // Unlink from the parent.
            match locked.get(pk).slots.get_mut(&pid).expect("revalidated").open(s, keep) {
                Some(Inode::Directory { children, .. }) => {
                    children.remove(name);
                }
                _ => unreachable!("revalidated directory parent"),
            }
            // Collect and drop the subtree (just `id` itself for files).
            let mut files = 0u64;
            let mut dirs = 0u64;
            let mut stack = vec![id];
            while let Some(cur) = stack.pop() {
                let ck = self.shard_of(cur);
                let st = locked.get(ck);
                match st.slots.get(&cur).and_then(Slot::latest) {
                    Some(Inode::Directory { children, .. }) => {
                        dirs += 1;
                        stack.extend(children.values().copied());
                    }
                    Some(Inode::File { .. }) => files += 1,
                    None => continue,
                }
                if keep.is_none() {
                    st.slots.remove(&cur);
                } else {
                    *st.slots.get_mut(&cur).expect("visited above").open(s, keep) = None;
                    st.dead.push(cur);
                }
            }
            self.cache_invalidate(p, is_dir);
            self.cache_put(dir, pid, s);
            self.num_files.fetch_sub(files, Ordering::Relaxed);
            self.num_dirs.fetch_sub(dirs, Ordering::Relaxed);
            drop(locked);
            self.publish(s);
            return Ok((files, dirs));
        }
    }

    /// `rename`: move `src` to `dst` (which must not exist). File renames
    /// lock the two parents' shards; directory renames take every shard
    /// (cached subtree paths must be invalidated consistently).
    pub fn rename(&self, src: &str, dst: &str) -> Result<(), NsError> {
        path::validate(src)?;
        path::validate(dst)?;
        if src == "/" || dst == "/" {
            return Err(NsError::RootImmutable);
        }
        if src == dst {
            return Err(NsError::AlreadyExists(dst.to_string()));
        }
        if path::is_strict_descendant(dst, src) {
            return Err(NsError::RenameIntoSelf { src: src.to_string(), dst: dst.to_string() });
        }
        loop {
            let src_id =
                self.resolve(src, None).ok_or_else(|| NsError::NotFound(src.to_string()))?;
            if self.resolve(dst, None).is_some() {
                return Err(NsError::AlreadyExists(dst.to_string()));
            }
            let dst_parent = self.resolve_parent(dst, None)?;
            let src_parent = self.resolve_parent(src, None)?;
            let (src_dir, src_name) = path::split(src).expect("non-root");
            let (dst_dir, dst_name) = path::split(dst).expect("non-root");
            let src_is_dir = self
                .with_node(src_id, None, Inode::is_dir)
                .ok_or_else(|| NsError::NotFound(src.to_string()))?;
            let _gate = self.gate.read().unwrap();
            let sk = self.shard_of(src_parent);
            let dk = self.shard_of(dst_parent);
            let mut locked = if src_is_dir { self.lock_all() } else { self.lock_set(&[sk, dk]) };
            match locked.get(sk).slots.get(&src_parent).and_then(Slot::latest) {
                Some(Inode::Directory { children, .. })
                    if children.get(src_name) == Some(&src_id) => {}
                _ => continue,
            }
            match locked.get(dk).slots.get(&dst_parent).and_then(Slot::latest) {
                Some(Inode::Directory { children, .. }) if !children.contains_key(dst_name) => {}
                _ => continue,
            }
            let keep = self.watermark();
            let s = self.alloc_stamp();
            match locked.get(sk).slots.get_mut(&src_parent).expect("revalidated").open(s, keep) {
                Some(Inode::Directory { children, .. }) => {
                    children.remove(src_name);
                }
                _ => unreachable!("revalidated directory parent"),
            }
            let dst_name_arc = locked.get(dk).intern(dst_name);
            match locked.get(dk).slots.get_mut(&dst_parent).expect("revalidated").open(s, keep) {
                Some(Inode::Directory { children, .. }) => {
                    children.insert(dst_name_arc, src_id);
                }
                _ => unreachable!("revalidated directory parent"),
            }
            // Every cached path at or under `src` now points somewhere else
            // (or nowhere).
            self.cache_invalidate(src, src_is_dir);
            self.cache_put(src_dir, src_parent, s);
            self.cache_put(dst_dir, dst_parent, s);
            if src_is_dir {
                self.cache_put(dst, src_id, s);
            }
            drop(locked);
            self.publish(s);
            return Ok(());
        }
    }

    /// Shared frame for the single-inode file mutations (`add_block`,
    /// `close_file`, `set_perm`): resolve, lock one shard, revalidate,
    /// mutate at a fresh stamp.
    fn mutate_node(
        &self,
        p: &str,
        f: impl Fn(&mut Inode, &str) -> Result<(), NsError>,
    ) -> Result<(), NsError> {
        path::validate(p)?;
        let id = self.resolve(p, None).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        let _gate = self.gate.read().unwrap();
        let mut st = self.shards[self.shard_of(id)].state.write().unwrap();
        self.sweep(&mut st);
        match st.slots.get(&id).and_then(Slot::latest) {
            Some(node) => {
                // Validate against the newest version before opening a new
                // one (a failed op must not bump the slot's stamp).
                let mut probe = node.clone();
                f(&mut probe, p)?;
            }
            None => return Err(NsError::NotFound(p.to_string())),
        }
        let keep = self.watermark();
        let s = self.alloc_stamp();
        let node = st.slots.get_mut(&id).expect("checked above").open(s, keep);
        f(node.as_mut().expect("latest version exists"), p).expect("validated above");
        drop(st);
        self.publish(s);
        Ok(())
    }

    /// Append a block to an unsealed file.
    pub fn add_block(&self, p: &str, block_id: u64) -> Result<(), NsError> {
        self.mutate_node(p, |node, p| match node {
            Inode::File { blocks, sealed, .. } => {
                if *sealed {
                    return Err(NsError::FileSealed(p.to_string()));
                }
                blocks.push(block_id);
                Ok(())
            }
            Inode::Directory { .. } => Err(NsError::IsDirectory(p.to_string())),
        })
    }

    /// Seal a file. Idempotent.
    pub fn close_file(&self, p: &str) -> Result<(), NsError> {
        self.mutate_node(p, |node, p| match node {
            Inode::File { sealed, .. } => {
                *sealed = true;
                Ok(())
            }
            Inode::Directory { .. } => Err(NsError::IsDirectory(p.to_string())),
        })
    }

    /// Change permission bits (files, directories, and the root).
    pub fn set_perm(&self, p: &str, perm: u16) -> Result<(), NsError> {
        self.mutate_node(p, |node, _| {
            node.set_perm(perm);
            Ok(())
        })
    }

    /// Apply a journalled transaction (the naive replay path; standbys use
    /// [`ShardedReplaySession`]).
    pub fn apply(&self, txn: &Txn) -> Result<(), NsError> {
        match txn {
            Txn::Create { path, replication } => self.create(path, *replication).map(|_| ()),
            Txn::Mkdir { path } => self.mkdir(path),
            Txn::Delete { path, recursive } => self.delete(path, *recursive).map(|_| ()),
            Txn::Rename { src, dst } => self.rename(src, dst),
            Txn::AddBlock { path, block_id, .. } => self.add_block(path, *block_id),
            Txn::CloseFile { path } => self.close_file(path),
            Txn::SetPerm { path, perm } => self.set_perm(path, *perm),
        }
    }

    /// Deterministic structural fingerprint, byte-for-byte identical to
    /// [`NamespaceTree::fingerprint`] over the same namespace (inode ids are
    /// not hashed, so per-shard allocation does not affect it).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_at(None)
    }

    fn fingerprint_at(&self, epoch: Option<Stamp>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        };
        let mut stack: Vec<(InodeId, u32)> = vec![(ROOT_ID, 0)];
        while let Some((id, depth)) = stack.pop() {
            mix(&depth.to_le_bytes());
            let st = self.shards[self.shard_of(id)].state.read().unwrap();
            match st.slots.get(&id).and_then(|s| s.view(epoch)) {
                Some(Inode::Directory { children, perm }) => {
                    mix(b"D");
                    mix(&perm.to_le_bytes());
                    for (name, child) in children.iter().rev() {
                        mix(name.as_bytes());
                        stack.push((*child, depth + 1));
                    }
                }
                Some(Inode::File { blocks, replication, sealed, perm }) => {
                    mix(&[b'F', *replication, *sealed as u8]);
                    mix(&perm.to_le_bytes());
                    for b in blocks {
                        mix(&b.to_le_bytes());
                    }
                }
                None => {
                    // Unreachable in a quiescent namespace; a concurrent
                    // delete between parent visit and child visit lands
                    // here. Mix nothing: the caller wanted a point-in-time
                    // fingerprint and should have pinned first.
                }
            }
        }
        h
    }
}

impl Apply for ShardedNamespace {
    fn apply_txn(&mut self, _txid: TxnId, txn: &Txn) {
        if self.apply(txn).is_err() {
            self.divergences.fetch_add(1, Ordering::Relaxed);
            debug_assert!(false, "journal replay diverged on {txn:?}");
        }
    }
}

/// A pinned point-in-time view of the namespace (see
/// [`ShardedNamespace::pin`]). Reads through the view are stable against
/// concurrent mutations; dropping the view unpins the epoch and lets the
/// preserved versions be reclaimed.
pub struct SnapshotView<'a> {
    ns: &'a ShardedNamespace,
    epoch: Stamp,
    slot: usize,
}

impl Drop for SnapshotView<'_> {
    fn drop(&mut self) {
        self.ns.pin_slots[self.slot].store(PIN_EMPTY, Ordering::SeqCst);
        self.ns.pins_active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl SnapshotView<'_> {
    /// The pinned epoch (the stamp of the last mutation this view sees).
    pub fn epoch(&self) -> Stamp {
        self.epoch
    }

    /// `getfileinfo` against the pinned epoch.
    pub fn getfileinfo(&self, p: &str) -> Result<FileInfo, NsError> {
        path::validate(p)?;
        let e = Some(self.epoch);
        let id = self.ns.resolve(p, e).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        self.ns
            .with_node(id, e, |n| ShardedNamespace::info_of(p, n))
            .ok_or_else(|| NsError::NotFound(p.to_string()))
    }

    /// `list` against the pinned epoch.
    pub fn list(&self, p: &str) -> Result<Vec<String>, NsError> {
        path::validate(p)?;
        let e = Some(self.epoch);
        let id = self.ns.resolve(p, e).ok_or_else(|| NsError::NotFound(p.to_string()))?;
        self.ns
            .with_node(id, e, |n| match n {
                Inode::Directory { children, .. } => {
                    Ok(children.keys().map(|k| k.to_string()).collect())
                }
                Inode::File { .. } => Err(NsError::IsFile(p.to_string())),
            })
            .ok_or_else(|| NsError::NotFound(p.to_string()))?
    }

    /// Resolve a path at the pinned epoch.
    pub fn resolve_path(&self, p: &str) -> Option<InodeId> {
        path::validate(p).ok()?;
        self.ns.resolve(p, Some(self.epoch))
    }

    /// Whether a path exists at the pinned epoch.
    pub fn exists(&self, p: &str) -> bool {
        path::validate(p).is_ok() && self.ns.resolve(p, Some(self.epoch)).is_some()
    }

    /// Structural fingerprint of the pinned state.
    pub fn fingerprint(&self) -> u64 {
        self.ns.fingerprint_at(Some(self.epoch))
    }
}

/// Resolution-skipping journal replay for the sharded namespace — the
/// analogue of [`crate::tree::ReplaySession`], with the same cached-handle
/// invariants: the last-resolved parent directory and last-touched node are
/// remembered across records, and both caches drop on `Delete`/`Rename` or
/// an external [`reset`](Self::reset).
#[derive(Debug, Default)]
pub struct ShardedReplaySession {
    dir: String,
    dir_id: InodeId,
    dir_valid: bool,
    node: String,
    node_id: InodeId,
    node_valid: bool,
}

impl ShardedReplaySession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the cached handles (image install, state reset, or a stint as
    /// active mutating the namespace through other paths).
    pub fn reset(&mut self) {
        self.dir_valid = false;
        self.node_valid = false;
    }

    /// Apply one journalled record via the fast path.
    pub fn apply(&mut self, ns: &ShardedNamespace, txn: &Txn) -> Result<(), NsError> {
        match txn {
            Txn::Create { path, replication } => {
                let (pid, name) = self.parent_of(ns, path)?;
                let id = ns.attach_file(pid, name, *replication)?;
                self.remember_node(path, id);
                Ok(())
            }
            Txn::Mkdir { path } => {
                let (pid, name) = self.parent_of(ns, path)?;
                let id = ns.attach_dir(pid, name)?;
                self.remember_dir(path, id);
                Ok(())
            }
            Txn::Delete { path, recursive } => {
                self.reset();
                ns.delete(path, *recursive).map(|_| ())
            }
            Txn::Rename { src, dst } => {
                self.reset();
                ns.rename(src, dst)
            }
            Txn::AddBlock { path, block_id, .. } => {
                let id = self.resolve_node(ns, path)?;
                ns.mutate_by_id(id, path, |node, p| match node {
                    Inode::File { blocks, sealed, .. } => {
                        if *sealed {
                            return Err(NsError::FileSealed(p.to_string()));
                        }
                        blocks.push(*block_id);
                        Ok(())
                    }
                    Inode::Directory { .. } => Err(NsError::IsDirectory(p.to_string())),
                })
            }
            Txn::CloseFile { path } => {
                let id = self.resolve_node(ns, path)?;
                ns.mutate_by_id(id, path, |node, p| match node {
                    Inode::File { sealed, .. } => {
                        *sealed = true;
                        Ok(())
                    }
                    Inode::Directory { .. } => Err(NsError::IsDirectory(p.to_string())),
                })
            }
            Txn::SetPerm { path, perm } => {
                let id = self.resolve_node(ns, path)?;
                ns.mutate_by_id(id, path, |node, _| {
                    node.set_perm(*perm);
                    Ok(())
                })
            }
        }
    }

    fn remember_dir(&mut self, path: &str, id: InodeId) {
        self.dir.clear();
        self.dir.push_str(path);
        self.dir_id = id;
        self.dir_valid = true;
    }

    fn remember_node(&mut self, path: &str, id: InodeId) {
        self.node.clear();
        self.node.push_str(path);
        self.node_id = id;
        self.node_valid = true;
    }

    fn parent_of<'p>(
        &mut self,
        ns: &ShardedNamespace,
        path: &'p str,
    ) -> Result<(InodeId, &'p str), NsError> {
        let (dir, name) = path::split(path).ok_or(NsError::RootImmutable)?;
        if name.is_empty() {
            return Err(NsError::Invalid(PathError(format!("{path:?} has a trailing slash"))));
        }
        if self.dir_valid && self.dir == dir {
            return Ok((self.dir_id, name));
        }
        let pid = ns.resolve(dir, None).ok_or_else(|| NsError::ParentNotFound(path.to_string()))?;
        self.remember_dir(dir, pid);
        Ok((pid, name))
    }

    fn resolve_node(&mut self, ns: &ShardedNamespace, path: &str) -> Result<InodeId, NsError> {
        if path == "/" {
            return Ok(ROOT_ID);
        }
        if self.node_valid && self.node == path {
            return Ok(self.node_id);
        }
        if self.dir_valid && self.dir == path {
            return Ok(self.dir_id);
        }
        let (pid, name) = self.parent_of(ns, path)?;
        let id = ns
            .with_node(pid, None, |n| match n {
                Inode::Directory { children, .. } => children.get(name).copied(),
                Inode::File { .. } => None,
            })
            .flatten()
            .ok_or_else(|| NsError::NotFound(path.to_string()))?;
        self.remember_node(path, id);
        Ok(id)
    }
}

impl ShardedNamespace {
    /// Replay-path create: attach a new file directly under `parent` (the
    /// analogue of the legacy `attach_child`; error payloads match it).
    fn attach_file(
        &self,
        parent: InodeId,
        name: &str,
        replication: u8,
    ) -> Result<InodeId, NsError> {
        let _gate = self.gate.read().unwrap();
        let pk = self.shard_of(parent);
        let mut st = self.shards[pk].state.write().unwrap();
        self.sweep(&mut st);
        match st.slots.get(&parent).and_then(Slot::latest) {
            Some(Inode::Directory { children, .. }) => {
                if children.contains_key(name) {
                    return Err(NsError::AlreadyExists(name.to_string()));
                }
            }
            Some(Inode::File { .. }) => return Err(NsError::ParentNotDirectory(name.to_string())),
            None => return Err(NsError::ParentNotFound(name.to_string())),
        }
        let keep = self.watermark();
        let s = self.alloc_stamp();
        let name = st.intern(name);
        let id = st.alloc_id(self.shards.len() as u64);
        match st.slots.get_mut(&parent).expect("checked above").open(s, keep) {
            Some(Inode::Directory { children, .. }) => {
                children.insert(name, id);
            }
            _ => unreachable!("parent kind checked above"),
        }
        st.slots.insert(id, Slot::fresh(s, Inode::new_file(replication)));
        self.num_files.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.publish(s);
        Ok(id)
    }

    /// Replay-path mkdir: attach a new directory directly under `parent`.
    fn attach_dir(&self, parent: InodeId, name: &str) -> Result<InodeId, NsError> {
        let _gate = self.gate.read().unwrap();
        let pk = self.shard_of(parent);
        let tk = self.dir_home(parent, name);
        let mut locked = self.lock_set(&[pk, tk]);
        self.sweep(locked.get(pk));
        match locked.get(pk).slots.get(&parent).and_then(Slot::latest) {
            Some(Inode::Directory { children, .. }) => {
                if children.contains_key(name) {
                    return Err(NsError::AlreadyExists(name.to_string()));
                }
            }
            Some(Inode::File { .. }) => return Err(NsError::ParentNotDirectory(name.to_string())),
            None => return Err(NsError::ParentNotFound(name.to_string())),
        }
        let keep = self.watermark();
        let s = self.alloc_stamp();
        let id = locked.get(tk).alloc_id(self.shards.len() as u64);
        let name = locked.get(pk).intern(name);
        match locked.get(pk).slots.get_mut(&parent).expect("checked above").open(s, keep) {
            Some(Inode::Directory { children, .. }) => {
                children.insert(name, id);
            }
            _ => unreachable!("parent kind checked above"),
        }
        locked.get(tk).slots.insert(id, Slot::fresh(s, Inode::new_dir()));
        self.num_dirs.fetch_add(1, Ordering::Relaxed);
        drop(locked);
        self.publish(s);
        Ok(id)
    }

    /// Replay-path node mutation against a cached id (the session resolved
    /// it; a missing slot means the cache went stale and maps to NotFound,
    /// matching what a fresh resolution would report).
    fn mutate_by_id(
        &self,
        id: InodeId,
        p: &str,
        f: impl Fn(&mut Inode, &str) -> Result<(), NsError>,
    ) -> Result<(), NsError> {
        let _gate = self.gate.read().unwrap();
        let mut st = self.shards[self.shard_of(id)].state.write().unwrap();
        self.sweep(&mut st);
        match st.slots.get(&id).and_then(Slot::latest) {
            Some(node) => {
                let mut probe = node.clone();
                f(&mut probe, p)?;
            }
            None => return Err(NsError::NotFound(p.to_string())),
        }
        let keep = self.watermark();
        let s = self.alloc_stamp();
        let node = st.slots.get_mut(&id).expect("checked above").open(s, keep);
        f(node.as_mut().expect("latest version exists"), p).expect("validated above");
        drop(st);
        self.publish(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn both() -> (NamespaceTree, ShardedNamespace) {
        (NamespaceTree::new(), ShardedNamespace::with_shards(8))
    }

    fn run_parity(ops: &[Txn]) -> (NamespaceTree, ShardedNamespace) {
        let (mut t, s) = both();
        for op in ops {
            let a = t.apply(op);
            let b = s.apply(op);
            assert_eq!(a.is_ok(), b.is_ok(), "parity broke on {op:?}: {a:?} vs {b:?}");
        }
        assert_eq!(t.fingerprint(), s.fingerprint());
        assert_eq!(t.num_files(), s.num_files());
        assert_eq!(t.num_dirs(), s.num_dirs());
        (t, s)
    }

    #[test]
    fn parity_basic_ops() {
        run_parity(&[
            Txn::Mkdir { path: "/a".into() },
            Txn::Mkdir { path: "/a/b".into() },
            Txn::Create { path: "/a/b/f0".into(), replication: 3 },
            Txn::AddBlock { path: "/a/b/f0".into(), block_id: 1, len: 64 },
            Txn::AddBlock { path: "/a/b/f0".into(), block_id: 2, len: 64 },
            Txn::CloseFile { path: "/a/b/f0".into() },
            Txn::Create { path: "/a/b/f1".into(), replication: 2 },
            Txn::SetPerm { path: "/a/b".into(), perm: 0o750 },
            Txn::SetPerm { path: "/".into(), perm: 0o711 },
            Txn::Rename { src: "/a/b/f1".into(), dst: "/a/g".into() },
            Txn::Delete { path: "/a/b/f0".into(), recursive: false },
            Txn::Create { path: "/a/b/f2".into(), replication: 1 },
            Txn::Mkdir { path: "/c".into() },
            Txn::Rename { src: "/a/b".into(), dst: "/c/b2".into() },
            Txn::Delete { path: "/c".into(), recursive: true },
        ]);
    }

    #[test]
    fn parity_error_kinds() {
        let (mut t, s) = both();
        for op in
            [Txn::Mkdir { path: "/a".into() }, Txn::Create { path: "/a/f".into(), replication: 1 }]
        {
            t.apply(&op).unwrap();
            s.apply(&op).unwrap();
        }
        let cases: Vec<(Result<(), NsError>, Result<(), NsError>)> = vec![
            (t.create("/no/f", 1).map(|_| ()), s.create("/no/f", 1).map(|_| ())),
            (t.create("/a/f/x", 1).map(|_| ()), s.create("/a/f/x", 1).map(|_| ())),
            (t.create("/a/f", 1).map(|_| ()), s.create("/a/f", 1).map(|_| ())),
            (t.delete("/", true).map(|_| ()), s.delete("/", true).map(|_| ())),
            (t.delete("/a", false).map(|_| ()), s.delete("/a", false).map(|_| ())),
            (t.rename("/a", "/a/evil").map(|_| ()), s.rename("/a", "/a/evil").map(|_| ())),
            (t.rename("/missing", "/y").map(|_| ()), s.rename("/missing", "/y").map(|_| ())),
            (t.rename("/a", "/no/where").map(|_| ()), s.rename("/a", "/no/where").map(|_| ())),
            (t.add_block("/a", 1), s.add_block("/a", 1)),
            (t.add_block("/gone", 1), s.add_block("/gone", 1)),
            (t.mkdir_p("/a/f"), s.mkdir_p("/a/f")),
        ];
        for (i, (a, b)) in cases.iter().enumerate() {
            assert_eq!(a, b, "error parity case {i}");
        }
    }

    #[test]
    fn reads_match_legacy() {
        let ops = [
            Txn::Mkdir { path: "/d".into() },
            Txn::Mkdir { path: "/d/s".into() },
            Txn::Create { path: "/d/s/f".into(), replication: 2 },
            Txn::AddBlock { path: "/d/s/f".into(), block_id: 7, len: 1 },
        ];
        let (t, s) = run_parity(&ops);
        for p in ["/", "/d", "/d/s", "/d/s/f"] {
            let a = t.getfileinfo(p).unwrap();
            let b = s.getfileinfo(p).unwrap();
            assert_eq!(
                (a.path, a.is_dir, a.blocks, a.perm, a.child_count),
                (b.path, b.is_dir, b.blocks, b.perm, b.child_count)
            );
        }
        assert_eq!(t.list("/d").unwrap(), s.list("/d").unwrap());
        assert_eq!(s.resolve_path("/d/s/f"), s.resolve_path_uncached("/d/s/f"));
        assert!(s.exists("/d/s"));
        assert!(!s.exists("/d/x"));
    }

    #[test]
    fn from_tree_to_tree_round_trip() {
        let mut t = NamespaceTree::new();
        t.mkdir_p("/x/y").unwrap();
        t.create("/x/y/f", 3).unwrap();
        t.add_block("/x/y/f", 42).unwrap();
        t.set_perm("/x", 0o700).unwrap();
        let fp = t.fingerprint();
        let s = ShardedNamespace::from_tree_with_shards(t, 4);
        assert_eq!(s.fingerprint(), fp);
        assert_eq!(s.num_files(), 1);
        assert_eq!(s.num_dirs(), 2);
        // Mutations after install must not collide with legacy ids.
        s.create("/x/y/g", 1).unwrap();
        assert_eq!(s.to_tree().fingerprint(), s.fingerprint());
    }

    #[test]
    fn snapshot_view_is_stable() {
        let s = ShardedNamespace::with_shards(4);
        s.mkdir("/d").unwrap();
        s.create("/d/old", 1).unwrap();
        let before = s.list("/d").unwrap();
        let view = s.pin();
        s.create("/d/new", 1).unwrap();
        s.delete("/d/old", false).unwrap();
        s.set_perm("/d", 0o700).unwrap();
        // The view still sees the pinned state…
        assert_eq!(view.list("/d").unwrap(), before);
        assert!(view.exists("/d/old"));
        assert!(!view.exists("/d/new"));
        assert_eq!(view.getfileinfo("/d").unwrap().perm, DEFAULT_PERM);
        // …while the latest state moved on.
        assert!(!s.exists("/d/old"));
        assert!(s.exists("/d/new"));
        assert_eq!(s.getfileinfo("/d").unwrap().perm, 0o700);
        // A second pin sees the new state.
        let view2 = s.pin();
        assert!(view2.exists("/d/new"));
        drop(view2);
        drop(view);
        // With pins gone, later mutations reclaim history and tombstones.
        s.create("/d/later", 1).unwrap();
        assert!(s.exists("/d/later"));
    }

    #[test]
    fn snapshot_fingerprint_matches_quiesced_copy() {
        let s = ShardedNamespace::with_shards(4);
        s.mkdir_p("/a/b").unwrap();
        s.create("/a/b/f", 2).unwrap();
        let frozen = s.fingerprint();
        let view = s.pin();
        s.create("/a/b/g", 2).unwrap();
        s.rename("/a/b/f", "/a/f2").unwrap();
        assert_eq!(view.fingerprint(), frozen);
        assert_ne!(s.fingerprint(), frozen);
    }

    #[test]
    fn replay_session_matches_legacy_session() {
        let workload = [
            Txn::Mkdir { path: "/a".into() },
            Txn::Mkdir { path: "/a/b".into() },
            Txn::Create { path: "/a/b/f0".into(), replication: 3 },
            Txn::AddBlock { path: "/a/b/f0".into(), block_id: 1, len: 64 },
            Txn::CloseFile { path: "/a/b/f0".into() },
            Txn::Create { path: "/a/b/f1".into(), replication: 2 },
            Txn::Rename { src: "/a/b/f1".into(), dst: "/a/g".into() },
            Txn::Delete { path: "/a/b/f0".into(), recursive: false },
            Txn::Create { path: "/a/b/f2".into(), replication: 1 },
            Txn::SetPerm { path: "/a/b".into(), perm: 0o700 },
        ];
        let mut legacy = NamespaceTree::new();
        let mut legacy_sess = crate::tree::ReplaySession::new();
        let sharded = ShardedNamespace::with_shards(8);
        let mut sess = ShardedReplaySession::new();
        for txn in &workload {
            let a = legacy_sess.apply(&mut legacy, txn);
            let b = sess.apply(&sharded, txn);
            assert_eq!(a, b, "session parity broke on {txn:?}");
        }
        assert_eq!(legacy.fingerprint(), sharded.fingerprint());
        // Stale-cache behaviour matches: a create into a renamed-away dir
        // fails in both.
        sess.apply(&sharded, &Txn::Rename { src: "/a/b".into(), dst: "/a/c".into() }).unwrap();
        legacy_sess
            .apply(&mut legacy, &Txn::Rename { src: "/a/b".into(), dst: "/a/c".into() })
            .unwrap();
        let stale = Txn::Create { path: "/a/b/h".into(), replication: 1 };
        assert!(sess.apply(&sharded, &stale).is_err());
        assert!(legacy_sess.apply(&mut legacy, &stale).is_err());
        assert_eq!(legacy.fingerprint(), sharded.fingerprint());
    }

    #[test]
    fn cache_counters_move() {
        let s = ShardedNamespace::with_shards(4);
        s.mkdir_p("/warm/dir").unwrap();
        s.create("/warm/dir/f", 1).unwrap();
        let before = s.cache_stats();
        for _ in 0..10 {
            s.getfileinfo("/warm/dir/f").unwrap();
        }
        let after = s.cache_stats();
        assert!(after.hits >= before.hits + 10, "expected hits: {before:?} -> {after:?}");
        // A cold deep path walks (miss).
        let _ = s.resolve_path("/warm/dir/unseen");
        assert!(s.cache_stats().misses >= after.misses);
    }

    #[test]
    fn concurrent_writers_and_readers_smoke() {
        let s = Arc::new(ShardedNamespace::with_shards(8));
        for w in 0..4 {
            s.mkdir(&format!("/w{w}")).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut log = Vec::new();
                for i in 0..300 {
                    let p = format!("/w{w}/f{i}");
                    s.create(&p, 1).unwrap();
                    log.push(Txn::Create { path: p.clone(), replication: 1 });
                    if i % 3 == 0 {
                        s.add_block(&p, i).unwrap();
                        log.push(Txn::AddBlock { path: p.clone(), block_id: i, len: 1 });
                    }
                    if i % 7 == 0 {
                        let q = format!("/w{w}/r{i}");
                        s.rename(&p, &q).unwrap();
                        log.push(Txn::Rename { src: p, dst: q });
                    }
                }
                log
            }));
        }
        {
            let s = s.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for w in 0..4 {
                        let _ = s.getfileinfo(&format!("/w{w}"));
                        let _ = s.list(&format!("/w{w}"));
                    }
                }
                Vec::new()
            }));
        }
        let mut logs = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            if i == 4 {
                stop.store(true, Ordering::Relaxed);
            }
            logs.push(h.join().unwrap());
            if i == 3 {
                stop.store(true, Ordering::Relaxed);
            }
        }
        // Writers hit disjoint directories, so replaying their logs in any
        // per-thread order yields the same structure.
        let mut legacy = NamespaceTree::new();
        for w in 0..4 {
            legacy.mkdir(&format!("/w{w}")).unwrap();
        }
        for log in &logs {
            for txn in log {
                legacy.apply(txn).unwrap();
            }
        }
        assert_eq!(legacy.fingerprint(), s.fingerprint());
        // Cached and uncached resolution agree everywhere we look.
        for w in 0..4 {
            for p in s.list(&format!("/w{w}")).unwrap() {
                let full = format!("/w{w}/{p}");
                assert_eq!(s.resolve_path(&full), s.resolve_path_uncached(&full));
            }
        }
    }

    #[test]
    fn pinned_reader_concurrent_with_writer() {
        let s = Arc::new(ShardedNamespace::with_shards(8));
        s.mkdir("/w").unwrap();
        s.create("/w/seed", 1).unwrap();
        let before = s.list("/w").unwrap();
        let view_owner = s.clone();
        let view = view_owner.pin();
        let writer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for i in 0..500 {
                    s.create(&format!("/w/f{i}"), 1).unwrap();
                }
            })
        };
        // Interleave snapshot reads with the writer's progress.
        for _ in 0..50 {
            assert_eq!(view.list("/w").unwrap(), before);
            assert!(view.exists("/w/seed"));
            std::thread::yield_now();
        }
        writer.join().unwrap();
        assert_eq!(view.list("/w").unwrap(), before);
        assert_eq!(s.list("/w").unwrap().len(), before.len() + 500);
    }

    #[test]
    fn home_shard_groups_by_parent() {
        let s = ShardedNamespace::with_shards(8);
        assert_eq!(s.home_shard("/a/b/f1"), s.home_shard("/a/b/f2"));
        assert!(s.home_shard("/a/b/f1") < s.shard_count());
    }
}
