//! Shared checksum/varint primitives for the journal and image wire
//! formats.
//!
//! One FNV-1a-64 implementation serves every on-disk format in the repo
//! (journal batches, namespace images) and the in-memory tree fingerprint
//! constants: same offset basis, same prime. The incremental form is
//! split-invariant — feeding the same bytes in any chunking produces the
//! same digest — which is what lets encoders seal a trailer checksum
//! without a second scan and streaming decoders verify chunk by chunk.

use bytes::{BufMut, Bytes, BytesMut};

/// Incremental FNV-1a (64-bit). Byte-identical to the classic one-byte-at-
/// a-time definition, but the bulk loop loads 8-byte words and unrolls the
/// eight byte-steps from a register — fewer loads and bounds checks on
/// megabytes-long bodies.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    h: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x1_0000_0000_01b3;

    pub fn new() -> Self {
        Fnv1a64 { h: Self::OFFSET }
    }

    #[inline]
    pub fn write(&mut self, data: &[u8]) {
        const P: u64 = Fnv1a64::PRIME;
        let mut h = self.h;
        let mut words = data.chunks_exact(8);
        for w in &mut words {
            let x = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            h = (h ^ (x & 0xff)).wrapping_mul(P);
            h = (h ^ ((x >> 8) & 0xff)).wrapping_mul(P);
            h = (h ^ ((x >> 16) & 0xff)).wrapping_mul(P);
            h = (h ^ ((x >> 24) & 0xff)).wrapping_mul(P);
            h = (h ^ ((x >> 32) & 0xff)).wrapping_mul(P);
            h = (h ^ ((x >> 40) & 0xff)).wrapping_mul(P);
            h = (h ^ ((x >> 48) & 0xff)).wrapping_mul(P);
            h = (h ^ (x >> 56)).wrapping_mul(P);
        }
        for &b in words.remainder() {
            h = (h ^ b as u64).wrapping_mul(P);
        }
        self.h = h;
    }

    pub fn digest(&self) -> u64 {
        self.h
    }
}

/// One-shot FNV-1a 64.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut f = Fnv1a64::new();
    f.write(data);
    f.digest()
}

/// An output buffer that folds every written byte into the running
/// checksum, so sealing a format is one 8-byte trailer append instead of a
/// second scan over the whole body.
#[derive(Debug)]
pub struct HashingBuf {
    buf: BytesMut,
    hash: Fnv1a64,
}

impl HashingBuf {
    pub fn with_capacity(n: usize) -> Self {
        HashingBuf { buf: BytesMut::with_capacity(n), hash: Fnv1a64::new() }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.hash.write(&[v]);
        self.buf.put_u8(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.hash.write(&v.to_be_bytes());
        self.buf.put_u16(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.hash.write(&v.to_be_bytes());
        self.buf.put_u32(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.hash.write(&v.to_be_bytes());
        self.buf.put_u64(v);
    }

    pub fn put_slice(&mut self, s: &[u8]) {
        self.hash.write(s);
        self.buf.put_slice(s);
    }

    /// LEB128-encode `v`.
    pub fn put_varint(&mut self, mut v: u64) {
        let mut tmp = [0u8; 10];
        let mut n = 0;
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            tmp[n] = if v == 0 { b } else { b | 0x80 };
            n += 1;
            if v == 0 {
                break;
            }
        }
        self.put_slice(&tmp[..n]);
    }

    /// Bytes written so far (the trailer is not included until `seal`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append the checksum trailer (not hashed) and freeze.
    pub fn seal(mut self) -> Bytes {
        let sum = self.hash.digest();
        self.buf.put_u64(sum);
        self.buf.freeze()
    }
}

/// Result of peeking a varint at the front of a window.
#[derive(Debug, Clone, Copy)]
pub enum Varint {
    /// Not enough bytes yet.
    Need,
    /// Malformed (longer than 10 bytes or overflowing 64 bits).
    Bad,
    /// Decoded value and its encoded length.
    Val(u64, usize),
}

/// Peek a LEB128 varint at the front of `w` without consuming it.
pub fn peek_varint(w: &[u8]) -> Varint {
    let mut x = 0u64;
    for (i, &b) in w.iter().enumerate() {
        if i == 9 && (b & 0x7f) > 1 || i > 9 {
            return Varint::Bad;
        }
        x |= ((b & 0x7f) as u64) << (7 * i);
        if b & 0x80 == 0 {
            return Varint::Val(x, i + 1);
        }
    }
    Varint::Need
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Fixed vectors under the repo-wide hash constants. Pinning these
        // guarantees the shared implementation produces byte-identical
        // digests to the per-crate copies it replaced, so images and
        // journal batches written before the hoist still verify.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xb084_984c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x2a2a_5471_f739_67e8);
        // The word-unrolled bulk loop agrees with the byte-wise definition
        // on lengths around the 8-byte boundary.
        let data: Vec<u8> = (0u16..257).map(|i| (i % 251) as u8).collect();
        for len in 0..data.len() {
            let byte_wise = data[..len]
                .iter()
                .fold(Fnv1a64::OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(Fnv1a64::PRIME));
            assert_eq!(fnv1a64(&data[..len]), byte_wise, "len {len}");
        }
    }

    #[test]
    fn fnv1a64_is_split_invariant() {
        let data: Vec<u8> = (0u16..100).map(|i| i as u8).collect();
        let whole = fnv1a64(&data);
        for split in 0..=data.len() {
            let mut f = Fnv1a64::new();
            f.write(&data[..split]);
            f.write(&data[split..]);
            assert_eq!(f.digest(), whole, "split {split}");
        }
    }

    #[test]
    fn hashing_buf_seal_matches_one_shot() {
        let mut b = HashingBuf::with_capacity(16);
        b.put_u32(0xdead_beef);
        b.put_u8(7);
        b.put_u16(300);
        b.put_u64(u64::MAX);
        b.put_slice(b"hello");
        b.put_varint(300);
        let out = b.seal();
        let (body, trailer) = out.split_at(out.len() - 8);
        assert_eq!(u64::from_be_bytes(trailer.try_into().unwrap()), fnv1a64(body));
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut b = HashingBuf::with_capacity(10);
            b.put_varint(v);
            let enc = b.seal();
            match peek_varint(&enc[..enc.len() - 8]) {
                Varint::Val(x, n) => {
                    assert_eq!(x, v);
                    assert_eq!(n, enc.len() - 8);
                }
                other => panic!("{v}: {other:?}"),
            }
        }
        assert!(matches!(peek_varint(&[0x80]), Varint::Need));
        assert!(matches!(peek_varint(&[0xff; 11]), Varint::Bad));
    }
}
