//! Wall-clock paced execution: run a simulated cluster in real time.
//!
//! The protocols are sans-IO, so the same deployment that runs in virtual
//! time for tests and benches can be *paced* against the OS clock for
//! interactive demos and soak runs: each event fires when the wall clock
//! reaches its virtual timestamp (scaled by a speed factor). Determinism is
//! preserved — pacing changes when events execute in wall time, never
//! their order or virtual timestamps.

use std::time::Instant;

use crate::time::{Duration, SimTime};
use crate::world::Sim;

/// Drives a [`Sim`] so that virtual time tracks wall-clock time.
pub struct RealTimePacer {
    sim: Sim,
    /// Virtual microseconds per wall microsecond (1.0 = real time,
    /// 10.0 = 10× fast-forward).
    speed: f64,
    started: Option<(Instant, SimTime)>,
}

impl RealTimePacer {
    pub fn new(sim: Sim) -> Self {
        RealTimePacer { sim, speed: 1.0, started: None }
    }

    /// Set the fast-forward factor (must be positive).
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0 && speed.is_finite(), "speed must be positive");
        self.speed = speed;
        self
    }

    /// Access the underlying simulation (inject faults, read traces).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Run for `virtual_span` of virtual time, sleeping so that events fire
    /// at their wall-clock moments. Returns the number of events processed.
    pub fn run_for(&mut self, virtual_span: Duration) -> u64 {
        let (epoch_wall, epoch_virtual) =
            *self.started.get_or_insert_with(|| (Instant::now(), self.sim.now()));
        let deadline = self.sim.now() + virtual_span;
        let mut processed = 0u64;
        loop {
            // Advance every event whose virtual time has been reached by
            // the (scaled) wall clock.
            let elapsed_wall_us = epoch_wall.elapsed().as_micros() as f64;
            let clock_now =
                epoch_virtual + Duration::from_micros((elapsed_wall_us * self.speed) as u64);
            let horizon = clock_now.min(deadline);
            while self.sim.peek_time().is_some_and(|t| t <= horizon) {
                self.sim.step();
                processed += 1;
            }
            if horizon >= deadline {
                self.sim.run_until(deadline);
                return processed;
            }
            // Sleep until the earlier of: the next event, or the deadline.
            let next_virtual = self.sim.peek_time().unwrap_or(deadline).min(deadline);
            let wall_target_us = (next_virtual - epoch_virtual).micros() as f64 / self.speed;
            let sleep_us = wall_target_us - epoch_wall.elapsed().as_micros() as f64;
            if sleep_us > 0.0 {
                std::thread::sleep(std::time::Duration::from_micros(sleep_us.min(50_000.0) as u64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Ctx, Message, Node, NodeId};
    use crate::world::SimConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Ticker {
        count: Arc<AtomicU64>,
    }

    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            self.count.fetch_add(1, Ordering::Relaxed);
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: NodeId, _: Message) {}
    }

    #[test]
    fn paced_run_takes_wall_time_and_preserves_event_count() {
        let count = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node("t", Box::new(Ticker { count: count.clone() }));
        // 100 ms of virtual time at 10x speed ≈ 10 ms of wall time.
        let mut pacer = RealTimePacer::new(sim).with_speed(10.0);
        let wall = Instant::now();
        pacer.run_for(Duration::from_millis(100));
        let took = wall.elapsed();
        assert_eq!(count.load(Ordering::Relaxed), 10, "ticks preserved");
        assert!(took.as_millis() >= 8, "pacing too fast: {took:?}");
        assert!(took.as_millis() < 500, "pacing too slow: {took:?}");
    }

    #[test]
    fn paced_result_matches_pure_virtual_run() {
        fn ticks(paced: bool) -> u64 {
            let count = Arc::new(AtomicU64::new(0));
            let mut sim = Sim::new(SimConfig { seed: 5, ..SimConfig::default() });
            sim.add_node("t", Box::new(Ticker { count: count.clone() }));
            if paced {
                RealTimePacer::new(sim).with_speed(50.0).run_for(Duration::from_millis(200));
            } else {
                sim.run_for(Duration::from_millis(200));
            }
            count.load(Ordering::Relaxed)
        }
        assert_eq!(ticks(true), ticks(false), "pacing must not change behaviour");
    }
}
