//! Hadoop HA with the Quorum Journal Manager (QJM).
//!
//! The active namenode writes every edit batch to N journal nodes and waits
//! for a majority before acknowledging clients; the standby tails the
//! quorum. Failover (driven by a ZKFC-style lock on the coordination
//! service, 5 s session timeout) fences the old writer by bumping the epoch
//! on a quorum of journal nodes, drains the remaining edits, and then pays
//! the namenode state transition + client-side failover-proxy settling,
//! charged as the calibrated [`HA_TRANSITION_COST`]. Flat in image size:
//! the standby is hot and data servers report to both namenodes.

use std::collections::HashMap;

use mams_coord::{CoordClient, CoordEvent, CoordResp, Incoming};
use mams_core::{CpuModel, Ingress, MdsReq, MdsResp};
use mams_journal::{JournalBatch, ReplayCursor, Sn};
use mams_namespace::NamespaceTree;
use mams_sim::{Ctx, Duration, Message, Node, NodeId, Sim};
use mams_storage::pool::new_shared_pool;
use mams_storage::proto::{PoolReq, PoolResp};
use mams_storage::{DiskModel, PoolNode};

use crate::common::{exec_op, reply, RetryCache, StandbyReplayer};

const T_FLUSH: u64 = 1;
const T_TAIL: u64 = 2;
const T_TRANSITION_DONE: u64 = 3;

/// Calibrated cost of the namenode state transition plus client
/// failover-proxy settling after fencing and journal drain — Table I shows
/// 15–19 s with a 5 s detection timeout, leaving ~11 s of transition work.
pub const HA_TRANSITION_COST: Duration = Duration::from_secs(11);

#[derive(Debug, Clone, Copy)]
pub struct HadoopHaSpec {
    pub flush_interval: Duration,
    /// Number of journal nodes (the paper sets 4).
    pub journal_nodes: usize,
    /// Per-journal-node append latency (QJM RPC + fsync).
    pub jn_latency: Duration,
    /// Standby tail-poll cadence.
    pub tail_interval: Duration,
    /// Primary-side journaling CPU per mutation (QJM RPC marshalling per edit to 4 journal nodes).
    pub journal_cpu: Duration,
}

impl Default for HadoopHaSpec {
    fn default() -> Self {
        HadoopHaSpec {
            flush_interval: Duration::from_millis(2),
            journal_nodes: 4,
            jn_latency: Duration::from_micros(2_500),
            tail_interval: Duration::from_millis(500),
            journal_cpu: Duration::from_micros(35),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HaRole {
    Active,
    Standby,
    Fencing,
    Draining,
    Transitioning,
}

/// One HA namenode.
pub struct HaNameNode {
    spec: HadoopHaSpec,
    role: HaRole,
    journals: Vec<NodeId>,
    coord: CoordClient,
    ns: NamespaceTree,
    next_block: u64,
    retry: RetryCache,
    cursor: ReplayCursor,
    replayer: StandbyReplayer,
    next_sn: Sn,
    epoch: u64,
    pending: Vec<crate::common::PendingReply>,
    pending_txns: Vec<mams_journal::Txn>,
    /// req id → (acks outstanding, replies) for quorum appends.
    quorum_waits: HashMap<u64, (usize, Vec<crate::common::PendingReply>)>,
    /// Fencing acks outstanding.
    fence_waits: usize,
    next_req: u64,
    detected: bool,
    ingress: Ingress,
    cpu: CpuModel,
}

impl HaNameNode {
    pub fn new(coord: NodeId, journals: Vec<NodeId>, spec: HadoopHaSpec, active: bool) -> Self {
        HaNameNode {
            spec,
            role: if active { HaRole::Active } else { HaRole::Standby },
            journals,
            coord: CoordClient::new(coord, Duration::from_secs(2)),
            ns: NamespaceTree::new(),
            next_block: 1,
            retry: RetryCache::new(),
            cursor: ReplayCursor::new(),
            replayer: StandbyReplayer::new(),
            next_sn: 1,
            epoch: 1,
            pending: Vec::new(),
            pending_txns: Vec::new(),
            quorum_waits: HashMap::new(),
            fence_waits: 0,
            next_req: 1,
            detected: false,
            ingress: Ingress::default(),
            cpu: CpuModel::default(),
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>, from: NodeId, op: mams_core::FsOp, seq: u64) {
        if let Some(cached) = self.retry.check(from, seq) {
            ctx.send(from, cached);
            return;
        }
        match exec_op(&mut self.ns, &mut self.next_block, &op) {
            Ok((txn, out)) => {
                if let Some(txn) = txn {
                    self.pending_txns.push(txn);
                    self.pending.push((from, seq, Ok(out)));
                } else {
                    reply(&mut self.retry, ctx, from, seq, Ok(out));
                }
            }
            Err(e) => reply(&mut self.retry, ctx, from, seq, Err(e)),
        }
    }

    fn quorum(&self) -> usize {
        self.journals.len() / 2 + 1
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending_txns.is_empty() {
            for (to, seq, result) in std::mem::take(&mut self.pending) {
                reply(&mut self.retry, ctx, to, seq, result);
            }
            return;
        }
        let replies = std::mem::take(&mut self.pending);
        let txns = std::mem::take(&mut self.pending_txns);
        let batch = mams_journal::SharedBatch::new(JournalBatch::new(self.next_sn, 1, txns));
        self.next_sn += 1;
        let req = self.next_req;
        self.next_req += 1;
        self.quorum_waits.insert(req, (self.quorum(), replies));
        for &jn in &self.journals {
            ctx.send(
                jn,
                PoolReq::AppendJournal { group: 0, epoch: self.epoch, batch: batch.share(), req },
            );
        }
    }

    fn apply_tail(&mut self, batches: Vec<mams_journal::SharedBatch>) {
        for b in batches {
            self.replayer.offer(&mut self.cursor, &mut self.ns, &mut self.next_block, &b);
        }
        self.next_sn = self.cursor.max_sn() + 1;
    }

    fn request_tail(&mut self, ctx: &mut Ctx<'_>) {
        // Tail from every journal node; the stash-free cursor simply skips
        // duplicates, and reading all nodes guarantees we see the quorum
        // maximum.
        for &jn in &self.journals {
            let req = self.next_req;
            self.next_req += 1;
            let after_sn = self.cursor.max_sn();
            ctx.send(jn, PoolReq::ReadJournal { group: 0, after_sn, max: 4_096, req });
        }
    }

    fn begin_failover(&mut self, ctx: &mut Ctx<'_>) {
        self.role = HaRole::Fencing;
        self.epoch += 1;
        self.fence_waits = self.quorum();
        ctx.trace("ha.fencing", || format!("epoch {}", self.epoch));
        for &jn in &self.journals {
            let req = self.next_req;
            self.next_req += 1;
            ctx.send(jn, PoolReq::AdvanceEpoch { group: 0, to: self.epoch, req });
        }
    }
}

impl Node for HaNameNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.coord.start(ctx);
        self.coord.watch(ctx, "g/0/".to_string());
        ctx.set_timer(self.spec.flush_interval, T_FLUSH);
        if self.role == HaRole::Standby {
            ctx.set_timer(self.spec.tail_interval, T_TAIL);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.coord.on_timer(ctx, token) {
            return;
        }
        match token {
            T_FLUSH => {
                if self.role == HaRole::Active {
                    let budget = self.spec.flush_interval;
                    let mut cpu = self.cpu;
                    cpu.mutation += self.spec.journal_cpu;
                    for item in self.ingress.drain(budget, cpu) {
                        if let mams_core::IngressItem::Client { from, op, seq, .. } = item {
                            self.serve(ctx, from, op, seq);
                        }
                    }
                    self.flush(ctx);
                }
                ctx.set_timer(self.spec.flush_interval, T_FLUSH);
            }
            T_TAIL if self.role != HaRole::Active => {
                self.request_tail(ctx);
                ctx.set_timer(self.spec.tail_interval, T_TAIL);
            }
            T_TRANSITION_DONE if self.role == HaRole::Transitioning => {
                self.role = HaRole::Active;
                // From here the namespace is mutated outside replay.
                self.replayer.reset();
                let me = ctx.id();
                self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                ctx.trace("ha.transition_done", String::new);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Message) {
        let msg = match CoordClient::classify(msg) {
            Ok(Incoming::Resp(CoordResp::Registered)) => {
                if self.role == HaRole::Active {
                    let me = ctx.id();
                    self.coord.set(ctx, mams_core::keys::active(0), me.to_string(), true);
                }
                return;
            }
            Ok(Incoming::Event(CoordEvent::KeyChanged { key, value, .. })) => {
                if self.role == HaRole::Standby
                    && !self.detected
                    && key == mams_core::keys::active(0)
                    && value.is_none()
                {
                    self.detected = true;
                    ctx.trace("ha.failover_detected", String::new);
                    self.begin_failover(ctx);
                }
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        let msg = match msg.downcast::<PoolResp>() {
            Ok(PoolResp::AppendOk { req, .. }) => {
                if let Some((remaining, _)) = self.quorum_waits.get_mut(&req) {
                    *remaining -= 1;
                    if *remaining == 0 {
                        let (_, replies) = self.quorum_waits.remove(&req).expect("present");
                        for (to, seq, result) in replies {
                            reply(&mut self.retry, ctx, to, seq, result);
                        }
                    }
                }
                return;
            }
            Ok(PoolResp::EpochAdvanced { .. }) => {
                if self.role == HaRole::Fencing && self.fence_waits > 0 {
                    self.fence_waits -= 1;
                    if self.fence_waits == 0 {
                        self.role = HaRole::Draining;
                        self.request_tail(ctx);
                    }
                }
                return;
            }
            Ok(PoolResp::Journal { batches, tail_sn, .. }) => {
                self.apply_tail(batches);
                if self.role == HaRole::Draining && self.cursor.max_sn() >= tail_sn {
                    self.role = HaRole::Transitioning;
                    ctx.trace("ha.drained", || format!("sn {}", self.cursor.max_sn()));
                    ctx.set_timer(HA_TRANSITION_COST, T_TRANSITION_DONE);
                }
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        if let Ok(MdsReq::Op { op, seq, .. }) = msg.downcast::<MdsReq>() {
            if self.role != HaRole::Active {
                ctx.send(from, MdsResp::NotActive { seq });
                return;
            }
            self.ingress.push(from, op, seq, None);
        }
    }
}

/// Build the HA pair plus journal nodes. Returns
/// `(active, standby, journal_nodes)`.
pub fn build(sim: &mut Sim, coord: NodeId, spec: HadoopHaSpec) -> (NodeId, NodeId, Vec<NodeId>) {
    let jn_disk = DiskModel { op_overhead: spec.jn_latency, bytes_per_sec: 100 * 1024 * 1024 };
    let mut journals = Vec::new();
    for i in 0..spec.journal_nodes {
        // Each journal node has its *own* storage (quorum semantics).
        let pool = new_shared_pool();
        journals.push(sim.add_node(
            format!("jn-{i}"),
            Box::new(PoolNode::new(pool).with_disks(jn_disk, jn_disk)),
        ));
    }
    let active =
        sim.add_node("ha-active", Box::new(HaNameNode::new(coord, journals.clone(), spec, true)));
    let standby =
        sim.add_node("ha-standby", Box::new(HaNameNode::new(coord, journals.clone(), spec, false)));
    (active, standby, journals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_cluster::metrics::Metrics;
    use mams_cluster::mttr::mttr_from_completions;
    use mams_cluster::workload::Workload;
    use mams_cluster::{ClientConfig, FsClient};
    use mams_coord::{CoordConfig, CoordServer};
    use mams_namespace::Partitioner;
    use mams_sim::{DetRng, Sim, SimConfig, SimTime};

    #[test]
    fn failover_in_the_paper_band() {
        let mut sim = Sim::new(SimConfig::default());
        let coord = sim.add_node("coord", Box::new(CoordServer::new(CoordConfig::default())));
        let (active, _standby, _jns) = build(&mut sim, coord, HadoopHaSpec::default());
        let m = Metrics::new(true);
        let cfg = ClientConfig::new(coord, Partitioner::new(1));
        sim.add_node(
            "client",
            Box::new(FsClient::new(
                cfg,
                Workload::create_only(0),
                m.clone(),
                DetRng::seed_from_u64(4),
            )),
        );
        let kill = SimTime(10_000_000);
        sim.at(kill, move |s| s.crash(active));
        sim.run_for(Duration::from_secs(60));
        let outages = mttr_from_completions(&m.completions(), &[kill.micros()]);
        assert_eq!(outages.len(), 1);
        let mttr = outages[0].mttr_secs();
        // Paper band: 15–19 s.
        assert!((14.0..22.0).contains(&mttr), "HA MTTR {mttr:.1}s");
    }
}
