//! Wing–Gong-style linearizability checker, specialized to the metadata
//! operation model.
//!
//! The history is the flat [`OpRecord`] log the cluster's clients wrote
//! (one record per *logical* operation, spanning all its retry attempts).
//! The checker asks: is there a total order of the operations, consistent
//! with real time (if op A completed before op B was invoked, A orders
//! first), under which every observed outcome matches a sequential
//! namespace?
//!
//! # Specialization
//!
//! Keys are independent except where a `rename` bridges two paths, so the
//! history is first split into **components** (union-find over paths,
//! renames linking src and dst) and each component is checked on its own —
//! the classic P-compositionality cut that turns one intractable search
//! into many trivial ones. Per-key state is just `Absent | File | Dir`.
//!
//! # Strict linearizability, everywhere
//!
//! MAMS suppresses duplicate requests with a per-client retry window that
//! is *replicated through the journal*: every batch carries the acks it
//! released, replay rebuilds the `(client, seq) → outcome` window on every
//! replica, and promotion seeds the successor's retry cache from it. A
//! retry that lands on a freshly promoted active is therefore answered
//! from the replicated window, never re-executed — there is no
//! at-most-once hole across failover, and the checker holds every history
//! (retried or not, across any number of failovers) to **strict**
//! linearizability by default.
//!
//! The pre-replication model survives as an opt-in legacy mode
//! ([`CheckerOpts::echoes`]): each completed mutation that needed more
//! than one attempt contributes up to [`MAX_ECHOES`] optional *echo*
//! entries — phantom executions in the same real-time window that the
//! search may apply or discard, i.e. "linearizable modulo retry
//! duplication". It exists only to check builds of the protocol without
//! the replicated window (campaign `--legacy-echoes`); leaving it off is
//! what gives the double-ack teeth test its bite even in faulty runs.

use std::collections::{HashMap, HashSet};

use mams_cluster::OpRecord;
use mams_core::{FsOp, OpOutput};

/// Echo entries per retried mutation in legacy mode (bounds the
/// branching).
pub const MAX_ECHOES: u32 = 2;

/// Search budget: explored configurations per component.
pub const DEFAULT_BUDGET: u64 = 400_000;

/// Checker verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every component admits a valid linearization.
    Ok { states: u64 },
    /// Some component has no valid linearization.
    Violation { witness: String },
    /// Budget exhausted before a verdict.
    Inconclusive { states: u64 },
}

impl CheckOutcome {
    pub fn is_violation(&self) -> bool {
        matches!(self, CheckOutcome::Violation { .. })
    }
}

/// Tuning for [`check_history_with`].
#[derive(Debug, Clone, Copy)]
pub struct CheckerOpts {
    pub budget: u64,
    /// Legacy model of the pre-replication at-most-once hole (echo entries
    /// for retried mutations). Off by default: the retry window is
    /// replicated, so retries are strict too.
    pub echoes: bool,
    /// Model the speculative-ack contract: a mutation acknowledged before
    /// durability (`OpRecord::spec`) may be lost on failover, so its
    /// success gets an extra "never applied" branch. Durable-ack records
    /// in the same history stay strict.
    pub spec_maybe_lost: bool,
}

impl Default for CheckerOpts {
    fn default() -> Self {
        CheckerOpts { budget: DEFAULT_BUDGET, echoes: false, spec_maybe_lost: false }
    }
}

// --------------------------------------------------------------- model

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeySt {
    Absent = 0,
    File = 1,
    Dir = 2,
}

/// Precondition on the component state, over local path slots.
#[derive(Debug, Clone, Copy)]
enum Pre {
    None,
    Absent(u8),
    Present(u8),
    /// Present and is/ isn't a directory (from `GetFileInfo` output).
    IsDir(u8, bool),
    /// Rename applies: src present, dst absent.
    RenameOk(u8, u8),
}

/// State transition.
#[derive(Debug, Clone, Copy)]
enum Eff {
    Create(u8),
    Mkdir(u8),
    Delete(u8),
    Rename(u8, u8),
}

#[derive(Debug, Clone, Copy)]
struct Branch {
    pre: Pre,
    eff: Option<Eff>,
}

const NOOP: Branch = Branch { pre: Pre::None, eff: None };

#[derive(Debug)]
struct Entry {
    inv: u64,
    ret: u64,
    branches: Vec<Branch>,
}

/// One independently checkable key component.
struct Component {
    /// Per virtual client: entries in invocation order (real clients are
    /// closed-loop, so per-client entries never overlap; echoes are
    /// singleton queues).
    queues: Vec<Vec<Entry>>,
    n_paths: usize,
    /// Original records (for the witness).
    records: Vec<OpRecord>,
}

fn pre_holds(pre: Pre, st: &[u8]) -> bool {
    match pre {
        Pre::None => true,
        Pre::Absent(p) => st[p as usize] == KeySt::Absent as u8,
        Pre::Present(p) => st[p as usize] != KeySt::Absent as u8,
        Pre::IsDir(p, dir) => {
            st[p as usize] == if dir { KeySt::Dir as u8 } else { KeySt::File as u8 }
        }
        Pre::RenameOk(s, d) => {
            st[s as usize] != KeySt::Absent as u8 && st[d as usize] == KeySt::Absent as u8
        }
    }
}

fn apply_eff(eff: Eff, st: &mut [u8]) {
    match eff {
        Eff::Create(p) => st[p as usize] = KeySt::File as u8,
        Eff::Mkdir(p) => st[p as usize] = KeySt::Dir as u8,
        Eff::Delete(p) => st[p as usize] = KeySt::Absent as u8,
        Eff::Rename(s, d) => {
            st[d as usize] = st[s as usize];
            st[s as usize] = KeySt::Absent as u8;
        }
    }
}

/// The success-path branch for a mutation (its precondition is exactly the
/// namespace's own acceptance rule).
fn success_branch(op: &FsOp, slot: impl Fn(&str) -> u8) -> Option<Branch> {
    match op {
        FsOp::Create { path, .. } => {
            let p = slot(path);
            Some(Branch { pre: Pre::Absent(p), eff: Some(Eff::Create(p)) })
        }
        FsOp::Mkdir { path } => {
            let p = slot(path);
            Some(Branch { pre: Pre::Absent(p), eff: Some(Eff::Mkdir(p)) })
        }
        FsOp::Delete { path, .. } => {
            let p = slot(path);
            Some(Branch { pre: Pre::Present(p), eff: Some(Eff::Delete(p)) })
        }
        FsOp::Rename { src, dst } => {
            let (s, d) = (slot(src), slot(dst));
            Some(Branch { pre: Pre::RenameOk(s, d), eff: Some(Eff::Rename(s, d)) })
        }
        _ => None,
    }
}

/// The branch explaining an *error* outcome (a no-op whose precondition is
/// the state the error claims). Unknown errors are unconstrained no-ops.
fn error_branch(op: &FsOp, err: &str, slot: impl Fn(&str) -> u8) -> Branch {
    let exists = err.contains("already exists");
    let missing = err.contains("no such file");
    match op {
        FsOp::Create { path, .. } | FsOp::Mkdir { path } if exists => {
            Branch { pre: Pre::Present(slot(path)), eff: None }
        }
        FsOp::Delete { path, .. } if missing => Branch { pre: Pre::Absent(slot(path)), eff: None },
        FsOp::Rename { src, .. } if missing => Branch { pre: Pre::Absent(slot(src)), eff: None },
        FsOp::Rename { dst, .. } if exists => Branch { pre: Pre::Present(slot(dst)), eff: None },
        FsOp::GetFileInfo { path } if missing => Branch { pre: Pre::Absent(slot(path)), eff: None },
        _ => NOOP,
    }
}

// ---------------------------------------------------------- components

struct Uf(HashMap<String, String>);

impl Uf {
    fn find(&mut self, k: &str) -> String {
        let parent = match self.0.get(k) {
            None => {
                self.0.insert(k.to_string(), k.to_string());
                return k.to_string();
            }
            Some(p) => p.clone(),
        };
        if parent == k {
            return parent;
        }
        let root = self.find(&parent);
        self.0.insert(k.to_string(), root.clone());
        root
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.0.insert(ra, rb);
        }
    }
}

fn op_paths(op: &FsOp) -> Vec<&str> {
    match op {
        FsOp::Rename { src, dst } => vec![src.as_str(), dst.as_str()],
        other => vec![other.primary_path()],
    }
}

/// Is this record inside the checker's model at all?
fn in_model(r: &OpRecord) -> bool {
    if r.is_setup {
        return false; // idempotent setup mkdirs, shared across clients
    }
    match &r.op {
        FsOp::Create { .. } | FsOp::Mkdir { .. } | FsOp::Delete { .. } | FsOp::Rename { .. } => {
            true
        }
        FsOp::GetFileInfo { .. } => r.completed_us.is_some(), // unanswered reads say nothing
        _ => false,
    }
}

fn build_components(records: &[OpRecord], opts: &CheckerOpts) -> Vec<Component> {
    let mut uf = Uf(HashMap::new());
    let in_scope: Vec<&OpRecord> = records.iter().filter(|r| in_model(r)).collect();
    for r in &in_scope {
        let ps = op_paths(&r.op);
        for p in &ps {
            uf.union(ps[0], p);
        }
    }
    let mut by_root: HashMap<String, Vec<&OpRecord>> = HashMap::new();
    for r in &in_scope {
        let root = uf.find(op_paths(&r.op)[0]);
        by_root.entry(root).or_default().push(r);
    }

    let mut out = Vec::new();
    for (_, recs) in by_root {
        // Local path slots.
        let mut paths: Vec<String> = Vec::new();
        for r in &recs {
            for p in op_paths(&r.op) {
                if !paths.iter().any(|q| q == p) {
                    paths.push(p.to_string());
                }
            }
        }
        let slot_of = |paths: &[String], p: &str| -> u8 {
            paths.iter().position(|q| q == p).expect("collected") as u8
        };

        let mut queues: Vec<Vec<Entry>> = Vec::new();
        let mut client_q: HashMap<u32, usize> = HashMap::new();
        let mut records_local: Vec<OpRecord> = Vec::new();

        for r in &recs {
            records_local.push((*r).clone());
            let slot = |p: &str| slot_of(&paths, p);
            let inv = r.invoked_us;
            let ret = r.completed_us.unwrap_or(u64::MAX);
            let is_mutation = r.op.is_mutation();

            let mut branches = Vec::new();
            match (&r.op, r.completed_us, r.ok) {
                (FsOp::GetFileInfo { path }, Some(_), Some(true)) => {
                    match &r.output {
                        Some(OpOutput::Info(fi)) => branches
                            .push(Branch { pre: Pre::IsDir(slot(path), fi.is_dir), eff: None }),
                        _ => branches.push(Branch { pre: Pre::Present(slot(path)), eff: None }),
                    };
                }
                (op, Some(_), Some(false)) => {
                    let err = r.error.as_deref().unwrap_or("");
                    branches.push(error_branch(op, err, slot));
                }
                (op, Some(_), _) if is_mutation => {
                    // Completed successfully.
                    if let Some(b) = success_branch(op, slot) {
                        branches.push(b);
                    }
                    if opts.spec_maybe_lost && r.spec {
                        // Speculative ack: the reply preceded durability, so
                        // a failover may have erased the op entirely.
                        branches.push(NOOP);
                    }
                    if r.reconciled {
                        // The success the client reported was inferred from
                        // a retry error ("already exists" / "no such
                        // file"): either its own earlier execution applied,
                        // or it never executed and the error is a truthful
                        // no-op. Both worlds must be explorable.
                        let err = r.error.as_deref().unwrap_or("");
                        branches.push(error_branch(op, err, slot));
                    }
                }
                (op, None, _) if is_mutation => {
                    // Never answered: may or may not have executed.
                    if let Some(b) = success_branch(op, slot) {
                        branches.push(b);
                    }
                    branches.push(NOOP);
                }
                _ => continue, // unanswered read (already filtered) or non-model op
            }

            let qi = *client_q.entry(r.client).or_insert_with(|| {
                queues.push(Vec::new());
                queues.len() - 1
            });
            queues[qi].push(Entry { inv, ret, branches });

            // Legacy echo entries: without a replicated retry window, each
            // extra attempt of a completed mutation may have executed once
            // more.
            if opts.echoes && is_mutation && r.attempts > 1 {
                for _ in 0..(r.attempts - 1).min(MAX_ECHOES) {
                    let mut eb = vec![NOOP];
                    if let Some(b) = success_branch(&r.op, slot) {
                        eb.push(b);
                    }
                    queues.push(vec![Entry { inv, ret, branches: eb }]);
                }
            }
        }

        // Per-queue entries must be in invocation order (real clients are
        // closed-loop so history order already is invocation order).
        for q in &mut queues {
            q.sort_by_key(|e| e.inv);
        }
        out.push(Component { queues, n_paths: paths.len(), records: records_local });
    }
    out
}

// -------------------------------------------------------------- search

fn encode(fronts: &[u16], st: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(fronts.len() * 2 + st.len());
    for f in fronts {
        key.extend_from_slice(&f.to_le_bytes());
    }
    key.extend_from_slice(st);
    key
}

/// Check one component. Returns `Ok(states)` on success, `Err(true)` on
/// violation, `Err(false)` on budget exhaustion.
fn check_component(c: &Component, budget: u64) -> Result<u64, bool> {
    let nq = c.queues.len();
    let fronts0 = vec![0u16; nq];
    let st0 = vec![KeySt::Absent as u8; c.n_paths];
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut stack = vec![(fronts0, st0)];
    let mut states: u64 = 0;

    while let Some((fronts, st)) = stack.pop() {
        let key = encode(&fronts, &st);
        if !seen.insert(key) {
            continue;
        }
        states += 1;
        if states > budget {
            return Err(false);
        }
        if fronts.iter().enumerate().all(|(qi, &f)| f as usize >= c.queues[qi].len()) {
            return Ok(states); // every entry linearized
        }
        // Minimum completion time over pending fronts: an entry may
        // linearize next only if no pending entry returned before it was
        // invoked.
        let min_ret = fronts
            .iter()
            .enumerate()
            .filter_map(|(qi, &f)| c.queues[qi].get(f as usize))
            .map(|e| e.ret)
            .min()
            .unwrap_or(u64::MAX);
        for qi in 0..nq {
            let Some(e) = c.queues[qi].get(fronts[qi] as usize) else { continue };
            if e.inv > min_ret {
                continue; // something else must linearize first
            }
            for b in &e.branches {
                if !pre_holds(b.pre, &st) {
                    continue;
                }
                let mut nf = fronts.clone();
                nf[qi] += 1;
                let mut nst = st.clone();
                if let Some(eff) = b.eff {
                    apply_eff(eff, &mut nst);
                }
                stack.push((nf, nst));
            }
        }
    }
    Err(true) // search space exhausted with no complete linearization
}

fn witness(c: &Component) -> String {
    let mut recs: Vec<&OpRecord> = c.records.iter().collect();
    recs.sort_by_key(|r| r.invoked_us);
    let mut out = String::from("no valid linearization for component:\n");
    for r in recs.iter().take(48) {
        let outcome = match (r.completed_us, r.ok) {
            (None, _) => "?".to_string(),
            (Some(_), Some(true)) => {
                if r.reconciled {
                    "ok (reconciled)".to_string()
                } else {
                    match &r.output {
                        Some(OpOutput::Info(fi)) => {
                            format!("ok is_dir={}", fi.is_dir)
                        }
                        _ => "ok".to_string(),
                    }
                }
            }
            _ => format!("err {}", r.error.as_deref().unwrap_or("?")),
        };
        out.push_str(&format!(
            "  c{} [{} .. {}] x{} {:?} -> {}\n",
            r.client,
            r.invoked_us,
            r.completed_us.map(|t| t.to_string()).unwrap_or_else(|| "inf".into()),
            r.attempts,
            r.op,
            outcome
        ));
    }
    if c.records.len() > 48 {
        out.push_str(&format!("  ... {} more\n", c.records.len() - 48));
    }
    out
}

/// Check a recorded history for strict linearizability (see the module
/// docs; the legacy echo model is opt-in via [`check_history_with`]).
pub fn check_history(records: &[OpRecord]) -> CheckOutcome {
    check_history_with(records, &CheckerOpts::default())
}

/// [`check_history`] with explicit options.
pub fn check_history_with(records: &[OpRecord], opts: &CheckerOpts) -> CheckOutcome {
    let comps = build_components(records, opts);
    let mut total: u64 = 0;
    let mut inconclusive = false;
    for c in &comps {
        match check_component(c, opts.budget) {
            Ok(states) => total += states,
            Err(true) => return CheckOutcome::Violation { witness: witness(c) },
            Err(false) => inconclusive = true,
        }
    }
    if inconclusive {
        CheckOutcome::Inconclusive { states: total }
    } else {
        CheckOutcome::Ok { states: total }
    }
}

/// Verify the speculative ordering-token contract over a recorded history:
/// per client, returned tokens are non-decreasing while the service is
/// healthy. A regression is the protocol's *signal* that a speculative
/// timeline was lost to failover, so one is only legitimate once a fault
/// may have fired — any regression completing before `quiet_until_us` is a
/// bug in the watermark plumbing, not a lost timeline.
pub fn check_token_contract(records: &[OpRecord], quiet_until_us: u64) -> Option<String> {
    let mut per_client: HashMap<u32, Vec<&OpRecord>> = HashMap::new();
    for r in records {
        if r.token.is_some() && r.completed_us.is_some() {
            per_client.entry(r.client).or_default().push(r);
        }
    }
    for recs in per_client.values_mut() {
        recs.sort_by_key(|r| r.completed_us.unwrap());
        let mut high = 0u64;
        for r in recs {
            let t = r.token.unwrap();
            let at = r.completed_us.unwrap();
            if t < high && at < quiet_until_us {
                return Some(format!(
                    "client {} token regressed {high} -> {t} at {at}us, before any fault \
                     (quiet until {quiet_until_us}us): {:?}",
                    r.client, r.op
                ));
            }
            high = high.max(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_namespace::FileInfo;

    fn rec(
        client: u32,
        op: FsOp,
        window: (u64, Option<u64>),
        ok: Option<bool>,
        attempts: u32,
    ) -> OpRecord {
        OpRecord {
            client,
            op,
            invoked_us: window.0,
            completed_us: window.1,
            ok,
            output: ok.filter(|o| *o).map(|_| OpOutput::Done),
            error: None,
            attempts,
            reconciled: false,
            is_setup: false,
            spec: false,
            token: None,
        }
    }

    fn create(p: &str) -> FsOp {
        FsOp::Create { path: p.into(), replication: 1 }
    }
    fn delete(p: &str) -> FsOp {
        FsOp::Delete { path: p.into(), recursive: false }
    }
    fn getinfo(p: &str) -> FsOp {
        FsOp::GetFileInfo { path: p.into() }
    }
    fn info_file(p: &str) -> OpOutput {
        OpOutput::Info(FileInfo {
            path: p.into(),
            is_dir: false,
            blocks: vec![],
            replication: 1,
            sealed: false,
            perm: 0o644,
            child_count: 0,
        })
    }

    #[test]
    fn sequential_history_is_ok() {
        let recs = vec![
            rec(0, create("/hot/f0"), (0, Some(1)), Some(true), 1),
            rec(0, delete("/hot/f0"), (2, Some(3)), Some(true), 1),
            rec(0, create("/hot/f0"), (4, Some(5)), Some(true), 1),
        ];
        assert!(matches!(check_history(&recs), CheckOutcome::Ok { .. }));
    }

    #[test]
    fn stale_read_after_delete_is_a_violation() {
        // delete committed, then a later read still sees the file — with
        // no concurrency to hide behind this cannot linearize.
        let mut read = rec(0, getinfo("/hot/f0"), (4, Some(5)), Some(true), 1);
        read.output = Some(info_file("/hot/f0"));
        let recs = vec![
            rec(0, create("/hot/f0"), (0, Some(1)), Some(true), 1),
            rec(0, delete("/hot/f0"), (2, Some(3)), Some(true), 1),
            read,
        ];
        assert!(check_history(&recs).is_violation());
    }

    #[test]
    fn concurrent_create_explains_exists_error() {
        let mut err = rec(1, create("/hot/f0"), (0, Some(4)), Some(false), 1);
        err.error = Some("/hot/f0: already exists".into());
        err.output = None;
        let recs = vec![rec(0, create("/hot/f0"), (1, Some(2)), Some(true), 1), err];
        assert!(matches!(check_history(&recs), CheckOutcome::Ok { .. }));
    }

    #[test]
    fn retry_duplication_is_a_violation_unless_legacy_echoes_opt_in() {
        // Client 0's create took 2 attempts across a failover; its second
        // execution resurrects the file after client 1's delete. With the
        // replicated retry window that re-execution is a real bug, so the
        // strict default convicts; only the legacy echo model (for builds
        // without the window) explains it away.
        let recs = vec![
            rec(0, create("/hot/f0"), (0, Some(20)), Some(true), 2),
            rec(1, delete("/hot/f0"), (5, Some(6)), Some(true), 1),
            {
                let mut read = rec(1, getinfo("/hot/f0"), (8, Some(9)), Some(true), 1);
                read.output = Some(info_file("/hot/f0"));
                read
            },
        ];
        assert!(check_history(&recs).is_violation());
        let legacy = CheckerOpts { echoes: true, ..CheckerOpts::default() };
        assert!(matches!(check_history_with(&recs, &legacy), CheckOutcome::Ok { .. }));
    }

    #[test]
    fn reconciled_delete_explores_both_worlds() {
        // Delete retried across a failover, answered "no such file",
        // reconciled to ok. World A: its first execution deleted the file.
        // World B: client 1's delete did. Either way the history checks.
        let mut d = rec(0, delete("/hot/f0"), (2, Some(30)), Some(true), 2);
        d.reconciled = true;
        d.error = Some("/hot/f0: no such file or directory".into());
        let recs = vec![
            rec(0, create("/hot/f0"), (0, Some(1)), Some(true), 1),
            d,
            rec(1, delete("/hot/f0"), (3, Some(4)), Some(true), 1),
        ];
        assert!(matches!(check_history(&recs), CheckOutcome::Ok { .. }));
    }

    #[test]
    fn rename_links_paths_into_one_component() {
        let recs = vec![
            rec(0, create("/hot/f0"), (0, Some(1)), Some(true), 1),
            rec(
                0,
                FsOp::Rename { src: "/hot/f0".into(), dst: "/hot/g0".into() },
                (2, Some(3)),
                Some(true),
                1,
            ),
            {
                let mut read = rec(1, getinfo("/hot/g0"), (4, Some(5)), Some(true), 1);
                read.output = Some(info_file("/hot/g0"));
                read
            },
        ];
        assert!(matches!(check_history(&recs), CheckOutcome::Ok { .. }));
        // And the moved-away source must read absent, not present.
        let mut bad = rec(1, getinfo("/hot/f0"), (6, Some(7)), Some(true), 1);
        bad.output = Some(info_file("/hot/f0"));
        let mut recs2 = recs;
        recs2.push(bad);
        assert!(check_history(&recs2).is_violation());
    }

    #[test]
    fn unanswered_mutation_may_or_may_not_apply() {
        // A create that never came back: both a later "exists" error and a
        // later "missing" read must be explainable.
        let lost = rec(0, create("/hot/f0"), (0, None), None, 3);
        let mut err = rec(1, create("/hot/f0"), (10, Some(11)), Some(false), 1);
        err.error = Some("/hot/f0: already exists".into());
        err.output = None;
        let mut missing = rec(1, getinfo("/hot/f0"), (10, Some(11)), Some(false), 1);
        missing.error = Some("/hot/f0: no such file or directory".into());
        missing.output = None;
        assert!(matches!(check_history(&[lost.clone(), err]), CheckOutcome::Ok { .. }));
        assert!(matches!(check_history(&[lost, missing]), CheckOutcome::Ok { .. }));
    }

    #[test]
    fn speculative_loss_is_accepted_only_under_the_spec_model() {
        // A spec-acked create vanished in a failover: a later read sees the
        // file absent. Strict checking convicts; the spec model explains it
        // (the ack never promised durability).
        let mut lost = rec(0, create("/hot/f0"), (0, Some(1)), Some(true), 1);
        lost.spec = true;
        lost.token = Some(5);
        let mut missing = rec(0, getinfo("/hot/f0"), (10, Some(11)), Some(false), 1);
        missing.error = Some("/hot/f0: no such file or directory".into());
        missing.output = None;
        let recs = vec![lost, missing];
        assert!(check_history(&recs).is_violation());
        let spec = CheckerOpts { spec_maybe_lost: true, ..CheckerOpts::default() };
        assert!(matches!(check_history_with(&recs, &spec), CheckOutcome::Ok { .. }));
    }

    #[test]
    fn durable_acks_stay_strict_under_the_spec_model() {
        // Same shape but the ack was durable (spec=false): still a
        // violation even with spec_maybe_lost on.
        let durable = rec(0, create("/hot/f0"), (0, Some(1)), Some(true), 1);
        let mut missing = rec(0, getinfo("/hot/f0"), (10, Some(11)), Some(false), 1);
        missing.error = Some("/hot/f0: no such file or directory".into());
        missing.output = None;
        let spec = CheckerOpts { spec_maybe_lost: true, ..CheckerOpts::default() };
        assert!(check_history_with(&[durable, missing], &spec).is_violation());
    }

    #[test]
    fn token_contract_flags_only_pre_fault_regressions() {
        let mk = |seq: u64, at: u64, token: u64| {
            let mut r = rec(0, create(&format!("/hot/f{seq}")), (at - 1, Some(at)), Some(true), 1);
            r.spec = true;
            r.token = Some(token);
            r
        };
        // Monotone: fine.
        let recs = vec![mk(0, 10, 1), mk(1, 20, 2), mk(2, 30, 7)];
        assert_eq!(check_token_contract(&recs, u64::MAX), None);
        // Regression after the first fault: a legitimate lost-timeline signal.
        let recs = vec![mk(0, 10, 5), mk(1, 20, 2)];
        assert_eq!(check_token_contract(&recs, 15), None);
        // Regression while healthy: a watermark bug.
        assert!(check_token_contract(&recs, u64::MAX).is_some());
    }

    #[test]
    fn setup_records_are_ignored() {
        let mut s = rec(0, FsOp::Mkdir { path: "/hot".into() }, (0, Some(1)), Some(true), 1);
        s.is_setup = true;
        let mut s2 = s.clone();
        s2.client = 1;
        s2.invoked_us = 0;
        s2.completed_us = Some(2);
        assert!(matches!(check_history(&[s, s2]), CheckOutcome::Ok { .. }));
    }
}
