//! Wall-clock journal-replay benchmark: the apply loop that bounds both a
//! standby's steady-state lag and a junior's catch-up time (Section III-D;
//! MTTR in Table I is dominated by how fast the journal can be replayed).
//!
//! A fixed-seed generator produces a directory-local mutation stream —
//! creates, block allocations and closes walking leaf directories in order,
//! with occasional renames and deletes — executed once against a scratch
//! tree so every journaled record is valid, exactly like the active's
//! execution path. The stream is then sealed into 64-record batches and
//! replayed two ways:
//!
//! - **live**: batches already decoded (the standby's `SyncJournal` path);
//!   naive per-record `NamespaceTree::apply` vs the `ReplaySession` fast
//!   path (validate-skip + cached parent handle).
//! - **cold**: wire bytes → decode + apply (the junior's catch-up path);
//!   v1 wire + naive apply vs v2 wire + `ReplaySession`.
//!
//! The `--delta` mode adds the **delta catch-up** sweep: a junior restarting
//! at the last checkpoint recovers either by fetching the latest *full*
//! image (discarding its state) or by applying the folded *delta* covering
//! the churn since its checkpoint — both followed by the same windowed
//! journal tail. Recovery seconds and bytes fetched per 16/64/256 MB base
//! class quantify the flat-MTTR claim: delta recovery cost tracks churn,
//! not namespace size.
//!
//! Results go to `BENCH_replay.json` at the repo root so successive PRs can
//! track the perf trajectory.
//!
//! Run from the repo root: `cargo run --release --bin bench_replay`
//! (`--quick` shrinks the stream and reps — the CI smoke; `--delta --quick`
//! adds the smallest delta catch-up class).

use std::time::Instant;

use bytes::Bytes;
use mams_journal::{decode_batch, encode_batch, encode_batch_v1, JournalBatch, Txn};
use mams_namespace::{
    apply_delta, decode_delta, decode_image, encode_image, fold_delta, NamespaceTree, ReplaySession,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x4d41_4d53; // "MAMS"
const BATCH_OPS: usize = 64;
const FILES_PER_DIR: u64 = 128;

/// The directory skeleton both the generator and every replay rep start
/// from (a junior begins at the same checkpoint the stream was cut from).
fn base_tree(leaf_dirs: u64) -> (NamespaceTree, Vec<String>) {
    let mut t = NamespaceTree::new();
    let mut dirs = Vec::new();
    let tops = ((leaf_dirs as f64).sqrt().ceil() as u64).max(1);
    let subs = leaf_dirs.div_ceil(tops);
    for d in 0..tops {
        let top = format!("/project{d:04}");
        t.mkdir(&top).unwrap();
        for s in 0..subs {
            let dir = format!("{top}/dataset{s:04}");
            t.mkdir(&dir).unwrap();
            dirs.push(dir);
            if dirs.len() as u64 >= leaf_dirs {
                return (t, dirs);
            }
        }
    }
    (t, dirs)
}

/// Execute a directory-local mutation stream against `tree`, returning the
/// journaled records: per leaf dir, create/add-block/close a run of files,
/// with a rename and a delete sprinkled in to exercise cache invalidation.
fn generate_stream(tree: &mut NamespaceTree, dirs: &[String], rng: &mut SmallRng) -> Vec<Txn> {
    let mut txns = Vec::new();
    let mut block = 1u64;
    let journal = |tree: &mut NamespaceTree, txns: &mut Vec<Txn>, txn: Txn| {
        tree.apply(&txn).unwrap();
        txns.push(txn);
    };
    for dir in dirs {
        for f in 0..FILES_PER_DIR {
            let path = format!("{dir}/part-{f:05}.data");
            journal(tree, &mut txns, Txn::Create { path: path.clone(), replication: 3 });
            for _ in 0..rng.gen_range(0u32..3) {
                journal(
                    tree,
                    &mut txns,
                    Txn::AddBlock { path: path.clone(), block_id: block, len: 1 << 20 },
                );
                block += 1;
            }
            journal(tree, &mut txns, Txn::CloseFile { path: path.clone() });
            if f % 50 == 17 {
                let dst = format!("{dir}/renamed-{f:05}.data");
                journal(tree, &mut txns, Txn::Rename { src: path, dst });
            } else if f % 70 == 23 {
                journal(tree, &mut txns, Txn::Delete { path, recursive: false });
            }
        }
    }
    txns
}

/// Seal the stream into `⟨sn, txid⟩` batches of `BATCH_OPS` records.
fn seal_batches(txns: &[Txn]) -> Vec<JournalBatch> {
    let mut batches = Vec::new();
    let mut txid = 1u64;
    for (i, chunk) in txns.chunks(BATCH_OPS).enumerate() {
        batches.push(JournalBatch::new(i as u64 + 1, txid, chunk.to_vec()));
        txid += chunk.len() as u64;
    }
    batches
}

/// Best-of-`reps` wall time in seconds; `setup` runs outside the clock.
fn best_of<S, T>(reps: usize, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let s = setup();
        let start = Instant::now();
        std::hint::black_box(f(s));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

// --------------------------------------------------------- delta catch-up

/// Approximate v1 bytes per file (same sizing rule as `bench_image`, so the
/// 16/64/256 MB classes line up across the two benches).
const V1_BYTES_PER_FILE: u64 = 72;
/// Files per leaf directory in the class-sized tree.
const CLASS_FILES_PER_DIR: u64 = 256;

/// Deterministic class-sized tree (the junior's checkpoint state) plus
/// every file path, for churn targeting.
fn build_class_tree(target_files: u64, rng: &mut SmallRng) -> (NamespaceTree, Vec<String>) {
    let mut t = NamespaceTree::new();
    let mut paths = Vec::with_capacity(target_files as usize);
    let leaf_dirs = (target_files / CLASS_FILES_PER_DIR).max(1);
    let tops = ((leaf_dirs as f64).sqrt().ceil() as u64).max(1);
    let subs = leaf_dirs.div_ceil(tops);
    let mut block = 1u64;
    'outer: for d in 0..tops {
        let top = format!("/project{d:04}");
        t.mkdir(&top).unwrap();
        for s in 0..subs {
            let dir = format!("{top}/dataset{s:04}");
            t.mkdir(&dir).unwrap();
            for f in 0..CLASS_FILES_PER_DIR {
                let p = format!("{dir}/part-{f:05}.data");
                t.create(&p, 3).unwrap();
                for _ in 0..rng.gen_range(0u32..4) {
                    t.add_block(&p, block).unwrap();
                    block += 1;
                }
                if rng.gen_range(0u32..100) < 80 {
                    t.close_file(&p).unwrap();
                }
                paths.push(p);
                if paths.len() as u64 >= target_files {
                    break 'outer;
                }
            }
        }
    }
    (t, paths)
}

/// A ~1% churn window since the checkpoint: new ingest files, perm flips
/// and block appends on existing files. Returns the committed txns; `tree`
/// ends at the post state. `wave` keeps successive windows' ingest
/// directories distinct.
fn churn_window(
    tree: &mut NamespaceTree,
    paths: &[String],
    rng: &mut SmallRng,
    wave: u32,
) -> Vec<Txn> {
    let k = (paths.len() / 100).max(256);
    let mut txns = Vec::with_capacity(k + 1);
    let mk = Txn::Mkdir { path: format!("/ingest{wave}") };
    tree.apply(&mk).unwrap();
    txns.push(mk);
    let mut block = (1u64 << 40) + (u64::from(wave) << 32);
    for i in 0..k {
        let txn = match i % 4 {
            0 => Txn::Create {
                path: format!("/ingest{wave}/part-{:06}.data", i / 4),
                replication: 3,
            },
            1 => Txn::SetPerm {
                path: paths[(i * 7919) % paths.len()].clone(),
                perm: rng.gen_range(0..0o1000u32) as u16,
            },
            _ => {
                block += 1;
                Txn::AddBlock {
                    path: paths[(i * 104_729) % paths.len()].clone(),
                    block_id: block,
                    len: 1 << 20,
                }
            }
        };
        // AddBlock on a sealed file fails; skip it like the active would.
        if tree.apply(&txn).is_ok() {
            txns.push(txn);
        }
    }
    txns
}

struct DeltaClassResult {
    class_mb: u64,
    files: u64,
    churn_txns: u64,
    tail_txns: u64,
    full_bytes_fetched: u64,
    full_recovery_s: f64,
    delta_bytes_fetched: u64,
    delta_recovery_s: f64,
}

/// One delta catch-up class: a junior at the checkpoint recovers to the
/// chain end + journal tail, via full-image fetch vs delta apply.
fn run_delta_class(class_mb: u64, reps: usize, rng: &mut SmallRng) -> DeltaClassResult {
    let target_files = (class_mb * 1024 * 1024) / V1_BYTES_PER_FILE;
    let (base, paths) = build_class_tree(target_files, rng);
    let base_sn = 1_000u64;

    // Churn since the checkpoint, folded into the delta the producer cut.
    let mut live = base.clone();
    let churn = churn_window(&mut live, &paths, rng, 0);
    let delta_end = base_sn + churn.len() as u64;
    let delta = fold_delta(&live, base_sn, delta_end, &churn);

    // The full-image path fetches the checkpoint the active would have had
    // to cut at the same point.
    let full_image = encode_image(&live, delta_end);

    // Windowed journal tail past the chain end — both paths replay it.
    let mut tail_rng = SmallRng::seed_from_u64(SEED ^ 0x7A11 ^ class_mb);
    let tail = churn_window(&mut live, &paths, &mut tail_rng, 1);
    let tail_wire: Vec<Bytes> = tail
        .chunks(BATCH_OPS)
        .enumerate()
        .map(|(i, c)| encode_batch(&JournalBatch::new(delta_end + i as u64 + 1, 1, c.to_vec())))
        .collect();
    let tail_bytes: u64 = tail_wire.iter().map(|b| b.len() as u64).sum();
    let expected_fp = live.fingerprint();

    let replay_tail = |tree: &mut NamespaceTree| {
        let mut session = ReplaySession::new();
        for w in &tail_wire {
            let b = decode_batch(w.clone()).unwrap();
            for (_, t) in b.entries() {
                session.apply(tree, t).unwrap();
            }
        }
    };

    // Full-image recovery: decode the latest checkpoint from wire bytes
    // (the junior's prior state is discarded), then replay the tail.
    let full_recovery_s = best_of(
        reps,
        || (),
        |()| {
            let (mut tree, sn) = decode_image(full_image.data.clone()).unwrap();
            assert_eq!(sn, delta_end);
            replay_tail(&mut tree);
            assert_eq!(tree.fingerprint(), expected_fp, "full-image recovery divergence");
            tree
        },
    );

    // Delta recovery: the junior keeps its checkpoint state and applies the
    // folded churn, then replays the same tail. The clone models the state
    // it already holds and runs outside the clock.
    let delta_recovery_s = best_of(
        reps,
        || base.clone(),
        |mut tree| {
            let d = decode_delta(&delta.data).unwrap();
            apply_delta(&mut tree, &d).unwrap();
            replay_tail(&mut tree);
            assert_eq!(tree.fingerprint(), expected_fp, "delta recovery divergence");
            tree
        },
    );

    let r = DeltaClassResult {
        class_mb,
        files: base.num_files(),
        churn_txns: churn.len() as u64,
        tail_txns: tail.len() as u64,
        full_bytes_fetched: full_image.size_bytes() + tail_bytes,
        full_recovery_s,
        delta_bytes_fetched: delta.size_bytes() + tail_bytes,
        delta_recovery_s,
    };
    println!(
        "delta catch-up {class_mb:>4} MB: full {:.3}s / {} MB fetched | \
         delta {:.3}s / {} KB fetched | {:.1}x faster, {:.0}x fewer bytes",
        r.full_recovery_s,
        r.full_bytes_fetched >> 20,
        r.delta_recovery_s,
        r.delta_bytes_fetched >> 10,
        r.full_recovery_s / r.delta_recovery_s,
        r.full_bytes_fetched as f64 / r.delta_bytes_fetched as f64,
    );
    r
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let delta_mode = std::env::args().any(|a| a == "--delta");
    let (leaf_dirs, reps) = if quick { (64u64, 2usize) } else { (1024, 5) };

    let mut rng = SmallRng::seed_from_u64(SEED);
    let (mut scratch, dirs) = base_tree(leaf_dirs);
    let txns = generate_stream(&mut scratch, &dirs, &mut rng);
    let expected_fp = scratch.fingerprint();
    let batches = seal_batches(&txns);
    let records = txns.len() as u64;

    let v1_wire: Vec<Bytes> = batches.iter().map(encode_batch_v1).collect();
    let v2_wire: Vec<Bytes> = batches.iter().map(encode_batch).collect();
    let v1_bytes: u64 = v1_wire.iter().map(|b| b.len() as u64).sum();
    let v2_bytes: u64 = v2_wire.iter().map(|b| b.len() as u64).sum();

    // Every replay path must land on the generator's namespace.
    let check = |tree: &NamespaceTree, what: &str| {
        assert_eq!(tree.fingerprint(), expected_fp, "replay divergence in {what}");
    };

    // Live standby: batches are already decoded, only the apply loop runs.
    let live_naive_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            for b in &batches {
                for (_, t) in b.entries() {
                    tree.apply(t).unwrap();
                }
            }
            check(&tree, "live naive");
            tree
        },
    );
    let live_session_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            let mut session = ReplaySession::new();
            for b in &batches {
                for (_, t) in b.entries() {
                    session.apply(&mut tree, t).unwrap();
                }
            }
            check(&tree, "live session");
            tree
        },
    );

    // Cold junior catch-up: wire bytes → decode + apply.
    let cold_v1_naive_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            for w in &v1_wire {
                let b = decode_batch(w.clone()).unwrap();
                for (_, t) in b.entries() {
                    tree.apply(t).unwrap();
                }
            }
            check(&tree, "cold v1 naive");
            tree
        },
    );
    let cold_v2_session_s = best_of(
        reps,
        || base_tree(leaf_dirs).0,
        |mut tree| {
            let mut session = ReplaySession::new();
            for w in &v2_wire {
                let b = decode_batch(w.clone()).unwrap();
                for (_, t) in b.entries() {
                    session.apply(&mut tree, t).unwrap();
                }
            }
            check(&tree, "cold v2 session");
            tree
        },
    );

    let rate = |s: f64| records as f64 / s;
    println!(
        "{records} records in {} batches | wire v1 {} KB, v2 {} KB ({:.2}x smaller)",
        batches.len(),
        v1_bytes >> 10,
        v2_bytes >> 10,
        v1_bytes as f64 / v2_bytes as f64,
    );
    println!(
        "live:  naive {:.0} rec/s, session {:.0} rec/s ({:.2}x)",
        rate(live_naive_s),
        rate(live_session_s),
        live_naive_s / live_session_s,
    );
    println!(
        "cold:  v1+naive {:.0} rec/s, v2+session {:.0} rec/s ({:.2}x)",
        rate(cold_v1_naive_s),
        rate(cold_v2_session_s),
        cold_v1_naive_s / cold_v2_session_s,
    );

    // Delta catch-up sweep: always in the full run, opt-in for the CI
    // smoke via `--delta --quick`.
    let delta_results: Vec<DeltaClassResult> = if delta_mode || !quick {
        let classes: &[u64] = if quick { &[16] } else { &[16, 64, 256] };
        let d_reps = if quick { 2 } else { 3 };
        let mut d_rng = SmallRng::seed_from_u64(SEED ^ 0xDE17A);
        classes.iter().map(|&mb| run_delta_class(mb, d_reps, &mut d_rng)).collect()
    } else {
        Vec::new()
    };

    // Hand-rolled JSON: the offline serde_json stand-in cannot serialize,
    // and this document is the repo's perf trajectory — it must hold real
    // numbers in every environment.
    let mut doc = format!(
        "{{\n  \"bench\": \"replay\",\n  \"seed\": {SEED},\n  \"reps\": {reps},\n  \
         \"records\": {records},\n  \"batches\": {},\n  \"batch_ops\": {BATCH_OPS},\n  \
         \"wire_v1_bytes\": {v1_bytes},\n  \"wire_v2_bytes\": {v2_bytes},\n  \
         \"wire_ratio_v1_over_v2\": {:.3},\n  \
         \"live_naive_s\": {live_naive_s:.6},\n  \"live_session_s\": {live_session_s:.6},\n  \
         \"live_naive_records_per_s\": {:.0},\n  \"live_session_records_per_s\": {:.0},\n  \
         \"live_speedup_session\": {:.3},\n  \
         \"cold_v1_naive_s\": {cold_v1_naive_s:.6},\n  \
         \"cold_v2_session_s\": {cold_v2_session_s:.6},\n  \
         \"cold_v1_naive_records_per_s\": {:.0},\n  \
         \"cold_v2_session_records_per_s\": {:.0},\n  \
         \"cold_speedup_v2_session\": {:.3}",
        batches.len(),
        v1_bytes as f64 / v2_bytes as f64,
        rate(live_naive_s),
        rate(live_session_s),
        live_naive_s / live_session_s,
        rate(cold_v1_naive_s),
        rate(cold_v2_session_s),
        cold_v1_naive_s / cold_v2_session_s,
    );
    if !delta_results.is_empty() {
        doc.push_str(",\n  \"delta_catchup\": [\n");
        for (i, r) in delta_results.iter().enumerate() {
            doc.push_str(&format!(
                "    {{\n      \"class_mb\": {},\n      \"files\": {},\n      \
                 \"churn_txns\": {},\n      \"tail_txns\": {},\n      \
                 \"full_bytes_fetched\": {},\n      \"full_recovery_s\": {:.6},\n      \
                 \"delta_bytes_fetched\": {},\n      \"delta_recovery_s\": {:.6},\n      \
                 \"recovery_speedup_delta\": {:.3},\n      \
                 \"bytes_ratio_full_over_delta\": {:.1}\n    }}{}\n",
                r.class_mb,
                r.files,
                r.churn_txns,
                r.tail_txns,
                r.full_bytes_fetched,
                r.full_recovery_s,
                r.delta_bytes_fetched,
                r.delta_recovery_s,
                r.full_recovery_s / r.delta_recovery_s,
                r.full_bytes_fetched as f64 / r.delta_bytes_fetched as f64,
                if i + 1 == delta_results.len() { "" } else { "," }
            ));
        }
        doc.push_str("  ]");
    }
    doc.push_str("\n}\n");
    let out = "BENCH_replay.json";
    std::fs::write(out, doc).expect("write BENCH_replay.json");
    println!("saved {out}");
}
