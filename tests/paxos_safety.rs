//! Randomized test for Paxos safety: with competing proposers and arbitrary
//! message interleavings, at most one value is ever chosen per instance —
//! the guarantee MAMS leans on for "only one active is elected each time".
//!
//! Seeded randomized coverage (the vendored `proptest` is an empty
//! stand-in); `PARITY_CASES` scales the number of cases.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mams::paxos::{Acceptor, Ballot, Proposer, ProposerEvent};

/// Cases per test; override with `PARITY_CASES` (nightly runs elevated).
fn cases() -> u64 {
    std::env::var("PARITY_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

#[derive(Debug, Clone)]
struct Round {
    proposer: u32,
    ballot_round: u64,
    /// Which acceptors the prepare reaches, in order (others are "lost").
    prepare_order: Vec<usize>,
    /// Which acceptors the accept reaches, in order.
    accept_order: Vec<usize>,
}

/// A random subsequence of `0..n` (order preserved, each element kept with
/// probability 1/2) — the acceptors one phase's messages actually reach.
fn subsequence(rng: &mut SmallRng, n: usize) -> Vec<usize> {
    (0..n).filter(|_| rng.gen_bool(0.5)).collect()
}

fn rand_round(rng: &mut SmallRng, n_acceptors: usize) -> Round {
    Round {
        proposer: rng.gen_range(0..3u32),
        ballot_round: rng.gen_range(1..6u64),
        prepare_order: subsequence(rng, n_acceptors),
        accept_order: subsequence(rng, n_acceptors),
    }
}

/// Drive one proposer round against shared acceptors with the given
/// delivery pattern; returns the value it believes was chosen, if any.
fn drive(acceptors: &mut [Acceptor], round: &Round) -> Option<Bytes> {
    let ballot = Ballot::new(round.ballot_round, round.proposer);
    let my_value = Bytes::from(format!("v{}@{}", round.proposer, round.ballot_round));
    let mut p = Proposer::new(round.proposer, acceptors.len(), ballot, my_value);
    let mut accept_payload = None;
    for &i in &round.prepare_order {
        let reply = acceptors[i].on_prepare(ballot);
        match p.on_prepare_reply(i as u32, reply) {
            ProposerEvent::SendAccepts { ballot, value } => {
                accept_payload = Some((ballot, value));
                break;
            }
            ProposerEvent::Preempted { .. } => return None,
            _ => {}
        }
    }
    let (ballot, value) = accept_payload?;
    for &i in &round.accept_order {
        let reply = acceptors[i].on_accept(ballot, value.clone());
        match p.on_accept_reply(i as u32, reply) {
            ProposerEvent::Chosen { value, .. } => return Some(value),
            ProposerEvent::Preempted { .. } => return None,
            _ => {}
        }
    }
    None
}

#[test]
fn at_most_one_value_is_ever_chosen() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x9a1c05 ^ (case << 8));
        let n_rounds = rng.gen_range(1..12usize);
        let mut acceptors = vec![Acceptor::new(); 5];
        let mut chosen: Option<Bytes> = None;
        for r in 0..n_rounds {
            let round = rand_round(&mut rng, 5);
            if let Some(v) = drive(&mut acceptors, &round) {
                match &chosen {
                    None => chosen = Some(v),
                    Some(prev) => {
                        assert_eq!(prev, &v, "case {case} round {r}: two different values chosen")
                    }
                }
            }
        }
    }
}

/// Once a quorum has accepted a value, every later successful round must
/// choose that same value (the adoption rule works).
#[test]
fn chosen_values_are_stable_under_later_rounds() {
    for case in 0..cases() {
        let mut rng = SmallRng::seed_from_u64(0x9a1c06 ^ (case << 8));
        let mut acceptors = vec![Acceptor::new(); 3];
        // Choose "first" with a full round.
        let first = drive(
            &mut acceptors,
            &Round {
                proposer: 0,
                ballot_round: 1,
                prepare_order: vec![0, 1, 2],
                accept_order: vec![0, 1, 2],
            },
        )
        .expect("uncontended round chooses");
        let n_rounds = rng.gen_range(1..8usize);
        for r in 0..n_rounds {
            let round = rand_round(&mut rng, 3);
            if let Some(v) = drive(&mut acceptors, &round) {
                assert_eq!(first, v, "case {case} round {r}: later round overwrote the choice");
            }
        }
    }
}
