//! The failover protocol: failure detection through the global view,
//! Algorithm 1 active election, the six-step active-standby switch, and
//! degradation paths.
//!
//! View-key ownership: every member writes only its *own* ephemeral state
//! key and (when it wins the lock) the group's `active` pointer. A deposed
//! active degrades itself when it observes the new active (or is fenced by
//! the pool); a dead member's keys vanish with its session. This keeps the
//! ephemeral-ownership semantics of ZooKeeper while producing exactly the
//! state sequences of the paper's Table II.

use mams_coord::{CoordEvent, CoordResp, KeyOp};
use mams_sim::{Ctx, NodeId};
use mams_storage::proto::{PoolReq, PoolResp};

use crate::config::InitialRole;
use crate::proto::GroupMsg;
use crate::server::{
    ElectStage, ElectState, Inflight, MdsServer, PoolCtx, Role, T_ELECT, T_UPGRADE_RETRY,
};
use crate::view::keys;

impl MdsServer {
    fn bid_key(&self, node: NodeId) -> String {
        format!("g/{}/bid/{}", self.cfg.group, node)
    }

    fn bid_prefix(&self) -> String {
        format!("g/{}/bid/", self.cfg.group)
    }

    /// Publish our current role letter in the view (self-owned ephemeral).
    pub(crate) fn announce_state(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.id();
        let key = keys::state(self.cfg.group, me);
        self.coord.set(ctx, key, self.role.letter(), true);
    }

    // -------------------------------------------------- coord responses

    pub(crate) fn on_coord_resp(&mut self, ctx: &mut Ctx<'_>, resp: CoordResp) {
        match resp {
            CoordResp::Registered => {
                self.announce_state(ctx);
                // Re-learn the view (we may have been partitioned and
                // missed events).
                self.coord.list(ctx, keys::all_groups());
                if self.cfg.initial_role == InitialRole::Active && !self.boot_lock_tried {
                    self.boot_lock_tried = true;
                    self.coord.acquire_lock(ctx, keys::lock(self.cfg.group));
                }
            }
            CoordResp::NoSession => {
                // Our session lapsed (e.g. we were unplugged). Re-open it;
                // the refreshed view listing will tell us if we were
                // deposed, and registration will re-qualify our state.
                self.registered = false;
                self.coord.reregister(ctx);
            }
            CoordResp::LockGranted { path, epoch, .. } => {
                if path == keys::lock(self.cfg.group) {
                    // Holding a fresh grant supersedes any unconfirmed
                    // release of an earlier one (the epoch fence already
                    // makes a late retry of it harmless).
                    self.pending_lock_release = None;
                    self.begin_upgrade(ctx, epoch);
                }
            }
            CoordResp::LockBusy { path, .. } => {
                if path == keys::lock(self.cfg.group) {
                    // Someone else won the race; stop competing
                    // ("events are triggered to notify others to stop
                    // competing which will reduce unnecessary actions").
                    self.elect = None;
                    if self.role == Role::Electing {
                        self.role = Role::Standby;
                    }
                }
            }
            CoordResp::Listing { prefix, entries, .. } => {
                if prefix == self.bid_prefix() {
                    self.election_decide(ctx, entries);
                } else if prefix == keys::all_groups() {
                    self.absorb_view_listing(ctx, entries);
                }
            }
            CoordResp::LockReleased { path, .. } => {
                if path == keys::lock(self.cfg.group) {
                    self.pending_lock_release = None;
                }
            }
            CoordResp::Value { .. } | CoordResp::MultiOk { .. } | CoordResp::Watching { .. } => {}
        }
    }

    fn absorb_view_listing(&mut self, ctx: &mut Ctx<'_>, entries: Vec<(String, String)>) {
        // Replace our cached picture of the view.
        self.view.retain(|k, _| !k.starts_with("g/"));
        for (k, v) in entries {
            self.view.insert(k, v);
        }
        self.reconcile_with_view(ctx);
    }

    /// Compare our role against the authoritative view and fix mismatches.
    fn reconcile_with_view(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.id();
        let active = self.active_of_group(self.cfg.group);
        self.active_hint = active;
        match active {
            Some(n) if n != me => {
                if matches!(self.role, Role::Active | Role::Upgrading) {
                    self.degrade_to_junior(ctx, "view shows another active");
                } else {
                    self.maybe_register(ctx);
                }
            }
            Some(_) if !matches!(self.role, Role::Active | Role::Upgrading) => {
                // The view still points at *us* but we stepped down (e.g.
                // self-fenced and our cleanup writes were lost). Remove the
                // stale pointer so the group can elect.
                self.release_tenure(ctx);
            }
            None => {
                if self.role == Role::Active {
                    // Our view-update write was lost: re-publish.
                    self.coord.multi(
                        ctx,
                        vec![
                            KeyOp::Set {
                                key: keys::active(self.cfg.group),
                                value: me.to_string(),
                                ephemeral: true,
                            },
                            KeyOp::Set {
                                key: keys::state(self.cfg.group, me),
                                value: "A".into(),
                                ephemeral: true,
                            },
                        ],
                    );
                } else {
                    // No active anywhere: candidates should stand.
                    self.maybe_start_election(ctx);
                }
            }
            _ => {}
        }
    }

    // ----------------------------------------------------- coord events

    pub(crate) fn on_coord_event(&mut self, ctx: &mut Ctx<'_>, ev: CoordEvent) {
        match ev {
            CoordEvent::KeyChanged { key, value, by_expiry } => {
                self.view_set(key.clone(), value.clone());
                self.on_view_key_changed(ctx, &key, value.as_deref(), by_expiry);
            }
            CoordEvent::LockFreed { path, .. } => {
                if path == keys::lock(self.cfg.group) {
                    self.note_failure(ctx);
                    self.maybe_start_election(ctx);
                }
            }
            CoordEvent::LockTaken { path, holder, epoch } => {
                if path == keys::lock(self.cfg.group) {
                    self.group_epoch = self.group_epoch.max(epoch);
                    if holder != ctx.id() {
                        // A peer holds the lock: abandon any election round.
                        self.elect = None;
                        if self.role == Role::Electing {
                            self.role = Role::Standby;
                        }
                        if matches!(self.role, Role::Active | Role::Upgrading) {
                            self.degrade_to_junior(ctx, "lock taken by peer");
                        }
                    }
                }
            }
            CoordEvent::SessionExpired => {
                // Failure detector fired on *us*.
                if matches!(self.role, Role::Active | Role::Upgrading) {
                    self.degrade_to_junior(ctx, "own session expired");
                } else {
                    self.registered = false;
                }
                self.coord.reregister(ctx);
            }
        }
    }

    fn on_view_key_changed(
        &mut self,
        ctx: &mut Ctx<'_>,
        key: &str,
        value: Option<&str>,
        _by_expiry: bool,
    ) {
        let me = ctx.id();
        if let Some(group) = keys::parse_active_key(key) {
            if group != self.cfg.group {
                return; // other groups matter only for routing (cache is updated)
            }
            match value.and_then(crate::view::decode_node) {
                None => {
                    self.note_failure(ctx);
                    self.maybe_start_election(ctx);
                }
                Some(n) => {
                    self.active_hint = Some(n);
                    self.failure_seen_at = None;
                    self.elect = None;
                    if self.role == Role::Electing {
                        self.role = Role::Standby;
                    }
                    if n != me && matches!(self.role, Role::Active | Role::Upgrading) {
                        self.degrade_to_junior(ctx, "another active appeared");
                    }
                    if n != me {
                        // New active: (re)register with it (step 5).
                        self.registered = false;
                        self.maybe_register(ctx);
                    }
                }
            }
            return;
        }
        if let Some((group, node)) = keys::parse_state_key(key) {
            if group != self.cfg.group {
                return;
            }
            if node == me {
                // Someone (the renewing protocol's completion, see
                // renewing.rs) or our own announcement changed our state.
                return;
            }
            if value.is_none() && self.role == Role::Active {
                // A member died: stop waiting for its acks.
                self.standbys.remove(&node);
                self.member_sns.remove(&node);
                for inf in self.inflight.values_mut() {
                    inf.waiting_members.remove(&node);
                }
                if self.renew_driver.as_ref().is_some_and(|r| r.junior == node) {
                    self.renew_driver = None;
                }
                self.try_complete(ctx);
            }
        }
    }

    /// Record the instant we observed the active disappear (Figure 7's
    /// failover clock starts here).
    fn note_failure(&mut self, ctx: &mut Ctx<'_>) {
        if self.failure_seen_at.is_none() && !matches!(self.role, Role::Active | Role::Upgrading) {
            self.failure_seen_at = Some(ctx.now());
            ctx.trace("failover.detected", String::new);
        }
    }

    // ------------------------------------------------------- election

    /// Algorithm 1. Standbys bid random numbers; when no standby exists,
    /// juniors bid their journal sn (the junior with the maximum sn takes
    /// over). The largest bid acquires the lock.
    pub(crate) fn maybe_start_election(&mut self, ctx: &mut Ctx<'_>) {
        if self.elect.is_some() {
            return;
        }
        if self.active_of_group(self.cfg.group).is_some() {
            return;
        }
        let bid = match self.role {
            Role::Standby => ctx.rng().next_u64() >> 1, // random, below junior cap
            Role::Junior => {
                // Juniors stand only when no standby is left
                // ("it ensures the continuity of metadata service even if
                // no standbys are in the global view").
                if !self.members_in_state("S").is_empty() {
                    return;
                }
                self.cursor.max_sn()
            }
            _ => return,
        };
        ctx.trace("election.start", || format!("bid {bid}"));
        let me = ctx.id();
        let key = self.bid_key(me);
        self.coord.set(ctx, key, bid.to_string(), true);
        if self.role == Role::Standby {
            self.role = Role::Electing;
        }
        self.elect = Some(ElectState { bid, stage: ElectStage::Window });
        ctx.set_timer(self.cfg.timing.election_spread, T_ELECT);
    }

    /// The T_ELECT timer fired.
    pub(crate) fn election_window_closed(&mut self, ctx: &mut Ctx<'_>) {
        let stage = match &self.elect {
            Some(e) => e.stage,
            None => return,
        };
        match stage {
            ElectStage::Window => {
                let prefix = self.bid_prefix();
                self.coord.list(ctx, prefix);
                if let Some(e) = self.elect.as_mut() {
                    e.stage = ElectStage::Backoff;
                }
                ctx.set_timer(self.cfg.timing.election_spread.mul_f64(4.0), T_ELECT);
            }
            ElectStage::Backoff => {
                // The round fizzled (winner died mid-acquire, listing lost,
                // …). Start over if there is still no active.
                self.elect = None;
                if self.role == Role::Electing {
                    self.role = Role::Standby;
                }
                self.maybe_start_election(ctx);
            }
        }
    }

    /// Bid listing arrived: the largest bid (ties broken by node id) tries
    /// the lock.
    fn election_decide(&mut self, ctx: &mut Ctx<'_>, entries: Vec<(String, String)>) {
        let elect = match &self.elect {
            Some(e) => e,
            None => return,
        };
        let me = ctx.id();
        let prefix = self.bid_prefix();
        let mut best: Option<(u64, NodeId)> = None;
        for (k, v) in &entries {
            let node: NodeId = match k[prefix.len()..].parse() {
                Ok(n) => n,
                Err(_) => continue,
            };
            let bid: u64 = match v.parse() {
                Ok(b) => b,
                Err(_) => continue,
            };
            if best.is_none_or(|b| (bid, node) > b) {
                best = Some((bid, node));
            }
        }
        match best {
            Some((_, winner)) if winner == me => {
                ctx.trace("election.won_bid", || format!("bid {}", elect.bid));
                self.coord.acquire_lock(ctx, keys::lock(self.cfg.group));
            }
            _ => {
                // Not the winner: wait; the Backoff timer restarts the round
                // if the winner fails to take over.
            }
        }
    }

    // ------------------------------------------------------ the switch

    /// Lock granted: run the six-step upgrade.
    pub(crate) fn begin_upgrade(&mut self, ctx: &mut Ctx<'_>, epoch: u64) {
        let me = ctx.id();
        // Step 1: re-check our own state in the view; a concurrently
        // degraded junior must give the lock up (unless no standby exists —
        // then a junior takeover is exactly what Algorithm 1 prescribes).
        let my_state = self.view.get(&keys::state(self.cfg.group, me)).cloned();
        let standbys_exist = self.members_in_state("S").iter().any(|&n| n != me);
        if my_state.as_deref() == Some("J") && standbys_exist {
            ctx.trace("failover.aborted", || "junior with standbys present".into());
            self.coord.release_lock(ctx, keys::lock(self.cfg.group), epoch);
            self.pending_lock_release = Some(epoch);
            self.elect = None;
            return;
        }
        ctx.trace("failover.lock_acquired", || format!("epoch {epoch}"));
        self.role = Role::Upgrading;
        self.epoch = epoch;
        self.group_epoch = self.group_epoch.max(epoch);
        self.elect = None;
        // If any pool reply of the switch sequence is lost, rerun it.
        ctx.set_timer(self.cfg.timing.register_retry.mul_f64(2.0), T_UPGRADE_RETRY);
        // Fence the pool before reading its authoritative tail, so the
        // deposed active cannot append behind our back.
        let group = self.cfg.group;
        self.pool_send(
            ctx,
            move |req| PoolReq::AdvanceEpoch { group, to: epoch, req },
            PoolCtx::EpochAdvance,
        );
    }

    pub(crate) fn on_epoch_advanced(&mut self, ctx: &mut Ctx<'_>, _resp: PoolResp) {
        if self.role != Role::Upgrading {
            return;
        }
        // Commit any cached journals, then sync with the SSP tail: every
        // client-acknowledged batch is durable there, so after this read we
        // hold everything that was ever acknowledged.
        let group = self.cfg.group;
        let after = self.cursor.max_sn();
        let max = self.cfg.timing.catchup_page;
        self.pool_send(
            ctx,
            move |req| PoolReq::ReadJournal { group, after_sn: after, max, req },
            PoolCtx::UpgradeTail,
        );
    }

    pub(crate) fn on_upgrade_tail(&mut self, ctx: &mut Ctx<'_>, resp: PoolResp) {
        if self.role != Role::Upgrading {
            return;
        }
        match resp {
            PoolResp::Journal { batches, tail_sn, compacted, .. } => {
                if compacted {
                    // Too far behind the shared journal: load the image
                    // first (elected-junior path).
                    self.start_image_fetch(ctx, true);
                    return;
                }
                for b in batches {
                    self.ingest_batch(b);
                }
                self.note_divergence(ctx);
                if self.cursor.max_sn() < tail_sn {
                    let group = self.cfg.group;
                    let after = self.cursor.max_sn();
                    let max = self.cfg.timing.catchup_page;
                    self.pool_send(
                        ctx,
                        move |req| PoolReq::ReadJournal { group, after_sn: after, max, req },
                        PoolCtx::UpgradeTail,
                    );
                } else {
                    // Our replica can be *ahead* of the durable tail: the
                    // deposed active synced batches to us whose own SSP
                    // appends died with it. They are already applied to our
                    // image, so re-offer the suffix to the pool — otherwise
                    // our first fresh append sits behind a permanent journal
                    // gap and no mutation ever commits again. None of these
                    // batches was acknowledged to a client (acks require SSP
                    // durability), so committing them is linearizable.
                    let resync: Vec<mams_journal::SharedBatch> = self
                        .log
                        .read_after(tail_sn)
                        .map(|bs| bs.iter().map(mams_journal::SharedBatch::share).collect())
                        .unwrap_or_default();
                    self.finish_upgrade(ctx);
                    let group = self.cfg.group;
                    let epoch = self.epoch;
                    for batch in resync {
                        let sn = batch.batch().sn;
                        ctx.trace("failover.resync_pool", || format!("re-offer sn {sn}"));
                        self.inflight
                            .insert(sn, Inflight { waiting_pool: true, ..Default::default() });
                        self.pool_send(
                            ctx,
                            move |req| PoolReq::AppendJournal { group, epoch, batch, req },
                            PoolCtx::AppendAck { sn },
                        );
                    }
                }
            }
            other => {
                ctx.trace("failover.pool_error", || format!("{other:?}"));
                self.degrade_to_junior(ctx, "pool error during upgrade");
            }
        }
    }

    /// Steps 2/3/6: flip the view, then serve (buffered requests first).
    pub(crate) fn finish_upgrade(&mut self, ctx: &mut Ctx<'_>) {
        let me = ctx.id();
        self.role = Role::Active;
        self.active_hint = Some(me);
        self.registered = true;
        self.standbys.clear();
        self.member_sns.clear();
        self.inflight.clear();
        self.catchup = None;
        // The predecessor's manifest chain is not ours to extend: the first
        // delta tick after promotion writes a fresh full image instead.
        self.delta_anchor = None;
        // Seed the response cache from the replicated retry window we
        // rebuilt during replay: a retry of an op the dead active committed
        // but never answered is served from cache, not re-executed —
        // at-most-once holds *across* the switch. The window derives only
        // from the durable journal, so a speculative ack whose batch died
        // with the predecessor is absent and its retry executes fresh (the
        // predecessor's own `abort_inflight` semantics, reconstructed).
        self.retry_cache.clear();
        self.retry_cache.seed_from_window(&self.window);
        self.coord.multi(
            ctx,
            vec![
                KeyOp::Set {
                    key: keys::active(self.cfg.group),
                    value: me.to_string(),
                    ephemeral: true,
                },
                KeyOp::Set {
                    key: keys::state(self.cfg.group, me),
                    value: "A".into(),
                    ephemeral: true,
                },
                KeyOp::Delete { key: self.bid_key(me) },
            ],
        );
        ctx.trace("failover.view_updated", String::new);
        ctx.trace("failover.switch_done", || format!("sn {}", self.cursor.max_sn()));
        // Step 6: release buffered client requests.
        let buffered = std::mem::take(&mut self.buffered);
        for (from, req) in buffered {
            self.on_client_req(ctx, from, req);
        }
        self.flush_batch(ctx);
    }

    // ---------------------------------------------------- registration

    /// Member side of step 5: present our journal position to the active.
    pub(crate) fn maybe_register(&mut self, ctx: &mut Ctx<'_>) {
        if self.registered || matches!(self.role, Role::Active | Role::Upgrading) {
            return;
        }
        let active = match self.active_hint.or_else(|| self.active_of_group(self.cfg.group)) {
            Some(a) => a,
            None => return,
        };
        if active == ctx.id() {
            return;
        }
        ctx.send(active, GroupMsg::Register { sn: self.cursor.max_sn() });
    }

    /// Active side of step 5: qualify a member by comparing sn.
    /// "If a server does not have the same maximum sn, it is switched to
    /// junior. Otherwise the server will be assigned to standby."
    pub(crate) fn on_register(&mut self, ctx: &mut Ctx<'_>, from: NodeId, sn: u64) {
        if self.role != Role::Active {
            return; // member retries; we may still be upgrading
        }
        self.member_sns.insert(from, sn);
        let tail = self.log.tail_sn();
        let as_standby = sn == tail;
        if as_standby {
            self.standbys.insert(from);
            ctx.trace("member.standby", || format!("n{from} at sn {sn}"));
        } else {
            ctx.trace("member.junior", || format!("n{from} at sn {sn} (tail {tail})"));
        }
        ctx.send(from, GroupMsg::RegisterAck { as_standby, epoch: self.epoch, tail_sn: tail });
    }

    /// Member: the active's verdict.
    pub(crate) fn on_register_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        as_standby: bool,
        epoch: u64,
        tail_sn: u64,
    ) {
        if matches!(self.role, Role::Active | Role::Upgrading) {
            return;
        }
        self.group_epoch = self.group_epoch.max(epoch);
        self.active_hint = Some(from);
        self.registered = true;
        if as_standby {
            self.role = Role::Standby;
            self.catchup = None;
            self.announce_state(ctx);
            ctx.trace("member.registered_standby", String::new);
        } else {
            if self.cursor.max_sn() > tail_sn {
                // Divergent suffix (our extra batches were never
                // client-acknowledged): rebuild from scratch.
                ctx.trace("member.reset_divergent", || {
                    format!("our sn {} > tail {tail_sn}", self.cursor.max_sn())
                });
                self.reset_replica_state();
            }
            self.role = Role::Junior;
            self.announce_state(ctx);
            ctx.trace("member.registered_junior", String::new);
        }
    }

    // ------------------------------------------------------ degradation

    /// Self-fencing: every deposition path above is driven by a message
    /// *from* the coordinator (a watch event, a listing, `NoSession`). An
    /// active partitioned away from the coordination service receives none
    /// of them — its session expires server-side, a successor is elected,
    /// and the zombie would keep answering reads (stale!) for clients still
    /// connected to it. So the active also enforces its lease locally: no
    /// coordination contact for `coord_lease` (= the coordinator's session
    /// timeout) means the session must be presumed dead, and we step down
    /// *before* any successor can finish its upgrade.
    pub(crate) fn check_coord_lease(&mut self, ctx: &mut Ctx<'_>) {
        if !matches!(self.role, Role::Active | Role::Upgrading) {
            return;
        }
        let silent = ctx.now().since(self.last_coord_contact);
        if silent > self.cfg.timing.coord_lease {
            ctx.trace("failover.self_fence", || format!("coord silent for {silent:?}"));
            // Teardown of our view presence. On an *asymmetric* cut (we can
            // send to the coordinator but hear nothing back) our session
            // stays alive server-side, so without this the lock and the
            // active key would stay ours forever and the group could never
            // elect a successor. On a full cut these sends are lost — and
            // the coordinator's own session expiry does the same cleanup.
            // Under partial loss a lost release wedges the group the same
            // way, so it is retried (`pending_lock_release`) until the
            // coordinator confirms.
            self.release_tenure(ctx);
            self.degrade_to_junior(ctx, "coord lease lapsed");
        }
    }

    /// Give up the group lock and retract our active pointer. The release
    /// carries our grant epoch (so a duplicated copy cannot free a
    /// successor's — or our own later — grant) and the pointer delete is
    /// value-guarded (so a delayed copy cannot clobber a successor's
    /// pointer). The release is recorded in `pending_lock_release` and
    /// re-sent every view-refresh tick until the coordinator confirms:
    /// a single lost release would otherwise leave the lock held by a
    /// session that keeps heartbeating, and the group headless forever.
    pub(crate) fn release_tenure(&mut self, ctx: &mut Ctx<'_>) {
        let epoch = self.epoch;
        self.coord.release_lock(ctx, keys::lock(self.cfg.group), epoch);
        self.pending_lock_release = Some(epoch);
        self.coord.multi(
            ctx,
            vec![KeyOp::DeleteIfValue {
                key: keys::active(self.cfg.group),
                value: ctx.id().to_string(),
            }],
        );
    }

    /// "Once the active has detected fatal errors ... it will be directly
    /// degraded to the junior state."
    pub(crate) fn degrade_to_junior(&mut self, ctx: &mut Ctx<'_>, reason: &str) {
        ctx.trace("failover.degraded", || reason.to_string());
        // Mutations execute against the namespace when enqueued, with the
        // ack deferred until the batch is durable in the SSP. Anything still
        // pending or awaiting a pool ack is therefore *speculative* state in
        // our image that the rest of the group never saw — an isolated
        // active accumulates a whole divergent suffix this way. Per the
        // paper's junior semantics, discard everything and rebuild from the
        // shared image + journal; keeping the polluted image would make
        // later replay diverge.
        if !self.pending.is_empty() || self.inflight.values().any(|i| i.waiting_pool) {
            ctx.trace("failover.discard_speculative", || {
                format!("{} pending, {} inflight", self.pending.len(), self.inflight.len())
            });
            self.reset_replica_state();
        }
        // Unanswered clients will time out and retry against the new
        // active; duplicate suppression there keeps operations exact. The
        // dropped operations' in-flight markers go with them — a retry of
        // an unanswered seq must execute fresh if we are re-promoted.
        self.pending.clear();
        self.inflight.clear();
        // Barriered reads observed state that will never commit; answering
        // them now would be a dirty read. The clients time out and retry.
        self.deferred_reads.clear();
        // Parked speculative reads likewise: the new active answers the
        // retry with its own watermark, exposing any token regression.
        self.token_waits.clear();
        self.retry_cache.abort_inflight();
        self.ingress.clear();
        self.buffered.clear();
        self.standbys.clear();
        self.member_sns.clear();
        self.renew_driver = None;
        self.xg_to_sn.clear();
        self.xg_outstanding.clear();
        self.elect = None;
        self.catchup = None;
        // As active we mutated `ns` outside the replay session, so its
        // cached handles may be stale.
        self.replay.reset();
        self.delta_anchor = None;
        self.role = Role::Junior;
        self.registered = false;
        self.announce_state(ctx);
        self.maybe_register(ctx);
    }
}
