//! Data servers: block storage stand-ins that keep metadata servers' block
//! maps fresh.
//!
//! "Block locations are periodically reported to both the active and
//! standby nodes by data servers. It means that the standby node has the
//! up-to-date file locations and can achieve a hot standby for the active
//! server." (Section III-A.)

use std::collections::BTreeSet;

use mams_core::MdsReq;
use mams_sim::{Ctx, Duration, Message, Node, NodeId};

const T_REPORT: u64 = 1;

/// Harness → data server: change the held-block set.
#[derive(Debug, Clone)]
pub enum DataSrvCtl {
    AddBlocks(Vec<u64>),
    DropBlocks(Vec<u64>),
}

/// A data server holding a set of block replicas and reporting them to
/// every metadata server on a fixed cadence.
pub struct DataServer {
    /// Stable data-server id used in block reports.
    pub server_id: u32,
    /// Every metadata server (actives *and* standbys get reports).
    pub mds_nodes: Vec<NodeId>,
    pub report_interval: Duration,
    held: BTreeSet<u64>,
}

impl DataServer {
    pub fn new(server_id: u32, mds_nodes: Vec<NodeId>, report_interval: Duration) -> Self {
        DataServer { server_id, mds_nodes, report_interval, held: BTreeSet::new() }
    }

    pub fn with_blocks(mut self, blocks: impl IntoIterator<Item = u64>) -> Self {
        self.held.extend(blocks);
        self
    }

    fn send_report(&self, ctx: &mut Ctx<'_>) {
        let blocks: Vec<u64> = self.held.iter().copied().collect();
        for &mds in &self.mds_nodes {
            ctx.send(mds, MdsReq::BlockReport { server: self.server_id, blocks: blocks.clone() });
        }
    }
}

impl Node for DataServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.send_report(ctx);
        ctx.set_timer(self.report_interval, T_REPORT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_REPORT {
            self.send_report(ctx);
            ctx.set_timer(self.report_interval, T_REPORT);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
        if let Ok(ctl) = msg.downcast::<DataSrvCtl>() {
            match ctl {
                DataSrvCtl::AddBlocks(b) => self.held.extend(b),
                DataSrvCtl::DropBlocks(b) => {
                    for x in b {
                        self.held.remove(&x);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mams_sim::{Sim, SimConfig};
    use parking_lot::Mutex;
    use std::sync::Arc;

    struct Sink {
        reports: Arc<Mutex<Vec<(u32, usize)>>>,
    }

    impl Node for Sink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Message) {
            if let Ok(MdsReq::BlockReport { server, blocks }) = msg.downcast::<MdsReq>() {
                self.reports.lock().push((server, blocks.len()));
            }
        }
    }

    #[test]
    fn reports_flow_periodically_and_reflect_control() {
        let mut sim = Sim::new(SimConfig::default());
        let reports = Arc::new(Mutex::new(Vec::new()));
        let sink = sim.add_node("mds", Box::new(Sink { reports: reports.clone() }));
        let ds = sim.add_node(
            "ds",
            Box::new(DataServer::new(7, vec![sink], Duration::from_secs(1)).with_blocks([1, 2, 3])),
        );
        sim.run_for(Duration::from_millis(2_500));
        {
            let r = reports.lock();
            assert!(r.len() >= 3, "initial + 2 periodic, got {}", r.len());
            assert!(r.iter().all(|&(id, n)| id == 7 && n == 3));
        }
        sim.send_external(ds, DataSrvCtl::AddBlocks(vec![4, 5]));
        sim.run_for(Duration::from_millis(1_100));
        let r = reports.lock();
        assert_eq!(r.last().unwrap().1, 5, "new blocks show in the next report");
    }
}
