//! Duplicate-request handling ("duplicated message handling in the MAMS
//! will avoid the problem of incorrect metadata operations", Section IV-C).
//!
//! Servers remember the last responses per client; an exactly-retried
//! request is answered from the cache, never re-executed. Clients may have
//! several operations outstanding (the MapReduce workers do), so the cache
//! holds a bounded window per client rather than a single entry. A retry
//! older than the window re-executes and fails benignly (e.g.
//! `AlreadyExists`), which the client libraries reconcile.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use mams_sim::NodeId;

use crate::proto::MdsResp;

/// Bounded per-client response cache. Responses are held behind `Arc` so a
/// cache hit (and the original send) is a reference-count bump, not a deep
/// clone of the reply payload — listings and file infos can be large.
#[derive(Debug, Default)]
pub struct RetryCache {
    per_client: HashMap<NodeId, BTreeMap<u64, Arc<MdsResp>>>,
    /// Requests admitted but not yet answered. A duplicate delivery in this
    /// window (the network duplicated the message, or the client retried
    /// into a slow durability round) must not execute a second time: the
    /// response cache only covers *completed* requests, and a re-execution
    /// of a mutation whose first run is still in flight can interleave with
    /// other clients' operations and corrupt the history.
    inflight: HashSet<(NodeId, u64)>,
    cap: usize,
}

/// Default responses remembered per client.
pub const DEFAULT_RETRY_WINDOW: usize = 128;

impl RetryCache {
    pub fn new() -> Self {
        RetryCache {
            per_client: HashMap::new(),
            inflight: HashSet::new(),
            cap: DEFAULT_RETRY_WINDOW,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1);
        RetryCache { per_client: HashMap::new(), inflight: HashSet::new(), cap }
    }

    /// A cached response for an exact duplicate, if remembered.
    pub fn check(&self, from: NodeId, seq: u64) -> Option<Arc<MdsResp>> {
        self.per_client.get(&from).and_then(|m| m.get(&seq)).cloned()
    }

    /// Admit a request for execution. Returns `false` when the same
    /// `(client, seq)` is already executing — the caller must drop the
    /// duplicate; the original's reply will reach the client (or the client
    /// re-retries and hits the response cache).
    pub fn begin(&mut self, from: NodeId, seq: u64) -> bool {
        self.inflight.insert((from, seq))
    }

    /// Remember a response, evicting the oldest beyond the window. Also
    /// retires the request's in-flight marker.
    pub fn store(&mut self, from: NodeId, seq: u64, resp: Arc<MdsResp>) {
        self.inflight.remove(&(from, seq));
        let m = self.per_client.entry(from).or_default();
        m.insert(seq, resp);
        while m.len() > self.cap {
            let oldest = *m.keys().next().expect("non-empty");
            m.remove(&oldest);
        }
    }

    /// Drop every in-flight marker without caching a response. Called on
    /// degradation: the pending operations were discarded unanswered, so
    /// their retries (same seq, after we are possibly re-promoted) must be
    /// allowed to execute fresh rather than being swallowed forever.
    pub fn abort_inflight(&mut self) {
        self.inflight.clear();
    }

    /// Forget everything (new active after failover starts empty).
    pub fn clear(&mut self) {
        self.per_client.clear();
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(seq: u64) -> Arc<MdsResp> {
        Arc::new(MdsResp::Reply { seq, result: Ok(crate::proto::OpOutput::Done) })
    }

    #[test]
    fn exact_duplicates_hit() {
        let mut c = RetryCache::new();
        c.store(1, 5, resp(5));
        assert!(c.check(1, 5).is_some());
        assert!(c.check(1, 4).is_none(), "unknown seqs execute fresh");
        assert!(c.check(2, 5).is_none(), "caches are per client");
    }

    #[test]
    fn out_of_order_seqs_are_all_remembered() {
        let mut c = RetryCache::new();
        c.store(1, 9, resp(9));
        c.store(1, 3, resp(3));
        assert!(c.check(1, 3).is_some(), "lower seq after higher must not be dropped");
        assert!(c.check(1, 9).is_some());
    }

    #[test]
    fn duplicate_in_flight_is_rejected_until_stored() {
        let mut c = RetryCache::new();
        assert!(c.begin(1, 7), "first delivery executes");
        assert!(!c.begin(1, 7), "duplicate while executing is dropped");
        assert!(c.begin(1, 8), "other seqs are independent");
        assert!(c.begin(2, 7), "other clients are independent");
        c.store(1, 7, resp(7));
        assert!(c.check(1, 7).is_some(), "after completion the cache answers");
        assert!(c.begin(1, 7), "marker retired with the stored response");
    }

    #[test]
    fn abort_clears_markers_but_keeps_responses() {
        let mut c = RetryCache::new();
        c.store(1, 3, resp(3));
        assert!(c.begin(1, 4));
        c.abort_inflight();
        assert!(c.begin(1, 4), "aborted request may execute fresh on retry");
        assert!(c.check(1, 3).is_some(), "completed responses survive the abort");
    }

    #[test]
    fn window_evicts_oldest() {
        let mut c = RetryCache::with_capacity(2);
        c.store(1, 1, resp(1));
        c.store(1, 2, resp(2));
        c.store(1, 3, resp(3));
        assert!(c.check(1, 1).is_none());
        assert!(c.check(1, 2).is_some());
        assert!(c.check(1, 3).is_some());
    }
}
